#!/usr/bin/env python
"""Regenerate the paper's figures (1-4) as text and SVG.

* Figure 1: the 4x4 ISN with k=(1,1) and its butterfly relabeling;
* Figure 2: the 8x8 and 16x16 swap-butterflies' row-number matrices;
* Figure 3: the recursive grid layout (top view) — rendered as SVG from
  the actual wire-level construction;
* Figure 4: the collinear layout of K_9 with its 20 tracks.

SVGs are written next to this script (layout_fig3_n6.svg, fig4_k9.svg).

Run:  python examples/layout_gallery.py
"""

import os

from repro.layout.collinear import collinear_layout
from repro.layout.grid_scheme import build_grid_layout
from repro.layout.validate import validate_layout
from repro.topology.isn import ISN
from repro.transform.swap_butterfly import SwapButterfly
from repro.viz.ascii import collinear_figure, isn_schedule_figure, swap_butterfly_figure
from repro.viz.svg import save_svg

# SVGs land next to this script unless REPRO_OUT_DIR overrides (tests
# point it at a temp directory)
OUT_DIR = os.environ.get("REPRO_OUT_DIR") or os.path.dirname(os.path.abspath(__file__))


def fig1() -> None:
    print("=" * 60)
    print("Figure 1: 4x4 ISN (k = (1,1)) -> 4x4 butterfly")
    print("=" * 60)
    print(isn_schedule_figure(ISN.from_ks((1, 1))))
    print()
    print("butterfly row carried by each physical node (rows x stages):")
    print(swap_butterfly_figure(SwapButterfly.from_ks((1, 1))))
    print()


def fig2() -> None:
    print("=" * 60)
    print("Figure 2: 8x8 and 16x16 swap-butterflies")
    print("=" * 60)
    for ks in [(2, 1), (2, 2)]:
        sb = SwapButterfly.from_ks(ks)
        print(f"\n{2**sb.n}x{2**sb.n} butterfly from ISN{ks}:")
        print(swap_butterfly_figure(sb))
    print()


def fig3() -> None:
    print("=" * 60)
    print("Figure 3: recursive grid layout scheme (built at n = 6)")
    print("=" * 60)
    res = build_grid_layout((2, 2, 2))
    validate_layout(res.layout, res.graph).raise_if_failed()
    d = res.dims
    print(
        f"blocks: {d.grid_rows} x {d.grid_cols} grid, block "
        f"{d.block.width}x{d.block.height}, H channels {d.chan_h} tracks, "
        f"V channels {d.chan_v} tracks"
    )
    path = save_svg(res.layout, os.path.join(OUT_DIR, "layout_fig3_n6.svg"), scale=1.5)
    print(f"wrote {path}")
    print()


def fig4() -> None:
    print("=" * 60)
    print("Figure 4: collinear layout of K_9 (20 tracks)")
    print("=" * 60)
    print(collinear_figure(9))
    cl = collinear_layout(9)
    validate_layout(cl.layout, cl.graph).raise_if_failed()
    path = save_svg(cl.layout, os.path.join(OUT_DIR, "fig4_k9.svg"), scale=6)
    print(f"wrote {path}")
    print()


if __name__ == "__main__":
    fig1()
    fig2()
    fig3()
    fig4()
