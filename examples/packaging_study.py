#!/usr/bin/env python
"""Packaging study: the Section 5.2 board example plus a design-space sweep.

Part 1 reproduces the paper's worked example exactly: a 9-dimensional
butterfly on 64-pin, side-20 chips — 64 chips of 80 nodes, board areas
409.6K / 160K / 78.4K at 2 / 4 / 8 wiring layers, versus ~171 chips for
the naive row packing.

Part 2 runs the packaging optimizer across all admissible ISN parameter
vectors for several pin budgets, showing how the parameters adapt to
packaging constraints (the paper's Section 2.3 flexibility claim).

Run:  python examples/packaging_study.py
"""

from repro import ChipSpec, board_design, format_table, optimize_packaging
from repro.packaging.baseline import max_rows_within_pin_limit, naive_module_count


def part1_board_example() -> None:
    print("=" * 70)
    print("Section 5.2: 9-dimensional butterfly, 64-pin side-20 chips")
    print("=" * 70)
    rows = []
    for L in (2, 4, 8):
        d = board_design((3, 3, 3), ChipSpec(max_pins=64, side=20), layers=L)
        rows.append(
            {
                "layers": L,
                "chips": d.num_chips,
                "nodes/chip": d.nodes_per_chip,
                "pins/chip": d.pins_per_chip,
                "channel tracks": d.channel_tracks,
                "board side": d.board_side_x,
                "board area": d.board_area,
            }
        )
    print(format_table(rows))
    d = board_design((3, 3, 3), ChipSpec(max_pins=64, side=20))
    print(
        f"\nnaive row packing: {d.naive_chips_paper_estimate} chips "
        f"(paper's 2-links/node estimate, 3 rows/chip)"
    )
    print(
        f"exact-count naive: {max_rows_within_pin_limit(9, 64)} rows/chip -> "
        f"{naive_module_count(9, 64)} chips (aligned power-of-two groups "
        f"keep low-bit cross links inside)"
    )
    print()


def part2_design_space() -> None:
    print("=" * 70)
    print("Adapting ISN parameters to packaging constraints (n = 12)")
    print("=" * 70)
    for pins, nodes in [(64, None), (256, None), (None, 100), (128, 600)]:
        cands = optimize_packaging(
            12, max_pins_per_module=pins, max_nodes_per_module=nodes, max_l=4
        )
        label = f"pin limit {pins}, node limit {nodes}"
        print(f"\n-- {label}: {len(cands)} feasible designs, best 5 --")
        rows = [
            {
                "ks": c.ks,
                "scheme": c.scheme,
                "modules": c.num_modules,
                "max nodes": c.max_nodes_per_module,
                "pins": c.pins_per_module,
                "avg links/node": float(c.avg_links_per_node),
            }
            for c in cands[:5]
        ]
        print(format_table(rows) if rows else "(none feasible)")


if __name__ == "__main__":
    part1_board_example()
    part2_design_space()
