#!/usr/bin/env python
"""Node-size scalability: the paper's W = o(sqrt(N)/(L log N)) claim.

The grid scheme aligns network nodes as a 2-D grid, so the layout area is
insensitive to node size until the node rows outgrow the wiring channels.
This example sweeps the node side W on real constructions (n = 6) and on
closed-form dims (n = 24), showing area flat for small W and the knee
appearing near the paper's threshold.

Run:  python examples/node_scalability.py
"""

from repro import build_grid_layout, format_table, grid_dims, validate_layout
from repro.analysis.formulas import max_node_side_multilayer


def built_sweep() -> None:
    print("= built layouts (n = 6, L = 2): node side sweep " + "=" * 20)
    base = None
    rows = []
    for W in (4, 6, 8, 12, 16, 24):
        res = build_grid_layout((2, 2, 2), W=W)
        validate_layout(res.layout, res.graph).raise_if_failed()
        area = res.layout.area
        base = base or area
        rows.append({"W": W, "area": area, "vs W=4": area / base})
    print(format_table(rows))
    print()


def closed_form_sweep() -> None:
    k = 8
    n = 3 * k
    thr = max_node_side_multilayer(n, 2)
    print(f"= closed-form dims (n = {n}): threshold sqrt(N)/(L log N) ~ {thr:.0f} =")
    base = grid_dims((k, k, k), W=4).area
    rows = []
    for W in (4, 16, 64, 128, 256, 512, 1024):
        d = grid_dims((k, k, k), W=W)
        rows.append(
            {
                "W": W,
                "W/threshold": W / thr,
                "area": d.area,
                "vs W=4": d.area / base,
            }
        )
    print(format_table(rows))
    print(
        "\narea stays within a small factor of the W=4 layout until W "
        "approaches the threshold, then grows ~ W^2 — the paper's "
        "scalability claim."
    )


if __name__ == "__main__":
    built_sweep()
    closed_form_sweep()
