#!/usr/bin/env python
"""Switch-fabric workloads: the paper's motivating application.

"Many network switches/routers are based on butterfly, Benes, or related
interconnection topologies."  This example runs a small switch fabric
end to end:

1. lay out the fabric candidates (butterfly, Benes, bitonic sorter,
   omega, and a raw ISN) with the congestion-optimal stage-column engine
   and validate every one;
2. route a batch of permutations through the Benes fabric (looping
   algorithm) and spot-check omega destination-tag routing;
3. load the butterfly with queued random traffic and measure the
   injection-rate wall the paper's Section 2.3 bound predicts.

Run:  python examples/switching_fabrics.py
"""

import random

from repro.algorithms.benes_routing import apply_settings, route_permutation
from repro.algorithms.queued_routing import simulate_butterfly_queued
from repro.analysis.comparison import format_table
from repro.layout.multistage import build_multistage_layout
from repro.layout.validate import validate_layout
from repro.topology.benes import benes_boundary_bits
from repro.topology.bitonic import BitonicNetwork
from repro.topology.isn import ISN
from repro.topology.omega import Omega, destination_tag_route


def fabric_layouts() -> None:
    print("= stage-column layouts of 16-port fabrics " + "=" * 20)
    rows = []
    configs = [
        ("butterfly", 16, list(range(4))),
        ("Benes", 16, benes_boundary_bits(4)),
        ("bitonic sorter", 16, BitonicNetwork(4).boundaries),
        ("omega", 16, Omega(4).boundary_link_lists()),
        ("ISN(2,2)", 16, ISN.from_ks((2, 2)).boundary_link_lists()),
    ]
    for name, R, bits in configs:
        res = build_multistage_layout(R, bits, name=name)
        validate_layout(res.layout, res.graph).raise_if_failed()
        s = res.layout.summary()
        rows.append(
            {
                "fabric": name,
                "stages": res.dims.stages,
                "area": s["area"],
                "max wire": s["max_wire_length"],
                "vias": s["vias"],
            }
        )
    print(format_table(rows))
    print()


def permutation_routing() -> None:
    print("= permutation routing " + "=" * 40)
    rng = random.Random(11)
    perm = list(range(64))
    rng.shuffle(perm)
    settings = route_permutation(perm)
    assert apply_settings(settings) == perm
    print(
        f"Benes(64): routed a random permutation with "
        f"{settings.count_crossed()} crossed switches — verified by simulation"
    )
    om_rows = [destination_tag_route(4, 5, dst)[-1] == dst for dst in range(16)]
    print(f"omega(16): destination-tag routing delivered {sum(om_rows)}/16")
    print()


def traffic() -> None:
    print("= queued traffic on the butterfly fabric " + "=" * 20)
    rows = []
    for rate in (0.4, 0.8, 0.95):
        r = simulate_butterfly_queued(6, rate, cycles=1500)
        rows.append(
            {
                "offered/input": rate,
                "offered/node": round(r.rate_per_node, 4),
                "accepted": round(r.accepted_fraction, 3),
                "avg latency": round(r.avg_latency, 1),
            }
        )
    print(format_table(rows))
    print(
        "\n(the per-node ceiling 1/(n+1) = Theta(1/log N) is the paper's "
        "Section 2.3 injection-rate bound)"
    )


if __name__ == "__main__":
    fabric_layouts()
    permutation_routing()
    traffic()
