#!/usr/bin/env python
"""Multilayer trade-offs: Theorem 4.1 measured on real constructions.

Sweeps the number of wiring layers L for a fixed butterfly, building the
full wire-level layout each time, and reports area / volume / max wire
length against the theorem's leading terms.  A second sweep evaluates the
exact closed-form dimensions at large n, showing the leading constants
converging to 1.

Run:  python examples/multilayer_tradeoffs.py
"""

from repro import (
    build_grid_layout,
    format_table,
    grid_dims,
    multilayer_area,
    multilayer_max_wire,
    multilayer_volume,
    validate_layout,
)


def measured_sweep(ks=(2, 2, 2)) -> None:
    n = sum(ks)
    print(f"= built layouts, B_{n}: L sweep " + "=" * 30)
    rows = []
    for L in (2, 3, 4, 5, 6, 8):
        res = build_grid_layout(ks, L=L)
        validate_layout(res.layout, res.graph).raise_if_failed()
        s = res.layout.summary()
        rows.append(
            {
                "L": L,
                "area": s["area"],
                "paper area": multilayer_area(n, L),
                "volume": s["volume"],
                "paper volume": multilayer_volume(n, L),
                "max wire": s["max_wire_length"],
                "paper wire": multilayer_max_wire(n, L),
            }
        )
    print(format_table(rows))
    print("(absolute ratios shrink with n; see the closed-form sweep below)\n")


def closed_form_sweep() -> None:
    print("= closed-form dims: area ratio to 4 N^2/(L^2 log^2 N) -> 1 " + "=" * 8)
    rows = []
    for k in (3, 5, 7, 9, 11):
        n = 3 * k
        row = {"n": n}
        for L in (2, 4, 8):
            d = grid_dims((k, k, k), L=L)
            row[f"ratio L={L}"] = d.area / multilayer_area(n, L)
        rows.append(row)
    print(format_table(rows))
    print(
        "\n(the ratio contains the (n+1)^2/log2^2 N factor from N = (n+1) 2^n;"
        "\n against 4^n the construction's constant is "
        + ", ".join(
            f"{grid_dims((k, k, k)).area / 4 ** (3 * k):.3f}" for k in (5, 8, 11)
        )
        + " at n = 15, 24, 33)"
    )


if __name__ == "__main__":
    measured_sweep()
    closed_form_sweep()
