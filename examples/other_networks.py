#!/usr/bin/env python
"""Companion networks: hypercubes, generalized hypercubes, tori, Benes.

The paper's conclusion claims its machinery carries over to "many other
networks, such as hypercubes and k-ary n-cubes"; its introduction
motivates everything with butterfly/Benes switch fabrics.  This example
exercises all four substrates end to end:

* a validated 2-D hypercube layout whose channels are optimal collinear
  layouts of sub-hypercubes (area -> (4/9) N^2);
* a generalized-hypercube layout wired by Appendix B's complete-graph
  channels (the Section 3.2 supernode picture, stood up on its own);
* a k-ary 2-cube (torus) layout with 2-track cycle channels;
* Benes permutation routing via the looping algorithm, verified by
  simulation.

Run:  python examples/other_networks.py
"""

import random

from repro.algorithms.benes_routing import apply_settings, route_permutation
from repro.analysis.comparison import format_table
from repro.layout.ghc_layout import ghc_2d_layout, torus_2d_layout
from repro.layout.hypercube_layout import (
    hypercube_2d_area_estimate,
    hypercube_2d_dims,
    hypercube_2d_layout,
)
from repro.layout.collinear import optimal_track_count
from repro.layout.validate import validate_layout


def hypercubes() -> None:
    print("= hypercube layouts " + "=" * 40)
    res = hypercube_2d_layout(6)
    validate_layout(res.layout, res.graph).raise_if_failed()
    print(f"Q_6 built and validated: area {res.layout.area}, "
          f"max wire {res.layout.max_wire_length()}")
    rows = [
        {
            "n": n,
            "area (closed form)": hypercube_2d_dims(n).area,
            "(4/9) N^2": int(hypercube_2d_area_estimate(n)),
            "ratio": round(hypercube_2d_dims(n).area / hypercube_2d_area_estimate(n), 4),
        }
        for n in (10, 16, 22, 28)
    ]
    print(format_table(rows))
    print()


def ghc_and_torus() -> None:
    print("= generalized hypercube and torus " + "=" * 26)
    g = ghc_2d_layout(8, 8)
    validate_layout(g.layout, g.graph).raise_if_failed()
    print(
        f"GHC(8,8): channels use {g.dims.row_tracks} tracks "
        f"(= floor(64/4) = {optimal_track_count(8)}, Appendix B), "
        f"area {g.layout.area}"
    )
    t = torus_2d_layout(8)
    validate_layout(t.layout, t.graph).raise_if_failed()
    print(f"8x8 torus: cycle channels need {t.dims.row_tracks} tracks, "
          f"area {t.layout.area}")
    print()


def benes() -> None:
    print("= Benes permutation routing " + "=" * 32)
    rng = random.Random(3)
    for n in (4, 8):
        N = 1 << n
        perm = list(range(N))
        rng.shuffle(perm)
        settings = route_permutation(perm)
        ok = apply_settings(settings) == perm
        print(
            f"N={N}: {len(settings.stages)} switch stages, "
            f"{settings.count_crossed()} crossed switches, "
            f"permutation realized: {ok}"
        )
    print("\n(rearrangeability = why Benes/butterfly fabrics back the")
    print(" switches the paper's introduction motivates)")


if __name__ == "__main__":
    hypercubes()
    ghc_and_torus()
    benes()
