#!/usr/bin/env python
"""Quickstart: build, validate and measure a butterfly layout.

Builds the 6-dimensional butterfly (448 nodes) as a swap-butterfly, lays
it out wire-by-wire under the Thompson model with the paper's recursive
grid scheme, validates every layout-model rule, and compares the measured
area and max wire length against the paper's closed forms.

Run:  python examples/quickstart.py
"""

from repro import (
    build_grid_layout,
    format_table,
    leading_constant_area,
    leading_constant_wire,
    thompson_area,
    thompson_max_wire,
    validate_layout,
    verify_automorphism,
)

KS = (2, 2, 2)  # k1, k2, k3 -> n = 6
N_DIM = sum(KS)


def main() -> None:
    print(f"= butterfly B_{N_DIM} via ISN{KS} " + "=" * 30)

    # 1. the ISN -> butterfly transformation is an automorphism
    ok = verify_automorphism(KS)
    print(f"swap-butterfly is an automorphism of B_{N_DIM}: {ok}")

    # 2. wire-level layout under the Thompson model (L = 2)
    res = build_grid_layout(KS)
    report = validate_layout(res.layout, res.graph)
    report.raise_if_failed()
    print(f"layout valid: {report.ok} (checks: {', '.join(report.checks_run)})")

    # 3. measurements vs the paper's leading terms
    s = res.layout.summary()
    rows = [
        {
            "metric": "area",
            "measured": s["area"],
            "paper leading term": thompson_area(N_DIM),
            "ratio": leading_constant_area(s["area"], N_DIM),
        },
        {
            "metric": "max wire length",
            "measured": s["max_wire_length"],
            "paper leading term": thompson_max_wire(N_DIM),
            "ratio": leading_constant_wire(s["max_wire_length"], N_DIM),
        },
    ]
    print()
    print(format_table(rows))
    print(
        "\n(o(.) terms dominate at n = 6; the ratio falls toward 1 as n "
        "grows — see benchmarks/bench_sec3_thompson.py)"
    )
    print(
        f"\nlayout: {s['nodes']} nodes, {s['wires']} wires, "
        f"{s['segments']} segments, {s['vias']} vias, "
        f"{s['width']}x{s['height']} grid units"
    )


if __name__ == "__main__":
    main()
