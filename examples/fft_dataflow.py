#!/usr/bin/env python
"""FFT as dataflow over butterfly and ISN topologies.

Section 2.2's core argument is that an ISN performs the FFT by an ascend
algorithm with extra forwarding over swap links — which is exactly why
bypassing the swap stages yields a butterfly automorphism.  This example
runs a real 512-point FFT through both flow graphs, traces every data
movement against the networks' edges, and compares with numpy.

Run:  python examples/fft_dataflow.py
"""

import numpy as np

from repro.algorithms.ascend import AscendTrace
from repro.algorithms.fft import fft_via_butterfly, fft_via_isn
from repro.topology.isn import ISN


def main() -> None:
    rng = np.random.default_rng(42)
    x = rng.normal(size=512) + 1j * rng.normal(size=512)
    reference = np.fft.fft(x)

    trace = AscendTrace()
    y_bfly = fft_via_butterfly(x, trace=trace)
    err = np.max(np.abs(y_bfly - reference))
    print(f"FFT over B_9 flow graph: max |err| = {err:.2e}")
    print(
        f"  every one of the {len(trace.moves)} data movements verified "
        f"against a butterfly edge"
    )

    for ks in [(3, 3, 3), (4, 3, 2), (5, 4)]:
        isn = ISN.from_ks(ks)
        y = fft_via_isn(x, isn)
        err = np.max(np.abs(y - reference))
        swaps = len(isn.swap_step_indices())
        print(
            f"FFT over ISN{ks}: max |err| = {err:.2e} "
            f"({isn.stages} stages, {swaps} swap forwarding steps)"
        )

    print("\nthe ISN computes the same FFT with extra forwarding over swap")
    print("links — bypassing those stages is the butterfly transformation.")


if __name__ == "__main__":
    main()
