"""Edge-case sweep across modules: small sizes, degenerate configs, and
report fields not covered by the mainline tests."""

from fractions import Fraction

import pytest

from repro.layout.collinear import collinear_layout
from repro.layout.grid_scheme import build_grid_layout, grid_dims
from repro.layout.model import multilayer_model
from repro.layout.validate import validate_layout
from repro.packaging.partition import RowPartition
from repro.packaging.pins import count_off_module_links
from repro.transform.swap_butterfly import SwapButterfly
from repro.viz.svg import layout_to_svg


class TestSmallestInstances:
    def test_minimal_grid_layout(self):
        """(1,1,1) is the smallest grid-scheme instance: 2x2 blocks of
        2 rows; everything still validates."""
        res = build_grid_layout((1, 1, 1))
        validate_layout(res.layout, res.graph).raise_if_failed()
        assert res.dims.grid_rows == res.dims.grid_cols == 2
        assert len(res.layout.nodes) == 4 * 8

    def test_k2_collinear(self):
        cl = collinear_layout(2)
        validate_layout(cl.layout, cl.graph).raise_if_failed()
        assert cl.tracks_total == 1

    def test_single_row_module(self):
        """row_bits = 0: every row its own module — swap links leave except
        the self-directed halves at sigma's fixed points."""
        sb = SwapButterfly.from_ks((2, 2))
        rep = count_off_module_links(RowPartition(sb, 0))
        # generic rows: 2 cross endpoints per exchange boundary (3 of
        # them) + 4 composite endpoints = 10; sigma-fixed rows keep both
        # swap-straight halves internal: 8
        assert set(rep.per_module.values()) == {8, 10}
        fixed = sum(1 for v in rep.per_module.values() if v == 8)
        assert fixed == 4  # rows with u[0:2] == u[2:4]

    def test_whole_network_module(self):
        sb = SwapButterfly.from_ks((2, 2))
        rep = count_off_module_links(RowPartition(sb, sb.n))
        assert rep.off_module_links == 0
        assert rep.avg_per_node == Fraction(0)


class TestPinReportFields:
    def test_avg_per_module(self):
        sb = SwapButterfly.from_ks((2, 2, 2))
        rep = count_off_module_links(RowPartition.natural(sb))
        assert rep.avg_per_module == Fraction(24)
        assert rep.total_links == sb.num_edges
        assert rep.num_modules == 16


class TestLargeL:
    def test_L_larger_than_tracks(self):
        """More layer groups than logical tracks: channels collapse to one
        physical track per group chunk and the layout still validates."""
        res = build_grid_layout((1, 1, 1), L=8)
        validate_layout(res.layout, res.graph).raise_if_failed()
        assert res.dims.chan_h >= 1

    def test_model_layer_sets_cover_L(self):
        for L in range(2, 12):
            m = multilayer_model(L)
            used = set(m.v_layers) | set(m.h_layers)
            assert used == set(range(1, L + 1)) or L % 2 == 1
            if L % 2 == 1:
                # odd L: layer L carries horizontal runs
                assert L in m.h_layers

    def test_dims_monotone_in_L(self):
        areas = [grid_dims((3, 3, 3), L=L).area for L in (2, 4, 6, 8)]
        assert areas == sorted(areas, reverse=True)


class TestSvgGeometry:
    def test_y_flip(self):
        """Our +y is up; SVG +y is down — the topmost layout feature must
        have the smallest SVG y."""
        cl = collinear_layout(4)
        svg = layout_to_svg(cl.layout, scale=1.0, margin=0.0)
        # node rects sit at the layout bottom -> largest SVG y among rects
        import re

        ys = [float(m) for m in re.findall(r'<rect x="[\d.]+" y="([\d.]+)"', svg)]
        assert ys and max(ys) == pytest.approx(cl.layout.height - cl.node_side)

    def test_scale(self):
        cl = collinear_layout(4)
        s1 = layout_to_svg(cl.layout, scale=1.0, margin=0.0)
        s2 = layout_to_svg(cl.layout, scale=2.0, margin=0.0)
        w1 = float(s1.split('width="')[1].split('"')[0])
        w2 = float(s2.split('width="')[1].split('"')[0])
        assert w2 > 1.5 * w1


class TestFormulaEdges:
    def test_offmodule_small_module_branch(self):
        """row_bits below k_i: every row's swap leaves."""
        from repro.packaging.pins import row_partition_offmodule_per_module

        # b = 1 < k2 = 2: all 2 rows leave at level 2
        assert row_partition_offmodule_per_module((2, 2), row_bits=1) == 8

    def test_grid_dims_rejects_k2_above_k1(self):
        with pytest.raises(ValueError):
            grid_dims((2, 3, 1))
