"""End-to-end integration tests: the full pipeline the paper describes.

ISN -> swap-butterfly -> (a) verified butterfly automorphism,
(b) validated wire-level layout whose measurements obey the theorems,
(c) packaging with exact pin counts, (d) FFT running over the topology.
"""

import numpy as np
import pytest

from repro import (
    ChipSpec,
    RowPartition,
    SwapButterfly,
    board_design,
    build_grid_layout,
    count_off_module_links,
    grid_dims,
    multilayer_area,
    num_nodes,
    validate_layout,
    verify_automorphism,
)
from repro.algorithms.fft import fft_via_isn
from repro.packaging.pins import row_partition_offmodule_per_module
from repro.topology.isn import ISN


class TestFullPipeline:
    @pytest.mark.parametrize("ks", [(2, 1, 1), (2, 2, 2)])
    def test_isn_to_layout_to_measurements(self, ks):
        n = sum(ks)
        # 1. the transformation is a butterfly automorphism
        assert verify_automorphism(ks)
        # 2. the layout realises the swap-butterfly under Thompson rules
        res = build_grid_layout(ks)
        validate_layout(res.layout, res.graph).raise_if_failed()
        # 3. measurements are consistent with the closed-form dims
        assert res.layout.area <= res.dims.area
        # 4. packaging: only composite links leave row modules
        sb = res.sb
        rep = count_off_module_links(RowPartition.natural(sb))
        assert rep.max_per_module == row_partition_offmodule_per_module(ks)
        # 5. FFT flows over the ISN
        isn = ISN.from_ks(ks)
        x = np.random.default_rng(0).normal(size=isn.rows)
        assert np.allclose(fft_via_isn(x, isn), np.fft.fft(x))

    def test_multilayer_improves_all_three_metrics(self):
        """Theorem 4.1's point: more layers shrink area, volume per layer
        trade, and max wire length together."""
        r2 = build_grid_layout((2, 2, 2), L=2)
        r4 = build_grid_layout((2, 2, 2), L=4)
        for r in (r2, r4):
            validate_layout(r.layout, r.graph).raise_if_failed()
        assert r4.layout.area < r2.layout.area
        assert r4.layout.max_wire_length() < r2.layout.max_wire_length()
        assert r4.layout.volume < 2 * r2.layout.volume  # volume ~ 4N^2/(L log^2)

    def test_board_design_consistent_with_partition(self):
        d = board_design((2, 2, 2), ChipSpec(max_pins=32, side=10))
        sb = SwapButterfly.from_ks((2, 2, 2))
        rep = count_off_module_links(RowPartition.natural(sb))
        assert d.pins_per_chip == rep.max_per_module
        assert d.num_chips == rep.num_modules

    def test_formula_consistency_across_modules(self):
        """analysis.multilayer_area at L=2 equals thompson area; grid_dims
        approaches it from above as n grows."""
        for k in (4, 6, 8):
            n = 3 * k
            d = grid_dims((k, k, k))
            target = multilayer_area(n, 2)
            assert d.area > target * 0.2  # same Theta
            # ratio to 2^{2n} is the better-conditioned convergence check
            assert d.area / 4 ** n > 1

    def test_num_nodes_matches_layout(self):
        res = build_grid_layout((2, 1, 1))
        assert len(res.layout.nodes) == num_nodes(4)


class TestLayoutPackagingCrossCheck:
    """The built layout and the packaging accountant must agree: wires
    whose endpoints sit in different blocks of the grid layout are
    exactly the off-module links the row partition counts."""

    @pytest.mark.parametrize("ks", [(2, 1, 1), (2, 2, 2), (2, 2, 1)])
    def test_interblock_wires_equal_pin_counts(self, ks):
        from repro.packaging.pins import count_off_module_links

        k1 = ks[0]
        res = build_grid_layout(ks)
        rep = count_off_module_links(RowPartition.natural(res.sb))

        per_block = {}
        inter = 0
        for w in res.layout.wires:
            (u, _su), (v, _sv) = w.net[0], w.net[1]
            bu, bv = u >> k1, v >> k1
            if bu != bv:
                inter += 1
                per_block[bu] = per_block.get(bu, 0) + 1
                per_block[bv] = per_block.get(bv, 0) + 1
        assert inter == rep.off_module_links
        assert per_block == rep.per_module

    def test_intra_block_wires_stay_inside_block_cells(self):
        """Geometric confinement: a wire between same-block nodes never
        leaves its grid cell's footprint."""
        ks = (2, 2, 2)
        res = build_grid_layout(ks)
        d = res.dims
        k1, k2 = ks[0], ks[1]
        gc = d.grid_cols
        for w in res.layout.wires:
            (u, _su), (v, _sv) = w.net[0], w.net[1]
            if u >> k1 != v >> k1:
                continue
            bid = u >> k1
            ox = (bid & (gc - 1)) * d.cell_w
            oy = (bid >> k2) * d.cell_h
            for s in w.segments:
                assert ox <= s.x1 and s.x2 <= ox + d.cell_w
                assert oy <= s.y1 and s.y2 <= oy + d.cell_h
