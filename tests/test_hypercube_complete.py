"""Tests for hypercubes, generalized hypercubes, and complete (multi)graphs."""

import pytest

from repro.topology.complete import complete_graph, complete_multigraph, num_links
from repro.topology.hypercube import generalized_hypercube_graph, hypercube_graph


class TestHypercube:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 5])
    def test_counts(self, k):
        g = hypercube_graph(k)
        assert g.num_nodes == 2**k
        assert g.num_edges == k * 2 ** (k - 1) if k else g.num_edges == 0

    def test_regular_degree(self):
        g = hypercube_graph(4)
        assert set(g.degree_histogram()) == {4}

    def test_neighbors_differ_one_bit(self):
        g = hypercube_graph(3)
        for u in range(8):
            for v in g.neighbors(u):
                assert bin(u ^ v).count("1") == 1

    def test_negative_dimension(self):
        with pytest.raises(ValueError):
            hypercube_graph(-1)


class TestGeneralizedHypercube:
    def test_2d_radix4(self):
        # the Section 3.2 supernode graph: same row/col complete
        g = generalized_hypercube_graph([4, 4])
        assert g.num_nodes == 16
        # each node: 3 row + 3 col neighbors
        assert set(g.degree_histogram()) == {6}
        assert g.has_edge((0, 0), (0, 3))
        assert g.has_edge((0, 0), (3, 0))
        assert not g.has_edge((0, 0), (1, 1))

    def test_ghc_equals_hypercube_for_radix2(self):
        g = generalized_hypercube_graph([2, 2, 2])
        h = hypercube_graph(3)
        mapping = {
            node: node[0] * 4 + node[1] * 2 + node[2] for node in g.nodes()
        }
        assert g.is_isomorphic_by(h, mapping)

    def test_rejects_radix_below_two(self):
        with pytest.raises(ValueError):
            generalized_hypercube_graph([2, 1])
        with pytest.raises(ValueError):
            generalized_hypercube_graph([])


class TestComplete:
    @pytest.mark.parametrize("n", [1, 2, 5, 9])
    def test_counts(self, n):
        g = complete_graph(n)
        assert g.num_nodes == n
        assert g.num_edges == n * (n - 1) // 2
        assert g.num_edges == num_links(n)

    def test_multigraph(self):
        g = complete_multigraph(8, 4)
        assert g.num_edges == 4 * 28
        assert g.multiplicity(2, 7) == 4
        assert num_links(8, 4) == 112

    def test_degree(self):
        g = complete_multigraph(5, 3)
        assert set(g.degree_histogram()) == {12}

    def test_validation(self):
        with pytest.raises(ValueError):
            complete_graph(0)
        with pytest.raises(ValueError):
            complete_multigraph(3, 0)
