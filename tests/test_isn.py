"""Tests for indirect swap networks."""

import pytest
from hypothesis import given

from repro.topology.isn import ExchangeStep, ISN, SwapStep, isn_graph
from repro.topology.swap import SwapNetworkParams

from tests.conftest import param_vector_strategy


class TestSchedule:
    def test_fig1_schedule(self):
        # Figure 1: 4x4 ISN with k = (1, 1): 4 stages
        isn = ISN.from_ks((1, 1))
        kinds = [s.kind for s in isn.schedule]
        assert kinds == ["exchange", "swap", "exchange"]
        assert isn.stages == 4
        assert isn.rows == 4

    def test_schedule_structure(self):
        isn = ISN.from_ks((3, 2, 2))
        kinds = [s.kind for s in isn.schedule]
        assert kinds == (
            ["exchange"] * 3 + ["swap"] + ["exchange"] * 2 + ["swap"] + ["exchange"] * 2
        )
        bits = [s.bit for s in isn.schedule if isinstance(s, ExchangeStep)]
        assert bits == [0, 1, 2, 0, 1, 0, 1]

    def test_counts(self):
        isn = ISN.from_ks((2, 2, 2))
        assert isn.num_steps == 6 + 2
        assert isn.stages == 9
        assert isn.num_nodes == 9 * 64
        # exchange steps: 2R links each; swap steps: R links each
        assert isn.num_edges == 6 * 2 * 64 + 2 * 64

    def test_swap_step_indices(self):
        isn = ISN.from_ks((2, 2, 2))
        assert isn.swap_step_indices() == [2, 5]

    def test_swap_links_per_row(self):
        assert ISN.from_ks((2, 2, 2)).swap_links_per_row() == 4
        assert ISN.from_ks((2, 2)).swap_links_per_row() == 2


class TestLinks:
    def test_exchange_step_links(self):
        isn = ISN.from_ks((2, 2))
        links = list(isn.step_links(0))  # exchange on bit 0
        assert len(links) == 2 * 16
        assert (((0, 0), (0, 1), "straight")) in links
        assert (((0, 0), (1, 1), "cross")) in links

    def test_swap_step_links(self):
        isn = ISN.from_ks((2, 2))
        j = isn.swap_step_indices()[0]
        links = list(isn.step_links(j))
        assert len(links) == 16  # one per row
        # row pair {u, sigma(u)} carries two links (one leaving each side)
        by_pair = {}
        for (u, _), (v, _), kind in links:
            assert kind == "swap"
            key = (min(u, v), max(u, v))
            by_pair[key] = by_pair.get(key, 0) + 1
        for (u, v), c in by_pair.items():
            assert c == (2 if u != v else 1)

    def test_step_index_validation(self):
        isn = ISN.from_ks((1, 1))
        with pytest.raises(ValueError):
            list(isn.step_links(isn.num_steps))

    def test_graph_counts(self):
        g = isn_graph((1, 1))
        assert g.num_nodes == 16
        assert g.num_edges == 2 * 2 * 4 + 4  # 2 exchange steps + 1 swap step
        assert g.is_connected()


class TestStructuralRemark:
    def test_link_kind_profile(self):
        """Paper, Section 2.1: with k1 >= 3 the majority of nodes have two
        straight and two cross links; the rest (outside first/last stage)
        have one straight, one cross and one swap link."""
        isn = ISN.from_ks((3, 3))
        kinds = isn.node_link_kinds()
        interior = {
            node: k
            for node, k in kinds.items()
            if node[1] not in (0, isn.stages - 1)
        }
        profiles = set(interior.values())
        assert profiles <= {
            ("cross", "cross", "straight", "straight"),
            ("cross", "straight", "swap"),
            ("cross", "straight", "swap", "swap"),  # fixed-point swap rows
        }
        majority = sum(
            1
            for k in interior.values()
            if k == ("cross", "cross", "straight", "straight")
        )
        assert majority > len(interior) / 2


@given(param_vector_strategy(max_l=4, max_k1=3, max_n=8))
def test_isn_invariants(ks):
    isn = ISN.from_ks(ks)
    p = SwapNetworkParams(ks)
    assert isn.num_steps == p.n + p.l - 1
    # every node in stages [0, m) has out-degree 2 (exchange) or 1 (swap)
    for j, step in enumerate(isn.schedule):
        links = list(isn.step_links(j))
        expected = 2 * isn.rows if step.kind == "exchange" else isn.rows
        assert len(links) == expected
        for (u, ju), (v, jv), _k in links:
            assert ju == j and jv == j + 1
