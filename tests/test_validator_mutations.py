"""Failure-injection tests: the validator must catch every mutation class.

A validator that silently passes broken layouts would make the whole
reproduction vacuous, so we take known-good layouts and apply targeted
corruptions, asserting each is flagged.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.layout.collinear import collinear_layout
from repro.layout.geometry import Segment, Wire
from repro.layout.grid_scheme import build_grid_layout
from repro.layout.validate import validate_layout, validate_layout_legacy


def fresh_collinear():
    cl = collinear_layout(6)
    return cl.layout, cl.graph


def fresh_grid():
    res = build_grid_layout((1, 1, 1))
    return res.layout, res.graph


FACTORIES = [fresh_collinear, fresh_grid]


def mutate_layer_parity(layout, i):
    """Flip one segment onto the wrong-orientation layer."""
    w = layout.wires[i % len(layout.wires)]
    s = w.segments[0]
    bad_layer = 2 if s.layer % 2 == 1 else 1
    w.segments[0] = Segment(s.x1, s.y1, s.x2, s.y2, bad_layer)


def mutate_detach_terminal(layout, i):
    """Translate an entire wire so neither endpoint touches its node."""
    w = layout.wires[i % len(layout.wires)]
    w.segments = [
        Segment(s.x1 + 1000, s.y1 + 1000, s.x2 + 1000, s.y2 + 1000, s.layer)
        for s in w.segments
    ]


def mutate_duplicate_wire(layout, i):
    """Copy a wire verbatim: overlaps, shared terminals, extra edge."""
    w = layout.wires[i % len(layout.wires)]
    layout.wires.append(Wire(net=w.net, segments=list(w.segments)))


def mutate_drop_wire(layout, i):
    del layout.wires[i % len(layout.wires)]


def mutate_break_contiguity(layout, i):
    """Remove a middle segment of a multi-segment wire."""
    for j in range(len(layout.wires)):
        w = layout.wires[(i + j) % len(layout.wires)]
        if len(w.segments) >= 3:
            del w.segments[1]
            return
    pytest.skip("no multi-segment wire")


def mutate_via_passthrough(layout, i):
    """Run a foreign wire straight through another wire's via point."""
    for j in range(len(layout.wires)):
        w = layout.wires[(i + j) % len(layout.wires)]
        vias = w.vias()
        if vias:
            x, y = vias[0]
            layout.wires.append(
                Wire(net=("mut", "via"), segments=[Segment(x - 1, y, x + 1, y, 2)])
            )
            return
    pytest.skip("no via in layout")


def mutate_layer_overflow(layout, i):
    """Push a segment above the model's layer budget."""
    w = layout.wires[i % len(layout.wires)]
    s = w.segments[0]
    bad = s.layer + 2 * (layout.model.num_layers + 2)  # keep parity legal
    w.segments[0] = Segment(s.x1, s.y1, s.x2, s.y2, bad)


MUTATIONS = [
    mutate_layer_parity,
    mutate_detach_terminal,
    mutate_duplicate_wire,
    mutate_drop_wire,
    mutate_break_contiguity,
    mutate_via_passthrough,
    mutate_layer_overflow,
]


@pytest.mark.parametrize("factory", FACTORIES, ids=["collinear", "grid"])
@pytest.mark.parametrize("mutation", MUTATIONS, ids=lambda m: m.__name__)
def test_mutation_detected(factory, mutation):
    layout, graph = factory()
    assert validate_layout(layout, graph).ok
    mutation(layout, 3)
    rep = validate_layout(layout, graph)
    assert not rep.ok, f"{mutation.__name__} went undetected"


@settings(deadline=None, max_examples=25)
@given(
    st.integers(0, 10_000),
    st.integers(0, len(MUTATIONS) - 1),
)
def test_mutation_detected_property(idx, which):
    layout, graph = fresh_collinear()
    MUTATIONS[which](layout, idx)
    rep = validate_layout(layout, graph)
    assert not rep.ok


def test_two_mutations_counted(capsys=None):
    layout, graph = fresh_collinear()
    mutate_drop_wire(layout, 0)
    mutate_layer_parity(layout, 1)
    rep = validate_layout(layout, graph)
    assert rep.num_errors >= 2


@pytest.mark.parametrize("factory", FACTORIES, ids=["collinear", "grid"])
@pytest.mark.parametrize("mutation", MUTATIONS, ids=lambda m: m.__name__)
def test_mutation_verdict_parity(factory, mutation):
    """Vectorized and legacy validators reject every mutation identically."""
    layout, graph = factory()
    mutation(layout, 3)
    rep_v = validate_layout(layout, graph)
    rep_l = validate_layout_legacy(layout, graph)
    assert not rep_v.ok and not rep_l.ok
    assert rep_v.checks_run == rep_l.checks_run


@pytest.mark.parametrize("factory", FACTORIES, ids=["collinear", "grid"])
def test_via_conflict_message(factory):
    layout, graph = factory()
    mutate_via_passthrough(layout, 0)
    for rep in (validate_layout(layout, graph), validate_layout_legacy(layout, graph)):
        assert any("via" in e for e in rep.errors), rep.errors[:5]


@pytest.mark.parametrize("factory", FACTORIES, ids=["collinear", "grid"])
def test_layer_overflow_message(factory):
    layout, graph = factory()
    mutate_layer_overflow(layout, 0)
    for rep in (validate_layout(layout, graph), validate_layout_legacy(layout, graph)):
        assert any("layer" in e for e in rep.errors), rep.errors[:5]
