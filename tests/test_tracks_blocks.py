"""Tests for multilayer track grouping and block-level planning."""

import pytest

from repro.layout.blocks import BlockDims, block_dims, plan_block
from repro.layout.tracks import TrackGrouping, base_layer_pair
from repro.transform.swap_butterfly import SwapButterfly


class TestTrackGrouping:
    def test_thompson_single_group(self):
        g = TrackGrouping(L=2, horizontal=True, total_tracks=64)
        assert g.num_groups == 1
        assert g.physical_tracks == 64
        assert g.layer_pair(0).horizontal == 2

    def test_even_L_groups(self):
        g = TrackGrouping(L=4, horizontal=True, total_tracks=64)
        assert g.num_groups == 2
        assert g.physical_tracks == 32
        assert g.group_of(0) == 0 and g.group_of(32) == 1
        assert g.offset_of(33) == 1
        assert g.layer_pair(0).horizontal == 2
        assert g.layer_pair(32).horizontal == 4
        assert g.layer_pair(32).vertical == 3

    def test_odd_L_asymmetric(self):
        gh = TrackGrouping(L=5, horizontal=True, total_tracks=60)
        gv = TrackGrouping(L=5, horizontal=False, total_tracks=60)
        assert gh.num_groups == 3 and gv.num_groups == 2
        assert gh.physical_tracks == 20 and gv.physical_tracks == 30
        # odd L: horizontal runs on odd layers, verticals on even
        assert gh.layer_pair(0).horizontal == 1
        assert gh.layer_pair(59).horizontal == 5
        assert gh.layer_pair(59).vertical % 2 == 0
        assert gv.layer_pair(0).vertical == 2
        assert gv.layer_pair(59).vertical == 4

    def test_section52_channel_widths(self):
        """60 channel links -> 60/30/15 physical tracks at L = 2/4/8."""
        for L, expect in [(2, 60), (4, 30), (8, 15)]:
            g = TrackGrouping(L=L, horizontal=True, total_tracks=60)
            assert g.physical_tracks == expect

    def test_zero_tracks(self):
        g = TrackGrouping(L=4, horizontal=False, total_tracks=0)
        assert g.physical_tracks == 0

    def test_range_check(self):
        g = TrackGrouping(L=2, horizontal=True, total_tracks=4)
        with pytest.raises(ValueError):
            g.group_of(4)

    def test_base_layer_pair(self):
        assert base_layer_pair(2).vertical == 1
        assert base_layer_pair(4).horizontal == 2
        assert base_layer_pair(5).horizontal == 1
        assert base_layer_pair(5).vertical == 2


class TestBlockDims:
    def test_channel_widths(self):
        # k = (2,2,2): exchange channels = 4 tracks; composite = 4*4-2*1 = 14
        bd = block_dims((2, 2, 2))
        assert bd.n == 6
        assert bd.channel_widths == (4, 4, 14, 4, 14, 4)
        assert bd.feed_count == 4 * (4 - 1)

    def test_uniformity_constants(self):
        bd = block_dims((3, 2, 2))
        # composite level 2: 2*2^(3-2) intra + 4*(8-2) risers = 28
        assert bd.channel_widths[3] == 28
        assert bd.feed_count == 4 * (8 - 2)

    def test_requires_three_levels(self):
        with pytest.raises(ValueError):
            block_dims((2, 2))

    def test_min_node_side(self):
        with pytest.raises(ValueError):
            block_dims((2, 2, 2), W=3)

    def test_row_geometry(self):
        bd = block_dims((2, 2, 2), W=5)
        assert bd.row_pitch == 6
        assert bd.row_y(0) == bd.rows_base
        assert bd.row_y(3) == bd.rows_base + 18
        assert bd.height == bd.rows_base + 4 * 6


class TestBlockPlan:
    def test_node_placement(self):
        sb = SwapButterfly.from_ks((2, 2, 2))
        bd = block_dims((2, 2, 2))
        plan = plan_block(sb, bid=5, dims=bd)
        nodes = dict(plan.nodes)
        assert len(nodes) == 4 * 7  # 2^k1 rows x n+1 stages
        # rows are the block's global rows
        rows = {u for (u, s) in nodes}
        assert rows == {20, 21, 22, 23}

    def test_stub_balance(self):
        """Every block has equal outgoing and incoming inter-block stubs,
        matching the uniform-count argument."""
        sb = SwapButterfly.from_ks((2, 2, 2))
        bd = block_dims((2, 2, 2))
        for bid in range(16):
            plan = plan_block(sb, bid, bd)
            outs = [s for s in plan.out_stubs.values()]
            ins = [s for s in plan.in_stubs.values()]
            assert len(outs) == len(ins)
            # level-2: 2*(2^k1 - 2^(k1-k2)) outgoing
            assert sum(1 for s in outs if s.level == 2) == 2 * (4 - 1)
            assert sum(1 for s in outs if s.level == 3) == 2 * (4 - 1)

    def test_ports_ordered_by_destination(self):
        """Top-edge ports must increase in x with destination grid column —
        the condition for non-overlapping chained collinear tracks."""
        sb = SwapButterfly.from_ks((3, 2, 2))
        bd = block_dims((3, 2, 2))
        for bid in (0, 3, 7, 12):
            plan = plan_block(sb, bid, bd)
            col = lambda b: b & 3
            ports = []
            for stub in list(plan.out_stubs.values()) + list(plan.in_stubs.values()):
                if stub.level != 2:
                    continue
                port = stub.points[-1] if stub.points[-1][1] == bd.height else stub.points[0]
                ports.append((port[0], col(stub.other_block)))
            ports.sort()
            cols = [c for _x, c in ports]
            assert cols == sorted(cols)

    def test_intra_paths_cover_straights_and_crosses(self):
        sb = SwapButterfly.from_ks((2, 2, 2))
        bd = block_dims((2, 2, 2))
        plan = plan_block(sb, 0, bd)
        kinds = [net[2] for net, _ in plan.intra_paths]
        # 4 exchange boundaries x 4 rows of straights
        assert kinds.count("straight") == 4 * 4
        assert kinds.count("cross") == 4 * 4
        # block 0: rows 0..3; sigma2 fixed-block rows: u[0:2] == col(0) = 0
        # -> one row (u=0 low bits 00 ... within low k1 bits)
        assert kinds.count("ss") + kinds.count("sc") == len(plan.intra_paths) - 32
