"""Tests for the layout container, model rules, and the validator.

The validator tests are adversarial: each one constructs a layout with a
specific rule violation and checks that exactly that violation is caught
(and that the same layout without the defect passes).
"""

import pytest

from repro.layout.geometry import LayerPair, Rect, Segment, Wire
from repro.layout.model import Layout, LayoutModel, multilayer_model, thompson_model
from repro.layout.validate import validate_layout
from repro.topology.graph import Graph


def two_node_layout(wire_points=None, model=None):
    """Nodes 'a' at (0,0) and 'b' at (10,0), 2x2 squares, one wire."""
    lay = Layout(model=model or thompson_model(), name="test")
    lay.add_node("a", Rect(0, 0, 2, 2))
    lay.add_node("b", Rect(10, 0, 2, 2))
    pts = wire_points or [(2, 1), (5, 1), (5, 3), (7, 3), (7, 1), (10, 1)]
    # default path bends twice; terminals sit on node boundaries
    lay.add_wire(Wire.from_path(("a", "b"), pts))
    return lay


def graph_ab():
    g = Graph()
    g.add_edge("a", "b")
    return g


class TestModels:
    def test_thompson(self):
        m = thompson_model()
        assert m.num_layers == 2
        assert m.v_layers == (1,) and m.h_layers == (2,)

    def test_multilayer_even(self):
        m = multilayer_model(6)
        assert m.v_layers == (1, 3, 5)
        assert m.h_layers == (2, 4, 6)

    def test_multilayer_odd(self):
        m = multilayer_model(5)
        assert m.h_layers == (1, 3, 5)
        assert m.v_layers == (2, 4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            multilayer_model(1)
        with pytest.raises(ValueError):
            LayoutModel(name="x", num_layers=2, v_layers=(1,), h_layers=(1,))
        with pytest.raises(ValueError):
            LayoutModel(name="x", num_layers=2, v_layers=(3,), h_layers=(2,))


class TestLayoutMetrics:
    def test_bounding_box_and_area(self):
        lay = two_node_layout()
        x0, y0, x1, y1 = lay.bounding_box()
        assert (x0, y0) == (0, 0)
        assert x1 == 12 and y1 >= 3
        assert lay.area == lay.width * lay.height
        assert lay.volume == 2 * lay.area

    def test_wire_metrics(self):
        lay = two_node_layout()
        assert lay.max_wire_length() == lay.total_wire_length() == 3 + 2 + 2 + 2 + 3
        assert lay.num_vias() == 4
        assert lay.segment_count() == 5
        assert lay.layers_used() == [1, 2]

    def test_duplicate_node_rejected(self):
        lay = two_node_layout()
        with pytest.raises(ValueError):
            lay.add_node("a", Rect(50, 50, 1, 1))

    def test_empty_layout(self):
        lay = Layout(model=thompson_model())
        with pytest.raises(ValueError):
            lay.bounding_box()

    def test_summary_keys(self):
        s = two_node_layout().summary()
        for key in ("nodes", "wires", "area", "max_wire_length", "vias"):
            assert key in s


class TestValidatorPasses:
    def test_clean_layout_passes(self):
        rep = validate_layout(two_node_layout(), graph_ab())
        assert rep.ok, rep.errors

    def test_raise_if_failed_noop_on_ok(self):
        validate_layout(two_node_layout(), graph_ab()).raise_if_failed()


class TestValidatorCatches:
    def test_layer_discipline(self):
        lay = Layout(model=thompson_model())
        lay.add_node("a", Rect(0, 0, 2, 2))
        lay.add_node("b", Rect(10, 0, 2, 2))
        # horizontal segment on the vertical layer
        lay.add_wire(
            Wire(net=("a", "b"), segments=[Segment(2, 1, 10, 1, layer=1)])
        )
        rep = validate_layout(lay)
        assert not rep.ok
        assert any("not permitted" in e for e in rep.errors)

    def test_layer_out_of_range(self):
        lay = Layout(model=thompson_model())
        lay.add_node("a", Rect(0, 0, 2, 2))
        lay.add_node("b", Rect(10, 0, 2, 2))
        lay.add_wire(
            Wire(net=("a", "b"), segments=[Segment(2, 1, 10, 1, layer=4)])
        )
        rep = validate_layout(lay)
        assert any("> L=2" in e for e in rep.errors)

    def test_track_overlap(self):
        lay = two_node_layout()
        lay.add_node("c", Rect(0, 10, 2, 2))
        lay.add_node("d", Rect(10, 10, 2, 2))
        # overlaps the first wire's horizontal run at y=1 on layer 2
        lay.add_wire(
            Wire(net=("c", "d"), segments=[Segment(1, 1, 9, 1, layer=2)])
        )
        rep = validate_layout(lay)
        assert not rep.ok
        assert any("overlap" in e for e in rep.errors)

    def test_touching_endpoints_allowed(self):
        lay = Layout(model=thompson_model())
        lay.add_node("a", Rect(0, 0, 2, 2))
        lay.add_node("b", Rect(4, 0, 2, 2))
        lay.add_node("c", Rect(8, 0, 2, 2))
        lay.add_wire(Wire(net=("a", "b"), segments=[Segment(2, 1, 4, 1, 2)]))
        lay.add_wire(Wire(net=("b", "c"), segments=[Segment(6, 1, 8, 1, 2)]))
        g = Graph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        rep = validate_layout(lay, g)
        assert rep.ok, rep.errors

    def test_via_conflict_passthrough(self):
        lay = Layout(model=thompson_model())
        lay.add_node("a", Rect(0, 0, 2, 2))
        lay.add_node("b", Rect(10, 0, 2, 2))
        lay.add_node("c", Rect(4, 10, 2, 2))
        # wire 1 bends (via) at (5,5); wire 2 runs vertically straight
        # through (5,5) — even split into collinear pieces, the merged run
        # must be caught grazing the via
        lay.add_wire(
            Wire.from_path(("a", "b"), [(2, 1), (5, 1), (5, 5), (8, 5), (8, 1), (10, 1)])
        )
        lay.add_wire(
            Wire.from_path(("c", "b"), [(5, 10), (5, 6), (5, 2), (7, 2), (7, 0), (10, 0)])
        )
        rep = validate_layout(lay)
        assert not rep.ok
        assert any("passes through via" in e for e in rep.errors)

    def test_shared_bend_point(self):
        lay = Layout(model=thompson_model())
        lay.add_node("a", Rect(0, 0, 2, 2))
        lay.add_node("b", Rect(10, 0, 2, 2))
        lay.add_node("c", Rect(0, 6, 2, 2))
        lay.add_node("d", Rect(10, 6, 2, 2))
        # both wires bend at (6,4): colliding via columns
        lay.add_wire(Wire.from_path(("a", "b"), [(2, 1), (6, 1), (6, 4), (8, 4), (8, 1), (10, 1)]))
        lay.add_wire(Wire.from_path(("c", "d"), [(2, 7), (4, 7), (4, 4), (6, 4), (6, 5), (10, 5), (10, 6)]))
        rep = validate_layout(lay)
        assert not rep.ok
        assert any("collide" in e for e in rep.errors)

    def test_wire_through_node_interior(self):
        lay = Layout(model=thompson_model())
        lay.add_node("a", Rect(0, 0, 2, 2))
        lay.add_node("b", Rect(10, 0, 2, 2))
        lay.add_node("mid", Rect(5, 0, 2, 2))
        lay.add_wire(
            Wire(net=("a", "b"), segments=[Segment(2, 1, 10, 1, layer=2)])
        )
        rep = validate_layout(lay)
        assert not rep.ok
        assert any("node interior" in e for e in rep.errors)

    def test_wire_along_node_edge_allowed(self):
        lay = Layout(model=thompson_model())
        lay.add_node("a", Rect(0, 0, 2, 2))
        lay.add_node("b", Rect(10, 0, 2, 2))
        lay.add_node("mid", Rect(5, 0, 2, 2))
        # runs along mid's top edge y=2: boundary, not interior
        lay.add_wire(Wire(net=("a", "b"), segments=[Segment(2, 2, 10, 2, layer=2)]))
        rep = validate_layout(lay)
        assert rep.ok, rep.errors

    def test_overlapping_nodes(self):
        lay = two_node_layout()
        lay.add_node("c", Rect(1, 1, 3, 3))
        rep = validate_layout(lay)
        assert any("overlap" in e for e in rep.errors)

    def test_terminal_not_on_node(self):
        lay = Layout(model=thompson_model())
        lay.add_node("a", Rect(0, 0, 2, 2))
        lay.add_node("b", Rect(10, 0, 2, 2))
        lay.add_wire(Wire(net=("a", "b"), segments=[Segment(3, 1, 10, 1, layer=2)]))
        rep = validate_layout(lay)
        assert any("not on boundary" in e for e in rep.errors)

    def test_missing_and_extra_wires_vs_graph(self):
        lay = two_node_layout()
        g = graph_ab()
        g.add_edge("a", "c")
        rep = validate_layout(lay, g)
        assert not rep.ok
        assert any("has no wire" in e for e in rep.errors)
        assert any("not placed" in e for e in rep.errors)

    def test_multiplicity_mismatch(self):
        lay = two_node_layout()
        g = Graph()
        g.add_edge("a", "b", 2)
        rep = validate_layout(lay, g)
        assert not rep.ok

    def test_discontiguous_wire(self):
        lay = Layout(model=thompson_model())
        lay.add_node("a", Rect(0, 0, 2, 2))
        lay.add_node("b", Rect(10, 0, 2, 2))
        lay.add_wire(
            Wire(
                net=("a", "b"),
                segments=[Segment(2, 1, 4, 1, 2), Segment(6, 1, 10, 1, 2)],
            )
        )
        rep = validate_layout(lay)
        assert not rep.ok

    def test_raise_if_failed(self):
        lay = two_node_layout()
        lay.add_node("c", Rect(1, 1, 3, 3))
        with pytest.raises(AssertionError):
            validate_layout(lay).raise_if_failed()

    def test_shared_terminal_point(self):
        lay = Layout(model=thompson_model())
        lay.add_node("a", Rect(0, 0, 2, 2))
        lay.add_node("b", Rect(10, 0, 2, 2))
        lay.add_node("c", Rect(0, 6, 2, 2))
        lay.add_wire(Wire(net=("a", "b"), segments=[Segment(2, 1, 10, 1, 2)]))
        lay.add_wire(
            Wire.from_path(("c", "b"), [(2, 7), (10, 7), (10, 1)])
        )
        # wire 2 terminal at (10,1) == wire 1 terminal
        rep = validate_layout(lay)
        assert not rep.ok
