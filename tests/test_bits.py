"""Unit and property tests for the bit-address algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.bits import (
    bit,
    bit_reverse,
    flip_bit,
    from_bit_string,
    get_bits,
    group_offsets,
    ilog2,
    is_power_of_two,
    level_swap,
    popcount,
    set_bits,
    swap_bit_groups,
    to_bit_string,
)


class TestBitBasics:
    def test_bit(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0
        assert bit(0b1010, 3) == 1

    def test_bit_negative_index(self):
        with pytest.raises(ValueError):
            bit(3, -1)

    def test_flip_bit(self):
        assert flip_bit(0b1010, 0) == 0b1011
        assert flip_bit(0b1010, 1) == 0b1000

    def test_get_bits(self):
        assert get_bits(0b110101, 2, 3) == 0b101
        assert get_bits(0b110101, 0, 6) == 0b110101
        assert get_bits(0b110101, 0, 0) == 0

    def test_set_bits(self):
        assert set_bits(0b110101, 2, 3, 0b010) == 0b101001
        with pytest.raises(ValueError):
            set_bits(0, 0, 2, 4)

    def test_swap_bit_groups_example(self):
        # swap bits [3,6) with [0,3) of 0b101110 -> 0b110101
        assert swap_bit_groups(0b101110, 3, 0, 3) == 0b110101

    def test_swap_bit_groups_overlap_rejected(self):
        with pytest.raises(ValueError):
            swap_bit_groups(0b1111, 1, 0, 2)

    def test_swap_bit_groups_same_position_identity(self):
        assert swap_bit_groups(0b1011, 2, 2, 2) == 0b1011


class TestGroupOffsets:
    def test_offsets(self):
        assert group_offsets([3, 2, 1]) == [0, 3, 5, 6]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            group_offsets([2, 0])


class TestLevelSwap:
    def test_level_one_identity(self):
        assert level_swap(0b101101, [3, 3], 1) == 0b101101

    def test_level_two_swaps_groups(self):
        # ks = (2, 2): swap bits [2,4) with [0,2)
        assert level_swap(0b1101, [2, 2], 2) == 0b0111

    def test_out_of_range_level(self):
        with pytest.raises(ValueError):
            level_swap(0, [2, 2], 3)


class TestPowersAndLogs:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(6)

    def test_ilog2(self):
        assert ilog2(1) == 0
        assert ilog2(1024) == 10
        with pytest.raises(ValueError):
            ilog2(3)

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b10110) == 3


class TestBitStrings:
    def test_roundtrip(self):
        assert from_bit_string(to_bit_string(0b1011, 6)) == 0b1011

    def test_to_bit_string_width(self):
        assert to_bit_string(5, 4) == "0101"
        with pytest.raises(ValueError):
            to_bit_string(16, 4)

    def test_from_bit_string_rejects_junk(self):
        with pytest.raises(ValueError):
            from_bit_string("01x")
        with pytest.raises(ValueError):
            from_bit_string("")

    def test_bit_reverse(self):
        assert bit_reverse(0b0011, 4) == 0b1100
        assert bit_reverse(0b1, 3) == 0b100


@given(st.integers(min_value=0, max_value=2**20 - 1), st.integers(0, 15), st.integers(0, 6))
def test_get_set_roundtrip(x, lo, width):
    v = get_bits(x, lo, width)
    assert set_bits(x, lo, width, v) == x


@given(
    st.integers(min_value=0, max_value=2**24 - 1),
    st.integers(0, 8),
    st.integers(12, 20),
    st.integers(0, 4),
)
def test_swap_groups_involution(x, lo1, lo2, width):
    y = swap_bit_groups(x, lo1, lo2, width)
    assert swap_bit_groups(y, lo1, lo2, width) == x


@given(st.integers(min_value=0, max_value=2**16 - 1), st.integers(1, 16))
def test_bit_reverse_involution(x, width):
    x &= (1 << width) - 1
    assert bit_reverse(bit_reverse(x, width), width) == x


@given(st.lists(st.integers(1, 4), min_size=2, max_size=4))
def test_level_swap_involution(ks):
    # enforce k_i <= n_{i-1}
    total = ks[0]
    valid = [ks[0]]
    for k in ks[1:]:
        valid.append(min(k, total))
        total += valid[-1]
    for level in range(2, len(valid) + 1):
        for x in range(0, 1 << sum(valid), 7):
            y = level_swap(x, valid, level)
            assert level_swap(y, valid, level) == x
