"""Tests for the formula, bound and comparison modules."""

import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.bounds import (
    collinear_track_lower_bound,
    injection_rate,
    pin_lower_bound,
)
from repro.analysis.comparison import (
    format_table,
    leading_constant_area,
    leading_constant_volume,
    leading_constant_wire,
)
from repro.analysis.formulas import (
    avior_area,
    dinitz_area,
    log2N,
    max_node_side_multilayer,
    max_node_side_thompson,
    multilayer_area,
    multilayer_max_wire,
    multilayer_volume,
    muthukrishnan_area,
    num_nodes,
    offmodule_avg_per_node,
    offmodule_avg_upper_bounds,
    thompson_area,
    thompson_max_wire,
    yeh_previous_max_wire,
)


class TestFormulas:
    def test_num_nodes(self):
        assert num_nodes(9) == 5120
        assert num_nodes(3) == 32
        with pytest.raises(ValueError):
            num_nodes(0)

    def test_log2N(self):
        assert log2N(9) == pytest.approx(math.log2(5120))

    def test_thompson(self):
        N = 5120
        assert thompson_area(9) == pytest.approx(N * N / math.log2(N) ** 2)
        assert thompson_max_wire(9) == pytest.approx(N / math.log2(N))

    def test_multilayer_even_odd(self):
        assert multilayer_area(9, 2) == pytest.approx(thompson_area(9))
        assert multilayer_area(9, 4) == pytest.approx(thompson_area(9) / 4)
        # odd L: denominator L^2 - 1
        assert multilayer_area(9, 3) == pytest.approx(4 * thompson_area(9) / 8)
        assert multilayer_area(9, 5) == pytest.approx(4 * thompson_area(9) / 24)

    def test_multilayer_wire_and_volume(self):
        assert multilayer_max_wire(9, 4) == pytest.approx(thompson_max_wire(9) / 2)
        assert multilayer_volume(9, 4) == pytest.approx(4 * multilayer_area(9, 4))
        with pytest.raises(ValueError):
            multilayer_area(9, 1)
        with pytest.raises(ValueError):
            multilayer_max_wire(9, 0)
        with pytest.raises(ValueError):
            multilayer_volume(9, 1)

    def test_multilayer_volume_both_parities(self):
        """Section 4.2 display ``4N^2/(L log2^2 N)`` for even *and* odd L."""
        N = num_nodes(9)
        for L in (2, 3, 4, 5):
            assert multilayer_volume(9, L) == pytest.approx(
                4 * N * N / (L * math.log2(N) ** 2)
            )
        # even L: volume really is area * L
        assert multilayer_volume(9, 4) == pytest.approx(multilayer_area(9, 4) * 4)

    def test_multilayer_volume_odd_L_regression(self):
        """``area * L`` is the old, biased value for odd L: it overstates
        the display by ``L^2/(L^2-1)`` (e.g. 9/8 at L=3)."""
        biased = multilayer_area(9, 3) * 3  # == 4N^2 * 3 / (8 log2^2 N)
        assert biased == pytest.approx(multilayer_volume(9, 3) * 9 / 8)
        assert multilayer_volume(9, 3) < biased

    def test_prior_work_ordering(self):
        """Dinitz (slanted) < Muthukrishnan (knock-knee) < Avior = ours (L=2)."""
        n = 12
        assert dinitz_area(n) < muthukrishnan_area(n) < avior_area(n)
        assert avior_area(n) == pytest.approx(thompson_area(n))

    def test_wire_improvement_factor_two(self):
        assert yeh_previous_max_wire(10) == pytest.approx(2 * thompson_max_wire(10))

    def test_offmodule_display(self):
        assert offmodule_avg_per_node(3, 3) == Fraction(4 * 2 * 7, 10 * 8)
        lo, hi = offmodule_avg_upper_bounds(3, 3)
        assert offmodule_avg_per_node(3, 3) < lo < hi == Fraction(4, 3)
        with pytest.raises(ValueError):
            offmodule_avg_per_node(1, 3)

    def test_offmodule_bounds_validation_regression(self):
        """The bounds chain used to skip the ``l >= 2, k1 >= 1`` check its
        sibling :func:`offmodule_avg_per_node` enforces: ``l = 1``
        returned the vacuous pair ``(0, 4/k1)`` and ``k1 = 0`` built the
        undefined fraction ``4/0``.  Both must now raise, exactly like
        the display function."""
        for l, k1 in ((1, 3), (0, 3), (3, 0), (1, 0)):
            with pytest.raises(ValueError):
                offmodule_avg_upper_bounds(l, k1)
            with pytest.raises(ValueError):
                offmodule_avg_per_node(l, k1)
        # boundary of validity still works and keeps the chain ordered
        lo, hi = offmodule_avg_upper_bounds(2, 1)
        assert offmodule_avg_per_node(2, 1) < lo < hi

    def test_node_side_thresholds(self):
        assert max_node_side_multilayer(9, 2) == pytest.approx(
            max_node_side_thompson(9) / 2
        )


class TestBounds:
    def test_collinear_lb(self):
        assert collinear_track_lower_bound(9) == 20
        assert collinear_track_lower_bound(8) == 16

    def test_injection_rate(self):
        assert injection_rate(512) == pytest.approx(1 / 9)
        with pytest.raises(ValueError):
            injection_rate(100)

    def test_pin_lower_bound(self):
        # 80-node module of B_9 (N = 5120): (80/9) * (1 - 80/5120) = 8.75
        assert pin_lower_bound(80, 512) == pytest.approx(8.75)
        with pytest.raises(ValueError):
            pin_lower_bound(0, 512)
        with pytest.raises(ValueError):
            pin_lower_bound(80, 100)  # R must be a power of two
        with pytest.raises(ValueError):
            pin_lower_bound(6000, 512)  # more nodes than the network has

    def test_pin_lower_bound_bias_regression(self):
        """The old value ``M / log2 R`` dropped the off-module fraction
        ``1 - M/N`` — biased high, badly so as M -> N."""
        biased = 80 / 9
        assert pin_lower_bound(80, 512) == pytest.approx(biased * (1 - 80 / 5120))
        assert pin_lower_bound(80, 512) < biased
        # a module holding the whole network needs no pins at all;
        # the biased formula claimed N / log R
        assert pin_lower_bound(5120, 512) == 0.0

    def test_theorem21_within_constant_of_lb(self):
        """The paper's partitions sit within a small constant of the pin
        lower bound."""
        from repro.packaging.pins import row_partition_offmodule_per_module

        for k in (3, 4, 5):
            ks = (k, k, k)
            n = 3 * k
            pins = row_partition_offmodule_per_module(ks)
            lb = pin_lower_bound((n + 1) * 2**k, 2**n)
            assert 1 <= pins / lb <= 8


class TestComparison:
    def test_leading_constants_invert_formulas(self):
        n, L = 9, 4
        assert leading_constant_area(multilayer_area(n, L), n, L) == pytest.approx(1)
        assert leading_constant_wire(multilayer_max_wire(n, L), n, L) == pytest.approx(1)
        assert leading_constant_volume(multilayer_volume(n, L), n, L) == pytest.approx(1)

    def test_leading_constant_odd_L(self):
        assert leading_constant_area(multilayer_area(9, 5), 9, 5) == pytest.approx(1)

    def test_format_table(self):
        rows = [
            {"n": 6, "area": 82820, "ratio": 4.93281},
            {"n": 9, "area": 2076228, "ratio": 1.2e-5},
        ]
        out = format_table(rows)
        assert "n" in out.splitlines()[0]
        assert "4.933" in out
        assert "1.200e-05" in out
        assert format_table([]) == "(empty)"

    def test_format_table_column_subset(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_format_table_nonfinite_regression(self):
        """Non-finite floats used to fall through the magnitude branches
        (``abs(nan) >= 1e6`` is False for every comparison) and render as
        platform-spelled ``nan``/``inf``; they must come out as the
        explicit ``NaN`` / ``+Inf`` / ``-Inf`` tokens."""
        out = format_table(
            [{"a": float("nan"), "b": float("inf"), "c": float("-inf")}]
        )
        body = out.splitlines()[2]
        assert "NaN" in body and "+Inf" in body and "-Inf" in body
        assert "nan" not in body and "inf" not in body.replace("Inf", "")

    def test_format_table_mixed_types_and_alignment(self):
        rows = [
            {"name": "grid", "area": 82820, "ratio": 0.0, "ok": True},
            {"name": "collinear-long", "area": 9, "ratio": float("nan"), "ok": False},
        ]
        out = format_table(rows)
        lines = out.splitlines()
        # numeric cells right-justified: the short int lines up with the
        # last digit of the long one; strings and bools stay left.
        assert lines[2].startswith("grid ")
        assert lines[3].startswith("collinear-long")
        a2 = lines[2].index("82820") + len("82820")
        a3 = lines[3].rindex("9", 0, a2 + 1) + 1
        assert a2 == a3, "int cells must share their right edge"
        assert "0" in lines[2] and "NaN" in lines[3]
        assert "True" in lines[2] and "False" in lines[3]


class TestWireStats:
    def test_stats_and_histogram(self):
        from repro.analysis.wirestats import length_histogram, wire_stats
        from repro.layout.collinear import collinear_layout

        cl = collinear_layout(9)
        s = wire_stats(cl.layout)
        assert s.count == 36
        assert s.max == cl.layout.max_wire_length()
        assert s.total == cl.layout.total_wire_length()
        assert s.mean <= s.max and s.median <= s.p90 <= s.p99 <= s.max
        hist = length_histogram(cl.layout, [20, 50, 100])
        assert sum(c for _b, c in hist) == 36

    def test_histogram_zero_length_regression(self):
        """Every bin used to be left-open — with ``lo = 0.0`` the first
        bin was ``(0, b0]``, silently dropping zero-length wires, so bin
        counts did not sum to the wire count.  The first bin is now
        closed at 0 (labelled ``[0, b0]``)."""
        import numpy as np

        from repro.analysis.wirestats import length_histogram

        class _Stub:
            class _Table:
                @staticmethod
                def wire_lengths():
                    return np.array([0, 0, 3, 20, 100], dtype=np.int64)

            def wire_table(self):
                return self._Table()

        hist = length_histogram(_Stub(), [20, 50])
        assert hist[0] == ("[0, 20]", 4)  # old code counted 2 (dropped the zeros)
        assert hist[1] == ("(20, 50]", 0)
        assert hist[2] == ("> 50", 1)
        assert sum(c for _b, c in hist) == 5

    @given(
        st.lists(st.integers(min_value=0, max_value=500), max_size=60),
        st.lists(
            st.integers(min_value=1, max_value=400), min_size=1, max_size=6, unique=True
        ),
    )
    def test_histogram_bins_sum_to_wire_count(self, lengths, edges):
        """Property: histogram counts always partition the wires."""
        import numpy as np

        from repro.analysis.wirestats import length_histogram

        class _Stub:
            class _Table:
                @staticmethod
                def wire_lengths():
                    return np.asarray(lengths, dtype=np.int64)

            def wire_table(self):
                return self._Table()

        hist = length_histogram(_Stub(), sorted(edges))
        assert sum(c for _b, c in hist) == len(lengths)

    def test_empty_layout_rejected(self):
        import pytest as _pytest

        from repro.analysis.wirestats import wire_stats
        from repro.layout.model import Layout, thompson_model

        with _pytest.raises(ValueError):
            wire_stats(Layout(model=thompson_model()))
