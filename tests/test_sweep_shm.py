"""Shared-memory plumbing of the parallel rate sweep and the parallel
chunked layout pipeline.

Pins the two promises of the ``workers > 1`` path of
:func:`repro.algorithms.sweep_rates`: the pool produces results equal to
the serial path, and each worker's pickled payload is a constant-size
handle — the precomputed injection arrays travel through one shared
block and are *attached* as zero-copy views, never re-pickled per job.

The failure-path tests pin the lifecycle promise of
:func:`repro.layout.parallel_validate`: a worker process dying mid-span
must neither hang the pool nor leak the shared block — the caller gets
a clean ``RuntimeError`` and the block is unlinked on the way out.
"""

import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.algorithms.queued_routing import (
    _INJ_KEYS,
    _default_drain,
    _packet_dtype,
    _prepare_injections,
    _sweep_chunk,
    _sweep_chunk_shm,
    sweep_rates,
)
from repro.backend.shm import attach_cached, share_arrays


def test_parallel_sweep_equals_serial():
    kw = dict(cycles=120, warmup=20, seeds=(0, 1), batch=2)
    serial = sweep_rates(3, [0.2, 0.5, 0.8], **kw)
    par = sweep_rates(3, [0.2, 0.5, 0.8], workers=2, **kw)
    assert par == serial
    assert len(par) == 6  # rate-major: all seeds of each rate


def test_worker_payload_excludes_injection_arrays():
    n, cycles, warmup = 6, 800, 100
    jobs = [(0.6, 0), (0.6, 1), (0.4, 2)]
    pdtype = _packet_dtype(n, cycles, _default_drain(n))
    inj = _prepare_injections(n, jobs, cycles, warmup, pdtype)
    arrays = {f"c0_{k}": a for k, a in zip(_INJ_KEYS, inj)}
    raw_bytes = sum(a.nbytes for a in arrays.values())

    with share_arrays(**arrays) as pack:
        payload = (pack, 0, n, jobs, cycles, warmup, None, None)
        wire = len(pickle.dumps(payload))
        # the per-job pickle is a handle, not the data: the injection
        # arrays (hundreds of KiB here) must not ride along
        assert wire < 4096
        assert raw_bytes > 50 * wire

        got = _sweep_chunk_shm(payload)

    want = _sweep_chunk((n, jobs, cycles, warmup, None, None))
    assert got == want


def test_workers_attach_zero_copy_views():
    n, cycles, warmup = 5, 300, 50
    jobs = [(0.5, 7)]
    pdtype = _packet_dtype(n, cycles, _default_drain(n))
    inj = _prepare_injections(n, jobs, cycles, warmup, pdtype)
    arrays = {f"c0_{k}": a for k, a in zip(_INJ_KEYS, inj)}

    with share_arrays(**arrays) as pack:
        views = attach_cached(pack)
        for key, src in arrays.items():
            v = views[key]
            assert v.base is not None, f"{key} was copied out of the block"
            assert v.dtype == src.dtype and v.shape == src.shape
            np.testing.assert_array_equal(v, src)
        # a second attach in the same process reuses the cached mapping
        again = attach_cached(pack)
        for key in arrays:
            assert again[key] is views[key]


# ---------------------------------------------------------------------------
# shm lifecycle of the parallel chunked layout pipeline under failure
# ---------------------------------------------------------------------------


def _capture_packs(monkeypatch):
    """Wrap the pipeline's ``share_arrays`` so the test can probe the
    block after the run tears down."""
    from repro.layout import chunked_parallel as cp

    packs = []
    real = cp.share_arrays

    def spy(**arrays):
        cm = real(**arrays)

        class _Spy:
            def __enter__(self):
                pack = cm.__enter__()
                packs.append(pack)
                return pack

            def __exit__(self, *exc):
                return cm.__exit__(*exc)

        return _Spy()

    monkeypatch.setattr(cp, "share_arrays", spy)
    return packs


def _block_is_unlinked(name: str) -> bool:
    try:
        shm = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return True
    shm.close()
    return False


def test_crashed_worker_raises_and_unlinks_shm(monkeypatch):
    from repro.layout import chunked_collinear_table, parallel_validate
    from repro.topology.complete import complete_multigraph

    build = chunked_collinear_table(8, 2, memory_budget_bytes=4096)
    packs = _capture_packs(monkeypatch)
    monkeypatch.setenv("REPRO_TEST_CRASH_WORKER", "1")
    with pytest.raises(RuntimeError, match="worker process died"):
        parallel_validate(build, graph=complete_multigraph(8, 2), workers=2)
    assert packs, "recipe run at workers=2 should publish bulk arrays"
    assert all(_block_is_unlinked(p.block) for p in packs)


def test_clean_run_unlinks_shm(monkeypatch):
    from repro.layout import chunked_collinear_table, parallel_validate
    from repro.topology.complete import complete_multigraph

    build = chunked_collinear_table(8, 2, memory_budget_bytes=4096)
    packs = _capture_packs(monkeypatch)
    rep = parallel_validate(build, graph=complete_multigraph(8, 2), workers=2)
    assert rep.ok
    assert packs and all(_block_is_unlinked(p.block) for p in packs)
