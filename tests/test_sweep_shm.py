"""Shared-memory plumbing of the parallel rate sweep.

Pins the two promises of the ``workers > 1`` path of
:func:`repro.algorithms.sweep_rates`: the pool produces results equal to
the serial path, and each worker's pickled payload is a constant-size
handle — the precomputed injection arrays travel through one shared
block and are *attached* as zero-copy views, never re-pickled per job.
"""

import pickle

import numpy as np

from repro.algorithms.queued_routing import (
    _INJ_KEYS,
    _default_drain,
    _packet_dtype,
    _prepare_injections,
    _sweep_chunk,
    _sweep_chunk_shm,
    sweep_rates,
)
from repro.backend.shm import attach_cached, share_arrays


def test_parallel_sweep_equals_serial():
    kw = dict(cycles=120, warmup=20, seeds=(0, 1), batch=2)
    serial = sweep_rates(3, [0.2, 0.5, 0.8], **kw)
    par = sweep_rates(3, [0.2, 0.5, 0.8], workers=2, **kw)
    assert par == serial
    assert len(par) == 6  # rate-major: all seeds of each rate


def test_worker_payload_excludes_injection_arrays():
    n, cycles, warmup = 6, 800, 100
    jobs = [(0.6, 0), (0.6, 1), (0.4, 2)]
    pdtype = _packet_dtype(n, cycles, _default_drain(n))
    inj = _prepare_injections(n, jobs, cycles, warmup, pdtype)
    arrays = {f"c0_{k}": a for k, a in zip(_INJ_KEYS, inj)}
    raw_bytes = sum(a.nbytes for a in arrays.values())

    with share_arrays(**arrays) as pack:
        payload = (pack, 0, n, jobs, cycles, warmup, None, None)
        wire = len(pickle.dumps(payload))
        # the per-job pickle is a handle, not the data: the injection
        # arrays (hundreds of KiB here) must not ride along
        assert wire < 4096
        assert raw_bytes > 50 * wire

        got = _sweep_chunk_shm(payload)

    want = _sweep_chunk((n, jobs, cycles, warmup, None, None))
    assert got == want


def test_workers_attach_zero_copy_views():
    n, cycles, warmup = 5, 300, 50
    jobs = [(0.5, 7)]
    pdtype = _packet_dtype(n, cycles, _default_drain(n))
    inj = _prepare_injections(n, jobs, cycles, warmup, pdtype)
    arrays = {f"c0_{k}": a for k, a in zip(_INJ_KEYS, inj)}

    with share_arrays(**arrays) as pack:
        views = attach_cached(pack)
        for key, src in arrays.items():
            v = views[key]
            assert v.base is not None, f"{key} was copied out of the block"
            assert v.dtype == src.dtype and v.shape == src.shape
            np.testing.assert_array_equal(v, src)
        # a second attach in the same process reuses the cached mapping
        again = attach_cached(pack)
        for key in arrays:
            assert again[key] is views[key]
