"""Tests for butterfly network construction."""

import pytest

from repro.topology.butterfly import Butterfly, butterfly_graph, wrapped_butterfly_graph


class TestSizes:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_node_and_edge_counts(self, n):
        b = Butterfly(n)
        assert b.num_nodes == (n + 1) * 2**n
        assert b.num_edges == 2 * n * 2**n
        g = b.graph()
        assert g.num_nodes == b.num_nodes
        assert g.num_edges == b.num_edges

    def test_from_rows(self):
        assert Butterfly.from_rows(8).n == 3
        with pytest.raises(ValueError):
            Butterfly.from_rows(6)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            Butterfly(0)


class TestNeighbors:
    def test_straight(self):
        b = Butterfly(3)
        assert b.straight_neighbor(5, 1) == (5, 2)

    def test_cross_flips_stage_bit(self):
        b = Butterfly(3)
        assert b.cross_neighbor(0b000, 0) == (0b001, 1)
        assert b.cross_neighbor(0b000, 2) == (0b100, 3)

    def test_out_of_range(self):
        b = Butterfly(2)
        with pytest.raises(ValueError):
            b.cross_neighbor(0, 2)  # no boundary after last stage
        with pytest.raises(ValueError):
            b.straight_neighbor(4, 0)


class TestStructure:
    def test_degrees(self):
        b = Butterfly(3)
        g = b.graph()
        for r in range(8):
            assert g.degree((r, 0)) == 2
            assert g.degree((r, 3)) == 2
            assert g.degree((r, 1)) == 4
        assert b.degree(0, 0) == 2
        assert b.degree(0, 1) == 4

    def test_connected(self):
        assert butterfly_graph(3).is_connected()

    def test_boundary_edges_count(self):
        b = Butterfly(3)
        for s in range(3):
            assert len(list(b.boundary_edges(s))) == 2 * 8

    def test_simple_graph(self):
        g = butterfly_graph(3)
        assert g.num_edges == g.num_simple_edges

    def test_rows_exchange_bit_s(self):
        """Two rows differing only in bit s are joined across boundary s —
        the ascend property."""
        b = Butterfly(4)
        g = b.graph()
        for s in range(4):
            for r in range(16):
                assert g.has_edge((r, s), (r ^ (1 << s), s + 1))


class TestWrapped:
    def test_wrapped_sizes(self):
        g = wrapped_butterfly_graph(3)
        assert g.num_nodes == 3 * 8
        # every boundary keeps its 2R links, including the wrap boundary
        assert g.num_edges == 2 * 3 * 8

    def test_wrapped_degree_regular(self):
        g = wrapped_butterfly_graph(3)
        assert set(g.degree_histogram()) == {4}

    def test_wrapped_n1_degenerate(self):
        g = wrapped_butterfly_graph(1)
        # single stage; straight self-wraps are dropped; the two directed
        # cross links wrap onto the same pair, leaving a double link
        assert g.num_nodes == 2
        assert g.num_edges == 2
        assert g.num_simple_edges == 1
