"""Shared fixtures and hypothesis strategies."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.topology.swap import SwapNetworkParams


def pytest_collection_modifyitems(config, items):
    """Skip (not fail) the whole run when ``REPRO_BACKEND`` names a
    backend this environment cannot construct — the CI backend matrix
    sets the variable unconditionally and relies on wheel-gap legs
    degrading to skips."""
    import os

    name = os.environ.get("REPRO_BACKEND")
    if not name or name == "numpy":
        return
    from repro.backend import available_backends

    if name in available_backends():
        return
    marker = pytest.mark.skip(
        reason=f"REPRO_BACKEND={name} is unavailable in this environment"
    )
    for item in items:
        item.add_marker(marker)


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Point the design-service cache at a per-session directory so CLI
    tests never touch (or depend on) the user's real cache."""
    import os

    path = str(tmp_path_factory.mktemp("repro-cache"))
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = path
    yield path
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:  # pragma: no cover - depends on the invoking environment
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture(scope="session")
def small_param_vectors():
    """A representative spread of ISN parameter vectors (kept small so the
    full-graph checks stay fast)."""
    return [
        (1, 1),
        (2, 1),
        (2, 2),
        (3, 2),
        (1, 1, 1),
        (2, 1, 1),
        (2, 2, 2),
        (3, 2, 2),
        (3, 3, 3),
        (2, 2, 1),
        (2, 2, 2, 2),
        (3, 3, 2, 1),
    ]


def param_vector_strategy(max_l: int = 4, max_k1: int = 4, max_n: int = 10):
    """Hypothesis strategy for valid HSN-like parameter vectors
    (non-increasing ``k_i``, at least 2 levels)."""

    @st.composite
    def vectors(draw):
        l = draw(st.integers(min_value=2, max_value=max_l))
        k1 = draw(st.integers(min_value=1, max_value=max_k1))
        ks = [k1]
        for _ in range(l - 1):
            ks.append(draw(st.integers(min_value=1, max_value=min(k1, sum(ks)))))
        if sum(ks) > max_n:
            ks = ks[: max(2, 1 + (max_n - k1) // max(1, min(ks[1:], default=1)))]
            while sum(ks) > max_n and len(ks) > 2:
                ks.pop()
        # re-validate; fall back to a tiny vector if trimming broke rules
        try:
            SwapNetworkParams(ks)
        except ValueError:
            ks = [1, 1]
        return tuple(ks)

    return vectors()
