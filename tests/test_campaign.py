"""Tests for the checkpointed campaign orchestrator.

The load-bearing property throughout: a campaign's ``manifest.json``
and ``frontier.json`` are *byte-identical* however the run got there —
one pass, interrupted-and-resumed, serial or sharded across workers.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    CONFIG_DEFAULTS,
    CampaignError,
    CampaignPoint,
    GridError,
    build_manifest,
    derive_seed,
    expand_points,
    normalize_grid,
    pareto_frontier,
    render_frontier,
    resume_run,
    run_stage,
    run_status,
    spec_digest,
    stage_argv,
    start_run,
)
from repro.campaign.orchestrator import _load_stage_record, write_json_atomic
from repro.cli import main

#: Two valid points (the layout engine needs >= 3 levels and k_i <= k1),
#: sized so the whole pipeline runs in seconds.
SPEC = {
    "ks": [[1, 1, 1], [2, 1, 1]],
    "rate": [0.7],
    "config": {"cycles": 120, "warmup": 20, "benes_batch": 2,
               "sat_max_n": 3},
}


def _read(path: str) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


def _outputs(run_dir: str):
    return (_read(os.path.join(run_dir, "manifest.json")),
            _read(os.path.join(run_dir, "frontier.json")))


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One uninterrupted serial run of SPEC, shared by the identity
    tests (they only read it)."""
    runs = str(tmp_path_factory.mktemp("baseline"))
    summary = start_run(SPEC, runs_dir=runs, run_id="base")
    return summary


class TestGrid:
    def test_normalize_fills_defaults(self):
        g = normalize_grid({"ks": [[2, 1, 1]]})
        assert g["layers"] == [2] and g["pin_limit"] == [None]
        assert g["rate"] == [0.8] and g["config"] == CONFIG_DEFAULTS

    def test_normalize_rejects(self):
        for bad in (
            [],  # not a dict
            {},  # no ks
            {"ks": []},
            {"ks": [[0, 1]]},
            {"ks": [[1] * 30]},  # sum cap
            {"ks": [[1, 1, 1]], "bogus": 1},
            {"ks": [[1, 1, 1]], "layers": [1]},
            {"ks": [[1, 1, 1]], "rate": [0.0]},
            {"ks": [[1, 1, 1]], "pin_limit": [0]},
            {"ks": [[1, 1, 1]], "config": {"bogus": 1}},
            {"ks": [[1, 1, 1]], "config": {"track_order": "sideways"}},
        ):
            with pytest.raises(GridError):
                normalize_grid(bad)

    def test_expansion_order_is_stable(self):
        g = normalize_grid(
            {"ks": [[1, 1, 1], [2, 1, 1]], "layers": [2, 4],
             "rate": [0.5, 0.9]}
        )
        pts = expand_points(g)
        assert [p.point_id for p in pts[:3]] == ["p0000", "p0001", "p0002"]
        assert len(pts) == 8
        # ks outermost, then layers, then pin_limit, then rate
        assert (pts[0].ks, pts[0].layers, pts[0].rate) == ((1, 1, 1), 2, 0.5)
        assert (pts[1].ks, pts[1].layers, pts[1].rate) == ((1, 1, 1), 2, 0.9)
        assert (pts[4].ks, pts[4].layers) == ((2, 1, 1), 2)
        assert pts[4].n == 4

    def test_spec_digest_canonical(self):
        a = normalize_grid({"ks": [[1, 1, 1]], "rate": [0.8]})
        b = normalize_grid({"rate": [0.8], "ks": [[1, 1, 1]]})
        assert spec_digest(a) == spec_digest(b)
        c = normalize_grid({"ks": [[1, 1, 1]], "rate": [0.9]})
        assert spec_digest(a) != spec_digest(c)

    def test_exec_config_validated(self):
        g = normalize_grid(
            {"ks": [[1, 1, 1]],
             "config": {"layout_memory_budget": 4096, "layout_workers": 2}}
        )
        assert g["config"]["layout_memory_budget"] == 4096
        assert g["config"]["layout_workers"] == 2
        for bad in (0, -1, "two", 1.5):
            with pytest.raises(GridError):
                normalize_grid(
                    {"ks": [[1, 1, 1]], "config": {"layout_workers": bad}}
                )

    def test_spec_digest_ignores_exec_config(self):
        plain = normalize_grid({"ks": [[1, 1, 1]]})
        chunked = normalize_grid(
            {"ks": [[1, 1, 1]],
             "config": {"layout_memory_budget": 1 << 20,
                        "layout_workers": 4}}
        )
        # same design grid -> same run id, however it executes
        assert spec_digest(plain) == spec_digest(chunked)
        other = normalize_grid({"ks": [[1, 1, 1]], "config": {"seed": 9}})
        assert spec_digest(plain) != spec_digest(other)

    def test_derive_seed_identity_not_order(self):
        s = derive_seed(0, "benes", [1, 1, 1])
        assert s == derive_seed(0, "benes", [1, 1, 1])
        assert 0 <= s < 2**31 - 1
        assert s != derive_seed(0, "benes", [2, 1, 1])
        assert s != derive_seed(1, "benes", [1, 1, 1])
        assert s != derive_seed(0, "sim", [1, 1, 1])


class TestStages:
    def test_stage_argv_shapes(self):
        p = CampaignPoint(index=0, ks=(2, 1, 1), layers=2, pin_limit=None,
                          rate=0.7)
        cfg = dict(CONFIG_DEFAULTS)
        assert stage_argv("layout", p, cfg)[:4] == \
            ["repro", "layout", "--ks", "2,1,1"]
        assert stage_argv("package", p, cfg)[1] == "package"
        assert "--batch" in stage_argv("benes", p, cfg)
        assert "--rate" in stage_argv("saturation", p, cfg)
        with pytest.raises(ValueError):
            stage_argv("nope", p, cfg)

    def test_layout_record_shape(self):
        p = CampaignPoint(index=0, ks=(1, 1, 1), layers=2, pin_limit=None,
                          rate=0.7)
        rec = run_stage("layout", p, dict(CONFIG_DEFAULTS), store=None)
        assert rec["status"] == "ok" and rec["proof"]["rc"] == 0
        assert rec["summary"]["valid"] and rec["summary"]["area"] == 3360
        q = rec["proof"]["queries"][0]
        assert q["kind"] == "layout" and len(q["key"]) == 64
        assert len(q["result_sha256"]) == 64 and q["verified"]

    def test_engine_rejection_is_deterministic_failure(self):
        # k_2 > k_1: the layout engine rejects this vector outright
        p = CampaignPoint(index=0, ks=(1, 2, 1), layers=2, pin_limit=None,
                          rate=0.7)
        rec1 = run_stage("layout", p, dict(CONFIG_DEFAULTS), store=None)
        rec2 = run_stage("layout", p, dict(CONFIG_DEFAULTS), store=None)
        assert rec1["status"] == "failed" and rec1["proof"]["rc"] == 2
        assert "k_i <= k1" in rec1["error"]
        assert rec1 == rec2  # same params -> same failure record

    def test_chunked_layout_stage_record_is_byte_identical(self):
        p = CampaignPoint(index=0, ks=(2, 1, 1), layers=2, pin_limit=None,
                          rate=0.7)
        plain = run_stage("layout", p, dict(CONFIG_DEFAULTS), store=None)
        chunked = run_stage(
            "layout", p,
            dict(CONFIG_DEFAULTS, layout_memory_budget=4096,
                 layout_workers=2),
            store=None,
        )
        # exec knobs never reach the record: proof argv, cache key,
        # result digest and summary all match the monolithic stage
        assert chunked == plain

    def test_validate_skips_without_layout(self):
        p = CampaignPoint(index=0, ks=(1, 1, 1), layers=2, pin_limit=None,
                          rate=0.7)
        rec = run_stage("validate", p, dict(CONFIG_DEFAULTS), prior={})
        assert rec["status"] == "skipped" and rec["summary"] is None


class TestFrontier:
    @staticmethod
    def _entry(pid, area, wire, pins, layers=2, ok=True):
        status = "ok" if ok else "failed"
        return {
            "id": pid,
            "params": {"ks": [1, 1, 1], "n": 3, "rate": 0.7,
                       "pin_limit": None, "layers": layers},
            "stages": {
                "layout": {
                    "status": status,
                    "summary": {"valid": ok, "area": area,
                                "total_wire_length": wire, "layers": layers},
                },
                "package": {"status": status, "summary": {"pins": pins}},
            },
        }

    def test_dominated_points_drop(self):
        manifest = {"points": [
            self._entry("p0000", 100, 50, 8),
            self._entry("p0001", 200, 90, 9),   # dominated by p0000
            self._entry("p0002", 90, 60, 8),    # trades area for wire
            self._entry("p0003", 100, 50, 8, ok=False),  # ineligible
        ]}
        f = pareto_frontier(manifest)
        assert [p["id"] for p in f["points"]] == ["p0002", "p0000"]
        assert f["considered"] == 3 and f["dominated"] == 1
        assert f["ineligible"] == 1

    def test_ties_all_survive(self):
        manifest = {"points": [
            self._entry("p0000", 100, 50, 8),
            self._entry("p0001", 100, 50, 8),  # equal vector: no dominance
        ]}
        f = pareto_frontier(manifest)
        assert len(f["points"]) == 2 and f["dominated"] == 0

    def test_render_empty_and_nonempty(self):
        empty = pareto_frontier({"points": []})
        assert "(empty frontier)" in render_frontier(empty)
        f = pareto_frontier({"points": [self._entry("p0000", 100, 50, 8)]})
        txt = render_frontier(f)
        assert "p0000" in txt and "1 frontier point(s)" in txt


class TestOrchestrator:
    def test_cold_run_completes_and_checkpoints(self, baseline):
        run_dir = baseline["run_dir"]
        assert baseline["points"] == 2
        assert baseline["stages_run"] == 10
        assert baseline["counts"]["failed"] == 0
        status = run_status(run_dir)
        assert status["counts"]["complete"] == 2
        assert status["outputs_written"]
        manifest = json.loads(_read(os.path.join(run_dir, "manifest.json")))
        p0 = manifest["points"][0]
        assert p0["id"] == "p0000" and p0["complete"]
        for stage in manifest["stage_order"]:
            assert p0["stages"][stage]["status"] in ("ok", "skipped")
            for q in p0["stages"][stage]["queries"]:
                assert q["verified"]

    def test_noop_resume_is_byte_identical(self, baseline):
        run_dir = baseline["run_dir"]
        before = _outputs(run_dir)
        summary = resume_run(run_dir)
        assert summary["stages_run"] == 0
        assert _outputs(run_dir) == before

    def test_damage_resume_is_byte_identical(self, baseline, tmp_path):
        # fresh run (cache shared with baseline so recompute is cheap)
        cache = os.path.join(baseline["run_dir"], "cache")
        runs = str(tmp_path / "runs")
        s1 = start_run(SPEC, runs_dir=runs, run_id="base", cache_dir=cache)
        run_dir = s1["run_dir"]
        before = _outputs(run_dir)
        assert before == _outputs(baseline["run_dir"])
        # truncate one in-flight record, delete another, drop the outputs
        trunc = os.path.join(run_dir, "points", "p0001", "stages",
                             "package.json")
        with open(trunc, "r+b") as fh:
            fh.truncate(17)
        os.unlink(os.path.join(run_dir, "points", "p0000", "stages",
                               "benes.json"))
        os.unlink(os.path.join(run_dir, "manifest.json"))
        assert _load_stage_record(trunc) is None
        summary = resume_run(run_dir, cache_dir=cache)
        assert summary["stages_run"] == 2  # only the damaged checkpoints
        assert _outputs(run_dir) == before

    def test_tampered_record_fails_seal_and_recomputes(self, baseline,
                                                       tmp_path):
        cache = os.path.join(baseline["run_dir"], "cache")
        runs = str(tmp_path / "runs")
        s1 = start_run(SPEC, runs_dir=runs, run_id="base", cache_dir=cache)
        path = os.path.join(s1["run_dir"], "points", "p0000", "stages",
                            "layout.json")
        rec = json.loads(_read(path))
        rec["summary"]["area"] = 1  # lie, without resealing
        write_json_atomic(path, rec)
        assert _load_stage_record(path) is None
        summary = resume_run(s1["run_dir"], cache_dir=cache)
        assert summary["stages_run"] == 1
        assert _outputs(s1["run_dir"]) == _outputs(baseline["run_dir"])

    def test_worker_sharding_is_byte_identical(self, baseline, tmp_path):
        cache = os.path.join(baseline["run_dir"], "cache")
        s2 = start_run(SPEC, runs_dir=str(tmp_path / "runs"), run_id="base",
                       cache_dir=cache, workers=2)
        assert _outputs(s2["run_dir"]) == _outputs(baseline["run_dir"])

    def test_failed_points_checkpoint_and_resume(self, tmp_path):
        spec = {"ks": [[1, 1, 1], [1, 2, 1]],  # second point is rejected
                "config": {"cycles": 100, "warmup": 10, "benes_batch": 2,
                           "sat_max_n": 0}}
        runs = str(tmp_path / "runs")
        s1 = start_run(spec, runs_dir=runs, run_id="mix")
        assert s1["counts"]["failed"] == 1
        manifest = json.loads(_read(os.path.join(s1["run_dir"],
                                                 "manifest.json")))
        bad = manifest["points"][1]
        assert bad["stages"]["layout"]["status"] == "failed"
        assert bad["stages"]["validate"]["status"] == "skipped"
        before = _outputs(s1["run_dir"])
        summary = resume_run(s1["run_dir"])
        assert summary["stages_run"] == 0  # failures checkpoint too
        assert _outputs(s1["run_dir"]) == before
        f = json.loads(before[1])
        assert f["ineligible"] == 1 and len(f["points"]) == 1

    def test_start_refuses_existing_run(self, baseline):
        runs = os.path.dirname(baseline["run_dir"])
        with pytest.raises(CampaignError, match="resume"):
            start_run(SPEC, runs_dir=runs, run_id="base")

    def test_resume_refuses_non_run_dir(self, tmp_path):
        with pytest.raises(CampaignError, match="campaign.json"):
            resume_run(str(tmp_path))

    def test_resume_refuses_digest_mismatch(self, baseline, tmp_path):
        run_dir = str(tmp_path / "bad")
        os.makedirs(run_dir)
        doc = json.loads(
            _read(os.path.join(baseline["run_dir"], "campaign.json"))
        )
        doc["spec_digest"] = "0" * 12
        write_json_atomic(os.path.join(run_dir, "campaign.json"), doc)
        with pytest.raises(CampaignError, match="digest"):
            resume_run(run_dir)


class TestKillAndResume:
    def test_sigterm_mid_run_then_resume_matches_baseline(self, baseline,
                                                          tmp_path):
        """Interrupt a live campaign with SIGTERM, resume it, and demand
        the manifest and frontier match an uninterrupted run's bytes."""
        runs = str(tmp_path / "runs")
        run_dir = os.path.join(runs, "base")
        cache = os.path.join(baseline["run_dir"], "cache")
        grid_file = str(tmp_path / "grid.json")
        with open(grid_file, "w") as fh:
            json.dump(SPEC, fh)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..",
                                         "src") + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "run",
             "--grid", grid_file, "--runs-dir", runs, "--run-id", "base"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # wait for the first checkpoint to land, then pull the plug
        deadline = time.time() + 60
        first = os.path.join(run_dir, "points", "p0000", "stages",
                             "layout.json")
        while time.time() < deadline and proc.poll() is None:
            if os.path.exists(first):
                break
            time.sleep(0.02)
        proc.terminate()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            proc.kill()
            proc.wait()
        assert os.path.exists(os.path.join(run_dir, "campaign.json"))
        summary = resume_run(run_dir, cache_dir=cache)
        assert summary["counts"]["complete"] == 2
        assert _outputs(run_dir) == _outputs(baseline["run_dir"])

    def test_sigkill_leaves_no_torn_checkpoints(self, tmp_path):
        """Atomic writes mean a killed worker leaves whole records or
        nothing — every surviving stage file must pass its seal."""
        runs = str(tmp_path / "runs")
        run_dir = os.path.join(runs, "kill")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..",
                                         "src") + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "run",
             "--ks", "1,1,1", "--ks", "2,1,1", "--cycles", "120",
             "--warmup", "20", "--benes-batch", "2", "--sat-max-n", "0",
             "--runs-dir", runs, "--run-id", "kill"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.time() + 60
        probe = os.path.join(run_dir, "points", "p0000", "stages",
                             "package.json")
        while time.time() < deadline and proc.poll() is None:
            if os.path.exists(probe):
                break
            time.sleep(0.02)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
        found = 0
        for root, _dirs, files in os.walk(os.path.join(run_dir, "points")):
            for name in files:
                if name.endswith(".json") and root.endswith("stages"):
                    found += 1
                    assert _load_stage_record(
                        os.path.join(root, name)
                    ) is not None
        assert found > 0  # the run got far enough to checkpoint


class TestCampaignCLI:
    def test_run_status_frontier_resume(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        out_json = str(tmp_path / "summary.json")
        rc = main([
            "campaign", "run", "--ks", "1,1,1", "--rates", "0.7",
            "--cycles", "100", "--warmup", "10", "--benes-batch", "2",
            "--sat-max-n", "0", "--runs-dir", runs, "--run-id", "cli",
            "--json", out_json,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign cli:" in out and "frontier" in out
        with open(out_json) as fh:
            assert json.load(fh)["points"] == 1

        run_dir = os.path.join(runs, "cli")
        assert main(["campaign", "status", run_dir]) == 0
        assert "1/1 point(s) complete" in capsys.readouterr().out
        assert main(["campaign", "frontier", run_dir]) == 0
        assert "p0000" in capsys.readouterr().out
        assert main(["campaign", "resume", run_dir]) == 0
        assert "0 stage(s) run" in capsys.readouterr().out

    def test_run_requires_grid_or_ks(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "run"])
        assert "--grid FILE or at least one --ks" in capsys.readouterr().err

    def test_grid_file_and_ks_are_exclusive(self, tmp_path, capsys):
        grid = str(tmp_path / "g.json")
        with open(grid, "w") as fh:
            json.dump({"ks": [[1, 1, 1]]}, fh)
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--grid", grid, "--ks", "1,1,1"])
        assert "exclusive" in capsys.readouterr().err

    def test_bad_grid_exits_2(self, tmp_path, capsys):
        grid = str(tmp_path / "g.json")
        with open(grid, "w") as fh:
            json.dump({"ks": [[1, 1, 1]], "bogus": 1}, fh)
        rc = main(["campaign", "run", "--grid", grid,
                   "--runs-dir", str(tmp_path / "runs")])
        assert rc == 2
        assert "unknown grid key" in capsys.readouterr().err

    def test_status_on_missing_run_exits_2(self, tmp_path, capsys):
        rc = main(["campaign", "status", str(tmp_path / "nope")])
        assert rc == 2
        assert "campaign.json" in capsys.readouterr().err
