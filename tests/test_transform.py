"""Tests for the ISN -> butterfly transformation and its verification."""

import pytest
from hypothesis import given, settings

from repro.topology.butterfly import Butterfly
from repro.topology.swap import SwapNetworkParams
from repro.transform.automorphism import (
    verify_automorphism,
    verify_by_generators,
    verify_by_graphs,
)
from repro.transform.swap_butterfly import (
    CompositeBoundary,
    ExchangeBoundary,
    SwapButterfly,
)

from tests.conftest import param_vector_strategy


class TestBoundaries:
    def test_boundary_sequence(self):
        sb = SwapButterfly.from_ks((3, 2, 2))
        kinds = [b.kind for b in sb.boundaries]
        assert kinds == [
            "exchange",
            "exchange",
            "exchange",
            "composite",
            "exchange",
            "composite",
            "exchange",
        ]
        assert sb.composite_boundary_stages() == [3, 5]

    def test_composite_at_group_offsets(self):
        sb = SwapButterfly.from_ks((2, 2, 2))
        assert sb.composite_boundary_stages() == [2, 4]

    def test_stage_count(self):
        sb = SwapButterfly.from_ks((2, 2, 2))
        assert sb.stages == 7
        assert sb.num_nodes == 7 * 64
        assert sb.num_edges == 2 * 64 * 6

    def test_boundary_links_arity(self):
        sb = SwapButterfly.from_ks((2, 2))
        for s in range(sb.n):
            links = list(sb.boundary_links(s))
            assert len(links) == 2 * sb.rows

    def test_swap_links_per_row_formula(self):
        # paper: 4(l-1) swap links per row in the swap-butterfly
        assert SwapButterfly.from_ks((3, 3, 3)).swap_links_per_row() == 8
        assert SwapButterfly.from_ks((2, 2)).swap_links_per_row() == 4

    def test_boundary_out_of_range(self):
        sb = SwapButterfly.from_ks((1, 1))
        with pytest.raises(ValueError):
            list(sb.boundary_links(2))


class TestPhi:
    def test_identity_before_first_swap(self):
        sb = SwapButterfly.from_ks((2, 2, 2))
        for s in range(0, 3):  # stages 0..n_1 inclusive are pre-swap
            for x in range(sb.rows):
                assert sb.phi(s, x) == x

    def test_phi_inverse_roundtrip(self):
        sb = SwapButterfly.from_ks((3, 2, 2))
        for s in range(sb.stages):
            for x in range(sb.rows):
                assert sb.phi_inverse(s, sb.phi(s, x)) == x

    def test_paper_fig1_mapping(self):
        """The paper's example: node (1,2) of the 4x4 swap-butterfly is
        butterfly node (2,2)."""
        sb = SwapButterfly.from_ks((1, 1))
        assert sb.phi_inverse(2, 1) == 2
        assert sb.phi(2, 2) == 1

    def test_row_labels_are_permutations(self):
        sb = SwapButterfly.from_ks((2, 2))
        for s in range(sb.stages):
            assert sorted(sb.row_labels(s)) == list(range(sb.rows))

    def test_butterfly_to_swapbf_bijection(self):
        sb = SwapButterfly.from_ks((2, 1, 1))
        m = sb.butterfly_to_swapbf()
        assert len(m) == sb.num_nodes
        assert len(set(m.values())) == sb.num_nodes


class TestAutomorphism:
    @pytest.mark.parametrize(
        "ks",
        [(1, 1), (2, 1), (2, 2), (3, 3), (1, 1, 1), (2, 2, 2), (3, 2, 1), (2, 2, 2, 2)],
    )
    def test_verified_both_ways(self, ks):
        assert verify_by_graphs(ks)
        assert verify_by_generators(ks)

    def test_graph_is_butterfly_sized(self):
        sb = SwapButterfly.from_ks((2, 2))
        g = sb.graph()
        b = Butterfly(4)
        assert g.num_nodes == b.num_nodes
        assert g.num_edges == b.num_edges

    def test_dispatcher(self):
        assert verify_automorphism((2, 2), materialize=True)
        assert verify_automorphism((2, 2), materialize=False)

    def test_broken_mapping_detected(self):
        """Sanity: the checker is not a rubber stamp — a wrong phi fails."""
        sb = SwapButterfly.from_ks((2, 2))
        bfly = Butterfly(4).graph()
        target = sb.graph()
        bad = sb.butterfly_to_swapbf()
        # swap two images with different neighborhoods ((0,0) and (1,0)
        # share theirs, so those two WOULD still be an isomorphism)
        bad[(0, 0)], bad[(3, 0)] = bad[(3, 0)], bad[(0, 0)]
        assert not bfly.is_isomorphic_by(target, bad)


@settings(deadline=None, max_examples=25)
@given(param_vector_strategy(max_l=4, max_k1=3, max_n=8))
def test_automorphism_property(ks):
    assert verify_by_generators(ks)
