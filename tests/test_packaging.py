"""Tests for partitions, pin accounting, and baselines (Section 2.3)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.packaging.baseline import (
    NaiveRowPartition,
    max_rows_within_pin_limit,
    naive_avg_per_node,
    naive_module_count,
    naive_offmodule_per_module,
    paper_estimate_max_rows,
    paper_estimate_module_count,
)
from repro.packaging.partition import NucleusPartition, RowPartition
from repro.packaging.pins import (
    count_off_module_links,
    nucleus_partition_module_bound,
    row_partition_avg_bound,
    row_partition_avg_per_node,
    row_partition_offmodule_per_module,
)
from repro.topology.butterfly import Butterfly
from repro.transform.swap_butterfly import SwapButterfly

from tests.conftest import param_vector_strategy


class TestRowPartition:
    def test_section52_numbers(self):
        sb = SwapButterfly.from_ks((3, 3, 3))
        part = RowPartition.natural(sb)
        assert part.num_modules == 64
        assert part.nodes_per_module == 80
        rep = count_off_module_links(part)
        assert rep.max_per_module == 56
        assert rep.avg_per_node == Fraction(7, 10)

    def test_closed_form_matches_enumeration(self):
        for ks in [(2, 2), (2, 2, 2), (3, 2, 2), (3, 3, 2), (2, 2, 2, 2)]:
            sb = SwapButterfly.from_ks(ks)
            rep = count_off_module_links(RowPartition.natural(sb))
            formula = row_partition_offmodule_per_module(ks)
            assert rep.max_per_module == formula
            # uniform across modules
            assert set(rep.per_module.values()) == {formula}
            assert rep.avg_per_node == row_partition_avg_per_node(ks)

    def test_paper_display_formula(self):
        """4(l-1)(2^k1 - 1)/((n+1) 2^k1) for HSN-derived vectors."""
        for l, k1 in [(2, 2), (3, 3), (3, 2), (4, 2)]:
            ks = (k1,) * l
            n = l * k1
            expected = Fraction(
                4 * (l - 1) * (2**k1 - 1), (n + 1) * 2**k1
            )
            assert row_partition_avg_per_node(ks) == expected

    def test_bound_chain(self):
        # value < 4(l-1)/(n+1) < 4/k1
        for ks in [(3, 3, 3), (2, 2, 2, 2)]:
            v = row_partition_avg_per_node(ks)
            assert v < row_partition_avg_bound(ks)
            assert row_partition_avg_bound(ks) == Fraction(4, ks[0])

    def test_row_bits_validation(self):
        sb = SwapButterfly.from_ks((2, 2))
        with pytest.raises(ValueError):
            RowPartition(sb, 5)

    def test_module_of(self):
        sb = SwapButterfly.from_ks((2, 2))
        part = RowPartition.natural(sb)
        assert part.module_of((0, 0)) == 0
        assert part.module_of((7, 3)) == 1


class TestNucleusPartition:
    def test_theorem_21_bound(self):
        """Theorem 2.1: <= 2^(k1+2) off-module links per module."""
        for ks in [(2, 2), (2, 2, 2), (3, 2, 2), (3, 3, 3), (3, 3, 2)]:
            sb = SwapButterfly.from_ks(ks)
            part = NucleusPartition(sb)
            rep = count_off_module_links(part)
            assert rep.max_per_module <= nucleus_partition_module_bound(ks[0])

    def test_interior_modules_hit_bound_exactly(self):
        sb = SwapButterfly.from_ks((2, 2, 2))
        rep = count_off_module_links(NucleusPartition(sb))
        assert rep.max_per_module == 16  # 2^(2+2)
        # first/last-segment modules have one-sided boundaries: 2^(k+1)
        assert min(rep.per_module.values()) == 8

    def test_module_counts(self):
        sb = SwapButterfly.from_ks((3, 3, 3))
        part = NucleusPartition(sb)
        assert part.num_modules == 3 * 2**6
        assert count_off_module_links(part).num_modules == part.num_modules

    def test_module_sizes(self):
        sb = SwapButterfly.from_ks((3, 2, 2))
        part = NucleusPartition(sb)
        # segment 1: (k1+1) stages x 2^k1 rows; others: k_i x 2^k_i
        assert part.nodes_per_module(1) == 4 * 8
        assert part.nodes_per_module(2) == 2 * 4
        assert part.max_nodes_per_module == 32
        sizes = part.module_sizes()
        assert sum(sizes.values()) == sb.num_nodes

    def test_segment_of_stage(self):
        sb = SwapButterfly.from_ks((3, 2, 2))
        part = NucleusPartition(sb)
        assert [part.segment_of_stage(s) for s in range(8)] == [
            1, 1, 1, 1, 2, 2, 3, 3
        ]

    def test_all_composite_links_cross(self):
        sb = SwapButterfly.from_ks((2, 2, 2))
        rep = count_off_module_links(NucleusPartition(sb))
        # (l-1) composite boundaries x 2 links per row
        assert rep.off_module_links == 2 * 2 * sb.rows


class TestNaiveBaseline:
    def test_avg_close_to_two(self):
        """The paper's 'approximately 2 off-module links per node'."""
        b = Butterfly(9)
        part = NaiveRowPartition(b, 1)
        assert float(part.avg_per_node()) == pytest.approx(1.8, abs=0.01)
        assert naive_avg_per_node(9, 0) == Fraction(18, 10)

    def test_closed_form_matches_enumeration_aligned(self):
        for n, bbits in [(5, 1), (6, 2), (7, 0)]:
            b = Butterfly(n)
            part = NaiveRowPartition(b, 1 << bbits)
            expect = naive_offmodule_per_module(n, bbits)
            pins = part.exact_pin_counts()
            assert max(pins.values()) == expect

    def test_paper_estimate_section52(self):
        assert paper_estimate_max_rows(9, 64) == 3
        assert paper_estimate_module_count(9, 64) == 171

    def test_exact_count_kinder_than_estimate(self):
        """Aligned power-of-two groups keep low-bit cross links inside, so
        exact counting admits more rows than the paper's 2/node estimate."""
        m_exact = max_rows_within_pin_limit(9, 64)
        assert m_exact >= paper_estimate_max_rows(9, 64)
        assert naive_module_count(9, 64) <= 171

    def test_ours_beats_naive_by_log_factor(self):
        """Section 2.3: factor Theta(log N) between ~2 and 4(l-1)(...)."""
        for l, k1 in [(2, 3), (3, 3), (3, 4)]:
            ks = (k1,) * l
            n = l * k1
            ours = row_partition_avg_per_node(ks)
            naive = naive_avg_per_node(n, 0)
            # ratio ~ 2n / (4(l-1)) = Theta(log N) for fixed l
            assert naive / ours >= n / (2 * (l - 1))

    def test_validation(self):
        b = Butterfly(4)
        with pytest.raises(ValueError):
            NaiveRowPartition(b, 0)
        with pytest.raises(ValueError):
            NaiveRowPartition(b, 17)
        with pytest.raises(ValueError):
            naive_offmodule_per_module(4, 5)
        with pytest.raises(ValueError):
            paper_estimate_max_rows(9, 10)


@settings(deadline=None, max_examples=15)
@given(param_vector_strategy(max_l=3, max_k1=3, max_n=7))
def test_pin_closed_forms_property(ks):
    sb = SwapButterfly.from_ks(ks)
    rep = count_off_module_links(RowPartition.natural(sb))
    assert rep.max_per_module == row_partition_offmodule_per_module(ks)
    nrep = count_off_module_links(NucleusPartition(sb))
    assert nrep.max_per_module <= nucleus_partition_module_bound(ks[0])
