"""Tests for multi-level packaging hierarchies and the 3-D volume model."""

import math

import pytest

from repro.layout.multilayer3d import (
    footprint_3d,
    min_volume_3d,
    optimal_layers_3d,
    volume_3d,
    volume_sweep,
)
from repro.packaging.multilevel import LevelStats, multilevel_design, multilevel_pins


class TestMultilevelPins:
    def test_level1_matches_row_partition(self):
        from repro.packaging.pins import row_partition_offmodule_per_module

        for ks in [(2, 2), (3, 3, 3), (3, 2, 2), (2, 2, 2, 2)]:
            assert multilevel_pins(ks, 1) == row_partition_offmodule_per_module(ks)

    def test_top_level_zero(self):
        assert multilevel_pins((3, 3, 3), 3) == 0

    def test_section52_hierarchy(self):
        # chips (level 1): 56 pins; boards of 8 chips (level 2): 224
        assert multilevel_pins((3, 3, 3), 1) == 56
        assert multilevel_pins((3, 3, 3), 2) == 4 * (64 - 8)

    def test_level_validation(self):
        with pytest.raises(ValueError):
            multilevel_pins((2, 2), 3)

    def test_closed_form_verified_by_enumeration(self):
        # verify=True raises if the closed form ever disagrees
        for ks in [(2, 2), (2, 2, 2), (3, 2, 2), (2, 2, 2, 2)]:
            multilevel_design(ks, verify=True)


class TestMultilevelDesign:
    def test_structure(self):
        stats = multilevel_design((3, 3, 3))
        assert [s.level for s in stats] == [1, 2, 3]
        assert stats[0].num_modules == 64
        assert stats[1].num_modules == 8
        assert stats[1].submodules_per_module == 8
        assert stats[2].num_modules == 1

    def test_nodes_partition_exactly(self):
        stats = multilevel_design((2, 2, 2))
        n = 6
        total = (n + 1) << n
        for s in stats:
            assert s.num_modules * s.nodes_per_module == total

    def test_improvement_positive_at_every_level(self):
        for s in multilevel_design((3, 3, 3))[:-1]:
            assert s.pins_per_module < s.naive_pins_same_size

    def test_improvement_fraction(self):
        s1 = multilevel_design((3, 3, 3))[0]
        assert float(s1.improvement) == pytest.approx(96 / 56)


class TestVolume3D:
    def test_regimes(self):
        n = 20
        lstar = optimal_layers_3d(n)
        assert footprint_3d(n, max(2, int(lstar / 4))) > footprint_3d(n, int(lstar * 2))
        # node-limited floor
        N = (n + 1) << n
        assert footprint_3d(n, int(lstar * 4)) == N

    def test_optimum_is_crossover(self):
        n = 18
        lstar = optimal_layers_3d(n)
        v_star = volume_3d(n, int(round(lstar)))
        assert v_star <= volume_3d(n, max(2, int(lstar / 2))) * 1.01
        assert v_star <= volume_3d(n, int(lstar * 2)) * 1.01

    def test_paper_theta_sqrtN_over_logN(self):
        for n in (12, 18, 24):
            N = (n + 1) << n
            assert optimal_layers_3d(n) == pytest.approx(
                2 * math.sqrt(N) / math.log2(N)
            )
            assert min_volume_3d(n) == pytest.approx(
                2 * N ** 1.5 / math.log2(N)
            )

    def test_sweep_v_shape(self):
        pts = volume_sweep(20)
        vols = [p.volume for p in pts]
        mid = min(range(len(vols)), key=vols.__getitem__)
        assert 0 < mid < len(vols) - 1
        assert pts[0].regime == "wiring" and pts[-1].regime == "nodes"

    def test_validation(self):
        with pytest.raises(ValueError):
            footprint_3d(10, 1)
