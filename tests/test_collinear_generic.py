"""Tests for the generic collinear engine (congestion = optimal tracks)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.layout.collinear import optimal_track_count
from repro.layout.collinear_generic import (
    cut_congestion,
    generic_collinear_layout,
    left_edge_tracks,
    max_congestion,
)
from repro.layout.validate import validate_layout
from repro.topology.complete import complete_graph, complete_multigraph
from repro.topology.graph import Graph
from repro.topology.hypercube import hypercube_graph


def path_graph(n):
    g = Graph(f"P_{n}")
    g.add_nodes(range(n))
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestCongestion:
    def test_path(self):
        g = path_graph(5)
        assert cut_congestion(g, range(5)) == [1, 1, 1, 1]
        assert max_congestion(g, range(5)) == 1

    def test_complete_matches_appendix_b(self):
        for n in range(2, 24):
            g = complete_graph(n)
            assert max_congestion(g, range(n)) == optimal_track_count(n)

    def test_multiplicity_scales(self):
        g = complete_multigraph(6, 3)
        assert max_congestion(g, range(6)) == 3 * optimal_track_count(6)

    def test_order_matters(self):
        # star graph: center in the middle vs at the end
        g = Graph("star")
        g.add_nodes(range(5))
        for i in range(1, 5):
            g.add_edge(0, i)
        end = max_congestion(g, [0, 1, 2, 3, 4])
        mid = max_congestion(g, [1, 2, 0, 3, 4])
        assert end == 4 and mid == 2

    def test_bad_order_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            max_congestion(g, [0, 1])
        with pytest.raises(ValueError):
            max_congestion(g, [0, 1, 5])


class TestLeftEdge:
    def test_uses_exactly_congestion_tracks(self):
        for g, order in [
            (complete_graph(9), range(9)),
            (hypercube_graph(4), range(16)),
            (complete_multigraph(5, 2), range(5)),
        ]:
            assign = left_edge_tracks(g, order)
            assert max(assign.values()) + 1 == max_congestion(g, order)

    def test_no_overlap_within_track(self):
        g = hypercube_graph(4)
        assign = left_edge_tracks(g, range(16))
        by_track = {}
        for (u, v, _c), t in assign.items():
            by_track.setdefault(t, []).append((min(u, v), max(u, v)))
        for links in by_track.values():
            links.sort()
            for (a1, b1), (a2, b2) in zip(links, links[1:]):
                assert b1 <= a2

    def test_covers_all_copies(self):
        g = complete_multigraph(4, 3)
        assign = left_edge_tracks(g, range(4))
        assert len(assign) == 3 * 6


class TestGeometric:
    @pytest.mark.parametrize(
        "g",
        [complete_graph(7), hypercube_graph(3), complete_multigraph(4, 2), path_graph(6)],
        ids=["K7", "Q3", "K4x2", "P6"],
    )
    def test_validates(self, g):
        gl = generic_collinear_layout(g)
        rep = validate_layout(gl.layout, gl.graph)
        assert rep.ok, rep.errors
        assert gl.tracks_total == gl.congestion

    def test_custom_order(self):
        g = complete_graph(5)
        gl = generic_collinear_layout(g, order=[4, 3, 2, 1, 0])
        validate_layout(gl.layout, gl.graph).raise_if_failed()
        assert gl.order == (4, 3, 2, 1, 0)

    def test_node_side_check(self):
        with pytest.raises(ValueError):
            generic_collinear_layout(complete_graph(9), node_side=2)


@settings(deadline=None, max_examples=20)
@given(
    st.integers(min_value=3, max_value=10),
    st.sets(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=25),
)
def test_random_graph_property(n, pairs):
    g = Graph("rand")
    g.add_nodes(range(n))
    for a, b in pairs:
        if a != b and a < n and b < n:
            g.add_edge(a, b)
    assign = left_edge_tracks(g, range(n))
    if assign:
        assert max(assign.values()) + 1 == max_congestion(g, range(n))
    gl = generic_collinear_layout(g)
    rep = validate_layout(gl.layout, gl.graph)
    assert rep.ok, rep.errors
