"""Tests for the companion-network layouts (hypercube, GHC, torus) built
on the 2-D grid recipe — the paper's conclusion extension."""

import pytest

from repro.layout.collinear import optimal_track_count
from repro.layout.ghc_layout import (
    cycle_collinear_congestion,
    ghc_2d_layout,
    torus_2d_layout,
)
from repro.layout.grid2d import build_grid2d_layout
from repro.layout.hypercube_layout import (
    hypercube_2d_area_estimate,
    hypercube_2d_dims,
    hypercube_2d_layout,
    hypercube_collinear_congestion,
)
from repro.layout.validate import validate_layout
from repro.topology.graph import Graph
from repro.topology.hypercube import generalized_hypercube_graph, hypercube_graph


class TestHypercubeCongestion:
    def test_closed_form_small(self):
        assert hypercube_collinear_congestion(1) == 1
        assert hypercube_collinear_congestion(2) == 2
        assert hypercube_collinear_congestion(3) == 5
        assert hypercube_collinear_congestion(4) == 10

    def test_closed_form_matches_engine(self):
        from repro.layout.collinear_generic import max_congestion

        for b in range(1, 9):
            g = hypercube_graph(b)
            assert max_congestion(g, range(1 << b)) == hypercube_collinear_congestion(b)


class TestHypercubeLayout:
    @pytest.mark.parametrize("n,L", [(2, 2), (4, 2), (5, 2), (6, 2), (6, 4), (7, 3)])
    def test_validates(self, n, L):
        res = hypercube_2d_layout(n, L=L)
        rep = validate_layout(res.layout, res.graph)
        assert rep.ok, rep.errors[:3]

    def test_realizes_hypercube(self):
        """The grid layout's network is isomorphic to Q_n under the
        (row, col) -> (row << b) | col relabeling."""
        n, b = 5, 3
        res = hypercube_2d_layout(n, split=(2, 3))
        q = hypercube_graph(n)
        mapping = {(r, c): (r << b) | c for (r, c) in res.graph.nodes()}
        assert res.graph.is_isomorphic_by(q, mapping)

    def test_dims_match_builder(self):
        for n, L in [(4, 2), (6, 2), (6, 4)]:
            res = hypercube_2d_layout(n, L=L)
            d = hypercube_2d_dims(n, L=L)
            assert res.dims == d
            x0, y0, x1, y1 = res.layout.bounding_box()
            assert d.width - (x1 - x0) == 2
            assert d.height - (y1 - y0) == 2

    def test_area_converges_to_4_9_N2(self):
        """(2/3 N)^2 leading term at L=2, via closed-form dims."""
        ratios = []
        for n in (8, 12, 16, 20, 24, 30):
            d = hypercube_2d_dims(n)
            ratios.append(d.area / hypercube_2d_area_estimate(n))
        assert all(a > b for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] < 1.01

    def test_split_validation(self):
        with pytest.raises(ValueError):
            hypercube_2d_layout(4, split=(1, 2))
        with pytest.raises(ValueError):
            hypercube_2d_layout(4, split=(0, 4))
        with pytest.raises(ValueError):
            hypercube_2d_dims(6, split=(2, 3))

    def test_multilayer_shrinks(self):
        d2 = hypercube_2d_dims(16, L=2)
        d4 = hypercube_2d_dims(16, L=4)
        assert d4.area < d2.area


class TestGhcAndTorus:
    def test_ghc_validates_and_matches_graph(self):
        res = ghc_2d_layout(4, 4)
        rep = validate_layout(res.layout, res.graph)
        assert rep.ok, rep.errors[:3]
        ghc = generalized_hypercube_graph([4, 4])
        assert res.graph.is_isomorphic_by(ghc, {n: n for n in res.graph.nodes()})

    def test_ghc_channels_are_appendix_b(self):
        res = ghc_2d_layout(8, 8)
        assert res.dims.row_tracks == optimal_track_count(8)
        assert res.dims.col_tracks == optimal_track_count(8)

    def test_torus_validates(self):
        for k in (3, 4, 6):
            res = torus_2d_layout(k)
            rep = validate_layout(res.layout, res.graph)
            assert rep.ok, rep.errors[:3]
            assert res.dims.row_tracks == 2

    def test_cycle_congestion(self):
        assert cycle_collinear_congestion(3) == 2
        assert cycle_collinear_congestion(8) == 2
        assert cycle_collinear_congestion(2) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ghc_2d_layout(1, 4)
        with pytest.raises(ValueError):
            torus_2d_layout(2)


class TestGrid2DBuilder:
    def test_rejects_bad_graphs(self):
        bad = Graph()
        bad.add_edge(0, 7)  # node 7 outside a 4-column row

        with pytest.raises(ValueError):
            build_grid2d_layout(2, 4, lambda r: bad, lambda c: Graph())

    def test_empty_channels(self):
        """Rows only (no column links): vertical channels collapse."""
        row = Graph()
        row.add_nodes(range(3))
        row.add_edge(0, 2)
        empty = Graph()
        empty.add_nodes(range(2))
        res = build_grid2d_layout(2, 3, lambda r: row, lambda c: empty)
        rep = validate_layout(res.layout, res.graph)
        assert rep.ok, rep.errors
        assert res.dims.chan_v == 0

    def test_inhomogeneous_rows(self):
        def row_graph(r):
            g = Graph()
            g.add_nodes(range(3))
            if r == 0:
                g.add_edge(0, 1)
                g.add_edge(1, 2)
            return g

        empty = Graph()
        empty.add_nodes(range(2))
        res = build_grid2d_layout(2, 3, row_graph, lambda c: empty)
        rep = validate_layout(res.layout, res.graph)
        assert rep.ok, rep.errors
        assert res.graph.num_edges == 2


class TestSplitChannels:
    """The Section 5.2 remark, geometrically: splitting each link set to
    opposite node edges halves the per-edge terminal demand."""

    @staticmethod
    def _k8x4(_):
        g = Graph("K8x4")
        g.add_nodes(range(8))
        for u in range(8):
            for v in range(u + 1, 8):
                g.add_edge(u, v, 4)
        return g

    def test_board_wiring_fits_side_20_chips(self):
        """K_8 with quadruple links needs 28 terminals unsplit (> 20);
        split channels bring it to 14 + 1 per edge, and the full 8x8
        board layout validates."""
        with pytest.raises(ValueError):
            build_grid2d_layout(8, 8, self._k8x4, self._k8x4, W=20)
        res = build_grid2d_layout(
            8, 8, self._k8x4, self._k8x4, W=20, split_channels=True, name="board"
        )
        rep = validate_layout(res.layout, res.graph)
        assert rep.ok, rep.errors[:3]
        # each split channel carries half the 64 tracks
        assert res.dims.chan_h == res.dims.chan_h2 == 32
        assert res.dims.chan_v == res.dims.chan_v2 == 32
        # realises K_8 x4 on every row and column
        assert res.graph.multiplicity((0, 0), (0, 7)) == 4
        assert res.graph.multiplicity((0, 0), (7, 0)) == 4

    def test_split_halves_demand(self):
        full = build_grid2d_layout(4, 4, self._mini, self._mini)
        split = build_grid2d_layout(
            4, 4, self._mini, self._mini, split_channels=True
        )
        assert split.dims.chan_h < full.dims.chan_h
        for r in (full, split):
            validate_layout(r.layout, r.graph).raise_if_failed()
        assert split.graph.same_as(full.graph)

    @staticmethod
    def _mini(_):
        g = Graph("K4x2")
        g.add_nodes(range(4))
        for u in range(4):
            for v in range(u + 1, 4):
                g.add_edge(u, v, 2)
        return g

    def test_split_with_multilayer(self):
        res = build_grid2d_layout(
            4, 4, self._mini, self._mini, split_channels=True, L=4
        )
        validate_layout(res.layout, res.graph).raise_if_failed()


class TestSplitWrappers:
    def test_hypercube_split(self):
        from repro.layout.hypercube_layout import hypercube_2d_layout

        full = hypercube_2d_layout(6)
        half = hypercube_2d_layout(6, split_channels=True)
        for r in (full, half):
            validate_layout(r.layout, r.graph).raise_if_failed()
        assert half.graph.same_as(full.graph)
        # per-edge terminal demand halves (3 per edge instead of 6... +1)
        assert half.dims.chan_h < full.dims.chan_h

    def test_ghc_split(self):
        res = ghc_2d_layout(8, 8, split_channels=True)
        validate_layout(res.layout, res.graph).raise_if_failed()
        assert res.dims.chan_h2 > 0
