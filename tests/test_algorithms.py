"""Tests for ascend/FFT dataflow verification and routing simulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.ascend import AscendTrace, run_on_butterfly, run_on_isn
from repro.algorithms.fft import dit_combine, fft_via_butterfly, fft_via_isn
from repro.algorithms.routing import (
    measure_offmodule_traffic,
    path_rows,
)
from repro.analysis.bounds import pin_lower_bound
from repro.topology.isn import ISN

from tests.conftest import param_vector_strategy


class TestAscend:
    def test_sum_reduction(self):
        """An ascend all-reduce (sum) leaves every slot with the total."""

        def combine(v0, v1, idx0, bit):
            s = v0 + v1
            return s, s

        out = run_on_butterfly(np.arange(8, dtype=complex), combine)
        assert np.allclose(out, 28)

    def test_trace_moves_are_edges(self):
        tr = AscendTrace()
        run_on_butterfly(np.zeros(8), lambda a, b, i, s: (a, b), trace=tr)
        # 2 directed moves per pair, 4 pairs per stage, 3 stages
        assert len(tr.moves) == 2 * 4 * 3

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            run_on_butterfly(np.zeros(6), lambda a, b, i, s: (a, b))

    def test_isn_logical_tracking(self):
        isn = ISN.from_ks((2, 2))
        vals, logical = run_on_isn(
            np.arange(16, dtype=complex), isn, lambda a, b, i, s: (a, b)
        )
        assert sorted(logical) == list(range(16))
        # identity combine: value == logical index it carries
        assert np.allclose(vals, logical)

    def test_isn_wrong_length(self):
        isn = ISN.from_ks((1, 1))
        with pytest.raises(ValueError):
            run_on_isn(np.zeros(8), isn, lambda a, b, i, s: (a, b))


class TestFFT:
    @pytest.mark.parametrize("n", range(1, 9))
    def test_butterfly_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        assert np.allclose(fft_via_butterfly(x), np.fft.fft(x))

    @pytest.mark.parametrize(
        "ks", [(1, 1), (2, 1), (2, 2), (3, 3), (2, 2, 2), (3, 2, 2), (2, 2, 1)]
    )
    def test_isn_matches_numpy(self, ks):
        isn = ISN.from_ks(ks)
        rng = np.random.default_rng(sum(ks))
        x = rng.normal(size=isn.rows) + 1j * rng.normal(size=isn.rows)
        assert np.allclose(fft_via_isn(x, isn), np.fft.fft(x))

    def test_dit_combine_is_butterfly(self):
        v0 = np.array([1.0 + 0j])
        v1 = np.array([2.0 + 0j])
        idx0 = np.array([0])
        a, b = dit_combine(v0, v1, idx0, 0)
        assert np.allclose(a, 3) and np.allclose(b, -1)

    def test_isn_size_mismatch(self):
        isn = ISN.from_ks((2, 2))
        with pytest.raises(ValueError):
            fft_via_isn(np.zeros(8), isn)


@settings(deadline=None, max_examples=10)
@given(
    param_vector_strategy(max_l=3, max_k1=3, max_n=8),
    st.integers(0, 2**31 - 1),
)
def test_fft_isn_property(ks, seed):
    isn = ISN.from_ks(ks)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=isn.rows)
    assert np.allclose(fft_via_isn(x, isn), np.fft.fft(x))


class TestRouting:
    def test_path_rows_endpoints(self):
        src = np.array([0b101, 0b000])
        dst = np.array([0b010, 0b111])
        rows = path_rows(3, src, dst)
        assert list(rows[0]) == [0b101, 0b000]
        assert list(rows[3]) == [0b010, 0b111]

    def test_path_fixes_bits_in_ascend_order(self):
        rows = path_rows(3, np.array([0b000]), np.array([0b111]))
        assert [int(r[0]) for r in rows] == [0b000, 0b001, 0b011, 0b111]

    def test_traffic_balanced_across_modules(self):
        d = measure_offmodule_traffic((2, 2, 2), num_packets=20000)
        counts = np.array(list(d.crossings_per_module.values()))
        assert len(counts) == 16
        assert counts.std() / counts.mean() < 0.1

    def test_demand_within_constant_of_pin_bound(self):
        """The Section 2.3 argument: at injection rate 1/log2 R per input,
        a module's boundary demand is Theta(M / log R); our partition's
        pins cover it within a small constant."""
        from repro.packaging.pins import row_partition_offmodule_per_module

        ks = (3, 3, 3)
        d = measure_offmodule_traffic(ks, num_packets=50000)
        n = 9
        # crossings per module if every input injects one packet per step:
        per_module_demand = (
            2 * d.total_crossings / (64 * d.num_packets) * (1 << n)
        ) / (1 << 3) * (1 << 3)  # packets scaled to R inputs
        pins = row_partition_offmodule_per_module(ks)
        lb = pin_lower_bound(80, 512)
        # demand per module per step at rate 1/log2(R) is ~ lb; pins exceed
        rate = 1 / n
        demand_at_rate = per_module_demand * rate
        assert demand_at_rate <= pins
        assert demand_at_rate >= lb / 8

    def test_reproducible_with_seed(self):
        rng1 = np.random.default_rng(7)
        rng2 = np.random.default_rng(7)
        d1 = measure_offmodule_traffic((2, 2), 1000, rng=rng1)
        d2 = measure_offmodule_traffic((2, 2), 1000, rng=rng2)
        assert d1.crossings_per_module == d2.crossings_per_module

    def test_demand_averages_over_all_modules(self):
        # regression: the per-module demand must divide by the true module
        # count R / 2**k1, not by however many modules happened to see a
        # crossing in the sample
        from repro.algorithms.routing import RoutingDemand

        d = RoutingDemand(
            num_packets=10,
            rows_per_module=2,
            num_modules=4,
            crossings_per_module={0: 3, 1: 3},  # modules 2, 3 untouched
            total_crossings=3,
        )
        assert d.demand_per_module_per_packet() == pytest.approx(
            3 * 2 / (4 * 10)
        )
        empty = RoutingDemand(
            num_packets=0,
            rows_per_module=2,
            num_modules=0,
            crossings_per_module={},
            total_crossings=0,
        )
        assert empty.demand_per_module_per_packet() == 0.0

    def test_measured_demand_carries_true_module_count(self):
        d = measure_offmodule_traffic((2, 1), num_packets=500)
        assert d.num_modules == (1 << 3) >> 2  # R / 2**k1 = 2
        assert d.demand_per_module_per_packet() == pytest.approx(
            d.total_crossings * 2 / (d.num_modules * d.num_packets)
        )
