"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_ks_parsing(self):
        args = build_parser().parse_args(["verify", "--ks", "3,3,3"])
        assert args.ks == (3, 3, 3)

    def test_bad_ks(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--ks", "a,b"])


class TestCommands:
    def test_verify(self, capsys):
        assert main(["verify", "--ks", "2,2,2"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_materialize(self, capsys):
        assert main(["verify", "--ks", "2,2", "--materialize"]) == 0
        assert "graph comparison" in capsys.readouterr().out

    def test_layout(self, capsys, tmp_path):
        svg = tmp_path / "out.svg"
        assert main(["layout", "--ks", "1,1,1", "--svg", str(svg)]) == 0
        out = capsys.readouterr().out
        assert "validation (table): OK" in out
        assert "area" in out
        assert "p99" in out  # wire-length distribution row
        assert svg.exists()

    def test_layout_legacy_engine_matches(self, capsys):
        assert main(["layout", "--ks", "1,1,1", "--legacy"]) == 0
        legacy_out = capsys.readouterr().out
        assert "validation (legacy): OK" in legacy_out
        assert main(["layout", "--ks", "1,1,1"]) == 0
        table_out = capsys.readouterr().out
        # identical metric tables (strip the timing line)
        strip = lambda s: "\n".join(s.splitlines()[1:])
        assert strip(legacy_out) == strip(table_out)

    def test_layout_chunked_flags_same_table(self, capsys):
        assert main(["layout", "--ks", "2,2,2"]) == 0
        plain = capsys.readouterr()
        assert main(["layout", "--ks", "2,2,2", "--memory-budget", "4096",
                     "--workers", "2"]) == 0
        chunked = capsys.readouterr()
        # the chunk-estimate note rides on stderr next to the cache note
        assert "[chunked " in chunked.err and "workers=2" in chunked.err
        assert "[cache " in chunked.err
        # stdout metrics are byte-identical (strip the timing line)
        strip = lambda s: "\n".join(s.splitlines()[1:])
        assert strip(chunked.out) == strip(plain.out)

    def test_layout_flag_validation_exits_2(self, capsys):
        for flags in (["--memory-budget", "0"], ["--workers", "-1"],
                      ["--workers", "two"]):
            with pytest.raises(SystemExit) as exc:
                main(["layout", "--ks", "2,2,2", *flags])
            assert exc.value.code == 2
            assert "expected a positive integer" in capsys.readouterr().err

    def test_layout_exec_flags_need_service_path(self, capsys):
        assert main(["layout", "--ks", "2,2,2", "--workers", "2",
                     "--legacy"]) == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_campaign_spec_carries_exec_knobs(self):
        from repro.cli import _campaign_spec, build_parser

        p = build_parser()
        args = p.parse_args(["campaign", "run", "--ks", "1,1,1",
                             "--memory-budget", "8192",
                             "--layout-workers", "2"])
        spec = _campaign_spec(args)
        assert spec["config"]["layout_memory_budget"] == 8192
        assert spec["config"]["layout_workers"] == 2
        args2 = p.parse_args(["campaign", "run", "--ks", "1,1,1"])
        assert "config" not in _campaign_spec(args2)

    def test_dims(self, capsys):
        assert main(["dims", "--ks", "8,8,8", "--layers", "4"]) == 0
        assert "area" in capsys.readouterr().out

    def test_collinear(self, capsys):
        assert main(["collinear", "-n", "9", "--tracks"]) == 0
        out = capsys.readouterr().out
        assert "20 tracks" in out
        assert "track  19" in out

    def test_board(self, capsys):
        assert main(["board", "--layers", "8"]) == 0
        assert "78400" in capsys.readouterr().out

    def test_optimize(self, capsys):
        assert main(["optimize", "-n", "9", "--max-pins", "64"]) == 0
        assert "(3, 3, 3)" in capsys.readouterr().out

    def test_optimize_infeasible(self, capsys):
        assert main(["optimize", "-n", "9", "--max-pins", "1"]) == 1

    def test_package_report(self, capsys):
        assert main(["package", "--ks", "3,3,3"]) == 0
        out = capsys.readouterr().out
        assert "row" in out and "nucleus" in out and "naive" in out
        assert "56" in out  # Section 5.2's exact row-partition pins
        assert "FAILED" not in out

    def test_package_report_naive_non_power_of_two(self, capsys):
        assert main(
            ["package", "--ks", "3,3,3", "--scheme", "naive",
             "--rows-per-module", "3"]
        ) == 0
        assert "171" in capsys.readouterr().out  # ceil(512/3) modules

    def test_package_sweep_exact_json(self, capsys, tmp_path):
        out_json = tmp_path / "package.json"
        assert main(
            ["package", "-n", "8", "--exact", "--max-pins", "64",
             "--top", "4", "--json", str(out_json)]
        ) == 0
        assert "pins exact" in capsys.readouterr().out
        import json

        data = json.loads(out_json.read_text())
        assert data["mode"] == "sweep" and data["exact"]
        assert data["num_candidates"] >= 1
        assert all("pins exact" in row for row in data["top"])

    def test_package_sweep_infeasible(self, capsys):
        assert main(["package", "-n", "8", "--max-pins", "1"]) == 1

    def test_package_needs_exactly_one_mode(self, capsys):
        assert main(["package"]) == 2
        assert main(["package", "--ks", "2,2", "-n", "4"]) == 2

    def test_package_report_json(self, capsys, tmp_path):
        out_json = tmp_path / "report.json"
        assert main(
            ["package", "--ks", "2,2", "--json", str(out_json)]
        ) == 0
        import json

        data = json.loads(out_json.read_text())
        assert data["mode"] == "report" and data["all_match"]

    def test_multilevel(self, capsys):
        assert main(["multilevel", "--ks", "3,3,3"]) == 0
        assert "224" in capsys.readouterr().out

    def test_hypercube(self, capsys):
        assert main(["hypercube", "-n", "4"]) == 0
        assert "Q_4" in capsys.readouterr().out

    def test_benes(self, capsys):
        assert main(["benes", "-n", "4", "--permutations", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("realized=OK") == 2

    def test_benes_batch_json(self, capsys, tmp_path):
        import json

        report = tmp_path / "benes.json"
        assert main(["benes", "-n", "5", "--batch", "20",
                     "--json", str(report)]) == 0
        out = capsys.readouterr().out
        assert "batch: 20 perms" in out and "realized=OK" in out
        data = json.loads(report.read_text())
        assert data["mode"] == "batch" and data["realized_ok"] is True

    def test_benes_explicit_perm_and_legacy(self, capsys):
        assert main(["benes", "--perm", "3,1,0,2"]) == 0
        new_out = capsys.readouterr().out
        assert main(["benes", "--perm", "3,1,0,2", "--legacy"]) == 0
        legacy_out = capsys.readouterr().out
        # both engines route the same perm with identical counts
        assert new_out == legacy_out
        assert "realized=OK" in new_out

    def test_benes_requires_n_or_perm(self, capsys):
        assert main(["benes"]) == 2
        assert "give -n or --perm" in capsys.readouterr().err

    def test_fft(self, capsys):
        assert main(["fft", "--ks", "2,2"]) == 0
        assert "max |err|" in capsys.readouterr().out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 4" in out

    def test_ccc(self, capsys):
        assert main(["ccc", "-n", "3"]) == 0
        assert "CCC(3)" in capsys.readouterr().out

    def test_omega(self, capsys):
        assert main(["omega", "-n", "3"]) == 0
        assert "routes checked: 8" in capsys.readouterr().out

    def test_sort(self, capsys):
        assert main(["sort", "-n", "5"]) == 0
        assert "sorted=OK" in capsys.readouterr().out

    def test_isn_layout(self, capsys):
        assert main(["isn-layout", "--ks", "2,2"]) == 0
        assert "valid=OK" in capsys.readouterr().out

    def test_board_svg(self, capsys, tmp_path):
        svg = tmp_path / "board.svg"
        assert main(["board", "--svg", str(svg)]) == 0
        assert svg.exists()


class TestServiceRoundTrip:
    """--json round trips through the cached service layer, plus the
    cache admin subcommands."""

    def test_dims_json_roundtrip(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "dims.json"
        assert main(["dims", "--ks", "2,2,2", "--layers", "4",
                     "--json", str(out_json)]) == 0
        data = json.loads(out_json.read_text())
        assert data["kind"] == "dims"
        assert data["params"] == {
            "ks": [2, 2, 2], "layers": 4, "node_side": 4,
        }
        assert data["summary"]["area"] > 0

    def test_layout_json_roundtrip(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "layout.json"
        assert main(["layout", "--ks", "1,1,1", "--json", str(out_json)]) == 0
        data = json.loads(out_json.read_text())
        assert data["kind"] == "layout" and data["valid"]
        assert data["params"]["ks"] == [1, 1, 1]
        assert data["summary"]["wires"] > 0
        assert "p99" in data["wire_stats"]

    def test_package_json_roundtrip(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "package.json"
        assert main(["package", "--ks", "2,2,2", "--json",
                     str(out_json)]) == 0
        data = json.loads(out_json.read_text())
        assert data["mode"] == "report" and data["all_match"]
        assert {s["scheme"] for s in data["schemes"]} == {
            "row", "nucleus", "naive",
        }

    def test_benes_json_roundtrip(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "benes.json"
        assert main(["benes", "-n", "4", "--batch", "6", "--seed", "9",
                     "--json", str(out_json)]) == 0
        data = json.loads(out_json.read_text())
        assert data["mode"] == "batch" and data["realized_ok"]
        assert data["terminals"] == 16 and data["seed"] == 9
        assert data["crossed"]["max"] <= data["switches"]

    def test_cache_miss_then_hit_same_stdout(self, capsys, tmp_path):
        argv = ["dims", "--ks", "2,2,2",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "[cache miss" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "[cache hit" in second.err
        assert first.out == second.out  # cache state never leaks to stdout

    def test_no_cache_flag(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main(["dims", "--ks", "2,2,2", "--cache-dir", str(cache),
                     "--no-cache"]) == 0
        assert "[cache off" in capsys.readouterr().err
        assert main(["cache", "ls", "--cache-dir", str(cache)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_bad_params_exit_2(self, capsys):
        # the service cap exits 2, same as argparse's own errors
        with pytest.raises(SystemExit) as ei:
            main(["dims", "--ks", "13,13"])  # sum(ks) > 24
        assert ei.value.code == 2
        assert "sum(ks) capped" in capsys.readouterr().err

    def test_cache_verify_flags_bitflip(self, capsys, tmp_path):
        import os

        cache = str(tmp_path / "cache")
        assert main(["benes", "-n", "3", "--batch", "2",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        payloads = [
            os.path.join(dirpath, f)
            for dirpath, _dirs, files in os.walk(cache)
            for f in files
            if f == "payload.npz"
        ]
        assert payloads
        with open(payloads[0], "r+b") as fh:
            fh.seek(80)
            b = fh.read(1)
            fh.seek(80)
            fh.write(bytes([b[0] ^ 0xFF]))
        assert main(["cache", "verify", "--cache-dir", cache]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt (quarantined)" in out and "CORRUPT" in out
        # quarantined entry recomputes on the next query ...
        assert main(["benes", "-n", "3", "--batch", "2",
                     "--cache-dir", cache]) == 0
        assert "[cache miss" in capsys.readouterr().err
        # ... and a clean store verifies clean
        assert main(["cache", "verify", "--cache-dir", cache]) == 0

    def test_cache_ls_and_gc(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["dims", "--ks", "2,2,2", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "dims" in out and "1 entries" in out
        assert main(["cache", "gc", "--cache-dir", cache,
                     "--max-age-days", "0"]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_serve_smoke_max_requests_zero(self, capsys, tmp_path):
        assert main(["serve", "--port", "0", "--max-requests", "0",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--quiet"]) == 0
        assert "repro serve: http://" in capsys.readouterr().out


class TestSim:
    def test_single_run(self, capsys):
        assert main(["sim", "-n", "3", "--rate", "0.6", "--cycles", "200"]) == 0
        out = capsys.readouterr().out
        assert "throughput/input" in out
        assert "max queue" in out

    def test_legacy_matches_vectorized(self, capsys):
        argv = ["sim", "-n", "2", "--rate", "0.5", "--cycles", "150"]
        assert main(argv) == 0
        vec = capsys.readouterr().out
        assert main(argv + ["--legacy"]) == 0
        leg = capsys.readouterr().out
        assert vec == leg

    def test_sweep(self, capsys):
        assert main(
            ["sim", "-n", "3", "--rates", "0.3,0.8", "--cycles", "200",
             "--seeds", "0,1"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("0.3") >= 2  # one row per (rate, seed)

    def test_saturation(self, capsys):
        assert main(["sim", "-n", "3", "--cycles", "300", "--saturation"]) == 0
        assert "1/(n+1) wall" in capsys.readouterr().out

    def test_trace_export(self, capsys, tmp_path):
        csv_path = tmp_path / "t.csv"
        json_path = tmp_path / "t.json"
        assert main(
            ["sim", "-n", "3", "--rate", "0.7", "--cycles", "150",
             "--trace-csv", str(csv_path), "--trace-json", str(json_path)]
        ) == 0
        assert csv_path.exists() and json_path.exists()
        header = csv_path.read_text().splitlines()[0]
        assert header == "cycle,injected,delivered,in_flight,max_depth"

    def test_trace_rejected_with_legacy(self, tmp_path):
        assert main(
            ["sim", "-n", "3", "--legacy", "--trace-csv",
             str(tmp_path / "t.csv")]
        ) == 2

    def test_sweep_rejects_legacy(self):
        assert main(["sim", "-n", "3", "--rates", "0.3,0.8", "--legacy"]) == 2
