"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_ks_parsing(self):
        args = build_parser().parse_args(["verify", "--ks", "3,3,3"])
        assert args.ks == (3, 3, 3)

    def test_bad_ks(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--ks", "a,b"])


class TestCommands:
    def test_verify(self, capsys):
        assert main(["verify", "--ks", "2,2,2"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_materialize(self, capsys):
        assert main(["verify", "--ks", "2,2", "--materialize"]) == 0
        assert "graph comparison" in capsys.readouterr().out

    def test_layout(self, capsys, tmp_path):
        svg = tmp_path / "out.svg"
        assert main(["layout", "--ks", "1,1,1", "--svg", str(svg)]) == 0
        out = capsys.readouterr().out
        assert "validation: OK" in out
        assert "area" in out
        assert svg.exists()

    def test_dims(self, capsys):
        assert main(["dims", "--ks", "8,8,8", "--layers", "4"]) == 0
        assert "area" in capsys.readouterr().out

    def test_collinear(self, capsys):
        assert main(["collinear", "-n", "9", "--tracks"]) == 0
        out = capsys.readouterr().out
        assert "20 tracks" in out
        assert "track  19" in out

    def test_board(self, capsys):
        assert main(["board", "--layers", "8"]) == 0
        assert "78400" in capsys.readouterr().out

    def test_optimize(self, capsys):
        assert main(["optimize", "-n", "9", "--max-pins", "64"]) == 0
        assert "(3, 3, 3)" in capsys.readouterr().out

    def test_optimize_infeasible(self, capsys):
        assert main(["optimize", "-n", "9", "--max-pins", "1"]) == 1

    def test_multilevel(self, capsys):
        assert main(["multilevel", "--ks", "3,3,3"]) == 0
        assert "224" in capsys.readouterr().out

    def test_hypercube(self, capsys):
        assert main(["hypercube", "-n", "4"]) == 0
        assert "Q_4" in capsys.readouterr().out

    def test_benes(self, capsys):
        assert main(["benes", "-n", "4", "--permutations", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("realized=OK") == 2

    def test_fft(self, capsys):
        assert main(["fft", "--ks", "2,2"]) == 0
        assert "max |err|" in capsys.readouterr().out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 4" in out

    def test_ccc(self, capsys):
        assert main(["ccc", "-n", "3"]) == 0
        assert "CCC(3)" in capsys.readouterr().out

    def test_omega(self, capsys):
        assert main(["omega", "-n", "3"]) == 0
        assert "routes checked: 8" in capsys.readouterr().out

    def test_sort(self, capsys):
        assert main(["sort", "-n", "5"]) == 0
        assert "sorted=OK" in capsys.readouterr().out

    def test_isn_layout(self, capsys):
        assert main(["isn-layout", "--ks", "2,2"]) == 0
        assert "valid=OK" in capsys.readouterr().out

    def test_board_svg(self, capsys, tmp_path):
        svg = tmp_path / "board.svg"
        assert main(["board", "--svg", str(svg)]) == 0
        assert svg.exists()
