"""Tests for Appendix B: optimal collinear layouts of complete graphs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.bounds import collinear_track_lower_bound
from repro.layout.collinear import (
    chen_agrawal_track_count,
    collinear_layout,
    naive_track_count,
    optimal_track_count,
    track_assignment,
)
from repro.layout.validate import validate_layout


class TestTrackCounts:
    def test_k9_is_20(self):
        """Figure 4: K_9 in 20 tracks."""
        assert optimal_track_count(9) == 20

    @pytest.mark.parametrize("n,expected", [(2, 1), (3, 2), (4, 4), (8, 16), (16, 64)])
    def test_known_values(self, n, expected):
        assert optimal_track_count(n) == expected

    def test_matches_bisection_lower_bound(self):
        for n in range(2, 64):
            assert optimal_track_count(n) == collinear_track_lower_bound(n)

    def test_chen_agrawal_larger(self):
        # the 25% improvement claim: ratio -> 4/3 for powers of two
        prev = 0.0
        for p in range(3, 11):
            n = 1 << p
            ours, theirs = optimal_track_count(n), chen_agrawal_track_count(n)
            assert theirs > ours
            ratio = theirs / ours
            assert prev < ratio < 4 / 3  # increases toward 4/3
            prev = ratio
        assert 4 / 3 - prev < 0.002

    def test_naive_worst(self):
        # comparable only at powers of two (Chen-Agrawal rounds up)
        for n in (4, 16, 64):
            assert naive_track_count(n) >= chen_agrawal_track_count(n) >= optimal_track_count(n)

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_track_count(0)
        with pytest.raises(ValueError):
            chen_agrawal_track_count(1)

    def test_chen_agrawal_k2_needs_one_track(self):
        # regression: the closed form gives 0 at n=2, but K_2 has one link
        # and therefore needs one track
        assert chen_agrawal_track_count(2) == 1
        assert chen_agrawal_track_count(2) >= optimal_track_count(2)


class TestAssignment:
    def test_covers_all_links(self):
        a = track_assignment(9)
        assert len(a) == 9 * 8 // 2

    def test_track_range(self):
        a = track_assignment(9)
        assert set(a.values()) <= set(range(20))
        assert max(a.values()) == 19

    def test_type_partitioning(self):
        """Type-i links occupy exactly min(i, n-i) tracks."""
        n = 12
        a = track_assignment(n)
        by_type = {}
        for (x, y), t in a.items():
            by_type.setdefault(y - x, set()).add(t)
        for i, tracks in by_type.items():
            assert len(tracks) == min(i, n - i)

    def test_no_overlap_within_track(self):
        """Links sharing a track never strictly overlap as intervals."""
        for n in (5, 8, 9, 13):
            a = track_assignment(n)
            by_track = {}
            for e, t in a.items():
                by_track.setdefault(t, []).append(e)
            for links in by_track.values():
                links.sort()
                for (a1, b1), (a2, b2) in zip(links, links[1:]):
                    assert b1 <= a2, (links,)

    def test_reversed_is_flip(self):
        f = track_assignment(9, "forward")
        r = track_assignment(9, "reversed")
        for e in f:
            assert r[e] == 19 - f[e]

    def test_too_small(self):
        with pytest.raises(ValueError):
            track_assignment(1)


class TestGeometricLayout:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 9])
    @pytest.mark.parametrize("mult", [1, 2])
    def test_validates(self, n, mult):
        cl = collinear_layout(n, multiplicity=mult)
        validate_layout(cl.layout, cl.graph).raise_if_failed()

    def test_track_total(self):
        cl = collinear_layout(9, multiplicity=4)
        assert cl.tracks_total == 80
        # height ~ node side + tracks
        # node band (side) plus one y-unit per track
        assert cl.layout.height == cl.node_side + cl.tracks_total

    def test_reversed_reduces_max_wire(self):
        """Paper: 'we can reverse the order of horizontal tracks so that
        the maximum wire length is reduced'."""
        for n in (8, 16, 24):
            fwd = collinear_layout(n, order="forward")
            rev = collinear_layout(n, order="reversed")
            assert rev.layout.max_wire_length() < fwd.layout.max_wire_length()

    def test_node_side_must_host_terminals(self):
        with pytest.raises(ValueError):
            collinear_layout(9, node_side=3)

    def test_custom_node_side(self):
        cl = collinear_layout(5, node_side=10)
        validate_layout(cl.layout, cl.graph).raise_if_failed()
        assert cl.node_side == 10

    def test_summary(self):
        s = collinear_layout(5).summary()
        assert s["tracks"] == optimal_track_count(5)
        assert s["wires"] == 10


@settings(deadline=None, max_examples=20)
@given(st.integers(min_value=2, max_value=40))
def test_track_count_formula(n):
    assert optimal_track_count(n) == sum(min(i, n - i) for i in range(1, n))
    a = track_assignment(n)
    assert max(a.values()) + 1 == optimal_track_count(n)


@settings(deadline=None, max_examples=10)
@given(st.integers(min_value=2, max_value=14), st.integers(min_value=1, max_value=3))
def test_geometric_layout_property(n, mult):
    cl = collinear_layout(n, multiplicity=mult)
    rep = validate_layout(cl.layout, cl.graph)
    assert rep.ok, rep.errors
