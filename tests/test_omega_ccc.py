"""Tests for omega networks and cube-connected-cycles layouts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.layout.ccc_layout import ccc_2d_layout, ccc_graph
from repro.layout.multistage import build_multistage_layout
from repro.layout.validate import validate_layout
from repro.topology.omega import (
    Omega,
    destination_tag_route,
    omega_graph,
    perfect_shuffle,
)


class TestOmega:
    def test_shuffle(self):
        assert perfect_shuffle(0b011, 3) == 0b110
        assert perfect_shuffle(0b100, 3) == 0b001
        assert perfect_shuffle(1, 1) == 1
        with pytest.raises(ValueError):
            perfect_shuffle(0, 0)

    def test_shuffle_is_permutation(self):
        for n in (2, 3, 4):
            imgs = {perfect_shuffle(u, n) for u in range(1 << n)}
            assert imgs == set(range(1 << n))

    def test_counts(self):
        om = Omega(3)
        assert om.num_nodes == 4 * 8
        assert om.num_edges == 2 * 8 * 3
        g = omega_graph(3)
        assert g.num_edges == om.num_edges
        assert g.is_connected()

    def test_destination_tag_routing_exhaustive(self):
        for n in (2, 3):
            g = omega_graph(n)
            R = 1 << n
            for src in range(R):
                for dst in range(R):
                    rows = destination_tag_route(n, src, dst)
                    assert rows[0] == src and rows[-1] == dst
                    for s, (x, y) in enumerate(zip(rows, rows[1:])):
                        assert g.has_edge((x, s), (y, s + 1))

    def test_route_validation(self):
        with pytest.raises(ValueError):
            destination_tag_route(3, 8, 0)

    def test_layout_validates(self):
        om = Omega(4)
        res = build_multistage_layout(16, om.boundary_link_lists(), name="omega")
        rep = validate_layout(res.layout, res.graph)
        assert rep.ok, rep.errors[:3]
        # graph realised matches the omega graph node-for-node
        assert res.graph.same_as(om.graph())

    def test_layout_multilayer(self):
        om = Omega(3)
        res = build_multistage_layout(8, om.boundary_link_lists(), L=4)
        rep = validate_layout(res.layout, res.graph)
        assert rep.ok, rep.errors[:3]

    def test_boundary_out_of_range(self):
        with pytest.raises(ValueError):
            list(Omega(2).boundary_links(2))


@settings(deadline=None, max_examples=30)
@given(st.integers(2, 6), st.data())
def test_omega_routing_property(n, data):
    R = 1 << n
    src = data.draw(st.integers(0, R - 1))
    dst = data.draw(st.integers(0, R - 1))
    assert destination_tag_route(n, src, dst)[-1] == dst


class TestCcc:
    def test_graph_structure(self):
        g = ccc_graph(3)
        assert g.num_nodes == 3 * 8
        # degree-3 regular
        assert set(g.degree_histogram()) == {3}
        assert g.is_connected()

    def test_graph_n2_multiedge(self):
        g = ccc_graph(2)
        # 2-cycles collapse to double links
        assert g.multiplicity((0, 0), (0, 1)) == 2

    @pytest.mark.parametrize("n,L", [(2, 2), (3, 2), (4, 2), (4, 4), (5, 3)])
    def test_layout_validates(self, n, L):
        res = ccc_2d_layout(n, L=L)
        rep = validate_layout(res.layout, res.graph)
        assert rep.ok, rep.errors[:3]
        assert len(res.layout.nodes) == n * (1 << n)

    def test_layout_realizes_ccc(self):
        res = ccc_2d_layout(4)
        assert res.graph.same_as(ccc_graph(4))
        # and wires match the graph exactly (validator already checks; be
        # explicit about the wire count: 3-regular -> 3N/2 edges)
        assert len(res.layout.wires) == 3 * 64 // 2

    def test_area_scaling(self):
        """Theta(4^n): the bisection-square law for CCC."""
        a4 = ccc_2d_layout(4).layout.area
        a6 = ccc_2d_layout(6).layout.area
        assert 8 < a6 / a4 < 32  # 4^2 = 16 up to o(.) wobble

    def test_split_validation(self):
        with pytest.raises(ValueError):
            ccc_2d_layout(4, split=(1, 2))
        with pytest.raises(ValueError):
            ccc_2d_layout(1)
        with pytest.raises(ValueError):
            ccc_2d_layout(4, W=3)

    def test_multilayer_shrinks_channels(self):
        d2 = ccc_2d_layout(6, L=2).dims
        d4 = ccc_2d_layout(6, L=4).dims
        assert d4.chan_h < d2.chan_h
        assert d4.area < d2.area


class TestCccDims:
    def test_closed_form_matches_builder(self):
        from repro.layout.ccc_layout import ccc_2d_dims

        for n, L in [(3, 2), (4, 2), (4, 4), (5, 2)]:
            assert ccc_2d_layout(n, L=L).dims == ccc_2d_dims(n, L=L)

    def test_area_converges_to_4_9(self):
        """Balanced CCC layouts approach (4/9) 4^n: both channel demands
        are ~ (2/3) 2^{n/2}."""
        from repro.layout.ccc_layout import ccc_2d_dims

        ratios = [ccc_2d_dims(n).area / 4**n for n in (8, 12, 16, 20, 24)]
        assert all(a > b for a, b in zip(ratios, ratios[1:]))
        assert abs(ratios[-1] - 4 / 9) < 0.05
