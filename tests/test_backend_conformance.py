"""Cross-backend conformance for the array-ops facade.

Two layers of pinning:

* an **op-level grid** — every facade op, on every constructible
  backend, against the NumPy reference: dtype, shape, and value
  equality, including empty and single-element inputs and in-place
  mutation semantics;
* **whole-engine differentials** — layout verdicts, packaging counts,
  Benes settings, and queued-sim traces must be identical under
  ``REPRO_BACKEND=<alt>`` (and the ``backend=`` kwarg) as under the
  NumPy default.

The ``python`` backend (interpreted loop kernels) always runs; ``numba``
runs when importable and is skipped — never failed — otherwise.
"""

import numpy as np
import pytest

from repro.backend import (
    BACKENDS,
    ArrayBackend,
    BackendUnavailable,
    NumpyBackend,
    available_backends,
    get_backend,
)
from repro.backend import shm
from repro.algorithms.benes_routing import route_permutations
from repro.algorithms.queued_routing import simulate_butterfly_queued
from repro.layout import collinear_layout, validate_table
from repro.packaging.optimizer import optimize_packaging
from repro.packaging.partition import RowPartition
from repro.packaging.pins import count_off_module_links
from repro.transform.swap_butterfly import SwapButterfly

REF = NumpyBackend()
AVAILABLE = available_backends()
ALT_BACKENDS = [
    pytest.param(
        name,
        marks=() if name in AVAILABLE else pytest.mark.skip(
            reason=f"backend {name!r} unavailable here"
        ),
    )
    for name in ("python", "numba")
]


def backends():
    return [pytest.param(get_backend(n), id=n) for n in AVAILABLE]


# ---------------------------------------------------------------------------
# op-level conformance grid
# ---------------------------------------------------------------------------

I64 = np.int64
rng = np.random.default_rng(1234)


def _gather_cases():
    yield np.arange(10, dtype=I64), np.array([3, 0, 9, 3], dtype=I64)
    yield np.arange(5, dtype=np.int32), np.array([4], dtype=I64)
    yield np.arange(7, dtype=np.float64), np.zeros(0, dtype=I64)
    yield rng.integers(0, 100, 64).astype(I64), rng.integers(0, 64, 257)
    yield np.array([42], dtype=I64), np.zeros(11, dtype=I64)


def _scatter_cases():
    # (a, idx, vals); duplicate indices resolve last-write-wins
    yield (np.zeros(8, dtype=I64), np.array([1, 5, 1], dtype=I64),
           np.array([10, 20, 30], dtype=I64))
    yield (np.zeros(4, dtype=np.float64), np.array([2], dtype=I64),
           np.array([1.5]))
    yield (np.arange(6, dtype=I64), np.zeros(0, dtype=I64),
           np.zeros(0, dtype=I64))
    yield (np.zeros(16, dtype=np.int16), np.arange(16, dtype=I64),
           np.arange(16, dtype=np.int16))


def _scatter_add_cases():
    yield (np.zeros(8, dtype=I64), np.array([1, 5, 1, 1], dtype=I64),
           np.array([1, 2, 3, 4], dtype=I64))
    yield (np.ones(3, dtype=np.float64), np.array([0], dtype=I64),
           np.array([2.5]))
    yield (np.arange(5, dtype=I64), np.zeros(0, dtype=I64),
           np.zeros(0, dtype=I64))
    yield (np.zeros(32, dtype=I64),
           rng.integers(0, 32, 500).astype(I64),
           np.ones(500, dtype=I64))
    # scalar vals broadcast
    yield (np.zeros(8, dtype=I64), np.array([3, 3, 7], dtype=I64), 1)


def _bincount_cases():
    yield np.array([0, 1, 1, 4], dtype=I64), None, 0
    yield np.zeros(0, dtype=I64), None, 5
    yield np.array([2], dtype=I64), None, 0
    yield (np.array([0, 0, 3], dtype=I64),
           np.array([0.5, 1.5, 2.0]), 6)
    yield rng.integers(0, 50, 1000).astype(I64), None, 64


def _cummax_cases():
    yield np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=I64)
    yield np.zeros(0, dtype=I64)
    yield np.array([-7], dtype=I64)
    yield np.array([2.0, -1.0, 3.5, 3.5, 0.0])
    yield rng.integers(-1000, 1000, 999).astype(I64)


def _take_wrap_cases():
    yield np.arange(10, dtype=I64), np.array([0, 9, 10, 25, -1], dtype=I64)
    yield np.array([5], dtype=I64), np.arange(7, dtype=I64)
    yield np.arange(6, dtype=np.int32), np.zeros(0, dtype=I64)


@pytest.mark.parametrize("be", backends())
class TestOpConformance:
    def test_gather(self, be):
        for a, idx in _gather_cases():
            want = REF.gather(a.copy(), idx.copy())
            got = be.gather(a.copy(), idx.copy())
            assert got.dtype == want.dtype and got.shape == want.shape
            assert np.array_equal(got, want)

    def test_scatter(self, be):
        for a, idx, vals in _scatter_cases():
            aw, ag = a.copy(), a.copy()
            want = REF.scatter(aw, idx, vals)
            got = be.scatter(ag, idx, vals)
            assert got.dtype == want.dtype and got.shape == want.shape
            assert np.array_equal(got, want)
            assert np.array_equal(ag, aw), "in-place mutation differs"

    def test_scatter_add(self, be):
        for a, idx, vals in _scatter_add_cases():
            aw, ag = a.copy(), a.copy()
            want = REF.scatter_add(aw, idx, vals)
            got = be.scatter_add(ag, idx, vals)
            assert got.dtype == want.dtype and got.shape == want.shape
            assert np.array_equal(got, want)
            assert np.array_equal(ag, aw), "in-place mutation differs"

    def test_bincount(self, be):
        for x, w, ml in _bincount_cases():
            want = REF.bincount(x, weights=w, minlength=ml)
            got = be.bincount(x, weights=w, minlength=ml)
            assert got.dtype == want.dtype and got.shape == want.shape
            assert np.array_equal(got, want)

    def test_cummax(self, be):
        for a in _cummax_cases():
            want = REF.cummax(a.copy())
            got = be.cummax(a.copy())
            assert got.dtype == want.dtype and got.shape == want.shape
            assert np.array_equal(got, want)

    def test_take_wrap(self, be):
        for a, idx in _take_wrap_cases():
            want = REF.take_wrap(a.copy(), idx)
            got = be.take_wrap(a.copy(), idx)
            assert got.dtype == want.dtype and got.shape == want.shape
            assert np.array_equal(got, want)

    def test_take_wrap_out(self, be):
        a = np.arange(10, dtype=I64)
        idx = np.array([1, 11, 21], dtype=I64)
        out_w = np.zeros(3, dtype=I64)
        out_g = np.zeros(3, dtype=I64)
        REF.take_wrap(a, idx, out=out_w)
        be.take_wrap(a, idx, out=out_g)
        assert np.array_equal(out_g, out_w)

    def test_ring_advance_pop_push(self, be):
        # the queued sim's exact shapes: int16 cursors, packed buffer
        dbits, mask = 3, (1 << 3) - 1
        nq = 5
        for qids in (np.array([0, 2, 4], dtype=I64),
                     np.zeros(0, dtype=I64),
                     np.array([1], dtype=I64)):
            buf_w = np.arange(nq << dbits, dtype=I64)
            buf_g = buf_w.copy()
            cnt_w = np.array([0, 7, 3, 1, 6], dtype=np.int16)
            cnt_g = cnt_w.copy()
            popped_w = REF.ring_advance(buf_w, cnt_w, qids, dbits, mask)
            popped_g = be.ring_advance(buf_g, cnt_g, qids, dbits, mask)
            if qids.size:
                assert popped_g.dtype == popped_w.dtype
                assert np.array_equal(popped_g, popped_w)
            assert np.array_equal(cnt_g, cnt_w)
            vals = -(qids + 1)
            assert REF.ring_advance(buf_w, cnt_w, qids, dbits, mask, vals) is None
            assert be.ring_advance(buf_g, cnt_g, qids, dbits, mask, vals) is None
            assert np.array_equal(buf_g, buf_w)
            assert np.array_equal(cnt_g, cnt_w)


# ---------------------------------------------------------------------------
# selection and availability
# ---------------------------------------------------------------------------


def test_registry_and_reference_available():
    assert set(BACKENDS) == {"numpy", "python", "numba", "cupy"}
    assert "numpy" in AVAILABLE and "python" in AVAILABLE


def test_get_backend_precedence(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "python")
    assert get_backend().name == "python"
    assert get_backend("numpy").name == "numpy"  # kwarg wins over env
    inst = get_backend("python")
    assert get_backend(inst) is inst  # instances pass through
    monkeypatch.delenv("REPRO_BACKEND")
    assert get_backend().name == "numpy"  # default


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("fortran")


def test_cupy_stub_reports_unavailable():
    try:
        import cupy  # noqa: F401
        pytest.skip("cupy importable here; stub path not reachable")
    except ImportError:
        pass
    with pytest.raises(BackendUnavailable, match="cupy"):
        get_backend("cupy")


def test_shm_roundtrip_and_views():
    a = np.arange(100, dtype=I64)
    b = rng.random(33)
    with shm.share_arrays(a=a, b=b) as pack:
        assert sorted(pack.keys) == ["a", "b"]
        assert np.array_equal(shm.read_array(pack, "a"), a)
        block, views = shm.attach(pack)
        try:
            assert np.array_equal(views["a"], a)
            assert np.array_equal(views["b"], b)
            # zero-copy: the view aliases the shared buffer, not a pickle
            assert views["a"].base is not None
        finally:
            del views
            block.close()


# ---------------------------------------------------------------------------
# whole-engine differentials: alt backend vs numpy, kwarg and env paths
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("alt", ALT_BACKENDS)
def test_layout_verdicts_match(alt, monkeypatch):
    lay = collinear_layout(6, 2).layout
    t = lay.wire_table()
    ref = validate_table(t, lay.nodes, lay.model, backend="numpy")
    got = validate_table(t, lay.nodes, lay.model, backend=alt)
    assert (got.ok, got.num_errors, got.errors) == (
        ref.ok, ref.num_errors, ref.errors)
    # break a track: both backends must report the identical messages
    bad = lay.wire_table()
    h = np.flatnonzero((bad.y1 == bad.y2) & (bad.x1 != bad.x2))
    bad = type(bad)(
        nets=list(bad.nets), indptr=bad.indptr.copy(),
        x1=bad.x1.copy(), y1=bad.y1.copy(), x2=bad.x2.copy(),
        y2=bad.y2.copy(), layer=bad.layer.copy(),
    )
    bad.y1[h[0]] = bad.y2[h[0]] = bad.y1[h[3]]
    ref_bad = validate_table(bad, lay.nodes, lay.model, backend="numpy")
    got_bad = validate_table(bad, lay.nodes, lay.model, backend=alt)
    assert not ref_bad.ok
    assert (got_bad.ok, got_bad.num_errors, got_bad.errors) == (
        ref_bad.ok, ref_bad.num_errors, ref_bad.errors)
    # env-var selection path resolves identically
    monkeypatch.setenv("REPRO_BACKEND", alt)
    got_env = validate_table(t, lay.nodes, lay.model)
    assert (got_env.ok, got_env.num_errors) == (ref.ok, ref.num_errors)


@pytest.mark.parametrize("alt", ALT_BACKENDS)
def test_packaging_counts_match(alt):
    sb = SwapButterfly.from_ks((2, 2, 1))
    part = RowPartition(sb, row_bits=2)
    ref = count_off_module_links(part, backend="numpy")
    got = count_off_module_links(part, backend=alt)
    assert got.per_module == ref.per_module
    assert got.nodes_per_module == ref.nodes_per_module
    assert (got.num_modules, got.total_links, got.off_module_links) == \
           (ref.num_modules, ref.total_links, ref.off_module_links)
    ref_c = optimize_packaging(5, exact=True, backend="numpy")
    got_c = optimize_packaging(5, exact=True, backend=alt)
    assert [(c.ks, c.scheme, c.num_modules, c.pins_per_module)
            for c in got_c] == \
           [(c.ks, c.scheme, c.num_modules, c.pins_per_module)
            for c in ref_c]


@pytest.mark.parametrize("alt", ALT_BACKENDS)
def test_benes_settings_match(alt):
    g = np.random.default_rng(7)
    perms = np.stack([g.permutation(16) for _ in range(9)])
    ref = route_permutations(perms, backend="numpy")
    got = route_permutations(perms, backend=alt)
    assert got.n == ref.n
    assert np.array_equal(got.crossed, ref.crossed)


@pytest.mark.parametrize("alt", ALT_BACKENDS)
def test_sim_traces_match(alt, monkeypatch):
    ref = simulate_butterfly_queued(3, 0.35, cycles=220, warmup=40, seed=5,
                                    trace=True, backend="numpy")
    monkeypatch.setenv("REPRO_BACKEND", alt)
    got = simulate_butterfly_queued(3, 0.35, cycles=220, warmup=40, seed=5,
                                    trace=True)
    assert (got.offered, got.delivered, got.drained, got.max_queue) == \
           (ref.offered, ref.delivered, ref.drained, ref.max_queue)
    assert got.avg_latency == ref.avg_latency
    for f in ("cycle", "injected", "delivered", "in_flight", "max_depth",
              "depth_hist"):
        assert np.array_equal(getattr(got.trace, f), getattr(ref.trace, f)), f


@pytest.mark.parametrize("alt", ALT_BACKENDS)
def test_chunked_validation_matches_across_backends(alt):
    from repro.layout import chunked_collinear_table
    c = chunked_collinear_table(6, 2, memory_budget_bytes=4096)
    ref = c.validate(backend="numpy")
    got = c.validate(backend=alt)
    assert (got.ok, got.num_errors, got.errors, got.checks_run) == \
           (ref.ok, ref.num_errors, ref.errors, ref.checks_run)
