"""Tests for the recursive grid layout scheme (the paper's Sections 3-4).

Every constructed layout goes through the full rule validator and a
realizes-graph check against the swap-butterfly, so these tests are
end-to-end proofs that the construction obeys the Thompson / multilayer
model and wires exactly the butterfly automorphism.
"""

import pytest

from repro.analysis.comparison import leading_constant_area, leading_constant_wire
from repro.layout.grid_scheme import build_grid_layout, grid_dims
from repro.layout.validate import validate_layout


def build_and_validate(ks, **kw):
    res = build_grid_layout(ks, **kw)
    validate_layout(res.layout, res.graph).raise_if_failed()
    return res


class TestDims:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            grid_dims((2, 2))
        with pytest.raises(ValueError):
            grid_dims((2, 2, 2), L=1)

    def test_track_demand_formula(self):
        """Channel track demand is 2^(k1+k2) per grid row and 2^(k1+k3)
        per grid column — Section 3.2's count."""
        for ks in [(2, 2, 2), (3, 2, 2), (3, 3, 2), (4, 3, 3)]:
            d = grid_dims(ks)
            k1, k2, k3 = ks
            assert d.tracks_row == 1 << (k1 + k2)
            assert d.tracks_col == 1 << (k1 + k3)

    def test_multilayer_channel_shrinks(self):
        d2 = grid_dims((2, 2, 2), L=2)
        d4 = grid_dims((2, 2, 2), L=4)
        d8 = grid_dims((2, 2, 2), L=8)
        assert d2.chan_h == 16 and d4.chan_h == 8 and d8.chan_h == 4
        assert d2.area > d4.area > d8.area

    def test_volume(self):
        d = grid_dims((2, 2, 2), L=4)
        assert d.volume == 4 * d.area

    def test_summary_keys(self):
        s = grid_dims((2, 2, 2)).summary()
        for k in ("area", "chan_h", "block_w"):
            assert k in s


class TestBuildSmall:
    @pytest.mark.parametrize("ks", [(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)])
    def test_validates(self, ks):
        build_and_validate(ks)

    @pytest.mark.parametrize("L", [3, 4, 5, 6, 8])
    def test_multilayer_validates(self, L):
        build_and_validate((2, 2, 2), L=L)

    def test_reversed_track_order(self):
        build_and_validate((2, 2, 2), track_order="reversed")

    def test_bigger_node_side(self):
        res = build_and_validate((2, 1, 1), W=7)
        assert res.dims.W == 7

    def test_dims_match_built_geometry(self):
        """Closed-form dims equal the constructed bounding box (up to the
        trailing channel gap of 2)."""
        for ks, L in [((2, 2, 2), 2), ((2, 2, 2), 4), ((2, 1, 1), 2)]:
            res = build_grid_layout(ks, L=L)
            x0, y0, x1, y1 = res.layout.bounding_box()
            assert res.dims.width - (x1 - x0) == 2
            assert res.dims.height - (y1 - y0) == 2

    def test_node_count(self):
        res = build_grid_layout((2, 1, 1))
        assert len(res.layout.nodes) == 5 * 16
        assert len(res.layout.wires) == res.sb.num_edges

    def test_wire_layers_within_L(self):
        res = build_grid_layout((2, 2, 2), L=6)
        assert max(res.layout.layers_used()) <= 6


class TestAreaTrend:
    def test_area_between_formula_and_constant(self):
        """Measured area is Theta(2^{2n}): above the leading term, within a
        modest constant at these sizes (the o(.) terms dominate small n)."""
        for ks in [(2, 2, 2), (3, 2, 2)]:
            n = sum(ks)
            res = build_grid_layout(ks)
            assert 2 ** (2 * n) < res.layout.area < 40 * 2 ** (2 * n)

    def test_leading_constant_decreases_with_n(self):
        """The 1 + o(1) claim: the area ratio to the formula shrinks as n
        grows (checked on the closed-form dims where large n is cheap)."""
        ratios = []
        for k in range(2, 9):
            d = grid_dims((k, k, k))
            n = 3 * k
            ratios.append(d.area / 2 ** (2 * n))
        assert all(a > b for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] < 1.6

    def test_multilayer_area_ratio(self):
        """Theorem 4.1: at fixed n, area(L) tracks 4*2^{2n}/L^2; the ratio
        area(2)/area(L) approaches (L/2)^2 as n grows (block internals do
        not shrink with L, so convergence needs large n — closed-form dims
        make that cheap)."""
        d = {L: grid_dims((12, 12, 12), L=L) for L in (2, 4, 8)}
        assert d[2].area / d[4].area == pytest.approx(4, rel=0.05)
        assert d[2].area / d[8].area == pytest.approx(16, rel=0.05)
        # and the trend is monotone in n
        prev4 = 0
        for k in (4, 6, 8, 10):
            dd = {L: grid_dims((k, k, k), L=L) for L in (2, 4)}
            r = dd[2].area / dd[4].area
            assert prev4 < r < 4
            prev4 = r

    def test_odd_L_between_neighbors(self):
        d3 = grid_dims((5, 5, 5), L=3).area
        d2 = grid_dims((5, 5, 5), L=2).area
        d4 = grid_dims((5, 5, 5), L=4).area
        assert d4 < d3 < d2

    def test_max_wire_leading_constant(self):
        res = build_grid_layout((3, 2, 2))
        c = leading_constant_wire(res.layout.max_wire_length(), 7, L=2)
        # within a small constant of 2N/(L log N) at this size (o(.)
        # terms dominate small n); the n = 9 slow test tightens this
        assert 0.5 < c < 8


@pytest.mark.slow
class TestBuildN9:
    def test_n9_thompson(self):
        res = build_and_validate((3, 3, 3))
        s = res.layout.summary()
        assert s["nodes"] == 10 * 512
        assert s["wires"] == 2 * 512 * 9
        c = leading_constant_area(s["area"], 9, L=2)
        assert c < 13  # o(.) terms dominate at n = 9 but Theta holds

    def test_n9_multilayer(self):
        res4 = build_and_validate((3, 3, 3), L=4)
        res2 = build_grid_layout((3, 3, 3), L=2)
        assert res4.layout.area < res2.layout.area
        assert res4.layout.max_wire_length() < res2.layout.max_wire_length()


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(deadline=None, max_examples=12)
@given(
    st.tuples(
        st.integers(1, 2), st.integers(1, 2), st.integers(1, 2)
    ).filter(lambda ks: ks[1] <= ks[0] and ks[2] <= ks[0]),
    st.integers(2, 6),
    st.sampled_from([4, 5, 7]),
    st.sampled_from(["forward", "reversed"]),
)
def test_grid_scheme_property(ks, L, W, order):
    """Any admissible (ks, L, W, order) builds a layout that passes the
    full rule validator and realises the swap-butterfly exactly."""
    res = build_grid_layout(ks, W=W, L=L, track_order=order)
    rep = validate_layout(res.layout, res.graph)
    assert rep.ok, (ks, L, W, order, rep.errors[:3])


class TestRecirculatingFabric:
    """Recirculating (multi-pass) fabrics: output-to-input feedback links
    are intra-block under the row partition, so the leading constants
    are untouched."""

    @pytest.mark.parametrize("ks,L", [((1, 1, 1), 2), ((2, 2, 2), 2), ((2, 2, 2), 4)])
    def test_validates(self, ks, L):
        res = build_grid_layout(ks, L=L, recirculating=True)
        rep = validate_layout(res.layout, res.graph)
        assert rep.ok, rep.errors[:3]

    def test_graph_has_feedback_edges(self):
        res = build_grid_layout((2, 1, 1), recirculating=True)
        g = res.graph
        n, R = 4, 16
        for u in range(R):
            assert g.has_edge((u, n), (u, 0))
        assert g.num_edges == 2 * R * n + R

    def test_feedback_is_twisted_wrap_logically(self):
        """The feedback matching joins physical rows; in butterfly labels
        that is the phi_n-twisted wrap (NOT the standard wrapped
        butterfly, whose wrap would cross blocks)."""
        res = build_grid_layout((2, 1, 1), recirculating=True)
        sb = res.sb
        # physical row u at stage n carries logical row phi_inverse(n, u):
        # at least one row must differ, else phi_n would be the identity
        assert any(sb.phi_inverse(sb.n, u) != u for u in range(sb.rows))

    def test_overhead_vanishes(self):
        """Feedback channels add O(2^k1) per block side = o(channels)."""
        small = grid_dims((2, 2, 2), recirculating=True).area / grid_dims((2, 2, 2)).area
        big = grid_dims((6, 6, 6), recirculating=True).area / grid_dims((6, 6, 6)).area
        assert big < small
        assert big < 1.06

    def test_plain_regression(self):
        res = build_grid_layout((2, 2, 2))
        assert not res.recirculating
        validate_layout(res.layout, res.graph).raise_if_failed()


class TestMaxWireBounds:
    """Closed-form sandwich on max wire length (the 2N/(L log N) claim)."""

    @pytest.mark.parametrize(
        "ks,L", [((1, 1, 1), 2), ((2, 2, 2), 2), ((3, 2, 2), 2), ((2, 2, 2), 4), ((2, 2, 2), 5)]
    )
    def test_built_value_inside_bounds(self, ks, L):
        from repro.layout.grid_scheme import max_wire_bounds

        res = build_grid_layout(ks, L=L)
        lo, hi = max_wire_bounds(res.dims)
        assert lo <= res.layout.max_wire_length() <= hi

    def test_bounds_converge_to_formula(self):
        from repro.analysis.formulas import multilayer_max_wire
        from repro.layout.grid_scheme import max_wire_bounds

        ratios = []
        for k in (5, 7, 9, 11):
            n = 3 * k
            lo, hi = max_wire_bounds(grid_dims((k, k, k)))
            f = multilayer_max_wire(n, 2)
            ratios.append((lo / f, hi / f))
        # both bounds shrink toward 1 and pinch together
        assert all(a[1] > b[1] for a, b in zip(ratios, ratios[1:]))
        lo_r, hi_r = ratios[-1]
        assert hi_r - lo_r < 0.01
        assert 1.0 < lo_r < 1.2


class TestHigherLevelGrids:
    """Section 3.3: 'We can also transform ISN(l, B_k1) with l > 3 into a
    butterfly network and then lay it out ... the leading constants of
    the resultant area and maximum wire length remain the same.'"""

    @pytest.mark.parametrize(
        "ks,L",
        [
            ((1, 1, 1, 1), 2),
            ((2, 1, 1, 1), 2),
            ((2, 2, 2, 2), 2),
            ((2, 2, 2, 2), 4),
            ((2, 2, 1, 1), 2),
            ((1, 1, 1, 1, 1), 2),  # l = 5
        ],
    )
    def test_validates(self, ks, L):
        res = build_grid_layout(ks, L=L)
        rep = validate_layout(res.layout, res.graph)
        assert rep.ok, rep.errors[:3]

    def test_automorphism_still_holds(self):
        from repro.transform import verify_automorphism

        assert verify_automorphism((2, 2, 2, 2))

    def test_l4_area_constant_converges(self):
        ratios = [grid_dims((k,) * 4).area / 4 ** (4 * k) for k in (3, 4, 5, 6)]
        assert all(a > b for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] < 1.25

    def test_l4_column_union_structure(self):
        """The vertical channel graph for (k,k,k,k): grid rows differing
        in one of two k-bit fields, 4 links per pair."""
        from repro.layout.grid_scheme import _column_union_graph

        g = _column_union_graph((2, 2, 2, 2))
        assert g.num_nodes == 16
        # level 3: low field; level 4: high field; disjoint pairs
        assert g.multiplicity(0, 1) == 4  # low-field pair
        assert g.multiplicity(0, 4) == 4  # high-field pair
        assert g.multiplicity(0, 5) == 0  # differs in both fields

    def test_l4_interblock_counts_match_packaging(self):
        from repro.packaging.pins import (
            count_off_module_links,
            row_partition_offmodule_per_module,
        )
        from repro.packaging.partition import RowPartition

        ks = (2, 2, 2, 2)
        res = build_grid_layout(ks)
        rep = count_off_module_links(RowPartition.natural(res.sb))
        inter = sum(
            1
            for w in res.layout.wires
            if w.net[0][0] >> 2 != w.net[1][0] >> 2
        )
        assert inter == rep.off_module_links
        assert rep.max_per_module == row_partition_offmodule_per_module(ks)


class TestOddLLayerUsage:
    def test_odd_L_uses_top_layer_for_horizontals(self):
        """Section 4.2's odd-L rule in the built artifact: layer L carries
        horizontal runs, layer L-1 verticals."""
        res = build_grid_layout((2, 2, 2), L=5)
        h_layers = {
            s.layer for w in res.layout.wires for s in w.segments if s.is_horizontal
        }
        v_layers = {
            s.layer for w in res.layout.wires for s in w.segments if s.is_vertical
        }
        assert h_layers <= {1, 3, 5} and 5 in h_layers
        assert v_layers <= {2, 4}

    def test_l4_max_wire_sandwich(self):
        from repro.layout.grid_scheme import max_wire_bounds

        res = build_grid_layout((2, 2, 2, 2))
        lo, hi = max_wire_bounds(res.dims)
        assert lo <= res.layout.max_wire_length() <= hi


from hypothesis import HealthCheck


@settings(
    deadline=None, max_examples=8, suppress_health_check=[HealthCheck.data_too_large]
)
@given(
    st.integers(3, 4),
    st.data(),
)
def test_grid_scheme_l_property(l, data):
    """Random admissible vectors for l in {3, 4} build validating layouts."""
    k1 = data.draw(st.integers(1, 2))
    ks = [k1] + [data.draw(st.integers(1, k1)) for _ in range(l - 1)]
    L = data.draw(st.sampled_from([2, 3, 4]))
    res = build_grid_layout(tuple(ks), L=L)
    rep = validate_layout(res.layout, res.graph)
    assert rep.ok, (ks, L, rep.errors[:3])
