"""Chunked out-of-core WireTable pinning.

Property tests (hypothesis) that the chunked builders and the chunked
validator are **byte-identical** to the monolithic path at arbitrary
``memory_budget_bytes`` — down to budgets forcing 1-wire chunks — for
tables, validation reports (verdict, error count, kept messages, check
list), and summary stats.  A ``tracemalloc`` guard pins that the
chunked B_14 grid build's peak allocation stays under the declared
budget, i.e. the budget knob is real, not advisory.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.layout import (
    chunked_collinear_table,
    chunked_grid2d_table,
    chunked_grid_table,
    collinear_layout,
    build_grid2d_layout,
    build_grid_layout,
    summarize_chunks,
    validate_table,
    validate_table_chunked,
    wires_per_chunk,
)
from repro.layout.chunked import _WIRE_BYTES
from repro.layout.wiretable import WireTable
from repro.topology.complete import complete_multigraph
from repro.topology.graph import Graph

SLOW = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

budgets = st.one_of(
    st.none(),
    st.just(1),  # forces 1-wire chunks (collinear) / 1-group chunks (grid)
    st.integers(min_value=_WIRE_BYTES, max_value=64 * _WIRE_BYTES),
    st.integers(min_value=1, max_value=1 << 22),
)


def assert_tables_identical(got: WireTable, want: WireTable) -> None:
    assert got.num_wires == want.num_wires
    assert got.nets == want.nets
    for col in ("indptr", "x1", "y1", "x2", "y2", "layer"):
        a, b = getattr(got, col), getattr(want, col)
        assert a.dtype == b.dtype and np.array_equal(a, b), col


def assert_reports_identical(got, want) -> None:
    assert got.checks_run == want.checks_run
    assert got.ok == want.ok
    assert got.num_errors == want.num_errors
    assert got.errors == want.errors


def assert_chunked_matches(build, layout, graph, num_buckets=4) -> None:
    mono = layout.wire_table()
    assert_tables_identical(build.table(), mono)
    want = validate_table(mono, build.nodes, build.model, graph=graph)
    got = validate_table_chunked(
        build.chunks(), build.nodes, build.model, graph=graph,
        num_buckets=num_buckets,
    )
    assert_reports_identical(got, want)
    assert summarize_chunks(build.chunks(), build.nodes, build.model) == \
        layout.summary()


# ---------------------------------------------------------------------------
# build + validate + stats identity per chunk source
# ---------------------------------------------------------------------------


@SLOW
@given(
    n=st.integers(min_value=2, max_value=7),
    m=st.integers(min_value=1, max_value=3),
    order=st.sampled_from(["forward", "reversed"]),
    budget=budgets,
)
def test_collinear_chunked_identity(n, m, order, budget):
    c = chunked_collinear_table(n, m, order=order, memory_budget_bytes=budget)
    lay = collinear_layout(n, m, order=order).layout
    assert_chunked_matches(c, lay, complete_multigraph(n, m))
    if budget == 1:
        # budget below one wire's working set degrades to 1-wire chunks
        assert c.chunk_wires == 1
        nw = (n * (n - 1) // 2) * m
        assert sum(1 for _ in c.chunks()) == nw


@SLOW
@given(
    ks=st.sampled_from([(2, 1, 1), (2, 2, 1), (2, 2, 2), (3, 1, 1),
                        (2, 1, 1, 1), (3, 2, 1)]),
    recirculating=st.booleans(),
    budget=budgets,
)
def test_grid_chunked_identity(ks, recirculating, budget):
    c = chunked_grid_table(ks, recirculating=recirculating,
                           memory_budget_bytes=budget)
    res = build_grid_layout(ks, recirculating=recirculating)
    assert_chunked_matches(c, res.layout, res.graph)


@SLOW
@given(
    rows=st.integers(min_value=1, max_value=3),
    cols=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    split=st.booleans(),
    budget=budgets,
)
def test_grid2d_chunked_identity(rows, cols, seed, split, budget):
    def mkgraph(n, salt):
        g = Graph()
        g.add_nodes(range(n))
        r = np.random.default_rng([seed, salt])
        for a in range(n):
            for b in range(a + 1, n):
                for _ in range(int(r.integers(0, 3))):
                    g.add_edge(a, b)
        return g

    row_graphs = {r: mkgraph(cols, 2 * r) for r in range(rows)}
    col_graphs = {c: mkgraph(rows, 2 * c + 1) for c in range(cols)}
    rg, cg = row_graphs.__getitem__, col_graphs.__getitem__
    c = chunked_grid2d_table(rows, cols, rg, cg, split_channels=split,
                             memory_budget_bytes=budget)
    res = build_grid2d_layout(rows, cols, rg, cg, split_channels=split)
    assert_chunked_matches(c, res.layout, res.graph)


# ---------------------------------------------------------------------------
# validator identity on *invalid* tables at arbitrary chunk/bucket splits
# ---------------------------------------------------------------------------


def _mutate(t: WireTable, which: str, rng) -> WireTable:
    m = WireTable(nets=list(t.nets), indptr=t.indptr.copy(),
                  x1=t.x1.copy(), y1=t.y1.copy(),
                  x2=t.x2.copy(), y2=t.y2.copy(), layer=t.layer.copy())
    h = np.flatnonzero((m.y1 == m.y2) & (m.x1 != m.x2))
    if which == "layer":
        m.layer[int(rng.integers(0, t.num_segments))] = 99
    elif which == "overlap" and h.size >= 2:
        i, j = h[0], h[int(rng.integers(1, h.size))]
        m.y1[i] = m.y2[i] = m.y1[j]
    elif which == "many-overlaps" and h.size >= 2:
        m.y1[h] = m.y2[h] = m.y1[h[0]]
    elif which == "contiguity":
        m.x2[t.indptr[1] - 1] += 3
    elif which == "bad-net":
        m.nets[int(rng.integers(0, t.num_wires))] = (997, 998, 0)
    elif which == "terminal-clash" and t.num_wires >= 2:
        s0, s1 = t.indptr[0], t.indptr[1]
        m.x1[s1] = m.x1[s0]
        m.y1[s1] = m.y1[s0]
    elif which == "node-interior" and h.size:
        k = h[int(rng.integers(0, h.size))]
        m.y1[k] = m.y2[k] = 1
    return m


MUTATIONS = ["layer", "overlap", "many-overlaps", "contiguity", "bad-net",
             "terminal-clash", "node-interior"]


@SLOW
@given(
    which=st.sampled_from(MUTATIONS),
    chunk_wires=st.integers(min_value=1, max_value=40),
    num_buckets=st.integers(min_value=1, max_value=9),
    seed=st.integers(min_value=0, max_value=999),
)
def test_mutated_validation_identity(which, chunk_wires, num_buckets, seed):
    lay = collinear_layout(6, 2).layout
    graph = complete_multigraph(6, 2)
    t = _mutate(lay.wire_table(), which, np.random.default_rng(seed))
    want = validate_table(t, lay.nodes, lay.model, graph=graph)
    chunks = (t.slice_wires(lo, lo + chunk_wires)
              for lo in range(0, t.num_wires, chunk_wires))
    got = validate_table_chunked(chunks, lay.nodes, lay.model, graph=graph,
                                 num_buckets=num_buckets)
    assert_reports_identical(got, want)


def test_check_toggles_match():
    lay = collinear_layout(5, 1).layout
    t = lay.wire_table()
    for check_nodes in (True, False):
        for check_vias in (True, False):
            want = validate_table(t, lay.nodes, lay.model,
                                  check_nodes=check_nodes,
                                  check_vias=check_vias)
            got = validate_table_chunked(
                [t.slice_wires(i, i + 3) for i in range(0, t.num_wires, 3)],
                lay.nodes, lay.model,
                check_nodes=check_nodes, check_vias=check_vias)
            assert_reports_identical(got, want)


def test_empty_stream_matches_empty_table():
    lay = collinear_layout(4, 1).layout
    empty = lay.wire_table().slice_wires(0, 0)
    want = validate_table(empty, lay.nodes, lay.model,
                          graph=complete_multigraph(4, 1))
    got = validate_table_chunked([], lay.nodes, lay.model,
                                 graph=complete_multigraph(4, 1))
    assert_reports_identical(got, want)
    assert not want.ok  # graph edges have no wires


# ---------------------------------------------------------------------------
# budget semantics
# ---------------------------------------------------------------------------


def test_wires_per_chunk_knob():
    assert wires_per_chunk(None) == 65536
    assert wires_per_chunk(1) == 1
    assert wires_per_chunk(_WIRE_BYTES * 10) == 10
    with pytest.raises(ValueError, match="positive"):
        wires_per_chunk(0)
    with pytest.raises(ValueError, match="positive"):
        wires_per_chunk(-5)


def test_chunked_build_surface():
    c = chunked_collinear_table(6, 1, memory_budget_bytes=4096)
    assert c.num_wires == 15
    assert c.name.startswith("collinear-K6")
    rep, summary = c.validate_and_summarize(graph=complete_multigraph(6, 1))
    assert rep.ok
    lay = collinear_layout(6, 1).layout
    assert summary == lay.summary()
    assert c.summary() == lay.summary()
    assert c.validate().ok


def test_summary_reuses_consumed_stats_pass():
    # validate_and_summarize already streamed every chunk once; a later
    # summary() must serve the cached stats, not re-materialize chunks
    c = chunked_collinear_table(6, 2, memory_budget_bytes=4096)
    want = collinear_layout(6, 2).layout.summary()
    _rep, summ = c.validate_and_summarize(graph=complete_multigraph(6, 2))
    assert summ == want
    calls = []
    real = c._materialize
    object.__setattr__(
        c, "_materialize",
        lambda *a, **kw: calls.append(1) or real(*a, **kw),
    )
    assert c.summary() == want
    assert not calls, "summary() restreamed chunks after a stats pass"
    # and the cache hands out copies, not the internal dict
    c.summary()["wires"] = -1
    assert c.summary() == want


@pytest.mark.slow
def test_b14_grid_build_peak_under_budget():
    """The declared budget bounds the chunked B_14 build's peak
    allocations: stream every chunk of the (5, 5, 4) grid — ~10^5 wires
    — under a 24 MiB budget and tracemalloc must never see more than
    the budget live at once (the monolithic table alone is bigger)."""
    budget = 24 << 20
    ks = (5, 5, 4)
    c = chunked_grid_table(ks, memory_budget_bytes=budget)
    tracemalloc.start()
    tracemalloc.reset_peak()
    wires = 0
    nchunks = 0
    for t in c.chunks():
        wires += t.num_wires
        nchunks += 1
    _cur, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert nchunks > 1, "budget did not force chunking"
    assert wires > 100_000
    assert peak < budget, f"peak {peak} bytes exceeds budget {budget}"


def test_chunk_floor_is_one_group():
    # grid budgets below one block's working set clamp to one group per
    # chunk rather than splitting a block (closure requirement)
    c = chunked_grid_table((2, 1, 1), memory_budget_bytes=1)
    sizes = [t.num_wires for t in c.chunks()]
    assert len(sizes) >= 4
    res = build_grid_layout((2, 1, 1))
    assert sum(sizes) == res.layout.wire_table().num_wires
