"""Tests for the cached design-query service: the content-addressed
artifact store, the query handlers, and the HTTP front end."""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.service import (
    SCHEMA_VERSION,
    ArtifactStore,
    QueryError,
    cache_key,
    canonical_json,
    compute,
    default_cache_dir,
    make_server,
    normalize_params,
    query,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "cache"))


class TestKeying:
    def test_canonical_json_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == b'{"a":[2,3],"b":1}'
        # key independence from dict insertion order
        assert canonical_json({"x": 1, "y": 2}) == canonical_json(
            {"y": 2, "x": 1}
        )

    def test_cache_key_shape_and_sensitivity(self):
        k1 = cache_key("dims", {"ks": [2, 2, 2]})
        assert len(k1) == 64 and all(c in "0123456789abcdef" for c in k1)
        assert k1 == cache_key("dims", {"ks": [2, 2, 2]})
        assert k1 != cache_key("layout", {"ks": [2, 2, 2]})
        assert k1 != cache_key("dims", {"ks": [2, 2, 3]})

    def test_schema_version_in_key(self, monkeypatch):
        k_before = cache_key("dims", {"ks": [2, 2]})
        monkeypatch.setattr("repro.service.store.SCHEMA_VERSION",
                            SCHEMA_VERSION + 1)
        assert cache_key("dims", {"ks": [2, 2]}) != k_before

    def test_default_cache_dir_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/explicit")
        assert default_cache_dir() == "/tmp/explicit"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg")
        assert default_cache_dir() == os.path.join("/tmp/xdg", "repro")


class TestStore:
    def test_put_get_roundtrip(self, store):
        params = {"ks": [2, 2]}
        result = {"kind": "dims", "params": params, "answer": 42}
        key = store.put("dims", params, result)
        assert store.get("dims", params) == result
        assert key == cache_key("dims", params)
        entries = store.ls()
        assert [e.key for e in entries] == [key]
        assert entries[0].kind == "dims" and not entries[0].has_payload
        s = store.stats()
        assert s["entries"] == 1 and s["kinds"] == {"dims": 1}

    def test_miss_returns_none(self, store):
        assert store.get("dims", {"ks": [9, 9]}) is None
        assert store.load_arrays("dims", {"ks": [9, 9]}) is None

    def test_array_payload_roundtrip(self, store):
        params = {"n": 3}
        arrays = {
            "a": np.arange(10, dtype=np.int64),
            "b": np.zeros((2, 3), dtype=np.uint8),
        }
        store.put("benes", params, {"ok": True}, arrays)
        loaded = store.load_arrays("benes", params)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], arrays["a"])
        np.testing.assert_array_equal(loaded["b"], arrays["b"])
        assert store.ls()[0].has_payload

    def test_tampered_manifest_quarantined(self, store):
        params = {"ks": [2, 2]}
        key = store.put("dims", params, {"answer": 1})
        path = os.path.join(store.entry_dir(key), "manifest.json")
        m = json.load(open(path))
        m["result"]["answer"] = 999  # digest no longer matches
        with open(path, "w") as fh:
            json.dump(m, fh)
        assert store.get("dims", params) is None  # miss, not bad data
        assert not os.path.isdir(store.entry_dir(key))
        assert store.stats()["quarantined"] == 1

    def test_bitflipped_payload_quarantined(self, store):
        params = {"n": 3}
        key = store.put("benes", params, {"ok": True},
                        {"a": np.arange(100, dtype=np.int64)})
        path = os.path.join(store.entry_dir(key), "payload.npz")
        with open(path, "r+b") as fh:
            fh.seek(120)
            b = fh.read(1)
            fh.seek(120)
            fh.write(bytes([b[0] ^ 0xFF]))
        # cheap get still serves (manifest intact, size unchanged) ...
        assert store.get("benes", params) == {"ok": True}
        # ... but the hashed load refuses and quarantines
        assert store.load_arrays("benes", params) is None
        assert store.get("benes", params) is None
        assert store.stats()["quarantined"] == 1

    def test_verify_flags_corruption(self, store):
        good = {"ks": [2, 2]}
        bad = {"ks": [3, 3]}
        store.put("dims", good, {"a": 1})
        key = store.put("dims", bad, {"a": 2},
                        {"x": np.ones(50, dtype=np.int64)})
        path = os.path.join(store.entry_dir(key), "payload.npz")
        with open(path, "r+b") as fh:
            fh.seek(100)
            b = fh.read(1)
            fh.seek(100)
            fh.write(bytes([b[0] ^ 0xFF]))
        rep = store.verify()
        assert rep["checked"] == 2 and rep["ok"] == 1
        assert rep["corrupt"] == [key] and rep["quarantined"] == 1

    def test_gc_drops_quarantine_and_old_entries(self, store):
        key = store.put("dims", {"ks": [2, 2]}, {"a": 1})
        store.quarantine(key)
        store.put("dims", {"ks": [3, 3]}, {"a": 2})
        rep = store.gc()
        assert rep["removed"] == 1 and rep["freed_bytes"] > 0
        assert store.stats()["quarantined"] == 0
        assert len(store.ls()) == 1
        rep = store.gc(max_age_s=0.0)  # everything is "old"
        assert rep["removed"] == 1 and not store.ls()

    def test_gc_ages_by_last_access_not_creation(self, store):
        """Regression: age-based gc used to evict by *creation* time, so
        an entry read moments ago could vanish.  ``get`` must refresh
        the entry's clock."""
        store.put("dims", {"ks": [2, 2]}, {"a": 1})
        store.put("dims", {"ks": [3, 3]}, {"a": 2})
        hot = cache_key("dims", {"ks": [2, 2]})
        cold = cache_key("dims", {"ks": [3, 3]})
        for key in (hot, cold):  # backdate both far past any max_age
            manifest = os.path.join(store.entry_dir(key), "manifest.json")
            os.utime(manifest, (1.0, 1.0))
        assert store.get("dims", {"ks": [2, 2]}) == {"a": 1}
        rep = store.gc(max_age_s=3600.0)
        remaining = {e.key for e in store.ls()}
        assert rep["removed"] == 1
        assert hot in remaining and cold not in remaining

    def test_load_arrays_refreshes_access_clock(self, store):
        store.put("dims", {"ks": [2, 2]}, {"a": 1},
                  {"x": np.arange(4, dtype=np.int64)})
        key = cache_key("dims", {"ks": [2, 2]})
        manifest = os.path.join(store.entry_dir(key), "manifest.json")
        os.utime(manifest, (1.0, 1.0))
        arrays = store.load_arrays("dims", {"ks": [2, 2]})
        assert arrays is not None and list(arrays["x"]) == [0, 1, 2, 3]
        assert store.gc(max_age_s=3600.0)["removed"] == 0
        assert [e.key for e in store.ls()] == [key]

    def test_single_flight_mutual_exclusion(self, tmp_path):
        st = ArtifactStore(str(tmp_path / "c"), lock_timeout=10.0)
        key = "k" * 64
        order = []
        release = threading.Event()
        inside = threading.Event()

        def winner():
            with st.single_flight(key) as won:
                order.append(("w", won))
                inside.set()
                release.wait(5)

        def loser():
            inside.wait(5)
            with st.single_flight(key) as won:
                order.append(("l", won))

        tw = threading.Thread(target=winner)
        tl = threading.Thread(target=loser)
        tw.start()
        tl.start()
        time.sleep(0.1)
        assert order == [("w", True)]  # loser is blocked
        release.set()
        tw.join(5)
        tl.join(5)
        # loser acquired only after the winner released, and True-ly:
        # it must re-check the cache itself
        assert order == [("w", True), ("l", True)]

    def test_single_flight_timeout_yields_false(self, tmp_path):
        st = ArtifactStore(str(tmp_path / "c"), lock_timeout=0.1)
        key = "a" * 64
        with st.single_flight(key) as won:
            assert won
            with st.single_flight(key) as second:
                assert second is False

    def test_single_flight_breaks_stale_lock(self, tmp_path):
        st = ArtifactStore(str(tmp_path / "c"), stale_lock_s=1.0)
        key = "b" * 64
        path = st._lock_path(key)
        with open(path, "w") as fh:
            fh.write("999999")  # dead pid
        old = time.time() - 100
        os.utime(path, (old, old))
        with st.single_flight(key) as won:
            assert won  # abandoned lock was broken


class TestHandlers:
    def test_normalize_fills_defaults(self):
        p = normalize_params("layout", {"ks": "2,2,2"})
        assert p == {
            "ks": [2, 2, 2],
            "layers": 2,
            "node_side": 4,
            "track_order": "forward",
            "recirculating": False,
        }

    def test_normalize_rejects(self):
        with pytest.raises(QueryError):
            normalize_params("nope", {})
        with pytest.raises(QueryError):
            normalize_params("dims", {})  # ks required
        with pytest.raises(QueryError):
            normalize_params("dims", {"ks": [2, 2], "bogus": 1})
        with pytest.raises(QueryError):
            normalize_params("dims", {"ks": [0, 2]})
        with pytest.raises(QueryError):
            normalize_params("dims", {"ks": [13, 13]})  # sum cap
        with pytest.raises(QueryError):
            normalize_params("benes", {"n": 99})
        with pytest.raises(QueryError):
            normalize_params("layout", {"ks": [2, 2], "recirculating": "maybe"})
        with pytest.raises(QueryError):
            normalize_params("package", {"ks": [2, 2], "scheme": "hexagon"})

    def test_engine_valueerror_becomes_queryerror(self):
        # k_2 > k_1 passes _as_ks but the construction rejects it
        with pytest.raises(QueryError):
            compute("dims", normalize_params("dims", {"ks": [2, 3]}))

    def test_query_without_store(self):
        info = {}
        r = query("dims", {"ks": [2, 2, 2]}, store=None, info=info)
        assert info["cache"] == "off"
        assert r["kind"] == "dims" and r["summary"]["area"] > 0

    def test_query_miss_then_hit_byte_identical(self, store):
        info1, info2 = {}, {}
        r1 = query("dims", {"ks": [2, 2, 2]}, store=store, info=info1)
        r2 = query("dims", {"ks": "2,2,2"}, store=store, info=info2)
        assert info1["cache"] == "miss" and info2["cache"] == "hit"
        assert info1["key"] == info2["key"]  # spellings key identically
        assert canonical_json(r1) == canonical_json(r2)

    def test_layout_query_and_payload(self, store):
        r = query("layout", {"ks": [1, 1, 1]}, store=store)
        assert r["valid"] and r["errors"] == []
        assert r["summary"]["wires"] > 0
        assert "mean len" in r["wire_stats"]
        arrays = store.load_arrays(
            "layout", normalize_params("layout", {"ks": [1, 1, 1]})
        )
        assert arrays is not None
        nets = json.loads(bytes(arrays["nets_json"]).decode("utf-8"))
        assert len(nets) == r["summary"]["wires"]
        assert arrays["indptr"].shape == (r["summary"]["wires"] + 1,)

    def test_package_query(self, store):
        r = query("package", {"ks": [3, 3, 3]}, store=store)
        assert r["all_match"] and len(r["schemes"]) == 3
        row = next(s for s in r["schemes"] if s["scheme"] == "row")
        assert row["pins exact"] == 56  # Section 5.2's exact count

    def test_benes_query(self, store):
        r = query("benes", {"n": 4, "batch": 5, "seed": 7}, store=store)
        assert r["realized_ok"] and r["terminals"] == 16
        assert 0 <= r["crossed"]["min"] <= r["crossed"]["max"] <= r["switches"]
        arrays = store.load_arrays(
            "benes", normalize_params("benes", {"n": 4, "batch": 5, "seed": 7})
        )
        assert arrays["perms"].shape == (5, 16)
        assert arrays["crossed"].shape == (5, 7, 8)  # (B, 2n-1, N/2)

    def test_saturation_query(self):
        r = query("saturation", {"n": 3, "cycles": 300}, store=None)
        assert 0.0 < r["rate_per_node"] <= 1.0
        assert r["paper_wall"] == pytest.approx(1 / 4)

    def test_sim_normalize_defaults_and_bounds(self):
        p = normalize_params("sim", {"n": 2, "rate": 0.5})
        assert p == {"n": 2, "rate": 0.5, "cycles": 600, "warmup": 100,
                     "seed": 0, "drain": None}
        with pytest.raises(QueryError):
            normalize_params("sim", {"n": 2})  # rate required
        with pytest.raises(QueryError):
            normalize_params("sim", {"n": 2, "rate": 0.0})
        with pytest.raises(QueryError):
            normalize_params("sim", {"n": 2, "rate": 1.5})
        with pytest.raises(QueryError):
            normalize_params("sim", {"n": 99, "rate": 0.5})

    def test_sim_query_matches_engine(self, store):
        from repro.algorithms.queued_routing import simulate_butterfly_queued

        params = {"n": 2, "rate": 0.6, "cycles": 150, "warmup": 20,
                  "seed": 3}
        r = query("sim", params, store=store)
        ref = simulate_butterfly_queued(2, 0.6, cycles=150, warmup=20, seed=3)
        assert r["offered"] == ref.offered
        assert r["delivered"] == ref.delivered_total
        assert r["accepted_fraction"] == pytest.approx(ref.accepted_fraction)
        assert r["max_queue"] == ref.max_queue
        info = {}
        r2 = query("sim", params, store=store, info=info)
        assert info["cache"] == "hit" and canonical_json(r2) == canonical_json(r)

    def test_use_cache_false_bypasses(self, store):
        info = {}
        query("dims", {"ks": [2, 2, 2]}, store=store, use_cache=False,
              info=info)
        assert info["cache"] == "off"
        assert store.get(
            "dims", normalize_params("dims", {"ks": [2, 2, 2]})
        ) is None


class TestExecParams:
    """Execution knobs: how to compute, never what to compute — they
    must not change result bytes, cache keys or stored params."""

    def test_split_pops_only_exec_keys(self):
        from repro.service.handlers import split_exec_params

        rest, ex = split_exec_params(
            "layout", {"ks": [2, 2], "workers": 2,
                       "memory_budget_bytes": 4096, "bogus": 1},
        )
        assert rest == {"ks": [2, 2], "bogus": 1}  # unknown keys stay
        assert ex == {"workers": 2, "memory_budget_bytes": 4096}
        rest2, ex2 = split_exec_params("dims", {"ks": [2, 2], "workers": 2})
        assert rest2 == {"ks": [2, 2], "workers": 2} and ex2 == {}

    def test_chunked_result_and_key_match_monolithic(self, store):
        params = {"ks": [2, 2, 2]}
        info_mono, info_chunk = {}, {}
        mono = query("layout", dict(params), store=None, info=info_mono)
        chunk = query(
            "layout",
            dict(params, memory_budget_bytes=8192, workers=2),
            store=store, info=info_chunk,
        )
        assert info_mono["key"] == info_chunk["key"]
        assert canonical_json(mono) == canonical_json(chunk)
        assert "workers" not in chunk["params"]
        assert "memory_budget_bytes" not in chunk["params"]
        # the arrays payload is the same table the monolithic path stores
        arrays = store.load_arrays(
            "layout", normalize_params("layout", params)
        )
        assert arrays is not None
        assert arrays["indptr"].shape == (chunk["summary"]["wires"] + 1,)
        # a monolithic re-query is a cache hit on the chunked artifact
        info_hit = {}
        again = query("layout", dict(params), store=store, info=info_hit)
        assert info_hit["cache"] == "hit"
        assert canonical_json(again) == canonical_json(chunk)

    def test_exec_kwarg_equivalent_to_inline(self, store):
        params = {"ks": [2, 2, 2]}
        r1 = query("layout", dict(params, workers=1), store=None)
        r2 = query("layout", dict(params), store=None,
                   exec_params={"workers": 1})
        assert canonical_json(r1) == canonical_json(r2)

    def test_exec_values_validated(self):
        for bad in (0, -3, "x", 1.5, True):
            with pytest.raises(QueryError):
                query("layout", {"ks": [2, 2], "workers": bad}, store=None)
        with pytest.raises(QueryError):
            query("layout", {"ks": [2, 2]}, store=None,
                  exec_params={"memory_budget_bytes": 0})
        with pytest.raises(QueryError):
            query("layout", {"ks": [2, 2]}, store=None,
                  exec_params={"bogus": 1})

    def test_exec_strings_coerce_like_http(self):
        r = query("layout",
                  {"ks": [2, 2, 2], "workers": "2",
                   "memory_budget_bytes": "8192"},
                  store=None)
        assert r["valid"]


@pytest.fixture
def http_server(store):
    srv = make_server(host="127.0.0.1", port=0, store=store, quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{srv.server_address[1]}", store
    srv.shutdown()
    thread.join(timeout=10)
    srv.server_close()


def _get(url):
    try:
        with urllib.request.urlopen(url) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as e:
        return e.code, e.read(), dict(e.headers)


class TestHTTPServer:
    def test_health(self, http_server):
        base, _store = http_server
        status, body, _h = _get(f"{base}/v1/health")
        doc = json.loads(body)
        assert status == 200 and doc["ok"]
        assert doc["schema_version"] == SCHEMA_VERSION
        assert "layout" in doc["kinds"]

    def test_query_miss_then_hit(self, http_server):
        base, _store = http_server
        url = f"{base}/v1/dims?ks=2,2,2&layers=4"
        s1, b1, h1 = _get(url)
        s2, b2, h2 = _get(url)
        assert s1 == s2 == 200
        assert h1["X-Repro-Cache"] == "miss"
        assert h2["X-Repro-Cache"] == "hit"
        assert h1["X-Repro-Key"] == h2["X-Repro-Key"]
        assert b1 == b2  # byte-identical warm hit
        assert json.loads(b1)["params"]["layers"] == 4

    def test_bad_params_400(self, http_server):
        base, _store = http_server
        status, body, _h = _get(f"{base}/v1/dims?ks=0,2")
        assert status == 400
        assert "ks" in json.loads(body)["error"]

    def test_unknown_kind_400(self, http_server):
        base, _store = http_server
        status, body, _h = _get(f"{base}/v1/frobnicate")
        assert status == 400
        assert "unknown query kind" in json.loads(body)["error"]

    def test_unknown_route_404(self, http_server):
        base, _store = http_server
        status, _body, _h = _get(f"{base}/nope")
        assert status == 404

    def test_cache_stats_route(self, http_server):
        base, _store = http_server
        _get(f"{base}/v1/dims?ks=2,2,2")
        status, body, _h = _get(f"{base}/v1/cache/stats")
        doc = json.loads(body)
        assert status == 200 and doc["entries"] == 1
        assert doc["kinds"] == {"dims": 1}

    def test_post_query(self, http_server):
        base, _store = http_server
        req = urllib.request.Request(
            f"{base}/v1/query",
            data=json.dumps(
                {"kind": "dims", "params": {"ks": [2, 2, 2]}}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req) as resp:
            assert resp.status == 200
            doc = json.loads(resp.read())
        assert doc["kind"] == "dims"
        # the GET spelling of the same query is a warm hit now
        _s, _b, h = _get(f"{base}/v1/dims?ks=2,2,2")
        assert h["X-Repro-Cache"] == "hit"

    def test_post_bad_body_400(self, http_server):
        base, _store = http_server
        req = urllib.request.Request(
            f"{base}/v1/query", data=b"[1, 2, 3]",
        )
        try:
            urllib.request.urlopen(req)
            status = 200
        except urllib.error.HTTPError as e:
            status = e.code
        assert status == 400
