"""Tests for geometric primitives."""

import pytest

from repro.layout.geometry import (
    LayerPair,
    Rect,
    Segment,
    THOMPSON_LAYERS,
    Wire,
    rectilinear_path_length,
)


class TestRect:
    def test_properties(self):
        r = Rect(2, 3, 4, 5)
        assert (r.x2, r.y2) == (6, 8)
        assert r.area == 20

    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 1)

    def test_contains_point(self):
        r = Rect(0, 0, 4, 4)
        assert r.contains_point((0, 0))
        assert r.contains_point((4, 4))
        assert not r.contains_point((0, 0), strict=True)
        assert r.contains_point((2, 2), strict=True)
        assert not r.contains_point((5, 0))

    def test_on_boundary(self):
        r = Rect(0, 0, 4, 4)
        assert r.on_boundary((4, 2))
        assert not r.on_boundary((2, 2))
        assert not r.on_boundary((5, 5))

    def test_intersects(self):
        a = Rect(0, 0, 4, 4)
        assert a.intersects(Rect(2, 2, 4, 4))
        assert not a.intersects(Rect(4, 0, 4, 4))  # touching edges: open test
        assert a.intersects(Rect(4, 0, 4, 4), strict=False)
        assert not a.intersects(Rect(10, 10, 1, 1), strict=False)


class TestSegment:
    def test_normalisation(self):
        s = Segment(5, 2, 1, 2, layer=2)
        assert (s.x1, s.x2) == (1, 5)
        assert s.is_horizontal
        assert s.track == 2
        assert (s.lo, s.hi) == (1, 5)
        assert s.length == 4

    def test_vertical(self):
        s = Segment(3, 7, 3, 1, layer=1)
        assert s.is_vertical
        assert s.track == 3
        assert (s.lo, s.hi) == (1, 7)

    def test_rejects_diagonal_and_degenerate(self):
        with pytest.raises(ValueError):
            Segment(0, 0, 1, 1, layer=1)
        with pytest.raises(ValueError):
            Segment(2, 2, 2, 2, layer=1)
        with pytest.raises(ValueError):
            Segment(0, 0, 1, 0, layer=0)

    def test_covers_point(self):
        s = Segment(0, 5, 9, 5, layer=2)
        assert s.covers_point((0, 5))
        assert s.covers_point((4, 5))
        assert not s.covers_point((4, 6))


class TestLayerPair:
    def test_group(self):
        assert LayerPair.group(0) == LayerPair(1, 2)
        assert LayerPair.group(2) == LayerPair(5, 6)

    def test_layer_for(self):
        assert THOMPSON_LAYERS.layer_for(vertical=True) == 1
        assert THOMPSON_LAYERS.layer_for(vertical=False) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LayerPair(0, 2)
        with pytest.raises(ValueError):
            LayerPair(3, 3)


class TestWire:
    def test_from_path(self):
        w = Wire.from_path(("a", "b"), [(0, 0), (0, 3), (5, 3), (5, 1)])
        assert len(w.segments) == 3
        assert w.segments[0].layer == 1  # vertical
        assert w.segments[1].layer == 2  # horizontal
        assert w.length == 3 + 5 + 2

    def test_from_path_merges_duplicates(self):
        w = Wire.from_path(("a", "b"), [(0, 0), (0, 0), (0, 4)])
        assert len(w.segments) == 1

    def test_from_path_rejects_diagonals(self):
        with pytest.raises(ValueError):
            Wire.from_path(("a", "b"), [(0, 0), (2, 3)])

    def test_from_path_rejects_single_point(self):
        with pytest.raises(ValueError):
            Wire.from_path(("a", "b"), [(1, 1), (1, 1)])

    def test_path_points_roundtrip(self):
        pts = [(0, 0), (0, 3), (5, 3), (5, 1), (9, 1)]
        w = Wire.from_path(("a", "b"), pts)
        assert w.path_points() == pts
        assert w.endpoints == ((0, 0), (9, 1))

    def test_vias_at_bends(self):
        w = Wire.from_path(("a", "b"), [(0, 0), (0, 3), (5, 3)])
        assert w.vias() == [(0, 3)]

    def test_from_legs_mixed_layers(self):
        legs = [
            ([(0, 0), (0, 5)], LayerPair(1, 2)),
            ([(0, 5), (0, 9), (4, 9)], LayerPair(3, 4)),
        ]
        w = Wire.from_legs(("a", "b"), legs)
        layers = [s.layer for s in w.segments]
        assert layers == [1, 3, 4]
        assert w.path_points() == [(0, 0), (0, 5), (0, 9), (4, 9)]
        # layer change within the collinear run is a via at (0,5)
        assert (0, 5) in w.vias()

    def test_from_legs_empty_rejected(self):
        with pytest.raises(ValueError):
            Wire.from_legs(("a", "b"), [([(0, 0)], THOMPSON_LAYERS)])

    @pytest.mark.parametrize(
        "legs",
        [
            [([(0, 0), (0, 5)], LayerPair(1, 2)),
             ([(0, 5), (4, 5)], LayerPair(1, 2))],
            [([(2, 1), (2, 4), (6, 4)], LayerPair(1, 2)),
             ([(6, 4), (6, 9)], LayerPair(3, 4)),
             ([(6, 9), (0, 9), (0, 7)], LayerPair(1, 2))],
            [([(5, 5), (5, 0)], THOMPSON_LAYERS)],
        ],
    )
    def test_endpoints_are_terminal_attachment_points(self, legs):
        """``endpoints`` must be the first/last *points* of the path —
        the terminal attachment coordinates — for any multi-leg wire,
        including ones whose collinear runs merge across legs."""
        w = Wire.from_legs(("a", "b"), legs)
        pts = w.path_points()
        assert w.endpoints == (pts[0], pts[-1])
        # single-segment wires normalize coordinate order, so compare
        # the attachment points as a set
        assert set(w.endpoints) == {legs[0][0][0], legs[-1][0][-1]}


def test_rectilinear_path_length():
    assert rectilinear_path_length([(0, 0), (0, 4), (3, 4)]) == 7
    assert rectilinear_path_length([(1, 1)]) == 0
