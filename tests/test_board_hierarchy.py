"""Tests for the Section 5.2 board example, the hierarchical model, and the
packaging optimizer."""

import pytest

from repro.packaging.board import ChipSpec, board_design, paper_board_example
from repro.packaging.hierarchy import LevelSpec, design_two_level
from repro.packaging.optimizer import (
    Candidate,
    enumerate_parameter_vectors,
    optimize_packaging,
)


class TestBoardExample:
    def test_paper_numbers_L2(self):
        d = paper_board_example(layers=2)
        assert d.num_chips == 64
        assert d.nodes_per_chip == 80
        assert d.pins_per_chip == 56  # within the 64-pin budget
        assert d.channel_links == 64
        assert d.channel_links_optimized == 60
        assert d.board_side_x == d.board_side_y == 640
        assert d.board_area == 409600  # the paper's 409.6K

    def test_paper_numbers_L4_L8(self):
        assert paper_board_example(4).board_area == 160000  # 160K
        d8 = paper_board_example(8)
        assert d8.board_area == 78400  # 78.4K
        # "the space required by wires between neighboring chips is 15,
        # somewhat smaller than the side of a chip"
        assert d8.wire_space_between_chips == 15
        assert d8.wire_space_between_chips < d8.chip.side

    def test_naive_comparison(self):
        d = paper_board_example()
        assert d.naive_chips_paper_estimate == 171
        assert d.naive_chips_paper_estimate > 2 * d.num_chips

    def test_diminishing_returns(self):
        """'the saving in total area diminishes ... when L becomes larger'."""
        areas = [paper_board_example(L).board_area for L in (2, 4, 8, 16)]
        savings = [a / b for a, b in zip(areas, areas[1:])]
        assert all(s1 > s2 for s1, s2 in zip(savings, savings[1:]))

    def test_pin_limit_enforced(self):
        with pytest.raises(ValueError):
            board_design((3, 3, 3), ChipSpec(max_pins=40, side=20))

    def test_unoptimized_channels(self):
        d = board_design(
            (3, 3, 3), ChipSpec(64, 20), layers=2, optimize_neighbor_links=False
        )
        assert d.channel_tracks == 64
        assert d.board_side_x == 8 * 84

    def test_other_parameters(self):
        d = board_design((4, 3, 3), ChipSpec(max_pins=200, side=20))
        assert d.num_chips == 2**6
        assert d.nodes_per_chip == 16 * 11

    def test_chipspec_validation(self):
        with pytest.raises(ValueError):
            ChipSpec(0, 20)

    def test_verify_exact_columnar_recheck(self):
        d = board_design((3, 3, 3), ChipSpec(64, 20), verify_exact=True)
        assert d.pins_per_chip == 56


class TestHierarchy:
    def test_two_level_feasible(self):
        d = design_two_level(
            (3, 3, 3),
            LevelSpec("chip", max_pins=64, max_side=20),
            LevelSpec("board", wiring_layers=2),
        )
        assert d.feasible
        assert d.board.board_area == 409600
        assert d.summary()["feasible"]

    def test_pin_violation_reported(self):
        d = design_two_level(
            (3, 3, 3),
            LevelSpec("chip", max_pins=64, max_side=20),
            LevelSpec("board", wiring_layers=2, max_side=600),
        )
        assert not d.feasible
        assert any("board side" in v for v in d.violations)

    def test_wire_width_scales_board(self):
        thin = design_two_level(
            (3, 3, 3),
            LevelSpec("chip", max_pins=64, max_side=20),
            LevelSpec("board", wiring_layers=2),
        )
        thick = design_two_level(
            (3, 3, 3),
            LevelSpec("chip", max_pins=64, max_side=20),
            LevelSpec("board", wiring_layers=2, wire_width=2),
        )
        assert thick.board.board_area > thin.board.board_area

    def test_requires_chip_side(self):
        with pytest.raises(ValueError):
            design_two_level(
                (3, 3, 3), LevelSpec("chip", max_pins=64), LevelSpec("board")
            )

    def test_levelspec_validation(self):
        with pytest.raises(ValueError):
            LevelSpec("x", wire_width=0)

    def test_two_level_verify_exact(self):
        d = design_two_level(
            (3, 3, 3),
            LevelSpec("chip", max_pins=64, max_side=20),
            LevelSpec("board", wiring_layers=2),
            verify_exact=True,
        )
        assert d.feasible


class TestOptimizer:
    def test_enumeration_valid(self):
        vecs = list(enumerate_parameter_vectors(6, max_l=3))
        assert (6,) in vecs
        assert (3, 3) in vecs
        assert (2, 2, 2) in vecs
        # non-increasing only
        for v in vecs:
            assert list(v) == sorted(v, reverse=True)
            assert sum(v) == 6

    def test_section52_choice_is_best(self):
        """Under the 64-pin budget at n = 9, the paper's (3,3,3) row
        partition minimises module count."""
        cands = optimize_packaging(9, max_pins_per_module=64)
        best = cands[0]
        assert best.ks == (3, 3, 3)
        assert best.scheme == "row"
        assert best.num_modules == 64

    def test_module_size_constraint_flips_choice(self):
        """The paper's remark: under a tight module-size limit, the nucleus
        variant (larger k1, fewer levels) wins."""
        cands = optimize_packaging(9, max_nodes_per_module=40)
        assert cands, "no feasible candidate"
        assert cands[0].scheme == "nucleus"

    def test_infeasible_returns_empty(self):
        assert optimize_packaging(9, max_pins_per_module=1) == []

    def test_sort_key_order(self):
        cands = optimize_packaging(8, max_pins_per_module=128)
        keys = [c.sort_key() for c in cands]
        assert keys == sorted(keys)

    def test_enumeration_validation(self):
        with pytest.raises(ValueError):
            list(enumerate_parameter_vectors(0))
