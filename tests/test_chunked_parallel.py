"""Parallel chunked build+validate pinning.

Differential property tests that :func:`repro.layout.parallel_validate`
is **byte-identical** to the monolithic validator — verdict, error
count, capped message list, checks-run list and summary stats — at
every worker count (including the inline ``workers=1`` path), for every
chunk source (recipe-backed collinear and grid builds, plus a plain
iterable of pre-sliced tables) and at budgets down to 1-wire chunks.
Error *content* identity is pinned by mutating tables into invalid ones
and splitting them at arbitrary chunk boundaries before the fan-out.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.layout import (
    build_grid_layout,
    chunked_collinear_table,
    chunked_grid_table,
    collinear_layout,
    parallel_validate,
    validate_table,
    validate_table_chunked,
)
from repro.layout.chunked import _WIRE_BYTES
from repro.layout.wiretable import WireTable
from repro.topology.complete import complete_multigraph

SLOW = settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

budgets = st.one_of(
    st.none(),
    st.just(1),  # 1-wire (collinear) / 1-group (grid) chunks
    st.integers(min_value=_WIRE_BYTES, max_value=64 * _WIRE_BYTES),
)


def assert_reports_identical(got, want) -> None:
    assert got.checks_run == want.checks_run
    assert got.ok == want.ok
    assert got.num_errors == want.num_errors
    assert got.errors == want.errors


# ---------------------------------------------------------------------------
# recipe sources: every worker count reproduces the monolithic verdict
# ---------------------------------------------------------------------------


@SLOW
@given(
    n=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=2),
    budget=budgets,
    workers=st.sampled_from([1, 2]),
)
def test_parallel_collinear_identity(n, m, budget, workers):
    build = chunked_collinear_table(n, m, memory_budget_bytes=budget)
    lay = collinear_layout(n, m).layout
    graph = complete_multigraph(n, m)
    want = validate_table(lay.wire_table(), build.nodes, build.model,
                          graph=graph)
    rep, summ = parallel_validate(build, graph=graph, workers=workers,
                                  want_stats=True)
    assert_reports_identical(rep, want)
    assert summ == lay.summary()


@SLOW
@given(
    ks=st.sampled_from([(2, 1, 1), (2, 2, 1), (2, 2, 2), (2, 1, 1, 1)]),
    recirculating=st.booleans(),
    budget=budgets,
    workers=st.sampled_from([1, 2, 3]),
)
def test_parallel_grid_identity(ks, recirculating, budget, workers):
    build = chunked_grid_table(ks, recirculating=recirculating,
                               memory_budget_bytes=budget)
    res = build_grid_layout(ks, recirculating=recirculating)
    want = validate_table(res.layout.wire_table(), build.nodes, build.model,
                          graph=res.graph)
    rep, summ = parallel_validate(build, graph=res.graph, workers=workers,
                                  want_stats=True)
    assert_reports_identical(rep, want)
    assert summ == res.layout.summary()


# ---------------------------------------------------------------------------
# invalid tables: capped error messages survive arbitrary span splits
# ---------------------------------------------------------------------------


def _mutate(t: WireTable, which: str) -> WireTable:
    m = WireTable(nets=list(t.nets), indptr=t.indptr.copy(),
                  x1=t.x1.copy(), y1=t.y1.copy(),
                  x2=t.x2.copy(), y2=t.y2.copy(), layer=t.layer.copy())
    h = np.flatnonzero((m.y1 == m.y2) & (m.x1 != m.x2))
    if which == "layer":
        m.layer[0] = 99
    elif which == "many-overlaps":
        m.y1[h] = m.y2[h] = m.y1[h[0]]
    elif which == "bad-net":
        m.nets[0] = (997, 998, 0)
    elif which == "terminal-clash":
        s0, s1 = t.indptr[0], t.indptr[1]
        m.x1[s1] = m.x1[s0]
        m.y1[s1] = m.y1[s0]
    return m


@SLOW
@given(
    which=st.sampled_from(
        ["layer", "many-overlaps", "bad-net", "terminal-clash"]),
    chunk_wires=st.integers(min_value=1, max_value=17),
    workers=st.sampled_from([1, 2, 3]),
)
def test_parallel_mutated_identity(which, chunk_wires, workers):
    lay = collinear_layout(6, 2).layout
    graph = complete_multigraph(6, 2)
    t = _mutate(lay.wire_table(), which)
    want = validate_table(t, lay.nodes, lay.model, graph=graph)
    chunks = [t.slice_wires(lo, lo + chunk_wires)
              for lo in range(0, t.num_wires, chunk_wires)]
    got = parallel_validate(chunks, lay.nodes, lay.model, graph=graph,
                            workers=workers)
    assert_reports_identical(got, want)
    if which == "many-overlaps":
        assert not want.ok and want.num_errors > len(want.errors)


# ---------------------------------------------------------------------------
# argument surface
# ---------------------------------------------------------------------------


def test_workers_must_be_positive():
    build = chunked_collinear_table(4, 1)
    with pytest.raises(ValueError, match="workers"):
        parallel_validate(build, workers=0)
    with pytest.raises(ValueError, match="workers"):
        build.validate(workers=-2)


def test_generic_source_requires_nodes_and_model():
    with pytest.raises(ValueError, match="nodes and model"):
        parallel_validate([], workers=1)


def test_empty_source_matches_serial():
    lay = collinear_layout(4, 1).layout
    graph = complete_multigraph(4, 1)
    want = validate_table(lay.wire_table().slice_wires(0, 0), lay.nodes,
                          lay.model, graph=graph)
    for w in (1, 2):
        got, summ = parallel_validate([], lay.nodes, lay.model, graph=graph,
                                      workers=w, want_stats=True)
        assert_reports_identical(got, want)
        assert summ["wires"] == 0
    assert not want.ok  # graph edges have no wires


def test_more_workers_than_chunks_clamps():
    build = chunked_collinear_table(3, 1)  # 3 wires, single chunk
    rep = parallel_validate(build, graph=complete_multigraph(3, 1),
                            workers=8)
    assert rep.ok


def test_build_methods_dispatch_to_parallel():
    build = chunked_collinear_table(6, 1, memory_budget_bytes=4096)
    graph = complete_multigraph(6, 1)
    lay = collinear_layout(6, 1).layout
    rep, summ = build.validate_and_summarize(graph=graph, workers=2)
    assert rep.ok and summ == lay.summary()
    # the consumed-stats pass is reused: summary() must not restream
    assert build.summary() == lay.summary()
    b2 = chunked_collinear_table(6, 1, memory_budget_bytes=4096)
    assert b2.validate(graph=graph, workers=2).ok


def test_validate_table_chunked_workers_kwarg():
    lay = collinear_layout(5, 1).layout
    t = lay.wire_table()
    graph = complete_multigraph(5, 1)
    chunks = [t.slice_wires(i, i + 2) for i in range(0, t.num_wires, 2)]
    want = validate_table(t, lay.nodes, lay.model, graph=graph)
    got = validate_table_chunked(chunks, lay.nodes, lay.model, graph=graph,
                                 workers=2)
    assert_reports_identical(got, want)
