"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; a refactor that breaks one
should fail the suite, not a user.  Each script is executed in-process
(``runpy``) with stdout captured.
"""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

SCRIPTS = [
    "quickstart.py",
    "layout_gallery.py",
    "packaging_study.py",
    "multilayer_tradeoffs.py",
    "node_scalability.py",
    "fft_dataflow.py",
    "other_networks.py",
    "switching_fabrics.py",
]


@pytest.mark.slow
@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script, capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_OUT_DIR", str(tmp_path))
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    assert os.path.exists(path), path
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced real output
    assert "Traceback" not in out


def test_all_examples_listed():
    actual = {
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    }
    assert actual == set(SCRIPTS)
