"""The Section 3.2 supernode arguments, verified as graph quotients.

"If we merge each row of an ISN(3, B_{n/3}) into a super node, it
becomes the HSN(3, Q_{n/3}) it was derived from, where each
inter-cluster link is duplicated (corresponding to two swap links); if
we continue to merge each nucleus hypercube ... into a supernode
(corresponding to a block), it becomes a 2-dimensional radix-2^{n/3}
generalized hypercube ...  Since each swap link of an ISN is duplicated
to transform it to a corresponding butterfly network, each pair of
blocks belonging to the same row or column ... are connected by 4
links."

These are the structural facts the whole layout rests on; here they are
checked *as stated*, by quotienting the actual graphs.
"""

import pytest

from repro.topology.graph import Graph
from repro.topology.hypercube import generalized_hypercube_graph
from repro.topology.isn import ISN
from repro.topology.swap import SwapNetworkParams, swap_network_graph
from repro.transform.swap_butterfly import SwapButterfly


def _row_quotient(links, rows: int) -> Graph:
    """Merge each row of a staged network into a supernode."""
    g = Graph("rows")
    g.add_nodes(range(rows))
    for (u, _s), (v, _s1), _k in links:
        if u != v:
            g.add_edge(u, v)
    return g


class TestIsnRowQuotient:
    @pytest.mark.parametrize("ks", [(2, 2, 2), (2, 2), (3, 2, 2)])
    def test_swap_links_give_doubled_hsn_intercluster(self, ks):
        """Restricting the row quotient to swap links yields exactly the
        SN's inter-cluster links, each with multiplicity 2."""
        isn = ISN.from_ks(ks)
        q = Graph("swap-quotient")
        q.add_nodes(range(isn.rows))
        for (u, _s), (v, _s1), kind in isn.links():
            if kind == "swap" and u != v:
                q.add_edge(u, v)
        sn = swap_network_graph(ks)
        params = SwapNetworkParams(ks)
        expected = Graph("expected")
        expected.add_nodes(range(isn.rows))
        for level in range(2, params.l + 1):
            for u in range(isn.rows):
                v = params.sigma(level, u)
                if u < v:
                    expected.add_edge(u, v, 2)
        assert q.same_as(expected)
        # and the adjacency structure (ignoring multiplicity) is the SN's
        # inter-cluster part
        for u, v, _c in q.edges():
            assert sn.has_edge(u, v)

    def test_full_quotient_covers_nucleus_dims_uniformly(self):
        """Cross links quotient to nucleus (hypercube) adjacencies; for an
        HSN-derived ISN every nucleus dimension is exercised once per
        segment, twice per boundary (both directed links)."""
        ks = (2, 2, 2)
        isn = ISN.from_ks(ks)
        q = _row_quotient(isn.links(), isn.rows)
        k1, l = ks[0], len(ks)
        for u in range(isn.rows):
            for t in range(k1):
                v = u ^ (1 << t)
                # bit t used in every segment: multiplicity 2l
                assert q.multiplicity(u, v) == 2 * l


class TestBlockQuotient:
    @pytest.mark.parametrize("ks", [(2, 2, 2), (3, 2, 2), (2, 2, 1)])
    def test_blocks_form_generalized_hypercube_with_4x_links(self, ks):
        """Quotient the swap-butterfly by block id: blocks in the same
        grid row/column pair up with exactly 4 * 2^{k1-k_i} links; the
        simple adjacency is the 2-D generalized hypercube."""
        k1, k2, k3 = ks
        sb = SwapButterfly.from_ks(ks)
        gc = 1 << k2

        def block(node):
            u, _s = node
            bid = u >> k1
            return (bid >> k2, bid & (gc - 1))  # (grid row, grid col)

        q = Graph("blocks")
        for u, v, _kind in sb.links():
            bu, bv = block(u), block(v)
            if bu != bv:
                q.add_edge(bu, bv)
        ghc = generalized_hypercube_graph([1 << k3, gc]) if (
            (1 << k3) >= 2 and gc >= 2
        ) else None
        if ghc is not None:
            mapping = {node: node for node in q.nodes()}
            # same adjacency (simple-graph view)
            for a, b, _c in q.edges():
                assert ghc.has_edge(a, b)
            assert q.num_simple_edges == ghc.num_edges
        # multiplicities: same grid row -> level-2 -> 4*2^{k1-k2};
        # same grid column -> level-3 -> 4*2^{k1-k3}
        for (r1, c1), (r2, c2), mult in q.edges():
            if r1 == r2:
                assert mult == 4 << (k1 - k2)
            else:
                assert c1 == c2
                assert mult == 4 << (k1 - k3)

    def test_paper_headline_case(self):
        """k1 = k2 = k3: 'each pair of blocks belonging to the same row
        or column ... connected by 4 links'."""
        sb = SwapButterfly.from_ks((2, 2, 2))

        def block(node):
            return node[0] >> 2

        q = Graph("blocks")
        for u, v, _k in sb.links():
            if block(u) != block(v):
                q.add_edge(block(u), block(v))
        assert set(c for _u, _v, c in q.edges()) == {4}
