"""Tests for Benes networks and the looping routing algorithm."""

import random
from itertools import permutations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.benes_routing import (
    apply_settings,
    num_switch_stages,
    route_permutation,
)
from repro.topology.benes import Benes, benes_boundary_bits, benes_graph


class TestBenesTopology:
    def test_boundary_schedule(self):
        assert benes_boundary_bits(3) == [0, 1, 2, 1, 0]
        assert benes_boundary_bits(1) == [0]
        with pytest.raises(ValueError):
            benes_boundary_bits(0)

    def test_sizes(self):
        b = Benes(3)
        assert b.rows == 8
        assert b.stages == 6  # 2n node stages
        assert b.num_nodes == 48
        assert b.num_edges == 2 * 8 * 5
        g = benes_graph(3)
        assert g.num_nodes == b.num_nodes
        assert g.num_edges == b.num_edges
        assert g.is_connected()

    def test_middle_is_shared_butterfly_stage(self):
        """The first n boundaries are an ascending butterfly; the rest
        mirror it without repeating bit n-1."""
        bits = benes_boundary_bits(4)
        assert bits[:4] == [0, 1, 2, 3]
        assert bits[4:] == [2, 1, 0]

    def test_offmodule_links(self):
        b = Benes(3)
        # k = 1: boundaries on bits >= 1: bits [1,2,1] -> 3 of 5
        assert b.offmodule_links_per_module(1) == 2 * 3 * 2
        # k = n: nothing leaves
        assert b.offmodule_links_per_module(3) == 0
        with pytest.raises(ValueError):
            b.offmodule_links_per_module(4)

    def test_offmodule_matches_enumeration(self):
        b = Benes(3)
        for k in (1, 2):
            size = 1 << k
            pins = {}
            for (u, su), (v, sv), kind in b.links():
                if u >> k != v >> k:
                    pins[u >> k] = pins.get(u >> k, 0) + 1
                    pins[v >> k] = pins.get(v >> k, 0) + 1
            assert max(pins.values()) == b.offmodule_links_per_module(k)

    def test_boundary_links_validation(self):
        with pytest.raises(ValueError):
            list(Benes(2).boundary_links(3))


class TestLoopingAlgorithm:
    def test_stage_count(self):
        assert num_switch_stages(1) == 1
        assert num_switch_stages(4) == 7
        with pytest.raises(ValueError):
            num_switch_stages(0)

    @pytest.mark.parametrize("N", [2, 4])
    def test_exhaustive_small(self, N):
        for perm in permutations(range(N)):
            assert apply_settings(route_permutation(perm)) == list(perm)

    def test_exhaustive_n8(self):
        for perm in permutations(range(8)):
            assert apply_settings(route_permutation(perm)) == list(perm)

    @pytest.mark.parametrize("n", [4, 5, 7, 9])
    def test_random_large(self, n):
        rng = random.Random(n)
        N = 1 << n
        for _ in range(3):
            perm = list(range(N))
            rng.shuffle(perm)
            assert apply_settings(route_permutation(perm)) == perm

    def test_identity_needs_no_crossings(self):
        s = route_permutation(list(range(16)))
        # identity routes with all-straight outer stages under our coloring
        realized = apply_settings(s)
        assert realized == list(range(16))

    def test_settings_shape(self):
        s = route_permutation([3, 1, 2, 0, 7, 5, 6, 4])
        assert len(s.stages) == num_switch_stages(3)
        assert all(len(col) == 4 for col in s.stages)
        assert s.num_terminals == 8

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            route_permutation([0, 1, 2])  # not a power of two
        with pytest.raises(ValueError):
            route_permutation([0, 0, 1, 1])  # not a permutation


@settings(deadline=None, max_examples=30)
@given(st.integers(2, 6), st.randoms(use_true_random=False))
def test_routing_property(n, rnd):
    N = 1 << n
    perm = list(range(N))
    rnd.shuffle(perm)
    settings_ = route_permutation(perm)
    assert apply_settings(settings_) == perm
