"""Differential and property tests pinning the vectorized layout engine
to the legacy object geometry.

The columnar builders (``engine="table"``) and the vectorized validator
must be *indistinguishable* from the object-per-wire originals: same
wires in the same order, same track assignments, same verdicts on valid
and corrupted layouts.  The legacy paths are kept exactly for this
purpose, so every test here is an oracle comparison, not a golden file.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.layout.collinear import (
    chen_agrawal_track_count,
    collinear_layout,
    naive_track_count,
    optimal_track_count,
    track_assignment,
    track_assignment_arrays,
)
from repro.layout.geometry import Rect, Segment, THOMPSON_LAYERS, Wire
from repro.layout.grid2d import build_grid2d_layout
from repro.layout.grid_scheme import build_grid_layout
from repro.layout.validate import validate_layout, validate_layout_legacy
from repro.layout.wiretable import WireTable
from repro.topology.complete import complete_multigraph


def assert_same_layout(tab, leg):
    """Node-for-node and wire-for-wire equality, including order."""
    assert tab.nodes == leg.nodes
    wt, wl = tab.wires, leg.wires
    assert len(wt) == len(wl)
    for i, (a, b) in enumerate(zip(wt, wl)):
        assert a.net == b.net, f"wire {i}: nets differ"
        assert a.segments == b.segments, f"wire {a.net}: segments differ"


# ---------------------------------------------------------------------------
# collinear: table engine vs legacy engine
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 3, 5, 6, 8])
@pytest.mark.parametrize("mult", [1, 3])
@pytest.mark.parametrize("order", ["forward", "reversed"])
def test_collinear_table_matches_legacy(n, mult, order):
    t = collinear_layout(n, multiplicity=mult, order=order, engine="table")
    l = collinear_layout(n, multiplicity=mult, order=order, engine="legacy")
    assert t.layout.has_native_table
    assert t.track_of == l.track_of
    assert t.tracks_total == l.tracks_total
    assert_same_layout(t.layout, l.layout)


@pytest.mark.parametrize("n", [2, 3, 4, 6, 7, 11])
@pytest.mark.parametrize("order", ["forward", "reversed"])
def test_track_assignment_arrays_match_dict(n, order):
    a, b, t = track_assignment_arrays(n, order)
    want = track_assignment(n, order)
    got = dict(zip(zip(a.tolist(), b.tolist()), t.tolist()))
    assert got == want
    # sorted by (a, b), the object builder's iteration order
    pairs = list(zip(a.tolist(), b.tolist()))
    assert pairs == sorted(pairs)


def test_collinear_engine_validates_both_ways():
    cl = collinear_layout(6, multiplicity=2, engine="table")
    g = cl.graph
    rep_v = validate_layout(cl.layout, g)
    rep_l = validate_layout_legacy(cl.layout, g)
    assert rep_v.ok and rep_l.ok
    assert rep_v.num_errors == rep_l.num_errors == 0
    assert rep_v.checks_run == rep_l.checks_run


def test_collinear_rejects_unknown_engine():
    with pytest.raises(ValueError, match="engine"):
        collinear_layout(4, engine="numpy")


# ---------------------------------------------------------------------------
# grid scheme: table engine vs legacy engine
# ---------------------------------------------------------------------------

GRID_CASES = [
    ((1, 1, 1), 2, "forward", False),
    ((2, 1, 1), 2, "reversed", False),
    ((2, 2, 1), 3, "forward", False),
    ((2, 2, 2), 2, "forward", False),
    ((2, 2, 2), 4, "reversed", True),
    ((2, 1, 1, 1), 2, "forward", False),  # l > 3: union column channels
    ((2, 1, 1, 1), 3, "reversed", True),
]


@pytest.mark.parametrize("ks,L,order,rec", GRID_CASES)
def test_grid_table_matches_legacy(ks, L, order, rec):
    t = build_grid_layout(ks, L=L, track_order=order, recirculating=rec,
                          engine="table")
    l = build_grid_layout(ks, L=L, track_order=order, recirculating=rec,
                          engine="legacy")
    assert t.layout.has_native_table
    assert_same_layout(t.layout, l.layout)


def test_grid_table_validates_like_legacy():
    res = build_grid_layout((2, 2, 1), engine="table")
    g = res.graph
    rep_v = validate_layout(res.layout, g)
    rep_l = validate_layout_legacy(res.layout, g)
    assert rep_v.ok and rep_l.ok
    assert rep_v.checks_run == rep_l.checks_run


def test_grid_rejects_unknown_engine():
    with pytest.raises(ValueError, match="engine"):
        build_grid_layout((1, 1, 1), engine="objects")


# ---------------------------------------------------------------------------
# grid2d: table engine vs legacy engine
# ---------------------------------------------------------------------------


def _complete_rows(n, mult=1):
    return lambda _i: complete_multigraph(n, mult)


@pytest.mark.parametrize("rows,cols", [(3, 4), (4, 4), (1, 5)])
@pytest.mark.parametrize("split", [False, True])
def test_grid2d_table_matches_legacy(rows, cols, split):
    kw = dict(split_channels=split)
    t = build_grid2d_layout(rows, cols, _complete_rows(cols),
                            _complete_rows(rows), engine="table", **kw)
    l = build_grid2d_layout(rows, cols, _complete_rows(cols),
                            _complete_rows(rows), engine="legacy", **kw)
    assert t.layout.has_native_table
    assert_same_layout(t.layout, l.layout)
    rep = validate_layout(t.layout, t.graph)
    assert rep.ok, rep.errors[:3]


# ---------------------------------------------------------------------------
# WireTable roundtrips and measurements
# ---------------------------------------------------------------------------


def test_wiretable_roundtrip_grid():
    res = build_grid_layout((2, 1, 1), engine="table")
    t = res.layout.wire_table()
    wires = t.to_wires()
    t2 = WireTable.from_wires(wires)
    assert t2.nets == t.nets
    for a, b in (
        (t.indptr, t2.indptr), (t.x1, t2.x1), (t.y1, t2.y1),
        (t.x2, t2.x2), (t.y2, t2.y2), (t.layer, t2.layer),
    ):
        np.testing.assert_array_equal(a, b)


def test_wiretable_measurements_match_objects():
    res = build_grid_layout((2, 2, 1), L=3, engine="table")
    t = res.layout.wire_table()
    wires = res.layout.wires  # materializes (drops the table)
    assert t.total_wire_length() == sum(w.length for w in wires)
    assert t.max_wire_length() == max(w.length for w in wires)
    assert t.num_vias() == sum(len(w.vias()) for w in wires)
    np.testing.assert_array_equal(
        t.vias_per_wire(), [len(w.vias()) for w in wires]
    )
    assert t.layers_used() == sorted({s.layer for w in wires for s in w.segments})
    np.testing.assert_array_equal(
        t.wire_lengths(), [w.length for w in wires]
    )


def test_wiretable_paths_match_objects():
    res = build_grid_layout((1, 1, 1), recirculating=True, engine="table")
    t = res.layout.wire_table()
    p = t.paths()
    assert not p.bad.any()
    for i, w in enumerate(t.to_wires()):
        s, e = int(p.pt_indptr[i]), int(p.pt_indptr[i + 1])
        pts = list(zip(p.px[s:e].tolist(), p.py[s:e].tolist()))
        assert pts == w.path_points()


def test_wiretable_rejects_bad_segments():
    nets = [("w",)]
    ind = np.array([0, 1])
    one = np.array([1])
    with pytest.raises(ValueError, match="axis-aligned"):
        WireTable.from_segment_arrays(nets, ind, one, one, one + 1, one + 2, one)
    with pytest.raises(ValueError, match="zero-length"):
        WireTable.from_segment_arrays(nets, ind, one, one, one, one, one)
    with pytest.raises(ValueError, match="layer"):
        WireTable.from_segment_arrays(nets, ind, one, one, one + 1, one, one * 0)


def test_layout_lazy_materialization_drops_table():
    res = build_grid_layout((1, 1, 1), engine="table")
    lay = res.layout
    assert lay.has_native_table
    n = lay.num_wires()
    _ = lay.wires  # materialize
    assert not lay.has_native_table
    assert lay.num_wires() == n
    # wire_table() still works, via conversion
    assert lay.wire_table().num_wires == n


# ---------------------------------------------------------------------------
# randomized wires: table <-> objects (hypothesis, no new deps)
# ---------------------------------------------------------------------------


@st.composite
def rect_path(draw):
    """A rectilinear path with no immediate backtracking."""
    x = draw(st.integers(0, 40))
    y = draw(st.integers(0, 40))
    pts = [(x, y)]
    prev = None  # (axis, sign)
    for _ in range(draw(st.integers(1, 6))):
        axis = draw(st.booleans())
        sign = draw(st.booleans())
        if prev is not None and prev[0] == axis:
            sign = prev[1]  # same axis keeps direction: no backtrack
        d = draw(st.integers(1, 5)) * (1 if sign else -1)
        if axis:
            x += d
        else:
            y += d
        pts.append((x, y))
        prev = (axis, sign)
    return pts


@settings(deadline=None, max_examples=60)
@given(st.lists(rect_path(), min_size=1, max_size=5))
def test_random_wires_roundtrip(paths):
    wires = [
        Wire.from_path(("net", i), pts, THOMPSON_LAYERS)
        for i, pts in enumerate(paths)
    ]
    t = WireTable.from_wires(wires)
    assert t.to_wires() == wires
    p = t.paths()
    assert not p.bad.any()
    for i, w in enumerate(wires):
        s, e = int(p.pt_indptr[i]), int(p.pt_indptr[i + 1])
        got = list(zip(p.px[s:e].tolist(), p.py[s:e].tolist()))
        assert got == w.path_points()
        assert int(t.vias_per_wire()[i]) == len(w.vias())


# ---------------------------------------------------------------------------
# randomized corruption: both validators must agree on every verdict
# ---------------------------------------------------------------------------


def _rand_shift_track(layout, rng):
    w = layout.wires[rng.randrange(len(layout.wires))]
    j = rng.randrange(len(w.segments))
    s = w.segments[j]
    dy = rng.choice([-2, -1, 1, 2])
    w.segments[j] = Segment(s.x1, s.y1 + dy, s.x2, s.y2 + dy, s.layer)


def _rand_relayer(layout, rng):
    w = layout.wires[rng.randrange(len(layout.wires))]
    j = rng.randrange(len(w.segments))
    s = w.segments[j]
    w.segments[j] = Segment(s.x1, s.y1, s.x2, s.y2, rng.randint(1, 5))


def _rand_drop(layout, rng):
    del layout.wires[rng.randrange(len(layout.wires))]


def _rand_duplicate(layout, rng):
    w = layout.wires[rng.randrange(len(layout.wires))]
    layout.wires.append(Wire(net=w.net, segments=list(w.segments)))


def _rand_translate(layout, rng):
    w = layout.wires[rng.randrange(len(layout.wires))]
    dx, dy = rng.randint(-3, 3), rng.randint(-3, 3)
    w.segments = [
        Segment(s.x1 + dx, s.y1 + dy, s.x2 + dx, s.y2 + dy, s.layer)
        for s in w.segments
    ]


def _rand_truncate(layout, rng):
    w = layout.wires[rng.randrange(len(layout.wires))]
    if len(w.segments) > 1:
        del w.segments[rng.randrange(len(w.segments))]


_RANDOM_MUTATIONS = [
    _rand_shift_track,
    _rand_relayer,
    _rand_drop,
    _rand_duplicate,
    _rand_translate,
    _rand_truncate,
]


@settings(deadline=None, max_examples=40)
@given(st.integers(0, 10**9), st.integers(1, 3))
def test_random_mutation_verdict_parity(seed, n_mut):
    rng = random.Random(seed)
    cl = collinear_layout(5, multiplicity=2)
    layout, graph = cl.layout, cl.graph
    for _ in range(n_mut):
        _RANDOM_MUTATIONS[rng.randrange(len(_RANDOM_MUTATIONS))](layout, rng)
    rep_v = validate_layout(layout, graph)
    rep_l = validate_layout_legacy(layout, graph)
    assert rep_v.ok == rep_l.ok
    assert rep_v.checks_run == rep_l.checks_run


@settings(deadline=None, max_examples=15)
@given(st.integers(0, 10**9))
def test_random_mutation_verdict_parity_grid(seed):
    rng = random.Random(seed)
    res = build_grid_layout((1, 1, 1))
    layout, graph = res.layout, res.graph
    _RANDOM_MUTATIONS[rng.randrange(len(_RANDOM_MUTATIONS))](layout, rng)
    rep_v = validate_layout(layout, graph)
    rep_l = validate_layout_legacy(layout, graph)
    assert rep_v.ok == rep_l.ok


# ---------------------------------------------------------------------------
# Appendix B oracle: brute-force minimal track counts for K_2..K_8
# ---------------------------------------------------------------------------


def _cut_lower_bound(n):
    """Max number of links whose open intervals cross a common cut — a hard
    lower bound on tracks (pairwise-overlapping links need distinct ones)."""
    links = [(a, b) for a in range(n) for b in range(a + 1, n)]
    return max(
        sum(1 for a, b in links if a <= x < b) for x in range(n - 1)
    )


def _greedy_left_edge(n):
    """Independent left-edge reimplementation: exact for interval graphs."""
    links = sorted(
        ((a, b) for a in range(n) for b in range(a + 1, n)),
        key=lambda e: (e[0], e[1]),
    )
    track_right = []  # rightmost endpoint per track
    for a, b in links:
        for t, r in enumerate(track_right):
            if r <= a:  # end-to-end chaining allowed
                track_right[t] = b
                break
        else:
            track_right.append(b)
    return len(track_right)


def _exact_min_tracks(n):
    """Exhaustive backtracking minimum coloring of the link conflict graph
    (open-interval overlaps).  Exponential; used only for tiny n."""
    links = [(a, b) for a in range(n) for b in range(a + 1, n)]
    m = len(links)
    conflicts = [
        [
            j
            for j in range(m)
            if j != i
            and max(links[i][0], links[j][0]) < min(links[i][1], links[j][1])
        ]
        for i in range(m)
    ]

    def colorable(k):
        color = [-1] * m

        def rec(i):
            if i == m:
                return True
            used = {color[j] for j in conflicts[i] if color[j] >= 0}
            for c in range(k):
                if c not in used:
                    color[i] = c
                    if rec(i + 1):
                        return True
                    color[i] = -1
                if c > max(color[:i], default=-1):
                    break  # symmetry: first use of a fresh color only
            return False

        return rec(0)

    k = 1
    while not colorable(k):
        k += 1
    return k


@pytest.mark.parametrize("n", range(2, 9))
def test_appendix_b_minimal_track_oracle(n):
    lo = _cut_lower_bound(n)
    hi = _greedy_left_edge(n)
    assert lo == hi == optimal_track_count(n) == n * n // 4


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_appendix_b_exact_coloring_oracle(n):
    assert _exact_min_tracks(n) == optimal_track_count(n)


@pytest.mark.parametrize("n", range(2, 9))
def test_track_assignment_achieves_oracle(n):
    assign = track_assignment(n)
    used = set(assign.values())
    assert used == set(range(optimal_track_count(n)))
    # conflict-freedom: same-track links chain end-to-end, never overlap
    by_track = {}
    for (a, b), t in assign.items():
        by_track.setdefault(t, []).append((a, b))
    for t, ivs in by_track.items():
        ivs.sort()
        for (a1, b1), (a2, b2) in zip(ivs, ivs[1:]):
            assert b1 <= a2, f"track {t}: ({a1},{b1}) overlaps ({a2},{b2})"


def test_prior_bound_edge_cases():
    # K_2: the closed form gives 0; clamped to the single needed track
    assert chen_agrawal_track_count(2) == 1
    assert chen_agrawal_track_count(4) == 4
    assert chen_agrawal_track_count(8) == 20
    # non-powers round the exponent up
    assert chen_agrawal_track_count(5) == chen_agrawal_track_count(8)
    with pytest.raises(ValueError):
        chen_agrawal_track_count(1)
    for n in range(2, 9):
        assert naive_track_count(n) == n * (n - 1) // 2
        assert optimal_track_count(n) <= chen_agrawal_track_count(n) or n < 4
