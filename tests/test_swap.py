"""Tests for swap networks and their parameter records."""

import pytest
from hypothesis import given

from repro.topology.hypercube import hypercube_graph
from repro.topology.swap import SwapNetwork, SwapNetworkParams, hsn_graph, swap_network_graph

from tests.conftest import param_vector_strategy


class TestParams:
    def test_offsets(self):
        p = SwapNetworkParams([3, 2, 1])
        assert p.offsets == [0, 3, 5, 6]
        assert p.n == 6
        assert p.l == 3
        assert p.num_rows == 64

    def test_constraint_ki_le_prefix(self):
        with pytest.raises(ValueError):
            SwapNetworkParams([1, 2])  # k2 > n_1
        SwapNetworkParams([2, 2])  # boundary case fine

    def test_rejects_empty_and_zero(self):
        with pytest.raises(ValueError):
            SwapNetworkParams([])
        with pytest.raises(ValueError):
            SwapNetworkParams([2, 0])

    def test_hsn_flags(self):
        assert SwapNetworkParams([2, 2, 2]).is_hsn()
        assert not SwapNetworkParams([3, 2, 2]).is_hsn()
        assert SwapNetworkParams([3, 2, 2]).is_hsn_like()

    def test_sigma_level1_identity(self):
        p = SwapNetworkParams([2, 2])
        assert p.sigma(1, 0b1101) == 0b1101

    def test_sigma_swaps_group(self):
        p = SwapNetworkParams([2, 2])
        assert p.sigma(2, 0b1101) == 0b0111

    def test_for_dimension(self):
        assert SwapNetworkParams.for_dimension(9, 3).ks == (3, 3, 3)
        assert SwapNetworkParams.for_dimension(10, 3).ks == (4, 3, 3)
        assert SwapNetworkParams.for_dimension(11, 3).ks == (4, 4, 3)
        with pytest.raises(ValueError):
            SwapNetworkParams.for_dimension(2, 3)


class TestSwapNetwork:
    def test_one_level_is_hypercube(self):
        g = swap_network_graph([3])
        h = hypercube_graph(3)
        assert g.same_as(h)

    def test_two_level_counts(self):
        # SN(2, Q_2): 16 nodes; nucleus links 16*2/2 = 16... per node 2
        g = swap_network_graph([2, 2])
        assert g.num_nodes == 16
        nucleus = 16 * 2 // 2
        # level-2 links: involution sigma has fixed points where the two
        # groups coincide (4 of 16), so (16 - 4)/2 = 6 links
        assert g.num_edges == nucleus + 6

    def test_hsn_alias(self):
        assert hsn_graph(2, 2).same_as(swap_network_graph([2, 2]))

    def test_inter_cluster_level_validation(self):
        sn = SwapNetwork(SwapNetworkParams([2, 2]))
        with pytest.raises(ValueError):
            list(sn.inter_cluster_links(1))
        with pytest.raises(ValueError):
            list(sn.inter_cluster_links(3))

    def test_connected(self):
        assert swap_network_graph([2, 2]).is_connected()
        assert swap_network_graph([2, 2, 2]).is_connected()


@given(param_vector_strategy(max_l=3, max_k1=3, max_n=7))
def test_sigma_involution_and_degree_bound(ks):
    p = SwapNetworkParams(ks)
    for level in range(2, p.l + 1):
        for x in range(p.num_rows):
            assert p.sigma(level, p.sigma(level, x)) == x
    g = SwapNetwork(p).graph()
    # degree <= k1 nucleus + (l-1) inter-cluster links
    assert g.max_degree() <= p.ks[0] + (p.l - 1)
