"""Tests for the multigraph substrate."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.topology.graph import Graph, edge_array


def triangle(mult=1):
    g = Graph("tri")
    g.add_edge(0, 1, mult)
    g.add_edge(1, 2, mult)
    g.add_edge(0, 2, mult)
    return g


class TestConstruction:
    def test_counts(self):
        g = triangle()
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.num_simple_edges == 3

    def test_multiplicity(self):
        g = triangle(4)
        assert g.num_edges == 12
        assert g.num_simple_edges == 3
        assert g.multiplicity(0, 1) == 4
        assert g.degree(0) == 8
        assert g.simple_degree(0) == 2

    def test_add_edge_accumulates(self):
        g = Graph()
        g.add_edge("a", "b")
        g.add_edge("a", "b", 2)
        assert g.multiplicity("a", "b") == 3

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_bad_multiplicity_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(0, 1, 0)

    def test_remove_node(self):
        g = triangle()
        g.remove_node(1)
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert not g.has_edge(0, 1)
        with pytest.raises(KeyError):
            g.remove_node(99)

    def test_isolated_nodes(self):
        g = Graph()
        g.add_nodes(range(5))
        assert g.num_nodes == 5
        assert g.num_edges == 0
        assert g.degree(3) == 0

    def test_remove_node_multiplicity_accounting(self):
        # removing a node must subtract the full multiplicity of every
        # incident edge, not just one per neighbor
        g = Graph()
        g.add_edge(0, 1, 3)
        g.add_edge(1, 2, 5)
        g.add_edge(0, 2, 1)
        assert g.num_edges == 9
        g.remove_node(1)
        assert g.num_edges == 1
        assert g.num_nodes == 2
        assert g.multiplicity(0, 2) == 1
        g.remove_node(0)
        assert g.num_edges == 0
        assert g.degree(2) == 0

    def test_remove_node_after_bulk_insert(self):
        g = Graph()
        g.add_edges_from(np.array([[0, 1], [1, 2], [0, 2]]), count=2)
        g.remove_node(1)
        assert g.num_nodes == 2
        assert g.num_edges == 2
        assert g.multiplicity(0, 2) == 2


class TestBulkEdges:
    def test_bulk_matches_per_edge_scalar_nodes(self):
        pairs = [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]
        h = Graph()
        for u, v in pairs:
            h.add_edge(u, v)
        g = Graph()
        g.add_edges_from(np.array(pairs, dtype=np.int64))
        assert g.same_as(h)
        assert set(g.nodes()) == set(h.nodes())
        assert g.num_edges == h.num_edges

    def test_bulk_matches_per_edge_tuple_nodes(self):
        pairs = [((r, 0), (r, 1)) for r in range(4)] + [
            ((r, 0), (r ^ 1, 1)) for r in range(4)
        ]
        h = Graph()
        for u, v in pairs:
            h.add_edge(u, v)
        arr = np.array(pairs, dtype=np.int64)  # (E, 2, 2)
        g = Graph()
        g.add_edges_from(arr)
        assert g.same_as(h)
        assert h.same_as(g)
        assert g.neighbors((0, 0)) == h.neighbors((0, 0))

    def test_duplicate_rows_accumulate(self):
        g = Graph()
        g.add_edges_from(np.array([[0, 1], [0, 1], [1, 2]]), count=2)
        assert g.multiplicity(0, 1) == 4
        assert g.multiplicity(1, 2) == 2
        assert g.num_edges == 6

    def test_iterable_path(self):
        g = Graph()
        g.add_edges_from([(0, 1), (1, 2)], count=3)
        assert g.num_edges == 6
        with pytest.raises(TypeError):
            g.add_edges_from([(0, 1)], count=np.array([1]))

    def test_bulk_then_per_edge_merge(self):
        g = Graph()
        g.add_edges_from(np.array([[0, 1], [1, 2]]))
        g.add_edge(0, 1)  # merges with the staged chunk
        assert g.multiplicity(0, 1) == 2
        assert g.num_edges == 3

    def test_bulk_validation_errors(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edges_from(np.array([[0, 0]]))  # self-loop
        with pytest.raises(ValueError):
            g.add_edges_from(np.array([[0, 1]]), count=0)
        with pytest.raises(ValueError):
            g.add_edges_from(np.array([0, 1]))  # wrong shape
        with pytest.raises(ValueError):
            g.add_edges_from(np.array([[0.5, 1.5]]))  # non-integer

    def test_to_edge_array_round_trip(self):
        g = Graph()
        g.add_edge(0, 1, 2)
        g.add_edge(3, 1)
        edges, counts = g.to_edge_array()
        assert edges.tolist() == [[0, 1], [1, 3]]
        assert counts.tolist() == [2, 1]
        h = Graph()
        h.add_edges_from(edges, counts)
        assert h.same_as(g)

    def test_to_edge_array_staged_matches_materialized(self):
        arr = edge_array((np.arange(4), 0), (np.arange(4) ^ 1, 1))
        g1 = Graph()
        g1.add_edges_from(arr)
        e1, c1 = g1.to_edge_array()  # staged-native export
        g2 = Graph()
        g2.add_edges_from(arr)
        g2.nodes()  # force materialisation
        e2, c2 = g2.to_edge_array()  # dict-based export
        assert e1.tolist() == e2.tolist()
        assert c1.tolist() == c2.tolist()

    def test_edge_array_helper(self):
        out = edge_array(np.array([0, 1]), np.array([2, 3]))
        assert out.shape == (2, 2)
        out = edge_array((np.array([0, 1]), 5), (np.array([2, 3]), 6))
        assert out.shape == (2, 2, 2)
        assert out[0].tolist() == [[0, 5], [2, 6]]
        with pytest.raises(ValueError):
            edge_array((np.array([0]),), np.array([1]))
        with pytest.raises(ValueError):
            edge_array((np.array([0]),), (np.array([1]), 2))

    def test_quotient_on_staged_graph(self):
        r = np.arange(8)
        arr = np.concatenate(
            [edge_array((r, 0), (r, 1)), edge_array((r, 0), (r ^ 3, 1))]
        )
        g = Graph()
        g.add_edges_from(arr)
        q_staged = g.quotient(lambda node: node[0] // 2)
        h = Graph()
        h.add_edges_from(arr)
        h.nodes()  # materialise first
        q_dict = h.quotient(lambda node: node[0] // 2)
        assert q_staged.same_as(q_dict)
        assert q_staged.internal_edges == q_dict.internal_edges
        assert q_staged.internal_edges == 8  # the straight links
        assert q_staged.num_edges == 8


class TestQueries:
    def test_neighbors_sorted(self):
        g = Graph()
        g.add_edge(5, 2)
        g.add_edge(5, 9)
        g.add_edge(5, 1)
        assert g.neighbors(5) == [1, 2, 9]

    def test_edges_canonical(self):
        g = triangle(2)
        edges = list(g.edges())
        assert edges == [(0, 1, 2), (0, 2, 2), (1, 2, 2)]

    def test_edge_multiset(self):
        g = triangle()
        assert g.edge_multiset() == {(0, 1): 1, (0, 2): 1, (1, 2): 1}

    def test_degree_histogram(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert g.degree_histogram() == {1: 2, 2: 1}

    def test_mixed_node_types_sort(self):
        g = Graph()
        g.add_edge(1, (0, 1))
        assert g.neighbors(1) == [(0, 1)]
        assert list(g.edges()) == [(1, (0, 1), 1)]


class TestStructure:
    def test_subgraph(self):
        g = triangle()
        sub = g.subgraph([0, 1])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1

    def test_quotient_accumulates_multiplicity(self):
        # 4-cycle quotiented to 2 supernodes: 2 parallel inter-links
        g = Graph()
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            g.add_edge(a, b)
        q = g.quotient(lambda u: u % 2)
        assert q.num_nodes == 2
        assert q.multiplicity(0, 1) == 4

    def test_quotient_drops_internal(self):
        g = triangle()
        q = g.quotient(lambda u: 0 if u < 2 else 1)
        assert q.num_edges == 2  # edges 0-2 and 1-2; 0-1 internal

    def test_internal_edges_is_a_real_field(self):
        # every Graph carries the attribute, default 0 ...
        assert Graph().internal_edges == 0
        assert triangle().internal_edges == 0
        # ... and quotient records dropped edges even without keep_internal
        q = triangle(2).quotient(lambda u: 0 if u < 2 else 1)
        assert q.internal_edges == 2
        # keep_internal is accepted for backward compatibility, no-op
        q2 = triangle(2).quotient(lambda u: 0 if u < 2 else 1, keep_internal=True)
        assert q2.internal_edges == 2
        assert q2.same_as(q)

    def test_relabel_preserves_structure(self):
        g = triangle(3)
        h = g.relabel({0: "x", 1: "y", 2: "z"})
        assert h.multiplicity("x", "y") == 3
        assert h.num_edges == g.num_edges

    def test_relabel_requires_injection(self):
        g = triangle()
        with pytest.raises(ValueError):
            g.relabel({0: "x", 1: "x", 2: "z"})

    def test_connected_components(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        g.add_node(4)
        comps = g.connected_components()
        assert sorted(len(c) for c in comps) == [1, 2, 2]
        assert not g.is_connected()
        assert triangle().is_connected()


class TestComparison:
    def test_same_as(self):
        assert triangle().same_as(triangle())
        assert not triangle().same_as(triangle(2))

    def test_isomorphism_by_mapping(self):
        g = triangle()
        h = g.relabel({0: 10, 1: 11, 2: 12})
        assert g.is_isomorphic_by(h, {0: 10, 1: 11, 2: 12})
        # a wrong mapping on a path graph must fail
        p = Graph()
        p.add_edge(0, 1)
        p.add_edge(1, 2)
        q = p.relabel({0: 10, 1: 11, 2: 12})
        assert not p.is_isomorphic_by(q, {0: 11, 1: 10, 2: 12})

    def test_isomorphism_wrong_domain(self):
        g, h = triangle(), triangle()
        assert not g.is_isomorphic_by(h, {0: 0, 1: 1})


@given(st.sets(st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=30))
def test_quotient_preserves_total_edges(pairs):
    g = Graph()
    count = 0
    for a, b in pairs:
        if a != b:
            g.add_edge(a, b)
            count += 1
    q = g.quotient(lambda u: u % 3, keep_internal=True)
    assert q.num_edges + q.internal_edges == count
