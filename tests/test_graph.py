"""Tests for the multigraph substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.graph import Graph


def triangle(mult=1):
    g = Graph("tri")
    g.add_edge(0, 1, mult)
    g.add_edge(1, 2, mult)
    g.add_edge(0, 2, mult)
    return g


class TestConstruction:
    def test_counts(self):
        g = triangle()
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.num_simple_edges == 3

    def test_multiplicity(self):
        g = triangle(4)
        assert g.num_edges == 12
        assert g.num_simple_edges == 3
        assert g.multiplicity(0, 1) == 4
        assert g.degree(0) == 8
        assert g.simple_degree(0) == 2

    def test_add_edge_accumulates(self):
        g = Graph()
        g.add_edge("a", "b")
        g.add_edge("a", "b", 2)
        assert g.multiplicity("a", "b") == 3

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_bad_multiplicity_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(0, 1, 0)

    def test_remove_node(self):
        g = triangle()
        g.remove_node(1)
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert not g.has_edge(0, 1)
        with pytest.raises(KeyError):
            g.remove_node(99)

    def test_isolated_nodes(self):
        g = Graph()
        g.add_nodes(range(5))
        assert g.num_nodes == 5
        assert g.num_edges == 0
        assert g.degree(3) == 0


class TestQueries:
    def test_neighbors_sorted(self):
        g = Graph()
        g.add_edge(5, 2)
        g.add_edge(5, 9)
        g.add_edge(5, 1)
        assert g.neighbors(5) == [1, 2, 9]

    def test_edges_canonical(self):
        g = triangle(2)
        edges = list(g.edges())
        assert edges == [(0, 1, 2), (0, 2, 2), (1, 2, 2)]

    def test_edge_multiset(self):
        g = triangle()
        assert g.edge_multiset() == {(0, 1): 1, (0, 2): 1, (1, 2): 1}

    def test_degree_histogram(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert g.degree_histogram() == {1: 2, 2: 1}

    def test_mixed_node_types_sort(self):
        g = Graph()
        g.add_edge(1, (0, 1))
        assert g.neighbors(1) == [(0, 1)]
        assert list(g.edges()) == [(1, (0, 1), 1)]


class TestStructure:
    def test_subgraph(self):
        g = triangle()
        sub = g.subgraph([0, 1])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1

    def test_quotient_accumulates_multiplicity(self):
        # 4-cycle quotiented to 2 supernodes: 2 parallel inter-links
        g = Graph()
        for a, b in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            g.add_edge(a, b)
        q = g.quotient(lambda u: u % 2)
        assert q.num_nodes == 2
        assert q.multiplicity(0, 1) == 4

    def test_quotient_drops_internal(self):
        g = triangle()
        q = g.quotient(lambda u: 0 if u < 2 else 1)
        assert q.num_edges == 2  # edges 0-2 and 1-2; 0-1 internal

    def test_relabel_preserves_structure(self):
        g = triangle(3)
        h = g.relabel({0: "x", 1: "y", 2: "z"})
        assert h.multiplicity("x", "y") == 3
        assert h.num_edges == g.num_edges

    def test_relabel_requires_injection(self):
        g = triangle()
        with pytest.raises(ValueError):
            g.relabel({0: "x", 1: "x", 2: "z"})

    def test_connected_components(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        g.add_node(4)
        comps = g.connected_components()
        assert sorted(len(c) for c in comps) == [1, 2, 2]
        assert not g.is_connected()
        assert triangle().is_connected()


class TestComparison:
    def test_same_as(self):
        assert triangle().same_as(triangle())
        assert not triangle().same_as(triangle(2))

    def test_isomorphism_by_mapping(self):
        g = triangle()
        h = g.relabel({0: 10, 1: 11, 2: 12})
        assert g.is_isomorphic_by(h, {0: 10, 1: 11, 2: 12})
        # a wrong mapping on a path graph must fail
        p = Graph()
        p.add_edge(0, 1)
        p.add_edge(1, 2)
        q = p.relabel({0: 10, 1: 11, 2: 12})
        assert not p.is_isomorphic_by(q, {0: 11, 1: 10, 2: 12})

    def test_isomorphism_wrong_domain(self):
        g, h = triangle(), triangle()
        assert not g.is_isomorphic_by(h, {0: 0, 1: 1})


@given(st.sets(st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=30))
def test_quotient_preserves_total_edges(pairs):
    g = Graph()
    count = 0
    for a, b in pairs:
        if a != b:
            g.add_edge(a, b)
            count += 1
    q = g.quotient(lambda u: u % 3, keep_internal=True)
    assert q.num_edges + q.internal_edges == count
