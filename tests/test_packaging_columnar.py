"""Differential and property tests for the columnar packaging engine.

The columnar :func:`count_off_module_links` must be wire-for-wire
identical to the legacy per-link enumerator — same totals *and* the same
per-module dicts (content and insertion order) — across row, nucleus and
naive partitions, including non-power-of-two naive module sizes.  The
closed forms of Section 2.3 / Theorem 2.1 pin the counts independently,
and the ``measure_offmodule_traffic`` rewrite is held to a dict-loop
reference under fixed seeds.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings

from repro.algorithms.routing import (
    _phi_vec,
    measure_offmodule_traffic,
    path_rows,
)
from repro.packaging.baseline import (
    NaiveRowPartition,
    max_rows_within_pin_limit,
)
from repro.packaging.optimizer import exact_pin_maxima, optimize_packaging
from repro.packaging.partition import (
    NucleusPartition,
    Partition,
    RowPartition,
)
from repro.packaging.pins import (
    count_off_module_links,
    count_off_module_links_legacy,
    nucleus_partition_module_bound,
    row_partition_avg_per_node,
    row_partition_offmodule_per_module,
)
from repro.topology.butterfly import Butterfly
from repro.topology.swap import SwapNetworkParams
from repro.transform.swap_butterfly import SwapButterfly

from tests.conftest import param_vector_strategy

GRID = [(2, 2), (3, 2), (2, 2, 2), (3, 2, 2), (3, 3, 2), (3, 3, 3), (2, 2, 2, 2), (4, 3, 2)]


class _OpaqueWrapper(Partition):
    """Hides a partition behind ``module_of`` only, forcing the base
    class's generic (loop-backed) columnar fallback."""

    def __init__(self, inner: Partition) -> None:
        self.sb = inner.sb
        self._inner = inner

    def module_of(self, node):
        return self._inner.module_of(node)


def _partitions(sb: SwapButterfly):
    yield RowPartition.natural(sb)
    yield RowPartition(sb, 0)
    yield RowPartition(sb, min(sb.n, sb.params.ks[0] + 1))
    yield NucleusPartition(sb)


class TestColumnarParity:
    @pytest.mark.parametrize("ks", GRID)
    def test_counts_and_dicts_identical(self, ks):
        sb = SwapButterfly.from_ks(ks)
        for part in _partitions(sb):
            a = count_off_module_links(part)
            b = count_off_module_links_legacy(part)
            assert a.num_modules == b.num_modules
            assert a.total_links == b.total_links == sb.num_edges
            assert a.off_module_links == b.off_module_links
            assert a.per_module == b.per_module
            assert list(a.per_module) == list(b.per_module)  # same order
            assert a.nodes_per_module == b.nodes_per_module
            assert list(a.nodes_per_module) == list(b.nodes_per_module)

    @pytest.mark.parametrize("ks", [(2, 2), (3, 2, 2), (3, 3, 3)])
    def test_generic_fallback_matches_fast_paths(self, ks):
        sb = SwapButterfly.from_ks(ks)
        for part in (RowPartition.natural(sb), NucleusPartition(sb)):
            generic = _OpaqueWrapper(part)
            assert generic.module_labels() == part.module_labels()
            assert generic.module_sizes() == part.module_sizes()
            assert generic.num_modules == part.num_modules
            ga = count_off_module_links(generic)
            fa = count_off_module_links(part)
            assert ga.per_module == fa.per_module
            assert ga.nodes_per_module == fa.nodes_per_module

    @pytest.mark.parametrize("ks", [(2, 2), (3, 3, 3)])
    def test_module_sizes_legacy_oracle(self, ks):
        sb = SwapButterfly.from_ks(ks)
        for part in _partitions(sb):
            assert part.module_sizes() == part.module_sizes_legacy()
            assert part.modules() == list(part.module_sizes_legacy())

    def test_module_ids_match_module_of(self):
        sb = SwapButterfly.from_ks((3, 2, 2))
        rows = np.tile(np.arange(sb.rows, dtype=np.int64), sb.stages)
        stages = np.repeat(np.arange(sb.stages, dtype=np.int64), sb.rows)
        for part in _partitions(sb):
            labels = part.module_labels()
            ids = part.module_ids(rows, stages)
            for u, s, mid in zip(rows[::7], stages[::7], ids[::7]):
                assert labels[int(mid)] == part.module_of((int(u), int(s)))

    def test_cached_edge_array(self):
        sb = SwapButterfly.from_ks((2, 2))
        ea = sb.cached_edge_array()
        assert ea is sb.cached_edge_array()  # memoized
        assert not ea.flags.writeable
        assert np.array_equal(ea, sb.edge_array())


class TestNaiveColumnar:
    @pytest.mark.parametrize("n", [4, 5, 6])
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 7, 8, 11])
    def test_parity_including_non_power_of_two(self, n, m):
        b = Butterfly(n)
        if m > b.rows:
            pytest.skip("module larger than the network")
        part = NaiveRowPartition(b, m)
        assert part.exact_pin_counts() == part.exact_pin_counts_legacy()

    def test_max_pins_and_avg_agree_with_legacy(self):
        part = NaiveRowPartition(Butterfly(6), 3)
        legacy = part.exact_pin_counts_legacy()
        assert part.max_pins == max(legacy.values())
        assert part.avg_per_node() == Fraction(
            sum(legacy.values()), part.bfly.num_nodes
        )

    @pytest.mark.parametrize("n,limit", [(5, 24), (6, 30), (9, 64)])
    def test_max_rows_within_pin_limit_vs_legacy_scan(self, n, limit):
        # re-run the original scan on top of the legacy per-link counter
        b = Butterfly(n)
        best = 0
        for m in range(1, b.rows + 1):
            pins = NaiveRowPartition(b, m).exact_pin_counts_legacy()
            if max(pins.values(), default=0) <= limit:
                best = m
            elif best:
                break
        assert max_rows_within_pin_limit(n, limit) == best

    def test_tiny_pin_limit_degenerates_to_one_module(self):
        # the whole network on one module has 0 off-module links, so even
        # a 1-pin budget admits the all-rows module (legacy did the same)
        assert max_rows_within_pin_limit(5, 1) == 32


@settings(deadline=None, max_examples=20)
@given(param_vector_strategy(max_l=4, max_k1=3, max_n=8))
def test_columnar_counts_pin_closed_forms(ks):
    """Property: columnar counts reproduce the Section 2.3 closed form and
    Theorem 2.1's ``2**(k1+2)`` nucleus bound across the (n, ks) grid."""
    sb = SwapButterfly.from_ks(ks)
    rep = count_off_module_links(RowPartition.natural(sb))
    formula = row_partition_offmodule_per_module(ks)
    assert rep.max_per_module == formula
    assert set(rep.per_module.values()) == {formula}
    assert rep.avg_per_node == row_partition_avg_per_node(ks)
    nrep = count_off_module_links(NucleusPartition(sb))
    assert nrep.max_per_module <= nucleus_partition_module_bound(ks[0])
    # every composite link crosses nucleus modules: 2 per row per boundary
    assert nrep.off_module_links == 2 * (len(ks) - 1) * sb.rows


class TestRoutingRewrite:
    @pytest.mark.parametrize("ks", [(2, 2), (2, 2, 2), (3, 2, 2)])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_measure_offmodule_traffic_seeded_parity(self, ks, seed):
        """The bincount rewrite is bit-identical to the per-crossing dict
        loop under a fixed seed."""
        params = SwapNetworkParams(ks)
        sb = SwapButterfly(params)
        n, R, k1 = params.n, params.num_rows, params.ks[0]
        num_packets = 500
        rng = np.random.default_rng(seed)
        src = rng.integers(0, R, size=num_packets)
        dst = rng.integers(0, R, size=num_packets)
        logical = path_rows(n, src, dst)
        phys = np.empty_like(logical)
        for s in range(n + 1):
            phys[s] = _phi_vec(sb, s, logical[s])
        modules = phys >> k1
        per_module, total = {}, 0
        for s in range(n):
            a, b = modules[s], modules[s + 1]
            cross = a != b
            total += int(cross.sum())
            for m in np.concatenate([a[cross], b[cross]]):
                per_module[int(m)] = per_module.get(int(m), 0) + 1

        res = measure_offmodule_traffic(
            ks, num_packets=num_packets, rng=np.random.default_rng(seed)
        )
        assert res.total_crossings == total
        assert res.crossings_per_module == per_module
        assert res.num_modules == R >> k1
        assert res.max_per_module == max(per_module.values(), default=0)

    def test_zero_packets(self):
        res = measure_offmodule_traffic((2, 2), num_packets=0)
        assert res.total_crossings == 0
        assert res.crossings_per_module == {}
        assert res.demand_per_module_per_packet() == 0.0


class TestExactOptimizer:
    def test_exact_attaches_and_verifies(self):
        cands = optimize_packaging(8, exact=True)
        assert cands
        for c in cands:
            assert c.exact_pins is not None
            if c.scheme == "row":
                assert c.exact_pins == c.pins_per_module
            else:
                assert c.exact_pins <= c.pins_per_module

    def test_exact_off_by_default(self):
        assert all(
            c.exact_pins is None for c in optimize_packaging(8)
        )

    def test_workers_match_serial(self):
        serial = optimize_packaging(8, exact=True)
        parallel = optimize_packaging(8, exact=True, workers=2, batch=2)
        assert serial == parallel

    def test_exact_pin_maxima_memoized(self):
        exact_pin_maxima.cache_clear()
        a = exact_pin_maxima((3, 3))
        assert exact_pin_maxima((3, 3)) is a
        sb = SwapButterfly.from_ks((3, 3))
        assert a["row"] == count_off_module_links(
            RowPartition.natural(sb)
        ).max_per_module
        assert a["nucleus"] <= nucleus_partition_module_bound(3)
