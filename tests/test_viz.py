"""Tests for SVG and text figure rendering."""

import pytest

from repro.layout.collinear import collinear_layout
from repro.layout.grid_scheme import build_grid_layout
from repro.topology.isn import ISN
from repro.transform.swap_butterfly import SwapButterfly
from repro.viz.ascii import collinear_figure, isn_schedule_figure, swap_butterfly_figure
from repro.viz.svg import layout_to_svg, save_svg


class TestSvg:
    def test_collinear_svg_wellformed(self):
        cl = collinear_layout(9)
        svg = layout_to_svg(cl.layout)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") == 9 + 1  # nodes + background
        assert svg.count("<line") == sum(len(w.segments) for w in cl.layout.wires)

    def test_grid_svg(self):
        res = build_grid_layout((1, 1, 1))
        svg = layout_to_svg(res.layout)
        assert svg.count("<rect") == len(res.layout.nodes) + 1

    def test_max_wires_truncation(self):
        cl = collinear_layout(9)
        svg = layout_to_svg(cl.layout, max_wires=3)
        assert svg.count("<line") == sum(
            len(w.segments) for w in cl.layout.wires[:3]
        )

    def test_save_svg(self, tmp_path):
        cl = collinear_layout(4)
        path = save_svg(cl.layout, str(tmp_path / "k4.svg"))
        with open(path) as f:
            assert "<svg" in f.read()

    def test_via_dots_toggle(self):
        cl = collinear_layout(4)
        with_vias = layout_to_svg(cl.layout, show_vias=True)
        without = layout_to_svg(cl.layout, show_vias=False)
        assert with_vias.count("<circle") > 0
        assert without.count("<circle") == 0


class TestAsciiFigures:
    def test_fig1_label_matrix(self):
        """Figure 1: node (1,2) of the 4x4 swap-butterfly carries butterfly
        row 2."""
        fig = swap_butterfly_figure(SwapButterfly.from_ks((1, 1)))
        lines = fig.splitlines()
        assert lines[0].split() == ["row", "s0", "s1", "s2"]
        row1 = lines[2].split()
        assert row1 == ["1", "1", "1", "2"]
        assert "S2" in lines[-1]

    def test_fig2_matrix_shape(self):
        fig = swap_butterfly_figure(SwapButterfly.from_ks((2, 2)))
        lines = fig.splitlines()
        assert len(lines) == 1 + 16 + 1  # header + rows + boundary marks

    def test_collinear_figure_k9(self):
        fig = collinear_figure(9)
        lines = fig.splitlines()
        assert "20 tracks" in lines[0]
        assert len(lines) == 21
        # type-1 track chains all 8 consecutive links
        assert "0-1 1-2 2-3 3-4 4-5 5-6 6-7 7-8" in fig

    def test_isn_schedule(self):
        fig = isn_schedule_figure(ISN.from_ks((2, 2)))
        assert "level-2 swap" in fig
        assert fig.count("exchange") == 4


class TestBoardSvg:
    def test_board_render(self, tmp_path):
        from repro.packaging.board import paper_board_example
        from repro.viz.board_svg import board_to_svg, save_board_svg

        d = paper_board_example(4)
        svg = board_to_svg(d)
        assert svg.count("<rect") == 1 + d.grid_rows + d.grid_cols + d.num_chips
        path = save_board_svg(d, str(tmp_path / "board.svg"))
        with open(path) as f:
            assert "chip 63" in f.read()
