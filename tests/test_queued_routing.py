"""Tests for the vectorized queued-routing engine and its fixed metrics.

The legacy triple-loop simulator stays in the tree purely as a reference
implementation; the differential tests here pin the vectorized engine to
it packet-for-packet under fixed seeds.
"""

import csv
import json

import numpy as np
import pytest

from repro.algorithms.queued_routing import (
    SimResult,
    _default_drain,
    saturation_per_node_rate,
    simulate_butterfly_queued,
    simulate_butterfly_queued_legacy,
    sweep_rates,
)


class TestDifferential:
    """Vectorized engine vs. the legacy reference loop, same seeds."""

    @pytest.mark.parametrize("n", [2, 3, 4])
    @pytest.mark.parametrize("rate", [0.2, 0.6, 0.95])
    def test_matches_legacy_packet_for_packet(self, n, rate):
        vec = simulate_butterfly_queued(n, rate, cycles=300, warmup=40, seed=3)
        ref = simulate_butterfly_queued_legacy(
            n, rate, cycles=300, warmup=40, seed=3
        )
        assert vec.offered == ref.offered
        assert vec.delivered == ref.delivered
        assert vec.drained == ref.drained
        assert vec.in_flight == ref.in_flight
        assert vec.drain_cycles == ref.drain_cycles
        assert vec.avg_latency == pytest.approx(ref.avg_latency, abs=1e-12)

    def test_exact_max_queue_dominates_legacy_sampling(self):
        """The legacy loop samples depths every 64 cycles; the engine
        tracks every enqueue, so its peak is never smaller and is
        strictly larger whenever the true peak falls between samples."""
        pairs = []
        for seed in range(6):
            vec = simulate_butterfly_queued(
                4, 0.95, cycles=300, warmup=0, seed=seed
            )
            ref = simulate_butterfly_queued_legacy(
                4, 0.95, cycles=300, warmup=0, seed=seed
            )
            assert vec.max_queue >= ref.max_queue
            pairs.append((vec.max_queue, ref.max_queue))
        assert any(v > r for v, r in pairs)

    def test_max_queue_agrees_with_trace(self):
        r = simulate_butterfly_queued(4, 0.9, cycles=400, seed=2, trace=True)
        assert r.max_queue == int(r.trace.max_depth.max())


class TestMetrics:
    def test_throughput_uses_measured_window(self):
        """Satellite 1: divide by (cycles - warmup) * rows, not cycles."""
        r = SimResult(
            n=3, rate_per_input=0.5, cycles=1000, offered=3200,
            delivered=3200, avg_latency=4.0, max_queue=2, warmup=200,
        )
        assert r.measured_cycles == 800
        assert r.throughput_per_input == pytest.approx(3200 / (800 * 8))
        # the old definition (divide by all cycles) would be biased low
        assert r.throughput_per_input > 3200 / (1000 * 8)

    def test_throughput_tracks_offered_rate_at_low_load(self):
        """With warmup excluded, measured throughput ~ offered rate even
        when warmup is a large slice of the run."""
        r = simulate_butterfly_queued(4, 0.4, cycles=600, warmup=300, seed=5)
        assert r.warmup == 300
        assert r.throughput_per_input == pytest.approx(0.4, rel=0.15)

    def test_drain_phase_recovers_in_flight_packets(self):
        """Satellite 3: accepted_fraction gets a bounded drain phase so
        packets still in the network at cutoff are not counted as lost."""
        undrained = simulate_butterfly_queued(
            4, 0.9, cycles=120, warmup=20, seed=1, drain=0
        )
        drained = simulate_butterfly_queued(
            4, 0.9, cycles=120, warmup=20, seed=1
        )
        assert undrained.in_flight > 0
        assert drained.drained > 0
        assert drained.accepted_fraction > undrained.accepted_fraction
        assert drained.accepted_fraction > 0.97
        # the drain is bounded and stops early once the network is empty
        assert drained.drain_cycles <= _default_drain(4)

    def test_conservation(self):
        r = simulate_butterfly_queued(5, 0.8, cycles=400, warmup=50, seed=9)
        assert r.offered == r.delivered + r.drained + r.in_flight


class TestSaturation:
    def test_floor_probe_returns_zero_when_unreachable(self):
        """Satellite 2: if even the 0.1 bracket floor fails the
        acceptance threshold, report 0.0 instead of the floor itself."""
        assert saturation_per_node_rate(3, cycles=300, threshold=1.5) == 0.0

    def test_normal_threshold_finds_positive_rate(self):
        assert saturation_per_node_rate(3, cycles=400) > 0.0

    def test_unsaturated_ceiling_reports_full_rate(self):
        """A config that never saturates must report the bracket ceiling
        (rate 1.0) exactly, not the bisection's asymptote just below it.

        Regression: n=1 at threshold 0.5 used to return 0.49296875
        (= 0.9859.../2) because the search only ever narrowed towards
        hi=1.0 without probing it; the true answer is 1.0/(n+1) = 0.5.
        """
        assert saturation_per_node_rate(1, cycles=400, threshold=0.5) == 0.5
        sat = saturation_per_node_rate(2, cycles=400, threshold=0.5)
        assert sat * 3 == 1.0  # exactly hi/(n+1), no bisection artifact

    def test_scales_like_inverse_n_plus_one(self):
        """Satellite 5 property: per-node saturation rate decays roughly
        like 1/(n+1) (the paper's queueing wall) for n = 3..6."""
        sats = {n: saturation_per_node_rate(n, cycles=700) for n in range(3, 7)}
        for n in range(3, 6):
            assert sats[n] > sats[n + 1]  # monotone decay
        for n, s in sats.items():
            assert s * (n + 1) == pytest.approx(1.0, rel=0.2)


class TestSweep:
    def test_grid_shape_and_order(self):
        res = sweep_rates(3, [0.3, 0.7], cycles=200, seeds=(0, 1), batch=4)
        assert [(r.rate_per_input, r.n) for r in res] == [
            (0.3, 3), (0.3, 3), (0.7, 3), (0.7, 3)
        ]

    def test_batching_never_changes_results(self):
        """Batched arbitration is bit-identical to running jobs alone."""
        rates = [0.2, 0.5, 0.8, 0.95]
        solo = [
            simulate_butterfly_queued(3, r, cycles=250, warmup=30, seed=s)
            for r in rates
            for s in (0, 4)
        ]
        batched = sweep_rates(
            3, rates, cycles=250, warmup=30, seeds=(0, 4), batch=3
        )
        assert batched == solo  # frozen dataclass equality, trace excluded

    def test_worker_pool_matches_serial(self):
        serial = sweep_rates(3, [0.3, 0.6, 0.9], cycles=200, batch=1)
        pooled = sweep_rates(3, [0.3, 0.6, 0.9], cycles=200, batch=1, workers=2)
        assert pooled == serial


class TestStatsTrace:
    def test_trace_does_not_perturb_results(self):
        plain = simulate_butterfly_queued(3, 0.8, cycles=300, seed=6)
        traced = simulate_butterfly_queued(3, 0.8, cycles=300, seed=6, trace=True)
        assert traced == plain  # trace field excluded from comparison
        assert traced.trace is not None

    def test_trace_conservation_and_shape(self):
        r = simulate_butterfly_queued(3, 0.8, cycles=300, warmup=40, seed=6, trace=True)
        tr = r.trace
        rows = 300 + r.drain_cycles
        for col in tr._COLUMNS:
            assert len(getattr(tr, col)) == rows
        assert tr.measured_cycles == 300
        assert int(tr.injected.sum()) == int(tr.delivered.sum()) + int(tr.in_flight[-1])
        assert int(tr.injected[300:].sum()) == 0  # no injections while draining

    def test_csv_export(self, tmp_path):
        r = simulate_butterfly_queued(3, 0.7, cycles=150, seed=2, trace=True)
        path = r.trace.to_csv(str(tmp_path / "trace.csv"))
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 150 + r.drain_cycles
        assert set(rows[0]) == set(r.trace._COLUMNS)
        assert sum(int(row["delivered"]) for row in rows) == int(
            r.trace.delivered.sum()
        )

    def test_json_export(self, tmp_path):
        r = simulate_butterfly_queued(3, 0.7, cycles=150, seed=2, trace=True)
        path = r.trace.to_json(str(tmp_path / "trace.json"))
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["measured_cycles"] == 150
        assert len(payload["cycle"]) == 150 + r.drain_cycles
        assert sum(payload["depth_hist"]) > 0
        assert payload["delivered"] == [int(v) for v in r.trace.delivered]


class TestValidation:
    def test_rejects_bad_rate_and_size(self):
        with pytest.raises(ValueError):
            simulate_butterfly_queued(3, 1.5)
        with pytest.raises(ValueError):
            simulate_butterfly_queued(3, -0.1)
        with pytest.raises(ValueError):
            sweep_rates(0, [0.5])

    def test_numpy_types_roundtrip(self):
        # sweep_rates coerces rates/seeds so numpy scalars are fine
        res = sweep_rates(2, np.array([0.5]), cycles=100, seeds=np.array([1]))
        assert res[0].rate_per_input == 0.5
