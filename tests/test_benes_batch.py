"""Differential tests: batched Benes engine vs the legacy recursion.

The batched engine must be *bit-for-bit* identical to the legacy
oracles — same switch settings column by column, same realized
permutations, same crossed-switch counts — across exhaustive small
grids, random large batches, and hypothesis-driven cases up to N=1024.
"""

from itertools import permutations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.benes_routing import (
    BenesSettingsBatch,
    apply_settings,
    apply_settings_batch,
    apply_settings_legacy,
    num_switch_stages,
    route_permutation,
    route_permutation_legacy,
    route_permutations,
)


def _random_perms(rng, B, N):
    return np.array([rng.permutation(N) for _ in range(B)])


class TestSettingsParity:
    @pytest.mark.parametrize("N", [4, 8])
    def test_exhaustive_settings_and_realization(self, N):
        """Every permutation of N=4 and N=8: settings identical to the
        legacy recursion and realization identical to the legacy
        simulator."""
        perms = list(permutations(range(N)))
        batch = route_permutations(np.array(perms))
        realized = apply_settings_batch(batch)
        for i, perm in enumerate(perms):
            legacy = route_permutation_legacy(list(perm))
            assert np.array_equal(batch.crossed[i], legacy.to_array()), perm
            assert realized[i].tolist() == list(perm)
            assert apply_settings_legacy(legacy) == list(perm)

    @pytest.mark.parametrize("n", [4, 5, 7])
    def test_random_batches(self, n):
        rng = np.random.default_rng(n)
        N = 1 << n
        perms = _random_perms(rng, 8, N)
        batch = route_permutations(perms)
        for i in range(len(perms)):
            legacy = route_permutation_legacy(perms[i].tolist())
            assert np.array_equal(batch.crossed[i], legacy.to_array())
        assert np.array_equal(apply_settings_batch(batch), perms)

    def test_single_wrappers_match_legacy(self):
        rng = np.random.default_rng(0)
        perm = rng.permutation(32).tolist()
        s_new = route_permutation(perm)
        s_old = route_permutation_legacy(perm)
        assert s_new == s_old
        assert apply_settings(s_new) == apply_settings_legacy(s_old) == perm

    def test_count_crossed_invariant_across_engines(self):
        """count_crossed agrees between BenesSettings (legacy and new)
        and the batch's vectorized per-row counts."""
        rng = np.random.default_rng(7)
        perms = _random_perms(rng, 6, 64)
        batch = route_permutations(perms)
        counts = batch.count_crossed()
        for i in range(len(perms)):
            legacy = route_permutation_legacy(perms[i].tolist())
            assert int(counts[i]) == legacy.count_crossed()
            assert batch.settings(i).count_crossed() == legacy.count_crossed()


class TestBatchApi:
    def test_batch_shape_and_accessors(self):
        rng = np.random.default_rng(1)
        perms = _random_perms(rng, 5, 16)
        batch = route_permutations(perms)
        assert batch.n == 4
        assert batch.num_terminals == 16
        assert batch.batch_size == len(batch) == 5
        assert batch.crossed.shape == (5, num_switch_stages(4), 8)
        assert batch.settings(2).to_array().shape == (7, 8)

    def test_one_dim_input_promoted(self):
        perm = [3, 1, 0, 2]
        batch = route_permutations(perm)
        assert batch.batch_size == 1
        assert np.array_equal(
            batch.crossed[0], route_permutation_legacy(perm).to_array()
        )

    def test_workers_and_chunking_do_not_change_settings(self):
        rng = np.random.default_rng(2)
        perms = _random_perms(rng, 9, 32)
        serial = route_permutations(perms)
        pooled = route_permutations(perms, workers=2)
        chunked = route_permutations(perms, workers=2, chunk=2)
        assert np.array_equal(serial.crossed, pooled.crossed)
        assert np.array_equal(serial.crossed, chunked.crossed)

    def test_rejects_bad_batches(self):
        with pytest.raises(ValueError):
            route_permutations(np.zeros((2, 3), dtype=int))  # not power of two
        with pytest.raises(ValueError):
            route_permutations([[0, 0, 1, 1]])  # not a permutation
        with pytest.raises(ValueError):
            route_permutations(np.zeros((2, 2, 2), dtype=int))  # bad rank
        with pytest.raises(ValueError):
            BenesSettingsBatch(n=3, crossed=np.zeros((2, 5, 3), dtype=bool))

    def test_large_batch_realizes_n1024(self):
        """A taste of the production shape: N=1024 rows route and
        realize exactly."""
        rng = np.random.default_rng(3)
        perms = _random_perms(rng, 4, 1024)
        batch = route_permutations(perms)
        assert np.array_equal(apply_settings_batch(batch), perms)
        legacy = route_permutation_legacy(perms[0].tolist())
        assert np.array_equal(batch.crossed[0], legacy.to_array())


@settings(deadline=None, max_examples=25)
@given(
    st.integers(2, 10),
    st.integers(1, 6),
    st.randoms(use_true_random=False),
)
def test_batch_parity_property(n, B, rnd):
    """Hypothesis sweep up to N=1024: the batch realizes its input, and
    a sampled row matches the legacy recursion bit for bit."""
    N = 1 << n
    perms = []
    for _ in range(B):
        p = list(range(N))
        rnd.shuffle(p)
        perms.append(p)
    arr = np.array(perms)
    batch = route_permutations(arr)
    assert np.array_equal(apply_settings_batch(batch), arr)
    i = rnd.randrange(B)
    if N <= 256:  # legacy recursion is slow; sample the oracle
        legacy = route_permutation_legacy(perms[i])
        assert np.array_equal(batch.crossed[i], legacy.to_array())
