"""Public-API sanity: everything advertised in ``__all__`` exists and the
top-level quickstart from the README works verbatim."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.topology",
    "repro.transform",
    "repro.layout",
    "repro.packaging",
    "repro.analysis",
    "repro.algorithms",
    "repro.viz",
]


@pytest.mark.parametrize("pkg", PACKAGES)
def test_all_exports_resolve(pkg):
    mod = importlib.import_module(pkg)
    assert hasattr(mod, "__all__") and mod.__all__
    for name in mod.__all__:
        assert hasattr(mod, name), f"{pkg}.{name} missing"


def test_no_duplicate_exports():
    for pkg in PACKAGES:
        mod = importlib.import_module(pkg)
        assert len(set(mod.__all__)) == len(mod.__all__), pkg


def test_readme_quickstart():
    from repro import build_grid_layout, validate_layout, verify_automorphism

    ks = (2, 2, 2)
    assert verify_automorphism(ks)
    res = build_grid_layout(ks, L=4)
    validate_layout(res.layout, res.graph).raise_if_failed()
    s = res.layout.summary()
    assert s["area"] > 0 and s["max_wire_length"] > 0


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_every_public_item_documented():
    """Every name in every subpackage __all__ carries a docstring — the
    API reference (docs/api.md) is generated from them."""
    import inspect

    for pkg in PACKAGES:
        mod = importlib.import_module(pkg)
        for name in mod.__all__:
            obj = getattr(mod, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), f"{pkg}.{name} lacks a docstring"
