"""Tests for bitonic sorters, the stage-column layout engine, and the
queued routing simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.queued_routing import (
    saturation_per_node_rate,
    simulate_butterfly_queued,
)
from repro.layout.multistage import build_multistage_layout
from repro.layout.validate import validate_layout
from repro.topology.benes import Benes, benes_boundary_bits
from repro.topology.bitonic import (
    BitonicNetwork,
    bitonic_num_stages,
    bitonic_schedule,
    bitonic_sort,
)


class TestBitonicSort:
    @pytest.mark.parametrize("r", range(1, 7))
    def test_sorts_random(self, r):
        rng = np.random.default_rng(r)
        x = rng.normal(size=1 << r)
        assert np.array_equal(bitonic_sort(x), np.sort(x))

    def test_zero_one_principle_exhaustive(self):
        """Sorting-network correctness via the 0-1 principle: a network
        sorting all 0-1 inputs sorts everything."""
        for r in (1, 2, 3):
            R = 1 << r
            for word in range(1 << R):
                x = [(word >> i) & 1 for i in range(R)]
                assert list(bitonic_sort(x)) == sorted(x)

    def test_duplicates_and_sorted_input(self):
        assert list(bitonic_sort([5, 5, 1, 1])) == [1, 1, 5, 5]
        assert list(bitonic_sort(list(range(16)))) == list(range(16))

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            bitonic_sort([1, 2, 3])

    def test_schedule_shape(self):
        sched = bitonic_schedule(4)
        assert len(sched) == bitonic_num_stages(4) == 10
        # phase k steps bits k-1..0
        assert sched[:3] == [(1, 0), (2, 1), (2, 0)]

    def test_network_counts(self):
        bn = BitonicNetwork(3)
        assert bn.stages == 7
        assert bn.num_nodes == 7 * 8
        g = bn.graph()
        assert g.num_edges == bn.num_edges == 2 * 8 * 6

    def test_offmodule_links(self):
        bn = BitonicNetwork(3)
        # bits [0,1,0,2,1,0]: >= 1 -> 3 boundaries; x2 links x2 rows
        assert bn.offmodule_links_per_module(1) == 2 * 3 * 2
        assert bn.offmodule_links_per_module(3) == 0
        with pytest.raises(ValueError):
            bn.offmodule_links_per_module(4)


@settings(deadline=None, max_examples=20)
@given(st.lists(st.integers(-100, 100), min_size=2, max_size=64))
def test_bitonic_property(xs):
    # pad to next power of two with +inf-like sentinel
    R = 1 << (len(xs) - 1).bit_length()
    pad = xs + [10**6] * (R - len(xs))
    out = list(bitonic_sort(pad))
    assert out == sorted(pad)


class TestMultistageLayout:
    @pytest.mark.parametrize(
        "rows,bits",
        [
            (8, [0, 1, 2]),  # butterfly B_3
            (8, benes_boundary_bits(3)),  # Benes
            (8, BitonicNetwork(3).boundaries),  # bitonic sorter
        ],
        ids=["butterfly", "benes", "bitonic"],
    )
    def test_validates(self, rows, bits):
        res = build_multistage_layout(rows, bits)
        rep = validate_layout(res.layout, res.graph)
        assert rep.ok, rep.errors[:3]
        assert res.graph.num_edges == 2 * rows * len(bits)

    def test_multilayer(self):
        res = build_multistage_layout(16, [0, 1, 2, 3], L=4)
        rep = validate_layout(res.layout, res.graph)
        assert rep.ok, rep.errors[:3]
        res2 = build_multistage_layout(16, [0, 1, 2, 3], L=2)
        assert res.layout.area < res2.layout.area

    def test_channel_widths_grow_with_bit(self):
        res = build_multistage_layout(32, [0, 4])
        w0, w4 = res.dims.channel_widths
        assert w4 > w0
        assert w0 >= 2  # two directed links per adjacent pair

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            build_multistage_layout(6, [0])
        with pytest.raises(ValueError):
            build_multistage_layout(8, [3])
        with pytest.raises(ValueError):
            build_multistage_layout(8, [0], W=3)

    def test_baseline_worse_than_grid_scheme(self):
        """The stage-column butterfly needs more area and (especially)
        longer wires than the grid scheme at equal n."""
        from repro.layout.grid_scheme import build_grid_layout

        naive = build_multistage_layout(16, [0, 1, 2, 3], name="bfly")
        ours = build_grid_layout((2, 1, 1))
        # same node count, same edge count
        assert len(naive.layout.nodes) == len(ours.layout.nodes)
        assert naive.layout.max_wire_length() > 0


class TestQueuedRouting:
    def test_low_load_is_lossless_and_fast(self):
        r = simulate_butterfly_queued(5, 0.3, cycles=800)
        assert r.accepted_fraction > 0.98
        assert r.avg_latency < r.n + 2  # barely any queueing

    def test_high_load_still_delivered(self):
        """Balanced traffic: even at 0.95 per input the network keeps up
        (per-node rate ~ 1/(n+1), the paper's ceiling)."""
        r = simulate_butterfly_queued(5, 0.95, cycles=1200)
        assert r.accepted_fraction > 0.97
        assert r.rate_per_node == pytest.approx(0.95 / 6)

    def test_latency_grows_with_load(self):
        lo = simulate_butterfly_queued(5, 0.3, cycles=800, seed=1)
        hi = simulate_butterfly_queued(5, 0.95, cycles=800, seed=1)
        assert hi.avg_latency > lo.avg_latency

    def test_saturation_scales_as_one_over_log(self):
        s4 = saturation_per_node_rate(4, cycles=600)
        s6 = saturation_per_node_rate(6, cycles=600)
        assert s4 > s6
        assert s4 * 5 == pytest.approx(s6 * 7, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_butterfly_queued(5, 0.0)
        with pytest.raises(ValueError):
            simulate_butterfly_queued(0, 0.5)


class TestNodeScaling:
    def test_knee_moves_with_parameters(self):
        from repro.layout.node_scaling import hetero_io_dims, io_node_threshold

        balanced = io_node_threshold((6, 6, 6))
        asym = io_node_threshold((8, 8, 2))
        assert asym > 2 * balanced
        # below the knee the area is flat within a few percent
        base = hetero_io_dims((8, 8, 2), 4).area
        assert hetero_io_dims((8, 8, 2), 64).area / base < 1.05
        # past the knee it grows
        assert hetero_io_dims((6, 6, 6), 256).area / hetero_io_dims((6, 6, 6), 4).area > 2

    def test_validation(self):
        from repro.layout.node_scaling import hetero_io_dims

        with pytest.raises(ValueError):
            hetero_io_dims((2, 2, 2), 2)


class TestIsnStageColumnLayout:
    """Section 2.1: 'We can also derive optimal layout for ISNs' — the
    directly buildable stage-column form, fully validated."""

    @pytest.mark.parametrize("ks", [(1, 1), (2, 2), (2, 1), (2, 2, 2)])
    def test_isn_layout_validates(self, ks):
        from repro.topology.isn import ISN

        isn = ISN.from_ks(ks)
        res = build_multistage_layout(
            isn.rows, isn.boundary_link_lists(), name=f"ISN{ks}"
        )
        rep = validate_layout(res.layout, res.graph)
        assert rep.ok, rep.errors[:3]
        assert res.graph.same_as(isn.graph())

    def test_boundary_link_lists_shape(self):
        from repro.topology.isn import ISN

        isn = ISN.from_ks((2, 2))
        lists = isn.boundary_link_lists()
        assert len(lists) == isn.num_steps
        # exchange boundaries: 2R links; swap boundary: R links
        assert sorted(len(l) for l in lists) == [16, 32, 32, 32, 32]


from hypothesis import strategies as hst


@settings(deadline=None, max_examples=15)
@given(
    st.integers(2, 4),  # row bits
    st.data(),
)
def test_multistage_random_boundaries_property(rbits, data):
    """Random valid boundary sequences (mixing exchange bits and explicit
    permutation-matching link lists) always produce validating layouts."""
    import random as _random

    rows = 1 << rbits
    num_boundaries = data.draw(st.integers(1, 4))
    boundaries = []
    for _ in range(num_boundaries):
        if data.draw(st.booleans()):
            boundaries.append(data.draw(st.integers(0, rbits - 1)))
        else:
            # random permutation boundary: each node one out-link
            seed = data.draw(st.integers(0, 2**20))
            rng = _random.Random(seed)
            perm = list(range(rows))
            rng.shuffle(perm)
            boundaries.append([(u, perm[u]) for u in range(rows)])
    res = build_multistage_layout(rows, boundaries, name="rand")
    rep = validate_layout(res.layout, res.graph)
    assert rep.ok, rep.errors[:3]


@settings(deadline=None, max_examples=8)
@given(st.integers(3, 5), st.floats(0.2, 0.9), st.integers(0, 99))
def test_queued_routing_conservation(n, rate, seed):
    """Conservation: delivered <= offered + warmup spillover, and
    everything offered is eventually delivered or still in flight."""
    r = simulate_butterfly_queued(n, rate, cycles=500, warmup=100, seed=seed)
    assert r.delivered <= r.offered + r.rows * n  # spillover bound
    in_flight_bound = r.rows * (n + r.max_queue * 2 * n)
    assert r.offered - r.delivered <= in_flight_bound
