"""Tests for graph-property calculators."""

import pytest

from repro.topology.butterfly import butterfly_graph
from repro.topology.complete import complete_graph
from repro.topology.properties import (
    bfs_distances,
    butterfly_average_distance,
    complete_graph_bisection_width,
    diameter,
)


class TestBisection:
    def test_even_odd(self):
        assert complete_graph_bisection_width(8) == 16
        assert complete_graph_bisection_width(9) == 20
        assert complete_graph_bisection_width(2) == 1
        with pytest.raises(ValueError):
            complete_graph_bisection_width(0)

    def test_closed_forms(self):
        for n in range(1, 40):
            if n % 2 == 0:
                assert complete_graph_bisection_width(n) == n * n // 4
            else:
                assert complete_graph_bisection_width(n) == (n * n - 1) // 4


class TestDistances:
    def test_average_distance(self):
        assert butterfly_average_distance(9) == 9.0
        with pytest.raises(ValueError):
            butterfly_average_distance(0)

    def test_bfs(self):
        g = complete_graph(5)
        d = bfs_distances(g, 0)
        assert d[0] == 0
        assert all(d[v] == 1 for v in range(1, 5))

    def test_diameter_complete(self):
        assert diameter(complete_graph(6)) == 1

    def test_diameter_butterfly(self):
        # unwrapped B_n diameter is 2n
        assert diameter(butterfly_graph(2)) == 4

    def test_diameter_disconnected(self):
        from repro.topology.graph import Graph

        g = Graph()
        g.add_node(0)
        g.add_node(1)
        with pytest.raises(ValueError):
            diameter(g)
