"""Every displayed formula of the paper, as plain functions.

Leading terms only (the ``o(.)`` corrections are what our constructive
layouts measure); all take the butterfly dimension ``n`` (so
``N = (n+1) 2**n`` and ``log2 N`` is evaluated exactly as ``log2`` of that
``N``, matching the paper's use of ``N`` for the node count).

Prior-work area constants (Section 1):

================================  ======================================
Avior et al. [1] (2 layers)        ``N^2 / log2^2 N``  (upright rectangle)
Muthukrishnan et al. [16]          ``2 N^2 / (3 log2^2 N)``  (knock-knee)
Dinitz et al. [10]                 ``N^2 / (2 log2^2 N)``  (45-degree
                                   slanted rectangle)
Yeh et al. [26, 27]                ``N^2 / log2^2 N``, max wire
                                   ``2N / log2 N``
This paper (Thompson)              ``N^2 / log2^2 N``, max wire
                                   ``N / log2 N``
This paper (L layers, even)        area ``4N^2/(L^2 log2^2 N)``, wire
                                   ``2N/(L log2 N)``, volume
                                   ``4N^2/(L log2^2 N)``
================================  ======================================
"""

from __future__ import annotations

import math
from fractions import Fraction

__all__ = [
    "num_nodes",
    "log2N",
    "thompson_area",
    "thompson_max_wire",
    "multilayer_area",
    "multilayer_max_wire",
    "multilayer_volume",
    "avior_area",
    "muthukrishnan_area",
    "dinitz_area",
    "yeh_previous_max_wire",
    "offmodule_avg_per_node",
    "offmodule_avg_upper_bounds",
    "max_node_side_thompson",
    "max_node_side_multilayer",
]


def num_nodes(n: int) -> int:
    """``N = (n + 1) 2**n`` nodes of ``B_n``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return (n + 1) << n


def log2N(n: int) -> float:
    """``log2 N`` for ``B_n``."""
    return math.log2(num_nodes(n))


def thompson_area(n: int) -> float:
    """Section 3: ``N^2 / log2^2 N`` (optimal within ``1 + o(1)``)."""
    N = num_nodes(n)
    return N * N / log2N(n) ** 2


def thompson_max_wire(n: int) -> float:
    """Section 3: ``N / log2 N``."""
    return num_nodes(n) / log2N(n)


def multilayer_area(n: int, L: int) -> float:
    """Theorem 4.1: ``4N^2/(L^2 log2^2 N)`` even ``L``;
    ``4N^2/((L^2-1) log2^2 N)`` odd ``L``."""
    if L < 2:
        raise ValueError(f"L must be >= 2, got {L}")
    N = num_nodes(n)
    denom = L * L if L % 2 == 0 else L * L - 1
    return 4 * N * N / (denom * log2N(n) ** 2)


def multilayer_max_wire(n: int, L: int) -> float:
    """Section 4.2: ``2N / (L log2 N)``."""
    if L < 2:
        raise ValueError(f"L must be >= 2, got {L}")
    return 2 * num_nodes(n) / (L * log2N(n))


def multilayer_volume(n: int, L: int) -> float:
    """Section 4.2: ``4N^2 / (L log2^2 N)``, both parities of ``L``.

    This is *not* ``multilayer_area(n, L) * L`` for odd ``L`` — that
    would be ``4N^2 L/((L^2-1) log2^2 N)``, overstating the volume by
    ``L^2/(L^2-1)``.  The display drops the odd-``L`` correction: the
    extra layer contributes no extra terminals, only area.
    """
    if L < 2:
        raise ValueError(f"L must be >= 2, got {L}")
    N = num_nodes(n)
    return 4 * N * N / (L * log2N(n) ** 2)


def avior_area(n: int) -> float:
    """Avior et al. [1]: ``N^2 / log2^2 N`` with two wire layers."""
    return thompson_area(n)


def muthukrishnan_area(n: int) -> float:
    """Muthukrishnan et al. [16], knock-knee model: ``2N^2/(3 log2^2 N)``."""
    N = num_nodes(n)
    return 2 * N * N / (3 * log2N(n) ** 2)


def dinitz_area(n: int) -> float:
    """Dinitz et al. [10], slanted rectangle: ``N^2 / (2 log2^2 N)``."""
    N = num_nodes(n)
    return N * N / (2 * log2N(n) ** 2)


def yeh_previous_max_wire(n: int) -> float:
    """The authors' earlier layouts [26, 27]: max wire ``2N / log2 N`` —
    this paper improves it by the factor 2 (and by ``L`` with ``L``
    layers)."""
    return 2 * num_nodes(n) / log2N(n)


def offmodule_avg_per_node(l: int, k1: int) -> Fraction:
    """Section 2.3 display for HSN-derived partitions:
    ``4(l-1)(2**k1 - 1) / ((n_l + 1) 2**k1)`` with ``n_l = l k1``."""
    if l < 2 or k1 < 1:
        raise ValueError(f"need l >= 2, k1 >= 1; got l={l} k1={k1}")
    n = l * k1
    return Fraction(4 * (l - 1) * ((1 << k1) - 1), (n + 1) * (1 << k1))


def offmodule_avg_upper_bounds(l: int, k1: int) -> tuple:
    """The paper's chain: value < 4(l-1)/(n_l+1) < 4/k1.

    Validates exactly like :func:`offmodule_avg_per_node` — the chain
    only bounds that display, so parameters the display rejects must be
    rejected here too (``l = 1`` used to yield a vacuous 0 bound and
    ``k1 = 0`` a ``ZeroDivisionError``-by-luck ``4/0`` fraction).
    """
    if l < 2 or k1 < 1:
        raise ValueError(f"need l >= 2, k1 >= 1; got l={l} k1={k1}")
    n = l * k1
    return (Fraction(4 * (l - 1), n + 1), Fraction(4, k1))


def max_node_side_thompson(n: int) -> float:
    """Node-size scalability (Section 3.3): any ``W = o(sqrt(N)/log N)``
    leaves the leading constants intact; this returns the threshold
    ``sqrt(N)/log2 N`` itself."""
    return math.sqrt(num_nodes(n)) / log2N(n)


def max_node_side_multilayer(n: int, L: int) -> float:
    """Section 4.2: ``W = o(sqrt(N)/(L log N))``."""
    return math.sqrt(num_nodes(n)) / (L * log2N(n))
