"""Closed forms, lower bounds and measured-vs-paper comparison helpers."""

from .bounds import collinear_track_lower_bound, injection_rate, pin_lower_bound
from .comparison import (
    Row,
    format_table,
    leading_constant_area,
    leading_constant_volume,
    leading_constant_wire,
)
from .wirestats import WireStats, length_histogram, wire_stats
from .formulas import (
    avior_area,
    dinitz_area,
    log2N,
    max_node_side_multilayer,
    max_node_side_thompson,
    multilayer_area,
    multilayer_max_wire,
    multilayer_volume,
    muthukrishnan_area,
    num_nodes,
    offmodule_avg_per_node,
    offmodule_avg_upper_bounds,
    thompson_area,
    thompson_max_wire,
    yeh_previous_max_wire,
)

__all__ = [
    "num_nodes",
    "log2N",
    "thompson_area",
    "thompson_max_wire",
    "multilayer_area",
    "multilayer_max_wire",
    "multilayer_volume",
    "avior_area",
    "muthukrishnan_area",
    "dinitz_area",
    "yeh_previous_max_wire",
    "offmodule_avg_per_node",
    "offmodule_avg_upper_bounds",
    "max_node_side_thompson",
    "max_node_side_multilayer",
    "collinear_track_lower_bound",
    "injection_rate",
    "pin_lower_bound",
    "leading_constant_area",
    "leading_constant_wire",
    "leading_constant_volume",
    "Row",
    "format_table",
    "WireStats",
    "wire_stats",
    "length_histogram",
]
