"""Measured-vs-formula comparison utilities.

Benches use these helpers to produce the paper-vs-measured rows recorded
in EXPERIMENTS.md: leading-constant estimates from constructed layouts,
ratio tables across parameter sweeps, and a plain-text table formatter
(no external dependencies, stable output for regression).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from .formulas import log2N, num_nodes

__all__ = [
    "leading_constant_area",
    "leading_constant_wire",
    "leading_constant_volume",
    "Row",
    "format_table",
]


def leading_constant_area(measured_area: float, n: int, L: int = 2) -> float:
    """Estimate ``c`` in ``area = c * 4N^2/(L'^2 log2^2 N)`` where ``L'^2``
    is ``L^2`` (even) or ``L^2 - 1`` (odd).  The paper's layouts achieve
    ``c -> 1``; under the Thompson model (L = 2) this equals
    ``area / (N^2/log2^2 N)``."""
    N = num_nodes(n)
    denom = L * L if L % 2 == 0 else L * L - 1
    return measured_area * denom * log2N(n) ** 2 / (4 * N * N)


def leading_constant_wire(measured_wire: float, n: int, L: int = 2) -> float:
    """Estimate ``c`` in ``maxwire = c * 2N/(L log2 N)``."""
    return measured_wire * L * log2N(n) / (2 * num_nodes(n))


def leading_constant_volume(measured_volume: float, n: int, L: int = 2) -> float:
    """Estimate ``c`` in ``volume = c * 4N^2/(L log2^2 N)``."""
    N = num_nodes(n)
    return measured_volume * L * log2N(n) ** 2 / (4 * N * N)


Row = Dict[str, object]


def format_table(rows: Sequence[Row], columns: Optional[Sequence[str]] = None) -> str:
    """Fixed-width plain-text table; floats rendered to 4 significant
    digits, everything else ``str()``.

    Non-finite floats are rendered explicitly (``NaN`` / ``+Inf`` /
    ``-Inf``) rather than falling into the magnitude branches, where
    ``abs(nan) >= 1e6`` is False on every comparison and the cell came
    out as platform-spelled ``nan``/``inf``.  Numeric cells (ints and
    floats, not bools) are right-justified under their left-justified
    headers so magnitudes line up.
    """
    if not rows:
        return "(empty)"
    cols = list(columns) if columns else list(rows[0].keys())

    def fmt(v: object) -> str:
        if isinstance(v, bool):
            return str(v)
        if isinstance(v, float):
            if math.isnan(v):
                return "NaN"
            if math.isinf(v):
                return "+Inf" if v > 0 else "-Inf"
            if v == 0:
                return "0"
            if abs(v) >= 1e6 or abs(v) < 1e-3:
                return f"{v:.3e}"
            return f"{v:.4g}"
        return str(v)

    def numeric(v: object) -> bool:
        return isinstance(v, (int, float)) and not isinstance(v, bool)

    table = [
        [(fmt(r.get(c, "")), numeric(r.get(c, ""))) for c in cols] for r in rows
    ]
    widths = [
        max(len(c), *(len(row[i][0]) for row in table)) for i, c in enumerate(cols)
    ]
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(cols, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in table:
        lines.append(
            "  ".join(
                (v.rjust(w) if is_num else v.ljust(w))
                for (v, is_num), w in zip(row, widths)
            )
        )
    return "\n".join(lines)
