"""Lower bounds the paper's constructions are measured against.

* collinear tracks: the bisection width of ``K_N`` (Appendix B);
* off-module pins: the random-routing injection-rate argument of Section
  2.3 — an ``M``-node module must provide ``Omega(M / log R)`` off-module
  links to sustain the butterfly's balanced-traffic injection rate
  ``Theta(1/log R)``.
"""

from __future__ import annotations

import math
from fractions import Fraction

from ..topology.properties import complete_graph_bisection_width

__all__ = [
    "collinear_track_lower_bound",
    "injection_rate",
    "pin_lower_bound",
]


def collinear_track_lower_bound(n: int) -> int:
    """Bisection-based lower bound on collinear tracks for ``K_n``:
    ``floor(n^2/4)`` — any set of tracks must carry all links crossing the
    middle cut of the node row."""
    return complete_graph_bisection_width(n)


def injection_rate(R: int) -> float:
    """Sustainable per-node injection rate for uniform random routing on an
    ``R x R`` butterfly: each packet traverses ``log2 R`` stage boundaries,
    each boundary offers ``2R`` links, so at rate ``rho`` per input the
    per-link load is balanced at ``rho/2`` — the throughput wall is
    ``Theta(1/log R)`` packets per node per step once demand is normalised
    per *network node* (``N ~ R log R``)."""
    if R < 2 or R & (R - 1):
        raise ValueError(f"R must be a power of two >= 2, got {R}")
    return 1.0 / math.log2(R)


def pin_lower_bound(module_nodes: int, R: int) -> float:
    """``Omega(M / log R)`` off-module links for an ``M``-node module.

    Each node injects ``Theta(1/log R)`` packets per step towards uniform
    destinations; a fraction ``1 - M/N`` of traffic must leave the module
    (with ``N = (log2 R + 1) R`` the butterfly's node count), so the
    module's boundary must carry ``(M / log2 R) (1 - M/N)`` packets per
    step with unit-capacity links.  The off-module fraction matters as
    ``M -> N``: a module holding the whole network needs no pins at all.
    """
    if module_nodes < 1:
        raise ValueError("module must contain at least one node")
    if R < 2 or R & (R - 1):
        raise ValueError(f"R must be a power of two >= 2, got {R}")
    k = math.log2(R)
    N = (int(k) + 1) * R
    if module_nodes > N:
        raise ValueError(f"module has {module_nodes} nodes but the network only {N}")
    return module_nodes * (1 - module_nodes / N) / k
