"""Wire-length statistics for layouts.

The paper's headline wire metric is the *maximum* length (signal delay);
distributional statistics sharpen the comparison between layout shapes —
the grid scheme trades a slightly larger area constant for a much
shorter tail than the stage-column shape, which is exactly the paper's
argument for its scheme (propagation delay, drive power).

Lengths are read through :meth:`Layout.wire_table`, so table-backed
layouts are measured columnar-ly.  The old object loop touched
``layout.wires``, which silently materialized (and discarded) the
native table of a vectorized layout just to compute statistics; the
per-wire integer lengths are identical either way, pinned by the
differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..layout.model import Layout

__all__ = [
    "WireStats", "wire_stats", "wire_stats_from_lengths", "length_histogram",
]


@dataclass(frozen=True)
class WireStats:
    count: int
    total: int
    mean: float
    median: float
    p90: float
    p99: float
    max: int

    def as_row(self, label: str) -> Dict[str, object]:
        return {
            "layout": label,
            "wires": self.count,
            "mean len": round(self.mean, 1),
            "median": round(self.median, 1),
            "p90": round(self.p90, 1),
            "p99": round(self.p99, 1),
            "max": self.max,
        }


def _lengths(layout: Layout) -> np.ndarray:
    return layout.wire_table().wire_lengths()


def wire_stats(layout: Layout) -> WireStats:
    """Length distribution summary over all wires."""
    return wire_stats_from_lengths(_lengths(layout))


def wire_stats_from_lengths(lengths: np.ndarray) -> WireStats:
    """Length distribution summary from a per-wire length array — the
    chunked pipeline concatenates per-chunk ``wire_lengths()`` and gets
    the same stats as materialising the whole layout (quantiles need
    every length at once, but one int64 per wire is far smaller than
    the table)."""
    if len(lengths) == 0:
        raise ValueError("layout has no wires")
    return WireStats(
        count=len(lengths),
        total=int(lengths.sum()),
        mean=float(lengths.mean()),
        median=float(np.median(lengths)),
        p90=float(np.percentile(lengths, 90)),
        p99=float(np.percentile(lengths, 99)),
        max=int(lengths.max()),
    )


def length_histogram(
    layout: Layout, bins: Sequence[float]
) -> List[Tuple[str, int]]:
    """Counts of wires per length bin (``bins`` are the right edges).

    The first bin is closed at zero — ``[0, b0]``, not ``(0, b0]`` — so
    zero-length wires are counted and the bin counts always sum to
    ``wire_stats(layout).count``.
    """
    lengths = _lengths(layout)
    out: List[Tuple[str, int]] = []
    lo = 0.0
    for i, hi in enumerate(bins):
        mask = (lengths >= lo) if i == 0 else (lengths > lo)
        c = int((mask & (lengths <= hi)).sum())
        bracket = "[" if i == 0 else "("
        out.append((f"{bracket}{lo:.0f}, {hi:.0f}]", c))
        lo = hi
    out.append((f"> {lo:.0f}", int((lengths > lo).sum())))
    return out
