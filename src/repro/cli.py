"""Command-line interface: ``python -m repro <command> ...``.

Commands mirror the library's main entry points:

==============  ========================================================
``verify``      check the ISN -> butterfly automorphism for a parameter
                vector
``layout``      build + validate a wire-level butterfly layout; print
                area and wire-length statistics, optionally write an
                SVG; ``--legacy`` uses the object-per-wire engine
                instead of the columnar WireTable one
``dims``        closed-form layout dimensions (works at any ``n``)
``collinear``   optimal collinear layout of ``K_N``
``board``       the Section 5.2 board calculator
``optimize``    packaging parameter search under pin/size limits
``package``     exact vs closed-form pin accounting for one parameter
                vector (row / nucleus / naive schemes) or a batched
                optimizer sweep (``--exact`` verifies every candidate
                against the columnar link count, ``--workers`` fans the
                verification out); ``--json`` writes the report
``multilevel``  per-level pins of a nested packaging hierarchy
``hypercube``   2-D hypercube layout (companion-claim extension)
``ccc``         cube-connected-cycles layout (extension)
``omega``       omega-network layout + destination-tag routing check
``sim``         dynamic queued-routing simulator: single runs, rate
                sweeps, per-cycle trace export, saturation search
``sort``        run the bitonic sorting network
``isn-layout``  stage-column layout of an ISN itself
``benes``       Benes permutation routing: single perms (``--perm``,
                ``--legacy`` for the recursive oracle) or a seeded
                batch in one vectorized pass (``--batch``,
                ``--workers``); ``--json`` writes the report
``fft``         run an FFT over an ISN flow graph, compare with numpy
``figures``     print the paper's text figures (1, 2, 4)
``serve``       HTTP design-query service over the artifact cache
                (``--port``, ``--cache-dir``; see
                :mod:`repro.service.server` for the routes)
``campaign``    checkpointed design-space sweeps: ``run`` expands a
                JSON/flag-declared grid into staged jobs (layout ->
                validate -> package -> benes -> saturation) sharded
                across ``--workers``, checkpointing every stage under
                ``runs/<run_id>/``; ``resume`` re-runs only the
                missing/damaged checkpoints (byte-identical outputs);
                ``status`` and ``frontier`` inspect a run tree
``cache``       artifact-cache admin: ``ls`` entries, ``verify``
                (re-hash everything, quarantine corruption), ``gc``
==============  ========================================================

The query-shaped subcommands (``layout``, ``dims``, ``package`` report
mode, ``benes`` batch mode, ``sim --saturation``) answer through the
:mod:`repro.service` handler layer, so repeated parameter points are
served from the content-addressed cache (``--cache-dir`` overrides the
location, ``--no-cache`` opts out); a ``[cache hit|miss <key>]`` note
goes to stderr so stdout stays parseable.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis.comparison import format_table

__all__ = ["main", "build_parser"]


def _ks(value: str) -> tuple:
    try:
        ks = tuple(int(x) for x in value.replace(" ", "").split(","))
    except ValueError as e:
        raise argparse.ArgumentTypeError(f"bad parameter vector {value!r}") from e
    if not ks:
        raise argparse.ArgumentTypeError("empty parameter vector")
    return ks


def _float_list(value: str) -> tuple:
    try:
        return tuple(float(x) for x in value.replace(" ", "").split(",") if x)
    except ValueError as e:
        raise argparse.ArgumentTypeError(f"bad float list {value!r}") from e


def _int_list(value: str) -> tuple:
    try:
        return tuple(int(x) for x in value.replace(" ", "").split(",") if x)
    except ValueError as e:
        raise argparse.ArgumentTypeError(f"bad int list {value!r}") from e


def _pin_list(value: str) -> tuple:
    """Comma list of pin limits; ``none``/``null`` means unlimited."""
    out = []
    for x in value.replace(" ", "").split(","):
        if not x:
            continue
        if x.lower() in ("none", "null", "-"):
            out.append(None)
            continue
        try:
            out.append(int(x))
        except ValueError as e:
            raise argparse.ArgumentTypeError(f"bad pin limit {x!r}") from e
    return tuple(out)


def _positive_int(s: str) -> int:
    """argparse type for flags that must be positive integers; a bad
    value is an argparse error, so the process exits 2."""
    try:
        v = int(s)
    except ValueError as e:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {s!r}"
        ) from e
    if v < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {s!r}"
        )
    return v


def _add_cache_opts(sp: argparse.ArgumentParser) -> None:
    sp.add_argument("--cache-dir", type=str, default=None,
                    help="artifact-cache directory (default $REPRO_CACHE_DIR "
                         "or ~/.cache/repro)")
    sp.add_argument("--no-cache", action="store_true",
                    help="compute without reading or writing the cache")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'VLSI Layout and Packaging of "
        "Butterfly Networks' (SPAA 2000)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    v = sub.add_parser("verify", help="verify the ISN -> butterfly automorphism")
    v.add_argument("--ks", type=_ks, required=True, help="e.g. 3,3,3")
    v.add_argument("--materialize", action="store_true",
                   help="full graph comparison instead of generator check")

    l = sub.add_parser("layout", help="build + validate a butterfly layout")
    l.add_argument("--ks", type=_ks, required=True)
    l.add_argument("--layers", type=int, default=2)
    l.add_argument("--node-side", type=int, default=4)
    l.add_argument("--track-order", choices=["forward", "reversed"],
                   default="forward")
    l.add_argument("--recirculating", action="store_true",
                   help="add the wrap-around feedback channel")
    l.add_argument("--legacy", action="store_true",
                   help="use the object-per-wire builder and validator "
                        "instead of the columnar WireTable engine")
    l.add_argument("--svg", type=str, default=None)
    l.add_argument("--no-validate", action="store_true")
    l.add_argument("--json", type=str, default=None,
                   help="write the metrics report as JSON")
    l.add_argument("--memory-budget", type=_positive_int, default=None,
                   metavar="BYTES",
                   help="build + validate out-of-core in chunks sized to "
                        "this working-set byte budget (answer bytes are "
                        "identical; the cache key is unchanged)")
    l.add_argument("--workers", type=_positive_int, default=None,
                   help="parallel worker processes for the chunked "
                        "build+validate pipeline (implies chunked mode)")
    _add_cache_opts(l)

    d = sub.add_parser("dims", help="closed-form layout dimensions")
    d.add_argument("--ks", type=_ks, required=True)
    d.add_argument("--layers", type=int, default=2)
    d.add_argument("--node-side", type=int, default=4)
    d.add_argument("--json", type=str, default=None,
                   help="write the dimensions report as JSON")
    _add_cache_opts(d)

    c = sub.add_parser("collinear", help="collinear layout of K_N")
    c.add_argument("-n", type=int, required=True)
    c.add_argument("--multiplicity", type=int, default=1)
    c.add_argument("--order", choices=["forward", "reversed"], default="forward")
    c.add_argument("--svg", type=str, default=None)
    c.add_argument("--tracks", action="store_true", help="print the track map")

    b = sub.add_parser("board", help="Section 5.2 board calculator")
    b.add_argument("--ks", type=_ks, default=(3, 3, 3))
    b.add_argument("--pins", type=int, default=64)
    b.add_argument("--chip-side", type=int, default=20)
    b.add_argument("--layers", type=int, default=2)
    b.add_argument("--svg", type=str, default=None,
                   help="write a chip-grid schematic SVG")

    o = sub.add_parser("optimize", help="packaging parameter search")
    o.add_argument("-n", type=int, required=True)
    o.add_argument("--max-pins", type=int, default=None)
    o.add_argument("--max-nodes", type=int, default=None)
    o.add_argument("--max-l", type=int, default=4)
    o.add_argument("--top", type=int, default=8)

    pk = sub.add_parser(
        "package", help="exact vs closed-form pin accounting / optimizer sweep"
    )
    pk.add_argument("--ks", type=_ks, default=None,
                    help="report mode: parameter vector, e.g. 3,3,3")
    pk.add_argument("--scheme", choices=["row", "nucleus", "naive", "all"],
                    default="all", help="partition scheme(s) to report")
    pk.add_argument("--rows-per-module", type=int, default=None,
                    help="naive-scheme module size (default 2**k1; need "
                         "not be a power of two)")
    pk.add_argument("-n", type=int, default=None,
                    help="sweep mode: optimize over parameter vectors for B_n")
    pk.add_argument("--max-pins", type=int, default=None)
    pk.add_argument("--max-nodes", type=int, default=None)
    pk.add_argument("--max-l", type=int, default=4)
    pk.add_argument("--top", type=int, default=8)
    pk.add_argument("--exact", action="store_true",
                    help="verify every candidate against the columnar count")
    pk.add_argument("--workers", type=int, default=None,
                    help="multiprocessing workers for --exact sweeps")
    pk.add_argument("--json", type=str, default=None,
                    help="write the report as JSON")
    _add_cache_opts(pk)

    m = sub.add_parser("multilevel", help="nested hierarchy pin accounting")
    m.add_argument("--ks", type=_ks, required=True)

    h = sub.add_parser("hypercube", help="2-D hypercube layout (extension)")
    h.add_argument("-n", type=int, required=True)
    h.add_argument("--layers", type=int, default=2)
    h.add_argument("--svg", type=str, default=None)

    cc = sub.add_parser("ccc", help="cube-connected cycles layout (extension)")
    cc.add_argument("-n", type=int, required=True)
    cc.add_argument("--layers", type=int, default=2)
    cc.add_argument("--svg", type=str, default=None)

    om = sub.add_parser("omega", help="omega network layout + routing check")
    om.add_argument("-n", type=int, required=True)
    om.add_argument("--layers", type=int, default=2)

    si = sub.add_parser("sim", help="dynamic queued-routing simulator")
    si.add_argument("-n", type=int, required=True, help="butterfly dimension")
    si.add_argument("--rate", type=float, default=0.8,
                    help="per-input injection rate (default 0.8)")
    si.add_argument("--rates", type=_float_list, default=None,
                    help="comma list of rates: sweep mode, e.g. 0.2,0.5,0.8")
    si.add_argument("--cycles", type=int, default=2000)
    si.add_argument("--warmup", type=int, default=200)
    si.add_argument("--seed", type=int, default=0)
    si.add_argument("--seeds", type=_int_list, default=None,
                    help="comma list of seeds (sweep mode)")
    si.add_argument("--drain", type=int, default=None,
                    help="drain-phase budget in cycles (default 4*(n+1))")
    si.add_argument("--workers", type=int, default=None,
                    help="multiprocessing workers for sweeps")
    si.add_argument("--batch", type=int, default=16,
                    help="jobs batched per arbitration loop (default 16)")
    si.add_argument("--legacy", action="store_true",
                    help="use the pure-Python reference engine (single run)")
    si.add_argument("--trace-csv", type=str, default=None,
                    help="write the per-cycle StatsTrace as CSV (single run)")
    si.add_argument("--trace-json", type=str, default=None,
                    help="write the per-cycle StatsTrace as JSON (single run)")
    si.add_argument("--saturation", action="store_true",
                    help="search the saturation per-node rate instead")
    _add_cache_opts(si)

    so = sub.add_parser("sort", help="run the bitonic sorting network")
    so.add_argument("-n", type=int, required=True, help="2**n values")
    so.add_argument("--seed", type=int, default=0)

    isn = sub.add_parser("isn-layout", help="stage-column layout of an ISN")
    isn.add_argument("--ks", type=_ks, required=True)
    isn.add_argument("--layers", type=int, default=2)

    be = sub.add_parser("benes", help="Benes permutation routing")
    be.add_argument("-n", type=int, default=None, help="2**n terminals")
    be.add_argument("--permutations", type=int, default=3,
                    help="random permutations to route one by one")
    be.add_argument("--seed", type=int, default=0)
    be.add_argument("--perm", type=_int_list, default=None,
                    help="route this explicit permutation, e.g. 3,1,0,2")
    be.add_argument("--batch", type=int, default=None,
                    help="batch mode: route this many seeded permutations "
                         "in one vectorized pass")
    be.add_argument("--legacy", action="store_true",
                    help="use the recursive reference engine (per-perm mode)")
    be.add_argument("--workers", type=int, default=None,
                    help="multiprocessing workers for --batch")
    be.add_argument("--json", type=str, default=None,
                    help="write the report as JSON")
    _add_cache_opts(be)

    sv = sub.add_parser(
        "serve", help="HTTP design-query service over the artifact cache"
    )
    sv.add_argument("--host", type=str, default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8421,
                    help="TCP port (0 binds an ephemeral port; default 8421)")
    sv.add_argument("--max-requests", type=int, default=None,
                    help="serve this many requests then exit (smoke tests)")
    sv.add_argument("--quiet", action="store_true",
                    help="suppress per-request access logging")
    _add_cache_opts(sv)

    cg = sub.add_parser(
        "campaign", help="checkpointed design-space sweeps over the grid"
    )
    cgs = cg.add_subparsers(dest="action", required=True)

    cr = cgs.add_parser("run", help="expand a grid and run every stage")
    cr.add_argument("--grid", type=str, default=None,
                    help="JSON grid file (authoritative; see "
                         "repro.campaign.grid for the schema)")
    cr.add_argument("--ks", type=_ks, action="append", default=None,
                    help="inline axis: repeatable parameter vector, "
                         "e.g. --ks 2,1,1 --ks 2,2,1")
    cr.add_argument("--layers", type=_int_list, default=None,
                    help="inline axis: comma list of wiring layers L")
    cr.add_argument("--pin-limit", type=_pin_list, default=None,
                    help="inline axis: comma list of pins/module caps "
                         "('none' = unlimited)")
    cr.add_argument("--rates", type=_float_list, default=None,
                    help="inline axis: comma list of injection rates")
    cr.add_argument("--node-side", type=int, default=None)
    cr.add_argument("--track-order", choices=["forward", "reversed"],
                    default=None)
    cr.add_argument("--cycles", type=int, default=None)
    cr.add_argument("--warmup", type=int, default=None)
    cr.add_argument("--benes-batch", type=int, default=None)
    cr.add_argument("--sat-max-n", type=int, default=None,
                    help="run the saturation bisection only when n <= this")
    cr.add_argument("--seed", type=int, default=None,
                    help="campaign base seed (per-point seeds derive)")
    cr.add_argument("--run-id", type=str, default=None,
                    help="run directory name (default c<spec digest>)")
    cr.add_argument("--runs-dir", type=str, default="runs",
                    help="parent directory for run trees (default runs/)")
    cr.add_argument("--workers", type=int, default=None,
                    help="multiprocessing workers sharding the points")
    cr.add_argument("--memory-budget", type=_positive_int, default=None,
                    metavar="BYTES",
                    help="run the layout stage out-of-core in chunks "
                         "sized to this working-set byte budget")
    cr.add_argument("--layout-workers", type=_positive_int, default=None,
                    help="parallel worker processes inside each chunked "
                         "layout build+validate (distinct from --workers, "
                         "which shards grid points)")
    cr.add_argument("--json", type=str, default=None,
                    help="write the run summary as JSON")
    cr.add_argument("--cache-dir", type=str, default=None,
                    help="artifact-cache directory (default "
                         "<run dir>/cache, so artifacts live in the run "
                         "tree and double as cache entries)")
    cr.add_argument("--no-cache", action="store_true",
                    help="compute without reading or writing the cache")

    for name, hlp in (
        ("resume", "re-run only missing/damaged checkpoints of a run"),
        ("status", "per-stage completion summary of a run tree"),
        ("frontier", "Pareto frontier of a run's completed points"),
    ):
        sp = cgs.add_parser(name, help=hlp)
        sp.add_argument("run_dir", type=str, help="runs/<run_id> directory")
        sp.add_argument("--json", type=str, default=None,
                        help="write the report as JSON")
        if name == "resume":
            sp.add_argument("--workers", type=int, default=None)
            sp.add_argument("--cache-dir", type=str, default=None)
            sp.add_argument("--no-cache", action="store_true")

    ca = sub.add_parser(
        "cache", help="artifact-cache admin: ls / verify / gc"
    )
    ca.add_argument("action", choices=["ls", "verify", "gc"])
    ca.add_argument("--cache-dir", type=str, default=None,
                    help="artifact-cache directory (default $REPRO_CACHE_DIR "
                         "or ~/.cache/repro)")
    ca.add_argument("--max-age-days", type=float, default=None,
                    help="gc: also drop entries older than this many days")
    ca.add_argument("--json", type=str, default=None,
                    help="write the report as JSON")

    f = sub.add_parser("fft", help="FFT over an ISN flow graph")
    f.add_argument("--ks", type=_ks, required=True)
    f.add_argument("--seed", type=int, default=0)

    sub.add_parser("figures", help="print the paper's text figures")
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = globals()[f"_cmd_{args.command.replace('-', '_')}"]
    return handler(args)


def _store_for(args):
    """The :class:`~repro.service.ArtifactStore` the flags select, or
    ``None`` when caching is off."""
    from .service import ArtifactStore, default_cache_dir

    if getattr(args, "no_cache", False):
        return None
    return ArtifactStore(getattr(args, "cache_dir", None) or default_cache_dir())


def _service_query(kind: str, params: dict, args) -> dict:
    """One cached design query; cache disposition goes to stderr so
    stdout stays identical whether the answer was computed or served.
    Malformed queries exit 2 like argparse errors do."""
    from .service import QueryError, query

    info: dict = {}
    try:
        result = query(kind, params, store=_store_for(args), info=info)
    except QueryError as e:
        print(f"{kind}: {e}", file=sys.stderr)
        raise SystemExit(2) from e
    print(f"[cache {info['cache']} {info['key'][:12]}]", file=sys.stderr)
    return result


def _write_json(report: dict, path: Optional[str]) -> None:
    import json

    if not path:
        return
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {path}")


def _cmd_verify(args) -> int:
    from .transform import verify_automorphism

    ok = verify_automorphism(args.ks, materialize=args.materialize)
    n = sum(args.ks)
    mode = "graph comparison" if args.materialize else "generator check"
    print(f"ISN{args.ks} -> B_{n} automorphism ({mode}): {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_layout(args) -> int:
    import time

    chunked = args.memory_budget is not None or args.workers is not None
    if chunked and (args.legacy or args.svg or args.no_validate):
        print(
            "layout: --memory-budget/--workers drive the chunked service "
            "pipeline and cannot be combined with --legacy/--svg/--no-validate",
            file=sys.stderr,
        )
        return 2

    # --legacy / --svg / --no-validate need the layout objects in hand;
    # those runs bypass the service layer.  The default run is one
    # cached design query.
    if not (args.legacy or args.svg or args.no_validate):
        params = {
            "ks": list(args.ks),
            "layers": args.layers,
            "node_side": args.node_side,
            "track_order": args.track_order,
            "recirculating": args.recirculating,
        }
        if chunked:
            from .layout import grid_chunk_estimate

            est = grid_chunk_estimate(
                tuple(args.ks), W=args.node_side, L=args.layers,
                recirculating=args.recirculating,
                memory_budget_bytes=args.memory_budget,
            )
            print(
                f"[chunked {est['chunks']} chunks x "
                f"{est['wires_per_chunk']} wires, "
                f"~{est['est_peak_bytes'] / (1 << 20):.1f} MiB peak "
                f"working set, workers={args.workers or 1}]",
                file=sys.stderr,
            )
            if args.memory_budget is not None:
                params["memory_budget_bytes"] = args.memory_budget
            if args.workers is not None:
                params["workers"] = args.workers
        t0 = time.perf_counter()
        result = _service_query("layout", params, args)
        query_s = time.perf_counter() - t0
        print(
            f"validation (table): {'OK' if result['valid'] else 'FAILED'}  "
            f"[query {query_s:.3f} s]"
        )
        if not result["valid"]:
            for e in result["errors"]:
                print(f"  {e}")
            return 1
        rows = [
            {"metric": k, "value": v} for k, v in result["summary"].items()
        ]
        rows += [
            {"metric": k, "value": v}
            for k, v in result["wire_stats"].items()
        ]
        print(format_table(rows))
        _write_json(result, args.json)
        return 0

    from .analysis.wirestats import wire_stats
    from .layout import build_grid_layout, validate_layout
    from .layout.validate import validate_layout_legacy
    from .viz.svg import save_svg

    engine = "legacy" if args.legacy else "table"
    t0 = time.perf_counter()
    res = build_grid_layout(
        args.ks, W=args.node_side, L=args.layers,
        track_order=args.track_order, recirculating=args.recirculating,
        engine=engine,
    )
    build_s = time.perf_counter() - t0
    if not args.no_validate:
        check = validate_layout_legacy if args.legacy else validate_layout
        t0 = time.perf_counter()
        rep = check(res.layout, res.graph)
        validate_s = time.perf_counter() - t0
        print(
            f"validation ({engine}): {'OK' if rep.ok else 'FAILED'}  "
            f"[build {build_s:.3f} s, validate {validate_s:.3f} s]"
        )
        if not rep.ok:
            for e in rep.errors[:10]:
                print(f"  {e}")
            return 1
    else:
        print(f"build ({engine}): {build_s:.3f} s (validation skipped)")
    rows = [{"metric": k, "value": v} for k, v in res.layout.summary().items()]
    ws = wire_stats(res.layout)
    rows += [
        {"metric": k, "value": v}
        for k, v in ws.as_row("grid").items()
        if k not in ("layout", "wires", "max")  # already in summary()
    ]
    print(format_table(rows))
    _write_json(
        {
            "kind": "layout",
            "engine": engine,
            "metrics": {r["metric"]: r["value"] for r in rows},
        },
        args.json,
    )
    if args.svg:
        print(f"wrote {save_svg(res.layout, args.svg, scale=1.5)}")
    return 0


def _cmd_dims(args) -> int:
    result = _service_query(
        "dims",
        {"ks": list(args.ks), "layers": args.layers,
         "node_side": args.node_side},
        args,
    )
    rows = [{"metric": k, "value": v} for k, v in result["summary"].items()]
    print(format_table(rows))
    _write_json(result, args.json)
    return 0


def _cmd_collinear(args) -> int:
    from .layout import collinear_layout, validate_layout
    from .viz.ascii import collinear_figure
    from .viz.svg import save_svg

    cl = collinear_layout(args.n, multiplicity=args.multiplicity, order=args.order)
    rep = validate_layout(cl.layout, cl.graph)
    s = cl.summary()
    print(
        f"K_{args.n} x{args.multiplicity} ({args.order}): {s['tracks']} tracks, "
        f"max wire {s['max_wire_length']}, area {s['area']}, "
        f"valid={'OK' if rep.ok else 'FAILED'}"
    )
    if args.tracks:
        print(collinear_figure(args.n, args.order))
    if args.svg:
        print(f"wrote {save_svg(cl.layout, args.svg, scale=4)}")
    return 0 if rep.ok else 1


def _cmd_board(args) -> int:
    from .packaging import ChipSpec, board_design
    from .viz.board_svg import save_board_svg

    d = board_design(
        args.ks, ChipSpec(max_pins=args.pins, side=args.chip_side), layers=args.layers
    )
    rows = [{"metric": k, "value": v} for k, v in d.summary().items()]
    print(format_table(rows))
    if args.svg:
        print(f"wrote {save_board_svg(d, args.svg)}")
    return 0


def _cmd_optimize(args) -> int:
    from .packaging import optimize_packaging

    cands = optimize_packaging(
        args.n,
        max_nodes_per_module=args.max_nodes,
        max_pins_per_module=args.max_pins,
        max_l=args.max_l,
    )
    if not cands:
        print("no feasible design")
        return 1
    rows = [
        {
            "ks": c.ks,
            "scheme": c.scheme,
            "modules": c.num_modules,
            "max nodes": c.max_nodes_per_module,
            "pins": c.pins_per_module,
            "avg links/node": float(c.avg_links_per_node),
        }
        for c in cands[: args.top]
    ]
    print(format_table(rows))
    return 0


def _cmd_package(args) -> int:
    from .packaging import optimize_packaging

    if (args.ks is None) == (args.n is None):
        print("package: give exactly one of --ks (report) or -n (sweep)",
              file=sys.stderr)
        return 2

    report: dict
    if args.ks is not None:
        result = _service_query(
            "package",
            {"ks": list(args.ks), "scheme": args.scheme,
             "rows_per_module": args.rows_per_module},
            args,
        )
        rows, all_ok = result["schemes"], result["all_match"]
        print(f"B_{result['n']} pin accounting for ks={tuple(args.ks)} "
              f"(closed form vs columnar exact):")
        print(format_table(rows))
        report = {
            "mode": "report",
            "ks": list(args.ks),
            "n": result["n"],
            "schemes": rows,
            "all_match": all_ok,
        }
        ret = 0 if all_ok else 1
    else:
        cands = optimize_packaging(
            args.n,
            max_nodes_per_module=args.max_nodes,
            max_pins_per_module=args.max_pins,
            max_l=args.max_l,
            exact=args.exact,
            workers=args.workers,
        )
        rows = [
            {
                "ks": c.ks,
                "scheme": c.scheme,
                "modules": c.num_modules,
                "max nodes": c.max_nodes_per_module,
                "pins": c.pins_per_module,
                **({"pins exact": c.exact_pins} if args.exact else {}),
                "avg links/node": round(float(c.avg_links_per_node), 4),
            }
            for c in cands[: args.top]
        ]
        if cands:
            print(format_table(rows))
        else:
            print("no feasible design")
        report = {
            "mode": "sweep",
            "n": args.n,
            "exact": args.exact,
            "max_pins": args.max_pins,
            "max_nodes": args.max_nodes,
            "num_candidates": len(cands),
            "top": [
                {**r, "ks": list(r["ks"])} for r in rows
            ],
        }
        ret = 0 if cands else 1
    _write_json(report, args.json)
    return ret


def _cmd_multilevel(args) -> int:
    from .packaging.multilevel import multilevel_design

    rows = [
        {
            "level": s.level,
            "rows/module": 1 << s.row_bits,
            "modules": s.num_modules,
            "nodes/module": s.nodes_per_module,
            "pins (ours)": s.pins_per_module,
            "pins (naive)": s.naive_pins_same_size,
        }
        for s in multilevel_design(args.ks)
    ]
    print(format_table(rows))
    return 0


def _cmd_hypercube(args) -> int:
    from .layout.hypercube_layout import hypercube_2d_layout
    from .layout.validate import validate_layout
    from .viz.svg import save_svg

    res = hypercube_2d_layout(args.n, L=args.layers)
    rep = validate_layout(res.layout, res.graph)
    s = res.layout.summary()
    print(
        f"Q_{args.n} (L={args.layers}): area {s['area']}, max wire "
        f"{s['max_wire_length']}, valid={'OK' if rep.ok else 'FAILED'}"
    )
    if args.svg:
        print(f"wrote {save_svg(res.layout, args.svg, scale=2)}")
    return 0 if rep.ok else 1


def _cmd_ccc(args) -> int:
    from .layout.ccc_layout import ccc_2d_layout
    from .layout.validate import validate_layout
    from .viz.svg import save_svg

    res = ccc_2d_layout(args.n, L=args.layers)
    rep = validate_layout(res.layout, res.graph)
    s = res.layout.summary()
    print(
        f"CCC({args.n}) (L={args.layers}): {s['nodes']} nodes, area "
        f"{s['area']}, max wire {s['max_wire_length']}, "
        f"valid={'OK' if rep.ok else 'FAILED'}"
    )
    if args.svg:
        print(f"wrote {save_svg(res.layout, args.svg, scale=2)}")
    return 0 if rep.ok else 1


def _cmd_omega(args) -> int:
    from .layout.multistage import build_multistage_layout
    from .layout.validate import validate_layout
    from .topology.omega import Omega, destination_tag_route

    om = Omega(args.n)
    res = build_multistage_layout(
        om.rows, om.boundary_link_lists(), L=args.layers, name="omega"
    )
    rep = validate_layout(res.layout, res.graph)
    checked = 0
    for dst in range(om.rows):
        path = destination_tag_route(args.n, 0, dst)
        for st_, (x, y) in enumerate(zip(path, path[1:])):
            assert res.graph.has_edge((x, st_), (y, st_ + 1))
        checked += 1
    print(
        f"omega({args.n}): area {res.layout.area}, "
        f"valid={'OK' if rep.ok else 'FAILED'}, "
        f"destination-tag routes checked: {checked}"
    )
    return 0 if rep.ok else 1


def _cmd_sim(args) -> int:
    from .algorithms.queued_routing import (
        simulate_butterfly_queued,
        simulate_butterfly_queued_legacy,
        sweep_rates,
    )

    if args.saturation:
        result = _service_query(
            "saturation",
            {"n": args.n, "cycles": args.cycles, "seed": args.seed,
             "drain": args.drain},
            args,
        )
        print(
            f"saturation per-node rate for n={args.n}: "
            f"{result['rate_per_node']:.4f} "
            f"(paper's 1/(n+1) wall: {result['paper_wall']:.4f})"
        )
        return 0

    rates = list(args.rates) if args.rates else [args.rate]
    seeds = list(args.seeds) if args.seeds else [args.seed]
    want_trace = bool(args.trace_csv or args.trace_json)
    if len(rates) * len(seeds) == 1:
        if args.legacy:
            if want_trace:
                print("--trace-* requires the vectorized engine", file=sys.stderr)
                return 2
            results = [
                simulate_butterfly_queued_legacy(
                    args.n, rates[0], cycles=args.cycles, warmup=args.warmup,
                    seed=seeds[0], drain=args.drain,
                )
            ]
        else:
            res = simulate_butterfly_queued(
                args.n, rates[0], cycles=args.cycles, warmup=args.warmup,
                seed=seeds[0], drain=args.drain, trace=want_trace,
            )
            if args.trace_csv:
                print(f"wrote {res.trace.to_csv(args.trace_csv)}")
            if args.trace_json:
                print(f"wrote {res.trace.to_json(args.trace_json)}")
            results = [res]
    else:
        if args.legacy or want_trace:
            print("--legacy/--trace-* apply to single runs only", file=sys.stderr)
            return 2
        results = sweep_rates(
            args.n, rates, cycles=args.cycles, warmup=args.warmup,
            seeds=seeds, drain=args.drain, workers=args.workers,
            batch=args.batch,
        )
    rows = []
    for i, res in enumerate(results):
        rows.append(
            {
                "rate/input": res.rate_per_input,
                "seed": seeds[i % len(seeds)],
                "offered": res.offered,
                "delivered": res.delivered_total,
                "throughput/input": round(res.throughput_per_input, 4),
                "accepted": round(res.accepted_fraction, 4),
                "avg latency": (
                    round(res.avg_latency, 2)
                    if res.avg_latency != float("inf") else "inf"
                ),
                "max queue": res.max_queue,
            }
        )
    print(format_table(rows))
    return 0


def _cmd_sort(args) -> int:
    import numpy as np

    from .topology.bitonic import bitonic_num_stages, bitonic_sort

    rng = np.random.default_rng(args.seed)
    x = rng.integers(0, 1000, size=1 << args.n)
    y = bitonic_sort(x)
    ok = bool(np.array_equal(y, np.sort(x)))
    print(
        f"bitonic sorter: {1 << args.n} values through "
        f"{bitonic_num_stages(args.n)} compare-exchange stages, "
        f"sorted={'OK' if ok else 'FAILED'}"
    )
    return 0 if ok else 1


def _cmd_isn_layout(args) -> int:
    from .layout.multistage import build_multistage_layout
    from .layout.validate import validate_layout
    from .topology.isn import ISN

    isn = ISN.from_ks(args.ks)
    res = build_multistage_layout(
        isn.rows, isn.boundary_link_lists(), L=args.layers, name=f"ISN{args.ks}"
    )
    rep = validate_layout(res.layout, res.graph)
    print(
        f"ISN{args.ks}: {isn.rows} rows x {isn.stages} stages, area "
        f"{res.layout.area}, valid={'OK' if rep.ok else 'FAILED'}"
    )
    return 0 if rep.ok else 1


def _cmd_benes(args) -> int:
    import random
    import time

    from .algorithms.benes_routing import (
        apply_settings,
        apply_settings_legacy,
        route_permutation,
        route_permutation_legacy,
    )

    if args.perm is not None:
        perm = list(args.perm)
        n = (len(perm) - 1).bit_length()
    elif args.n is not None:
        n = args.n
    else:
        print("benes: give -n or --perm", file=sys.stderr)
        return 2
    N = 1 << n
    total_switches = (2 * n - 1) * N // 2
    report: dict = {"n": n, "terminals": N, "switches": total_switches}

    if args.batch:
        t0 = time.perf_counter()
        if args.workers:
            # an explicit worker count means "route right here, fanned
            # out" — workers shape the compute, never the answer, so
            # they are not part of any cache key
            import numpy as np

            from .algorithms.benes_routing import (
                apply_settings_batch,
                route_permutations,
            )

            rng = np.random.default_rng(args.seed)
            perms = np.array([rng.permutation(N) for _ in range(args.batch)])
            batch = route_permutations(perms, workers=args.workers)
            counts = batch.count_crossed()
            result = {
                "realized_ok": bool(
                    np.array_equal(apply_settings_batch(batch), perms)
                ),
                "crossed": {
                    "min": int(counts.min()),
                    "mean": float(counts.mean()),
                    "max": int(counts.max()),
                },
            }
        else:
            result = _service_query(
                "benes",
                {"n": n, "batch": args.batch, "seed": args.seed},
                args,
            )
        query_s = time.perf_counter() - t0
        ok = result["realized_ok"]
        c = result["crossed"]
        print(
            f"batch: {args.batch} perms, N={N}, answered in {query_s:.3f} s, "
            f"crossed switches min/mean/max "
            f"{c['min']}/{c['mean']:.1f}/{c['max']} "
            f"of {total_switches}, realized={'OK' if ok else 'MISMATCH'}"
        )
        report.update(
            mode="batch", batch=args.batch, seed=args.seed,
            query_seconds=query_s, realized_ok=ok, crossed=c,
        )
    else:
        route = route_permutation_legacy if args.legacy else route_permutation
        apply_ = apply_settings_legacy if args.legacy else apply_settings
        if args.perm is not None:
            trials = [list(args.perm)]
        else:
            rng = random.Random(args.seed)
            trials = []
            for _ in range(args.permutations):
                perm = list(range(N))
                rng.shuffle(perm)
                trials.append(perm)
        ok = True
        perm_rows = []
        for trial, perm in enumerate(trials):
            settings = route(perm)
            realized = apply_(settings)
            match = realized == perm
            ok &= match
            crossed = settings.count_crossed()
            print(
                f"perm {trial}: N={N}, crossed switches "
                f"{crossed}/{total_switches}, "
                f"realized={'OK' if match else 'MISMATCH'}"
            )
            perm_rows.append(
                {"perm": perm, "crossed": crossed, "realized_ok": match}
            )
        report.update(
            mode="legacy" if args.legacy else "single",
            permutations=perm_rows, realized_ok=ok,
        )
    _write_json(report, args.json)
    return 0 if report["realized_ok"] else 1


def _cmd_serve(args) -> int:
    from .service import ArtifactStore, default_cache_dir, make_server

    cache_dir = args.cache_dir or default_cache_dir()
    store = None if args.no_cache else ArtifactStore(cache_dir)
    srv = make_server(args.host, args.port, store=store, quiet=args.quiet)
    host, port = srv.server_address[:2]
    print(
        f"repro serve: http://{host}:{port} "
        f"(cache: {'off' if store is None else cache_dir})"
    )
    try:
        if args.max_requests is not None:
            for _ in range(args.max_requests):
                srv.handle_request()
        else:  # pragma: no cover - interactive loop
            srv.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive loop
        pass
    finally:
        srv.server_close()
    return 0


def _campaign_spec(args) -> dict:
    """The grid spec the flags declare: ``--grid`` file verbatim, else
    the inline axes + config flags."""
    import json

    if args.grid is not None:
        if args.ks is not None:
            print("campaign run: --grid and --ks are exclusive",
                  file=sys.stderr)
            raise SystemExit(2)
        with open(args.grid) as fh:
            return json.load(fh)
    if not args.ks:
        print("campaign run: give --grid FILE or at least one --ks",
              file=sys.stderr)
        raise SystemExit(2)
    spec: dict = {"ks": [list(ks) for ks in args.ks]}
    for axis, value in (
        ("layers", args.layers),
        ("pin_limit", args.pin_limit),
        ("rate", args.rates),
    ):
        if value is not None:
            spec[axis] = list(value)
    config = {
        k: v
        for k, v in (
            ("node_side", args.node_side),
            ("track_order", args.track_order),
            ("cycles", args.cycles),
            ("warmup", args.warmup),
            ("benes_batch", args.benes_batch),
            ("sat_max_n", args.sat_max_n),
            ("seed", args.seed),
            ("layout_memory_budget", args.memory_budget),
            ("layout_workers", args.layout_workers),
        )
        if v is not None
    }
    if config:
        spec["config"] = config
    return spec


def _campaign_report(summary: dict) -> None:
    c = summary["counts"]
    print(
        f"campaign {summary['run_id']}: {summary['points']} point(s), "
        f"{summary['stages_run']} stage(s) run this pass, "
        f"{c['complete']} complete, {c['failed']} failed, "
        f"{summary['frontier_points']} on the frontier"
    )
    print(f"run tree: {summary['run_dir']}")


def _cmd_campaign(args) -> int:
    import os

    from .campaign import (
        CampaignError,
        GridError,
        build_manifest,
        load_run,
        pareto_frontier,
        render_frontier,
        resume_run,
        run_status,
        start_run,
    )

    try:
        if args.action == "run":
            summary = start_run(
                _campaign_spec(args),
                runs_dir=args.runs_dir,
                run_id=args.run_id,
                cache_dir=args.cache_dir,
                use_cache=not args.no_cache,
                workers=args.workers,
                log=print,
            )
            _campaign_report(summary)
            with open(os.path.join(summary["run_dir"], "frontier.txt")) as fh:
                print(fh.read(), end="")
            _write_json(summary, args.json)
            return 0 if summary["counts"]["failed"] == 0 else 1

        if args.action == "resume":
            summary = resume_run(
                args.run_dir,
                cache_dir=args.cache_dir,
                use_cache=not args.no_cache,
                workers=args.workers,
                log=print,
            )
            _campaign_report(summary)
            _write_json(summary, args.json)
            return 0 if summary["counts"]["failed"] == 0 else 1

        if args.action == "status":
            status = run_status(args.run_dir)
            rows = [
                {"stage": stage, **counts}
                for stage, counts in status["stage_counts"].items()
            ]
            print(
                f"campaign {status['run_id']} "
                f"[spec {status['spec_digest']}]: "
                f"{status['counts']['complete']}/{status['counts']['points']} "
                f"point(s) complete, {status['counts']['failed']} failed"
            )
            print(format_table(rows))
            _write_json(status, args.json)
            return 0

        # frontier: recompute from the on-disk records (read-only, so it
        # also works on a live or interrupted run)
        grid, run_id = load_run(args.run_dir)
        frontier = pareto_frontier(build_manifest(args.run_dir, grid, run_id))
        print(render_frontier(frontier), end="")
        _write_json(frontier, args.json)
        return 0
    except (CampaignError, GridError) as e:
        print(f"campaign: {e}", file=sys.stderr)
        return 2


def _cmd_cache(args) -> int:
    from .service import ArtifactStore, default_cache_dir

    store = ArtifactStore(args.cache_dir or default_cache_dir())
    if args.action == "ls":
        entries = store.ls()
        if entries:
            print(format_table([e.as_row() for e in entries]))
        s = store.stats()
        print(
            f"{s['entries']} entries, {s['bytes']} bytes, "
            f"{s['quarantined']} quarantined  [{store.root}]"
        )
        _write_json({"action": "ls", **s}, args.json)
        return 0
    if args.action == "verify":
        rep = store.verify()
        print(
            f"verified {rep['checked']} entries: {rep['ok']} ok, "
            f"{rep['quarantined']} corrupt (quarantined)"
        )
        for key in rep["corrupt"]:
            print(f"  CORRUPT {key}")
        _write_json({"action": "verify", **rep}, args.json)
        return 1 if rep["corrupt"] else 0
    # gc
    max_age_s = (
        args.max_age_days * 86400.0 if args.max_age_days is not None else None
    )
    rep = store.gc(max_age_s=max_age_s)
    print(f"gc: removed {rep['removed']} entries, "
          f"freed {rep['freed_bytes']} bytes")
    _write_json({"action": "gc", **rep}, args.json)
    return 0


def _cmd_fft(args) -> int:
    import numpy as np

    from .algorithms.fft import fft_via_isn
    from .topology.isn import ISN

    isn = ISN.from_ks(args.ks)
    rng = np.random.default_rng(args.seed)
    x = rng.normal(size=isn.rows) + 1j * rng.normal(size=isn.rows)
    err = float(np.max(np.abs(fft_via_isn(x, isn) - np.fft.fft(x))))
    print(
        f"FFT over ISN{args.ks}: {isn.rows} points, {isn.stages} stages, "
        f"max |err| vs numpy = {err:.2e}"
    )
    return 0 if err < 1e-9 else 1


def _cmd_figures(args) -> int:
    from .topology.isn import ISN
    from .transform.swap_butterfly import SwapButterfly
    from .viz.ascii import collinear_figure, isn_schedule_figure, swap_butterfly_figure

    print("Figure 1 (4x4 ISN):")
    print(isn_schedule_figure(ISN.from_ks((1, 1))))
    print(swap_butterfly_figure(SwapButterfly.from_ks((1, 1))))
    print("\nFigure 2 (8x8 / 16x16 swap-butterflies):")
    for ks in [(2, 1), (2, 2)]:
        print(swap_butterfly_figure(SwapButterfly.from_ks(ks)))
        print()
    print("Figure 4 (collinear K_9):")
    print(collinear_figure(9))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
