"""Offline permutation routing on Benes networks (the looping algorithm).

A Benes network on ``N = 2**n`` terminals is *rearrangeable*: any
permutation can be routed with edge-disjoint paths.  The classical
looping algorithm sets the outer columns of 2x2 switches by 2-coloring
the constraint chains (two inputs sharing a switch must enter different
sub-networks; likewise two outputs sharing a switch), then recurses on
the two half-size Benes networks.

This module implements the switch-level algorithm plus an independent
simulator: :func:`route_permutation` produces explicit switch settings
(columns of crossed/straight bits), and :func:`apply_settings` pushes
tokens through the switched network to recover the realized permutation.
Tests assert realization for *every* permutation of small sizes and for
random large ones — the rearrangeability the paper's switch-fabric
motivation relies on.

Switch indexing: column ``s`` has ``N/2`` switches.  A sub-Benes of size
``M`` at switch offset ``f`` occupies switches ``[f, f + M/2)`` of each
of its columns; its top/bottom halves recurse at offsets ``f`` and
``f + M/4``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = ["BenesSettings", "route_permutation", "apply_settings", "num_switch_stages"]


def num_switch_stages(n: int) -> int:
    """Switch columns of a ``2**n``-terminal Benes: ``2n - 1``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 2 * n - 1


@dataclass
class BenesSettings:
    """Explicit switch settings: ``stages[s][j]`` is True when switch
    ``j`` of column ``s`` is crossed."""

    n: int
    stages: List[List[bool]]

    @property
    def num_terminals(self) -> int:
        return 1 << self.n

    def count_crossed(self) -> int:
        return sum(sum(col) for col in self.stages)


def _validate_perm(perm: Sequence[int]) -> int:
    N = len(perm)
    if N < 2 or N & (N - 1):
        raise ValueError(f"permutation length must be a power of two >= 2, got {N}")
    if sorted(perm) != list(range(N)):
        raise ValueError("not a permutation")
    return N.bit_length() - 1


def route_permutation(perm: Sequence[int]) -> BenesSettings:
    """Compute switch settings realizing ``perm`` (input ``i`` is
    delivered to output ``perm[i]``)."""
    n = _validate_perm(perm)
    N = 1 << n
    settings = BenesSettings(
        n=n, stages=[[False] * (N // 2) for _ in range(num_switch_stages(n))]
    )
    _route(list(perm), stage0=0, settings=settings, offset=0)
    return settings


def _two_color(perm: List[int]) -> List[int]:
    """Assign each input a sub-network (0 = top, 1 = bottom) such that
    switch partners (inputs 2j, 2j+1 and outputs 2j, 2j+1) get different
    colors and ``color(output) = color(input)`` along ``perm``."""
    N = len(perm)
    inv = [0] * N
    for i, p in enumerate(perm):
        inv[p] = i
    color: List[Optional[int]] = [None] * N
    for start in range(N):
        if color[start] is not None:
            continue
        i, c = start, 0
        while True:
            color[i] = c
            partner_out = perm[i] ^ 1  # shares the output switch
            j = inv[partner_out]  # must take the other network
            color[j] = 1 - c
            nxt = j ^ 1  # shares j's input switch
            if color[nxt] is not None:
                break  # chain closed into a cycle
            i, c = nxt, c  # nxt must take the opposite of j = same as c
    return color  # type: ignore[return-value]


def _route(perm: List[int], stage0: int, settings: BenesSettings, offset: int) -> None:
    N = len(perm)
    half = N // 2
    if N == 2:
        settings.stages[stage0][offset] = perm[0] == 1
        return
    n_sub = N.bit_length() - 1
    last = stage0 + 2 * n_sub - 2

    in_color = _two_color(perm)
    out_color = [0] * N
    for i, p in enumerate(perm):
        out_color[p] = in_color[i]

    for j in range(half):
        assert in_color[2 * j] != in_color[2 * j + 1], "input coloring failed"
        assert out_color[2 * j] != out_color[2 * j + 1], "output coloring failed"
        settings.stages[stage0][offset + j] = in_color[2 * j] == 1
        settings.stages[last][offset + j] = out_color[2 * j] == 1

    # sub-permutations on half-size terminal spaces: input i reaches its
    # sub-network's terminal i//2 and must exit at sub-terminal perm[i]//2
    top = [0] * half
    bottom = [0] * half
    for i, p in enumerate(perm):
        (top if in_color[i] == 0 else bottom)[i // 2] = p // 2
    _route(top, stage0 + 1, settings, offset)
    _route(bottom, stage0 + 1, settings, offset + half // 2)


def apply_settings(settings: BenesSettings) -> List[int]:
    """Simulate the switched network; returns the realized permutation
    (token injected at input ``i`` appears at output ``result[i]``)."""
    N = settings.num_terminals
    result = [0] * N
    _apply(list(range(N)), 0, settings, 0, list(range(N)), result)
    return result


def _apply(
    tokens: List[int],
    stage0: int,
    settings: BenesSettings,
    offset: int,
    out_ids: List[int],
    result: List[int],
) -> None:
    """Push ``tokens`` through the sub-network whose outputs are the
    global outputs ``out_ids``; record arrivals in ``result``."""
    N = len(tokens)
    if N == 2:
        a, b = tokens
        if settings.stages[stage0][offset]:
            a, b = b, a
        result[a] = out_ids[0]
        result[b] = out_ids[1]
        return
    half = N // 2
    n_sub = N.bit_length() - 1
    last = stage0 + 2 * n_sub - 2

    top_in: List[int] = []
    bot_in: List[int] = []
    for j in range(half):
        a, b = tokens[2 * j], tokens[2 * j + 1]
        if settings.stages[stage0][offset + j]:
            a, b = b, a
        top_in.append(a)
        bot_in.append(b)

    top_out: List[int] = []
    bot_out: List[int] = []
    for j in range(half):
        pa, pb = out_ids[2 * j], out_ids[2 * j + 1]
        if settings.stages[last][offset + j]:
            pa, pb = pb, pa
        top_out.append(pa)
        bot_out.append(pb)

    _apply(top_in, stage0 + 1, settings, offset, top_out, result)
    _apply(bot_in, stage0 + 1, settings, offset + half // 2, bot_out, result)
