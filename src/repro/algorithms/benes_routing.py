"""Offline permutation routing on Benes networks (the looping algorithm).

A Benes network on ``N = 2**n`` terminals is *rearrangeable*: any
permutation can be routed with edge-disjoint paths.  The classical
looping algorithm sets the outer columns of 2x2 switches by 2-coloring
the constraint chains (two inputs sharing a switch must enter different
sub-networks; likewise two outputs sharing a switch), then recurses on
the two half-size Benes networks.

Two engines implement the algorithm:

* the **batched iterative engine** (:func:`route_permutations`,
  :func:`apply_settings_batch`) replaces the recursion with one array
  pass per recursion *level*: all ``2**d`` sub-Benes blocks of depth
  ``d`` — across a whole ``(B, N)`` batch of permutations — are
  2-colored at once by vectorized cycle-chasing (pointer doubling over
  the constraint-chain successor map) and split into their half-size
  sub-permutations with a single scatter.  ``workers`` fans large
  batches out over a multiprocessing pool, mirroring
  :func:`repro.algorithms.queued_routing.sweep_rates`; chunking never
  changes the settings — every permutation is routed independently.
* the **legacy recursion** (:func:`route_permutation_legacy`,
  :func:`apply_settings_legacy`) is the original pure-Python
  implementation, kept as a differential oracle: the batched engine's
  settings are bit-for-bit identical, column by column.

:func:`route_permutation` / :func:`apply_settings` keep their historic
signatures but now run on the batched kernels (batch size 1).

The chain structure behind the vectorization: the coloring constraints
form a graph on inputs whose edges are two perfect matchings — inputs
sharing an input switch (``i <-> i ^ 1``) and inputs whose targets share
an output switch (``i <-> inv[perm[i] ^ 1]``).  Their union is a
disjoint set of even cycles; the legacy loop walks each cycle two edges
at a time via the successor ``step(i) = inv[perm[i] ^ 1] ^ 1``, giving
the walked elements color 0 and their input-switch partners color 1,
starting each chain at its smallest uncolored input.  Equivalently:
an input is colored 0 iff the minimum of its ``step``-orbit equals the
minimum of its whole constraint cycle — two orbit minima that pointer
doubling computes in ``log2 N`` gather passes.

Switch indexing: column ``s`` has ``N/2`` switches.  A sub-Benes of size
``M`` at switch offset ``f`` occupies switches ``[f, f + M/2)`` of each
of its columns; its top/bottom halves recurse at offsets ``f`` and
``f + M/4``.  Blocks of depth ``d`` are therefore contiguous and
aligned: block ``b`` owns terminals ``[b*M, (b+1)*M)`` and switches
``[b*M/2, (b+1)*M/2)`` — which is why the batched engine can treat a
whole column as one flat array.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..backend import ArrayBackend, get_backend
from ..backend.shm import attach_cached, read_array, share_arrays

__all__ = [
    "BenesSettings",
    "BenesSettingsBatch",
    "route_permutation",
    "route_permutations",
    "route_permutation_legacy",
    "apply_settings",
    "apply_settings_batch",
    "apply_settings_legacy",
    "num_switch_stages",
]


def num_switch_stages(n: int) -> int:
    """Switch columns of a ``2**n``-terminal Benes: ``2n - 1``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 2 * n - 1


@dataclass
class BenesSettings:
    """Explicit switch settings: ``stages[s][j]`` is True when switch
    ``j`` of column ``s`` is crossed."""

    n: int
    stages: List[List[bool]]

    @property
    def num_terminals(self) -> int:
        return 1 << self.n

    def count_crossed(self) -> int:
        return sum(sum(col) for col in self.stages)

    def to_array(self) -> np.ndarray:
        """The settings as a ``(2n-1, N/2)`` bool array."""
        return np.array(self.stages, dtype=bool)


@dataclass
class BenesSettingsBatch:
    """Switch settings for a batch of permutations.

    ``crossed[b, s, j]`` is True when switch ``j`` of column ``s`` is
    crossed for batch element ``b`` — the array form of ``B`` stacked
    :class:`BenesSettings`, produced by :func:`route_permutations`.
    """

    n: int
    crossed: np.ndarray  # (B, 2n - 1, N // 2) bool

    def __post_init__(self) -> None:
        expect = (num_switch_stages(self.n), 1 << (self.n - 1))
        if self.crossed.ndim != 3 or self.crossed.shape[1:] != expect:
            raise ValueError(
                f"crossed must have shape (B, {expect[0]}, {expect[1]}), "
                f"got {self.crossed.shape}"
            )

    @property
    def num_terminals(self) -> int:
        return 1 << self.n

    @property
    def batch_size(self) -> int:
        return self.crossed.shape[0]

    def __len__(self) -> int:
        return self.batch_size

    def count_crossed(self) -> np.ndarray:
        """Crossed switches per batch element, shape ``(B,)``."""
        return self.crossed.sum(axis=(1, 2))

    def settings(self, b: int) -> BenesSettings:
        """Batch element ``b`` as a plain :class:`BenesSettings`."""
        return BenesSettings(n=self.n, stages=self.crossed[b].tolist())


def _validate_perm(perm: Sequence[int]) -> int:
    N = len(perm)
    if N < 2 or N & (N - 1):
        raise ValueError(f"permutation length must be a power of two >= 2, got {N}")
    if sorted(perm) != list(range(N)):
        raise ValueError("not a permutation")
    return N.bit_length() - 1


def _validate_perm_batch(perms) -> np.ndarray:
    arr = np.asarray(perms, dtype=np.int64)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2 or arr.shape[0] < 1:
        raise ValueError(f"need a (B, N) batch of permutations, got shape {arr.shape}")
    N = arr.shape[1]
    if N < 2 or N & (N - 1):
        raise ValueError(f"permutation length must be a power of two >= 2, got {N}")
    if not np.array_equal(np.sort(arr, axis=1), np.broadcast_to(np.arange(N), arr.shape)):
        raise ValueError("not a permutation")
    return arr


# -- the batched iterative engine ----------------------------------------


# rows per kernel call are capped so the ~8 working buffers stay
# cache-resident: gathers dominate the kernel, and they run about twice
# as fast on ~256 KB buffers as on a full multi-megabyte batch pass
_CHUNK_ELEMS = 1 << 16


def _assert_alternating(pairs2d: np.ndarray, what: str) -> None:
    """Check that adjacent bool pairs ``(2j, 2j+1)`` differ, cheaply:
    viewed as little-endian uint16, a valid pair is 0x0001 or 0x0100."""
    v = np.ascontiguousarray(pairs2d).view(np.uint16)
    assert bool(np.all((v == 0x0001) | (v == 0x0100))), f"{what} coloring failed"


def _route_batch(
    perms: np.ndarray, backend=None, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Settings ``(B, 2n-1, N/2)`` for a validated ``(B, N)`` batch.

    ``out``, when given, receives the settings in place (the
    shared-memory worker path routes straight into the parent's output
    block instead of pickling results back).
    """
    B, N = perms.shape
    n = N.bit_length() - 1
    be = get_backend(backend)
    crossed = out
    if crossed is None:
        crossed = np.zeros((B, num_switch_stages(n), N // 2), dtype=bool)
    step = max(1, _CHUNK_ELEMS // N)
    for lo in range(0, B, step):
        _route_block(perms[lo : lo + step], crossed[lo : lo + step], be)
    return crossed


def _route_block(perms: np.ndarray, crossed: np.ndarray, be) -> None:
    """Fill ``crossed`` for one cache-sized block of a ``(B, N)`` batch.

    One iteration per recursion depth ``d``: every size-``M = N/2**d``
    sub-Benes block of every batch element is processed in the same
    array pass.  ``sub`` holds, at flat position ``q = b*N + f*M + i``,
    the block-local target of block ``f``'s input ``i`` of batch row
    ``b`` — exactly the ``perm`` argument of every ``_route_legacy``
    call of that depth, laid side by side.  All index arithmetic runs on
    flat 1-D buffers (int32 while indices fit) reused across levels:
    blocks are aligned, so a flat index's block-local part is just its
    low ``log2 M`` bits and gathers never cross batch rows.  Gather
    indices are valid by construction, so every ``take`` runs with
    ``mode="wrap"`` to skip NumPy's per-element bounds check.

    The 2-coloring folds both chain minima into one min-chase.  With
    ``r0(q) = min(2q, 2*(q^1) + 1)``, the minimum of ``r0`` over a
    ``step``-orbit is even iff the orbit's own minimum beats every
    input-switch partner of the orbit — i.e. iff the legacy loop starts
    the chain inside this orbit and colors it 0.  The low bit of the
    pointer-doubled minimum therefore *is* the color.  Orbits pair up
    the constraint cycles (disjoint even cycles of length <= M), so
    every orbit has at most M/2 elements and ``log2(M) - 1`` doublings
    converge the minima.
    """
    B, N = perms.shape
    n = N.bit_length() - 1
    total = B * N
    # packed minima reach 2*total + 1; stay in int32 while that fits
    dtype = np.int32 if 2 * total + 1 <= np.iinfo(np.int32).max else np.int64

    sub = perms.astype(dtype).reshape(-1).copy()
    q = np.arange(total, dtype=dtype)
    qx = q ^ 1  # input-switch partner of each flat position
    r0 = np.where(q & 1, 2 * q - 1, 2 * q)  # min(2q, 2*(q^1) + 1)
    base = np.empty_like(q)  # flat start of each position's block
    glob = np.empty_like(q)  # block-local targets as flat indices
    inv2 = np.empty_like(q)  # inv2[t] = step of the position targeting t^1
    hop = np.empty_like(q)
    r = np.empty_like(q)
    tmp = np.empty_like(q)
    tmp2 = np.empty_like(q)
    color2d = np.empty((B, N), dtype=bool)
    out2d = np.empty((B, N), dtype=bool)

    for d in range(n - 1):
        M = N >> d
        np.bitwise_and(q, ~(M - 1), out=base)
        np.add(base, sub, out=glob)

        # chain successor step(q) = inv[glob[q] ^ 1] ^ 1 in one gather:
        # pre-shift the scatter so inv2[t] = inv[t ^ 1] ^ 1
        np.bitwise_xor(glob, 1, out=tmp)
        be.scatter(inv2, tmp, qx)
        be.take_wrap(inv2, glob, out=hop)

        # pointer doubling on the packed minima (see docstring)
        np.copyto(r, r0)
        for k in range(max(1, n - d - 1)):
            be.take_wrap(r, hop, out=tmp)
            np.minimum(r, tmp, out=r)
            if k < n - d - 2:  # last round's composition is never read
                be.take_wrap(hop, hop, out=tmp2)
                hop, tmp2 = tmp2, hop

        color = color2d.reshape(-1)
        np.bitwise_and(r, 1, out=tmp)
        np.not_equal(tmp, 0, out=color)  # True = bottom sub-network
        out_color = out2d.reshape(-1)
        be.scatter(out_color, glob, color)
        _assert_alternating(color2d, "input")
        _assert_alternating(out2d, "output")
        crossed[:, d, :] = color2d[:, 0::2]
        crossed[:, 2 * n - 2 - d, :] = out2d[:, 0::2]

        # sub-permutations on half-size terminal spaces: input i reaches
        # its sub-network's terminal i//2 and must exit at sub-terminal
        # sub[i]//2; the bottom network owns the block's upper half.
        # base is divisible by M (even), so base + (q & (M-1)) // 2
        # is just (q + base) >> 1.
        np.add(q, base, out=tmp)
        np.right_shift(tmp, 1, out=tmp)
        np.multiply(color, M >> 1, out=tmp2, casting="unsafe")
        np.add(tmp, tmp2, out=tmp)  # tmp = new flat position
        np.right_shift(sub, 1, out=sub)
        be.scatter(glob, tmp, sub)  # reuse glob as the next level's sub
        sub, glob = glob, sub

    sub2d = sub.reshape(B, N)
    crossed[:, n - 1, :] = sub2d[:, 0::2] == 1  # middle column: 2x2 base case


def _route_chunk_shm(args) -> None:
    """Pool worker: route rows ``[lo, hi)`` of the shared perms block
    straight into the shared output block.

    The per-job pickle payload is ``(pack, lo, hi, backend)`` — a few
    hundred bytes however large the batch: inputs arrive as zero-copy
    shared-memory views and the settings land in the parent's shared
    ``crossed`` array, so nothing big crosses the pipe in either
    direction.
    """
    pack, lo, hi, backend = args
    views = attach_cached(pack)
    _route_batch(
        views["perms"][lo:hi], backend=backend, out=views["crossed"][lo:hi]
    )


def route_permutations(
    perms,
    *,
    workers: Optional[int] = None,
    chunk: Optional[int] = None,
    backend=None,
) -> BenesSettingsBatch:
    """Route a ``(B, N)`` batch of permutations in one vectorized pass.

    Row ``b`` of the result carries the settings realizing ``perms[b]``
    (input ``i`` delivered to output ``perms[b][i]``), bit-for-bit
    identical to ``route_permutation_legacy(perms[b])``.  With
    ``workers > 1`` the batch is split into ``chunk``-row chunks
    (default: one chunk per worker) farmed out to a multiprocessing
    pool through one shared-memory block — workers read their
    permutation rows and write their settings rows as zero-copy views;
    permutations are routed independently, so the split never changes
    the settings.
    """
    backend = backend.name if isinstance(backend, ArrayBackend) else backend
    arr = _validate_perm_batch(perms)
    B = arr.shape[0]
    n = arr.shape[1].bit_length() - 1
    if workers and workers > 1 and B > 1:
        size = chunk or -(-B // workers)
        spans = [(lo, min(lo + size, B)) for lo in range(0, B, size)]
        if len(spans) > 1:
            procs = min(workers, len(spans))
            crossed = np.zeros(
                (B, num_switch_stages(n), arr.shape[1] // 2), dtype=bool
            )
            with share_arrays(perms=arr, crossed=crossed) as pack:
                payloads = [(pack, lo, hi, backend) for lo, hi in spans]
                with multiprocessing.get_context().Pool(procs) as pool:
                    pool.map(_route_chunk_shm, payloads)
                crossed = read_array(pack, "crossed")
            return BenesSettingsBatch(n=n, crossed=crossed)
    return BenesSettingsBatch(n=n, crossed=_route_batch(arr, backend=backend))


def route_permutation(perm: Sequence[int]) -> BenesSettings:
    """Compute switch settings realizing ``perm`` (input ``i`` is
    delivered to output ``perm[i]``).

    Runs on the batched engine with batch size 1; the result is
    bit-for-bit identical to :func:`route_permutation_legacy`.
    """
    n = _validate_perm(perm)
    crossed = _route_batch(np.asarray(perm, dtype=np.int64)[np.newaxis, :])
    return BenesSettings(n=n, stages=crossed[0].tolist())


def _settings_to_crossed(settings: BenesSettings) -> np.ndarray:
    stages = settings.stages
    expect_cols = num_switch_stages(settings.n)
    if len(stages) != expect_cols or any(
        len(col) != settings.num_terminals // 2 for col in stages
    ):
        raise ValueError(
            f"settings must have {expect_cols} columns of "
            f"{settings.num_terminals // 2} switches"
        )
    return np.array(stages, dtype=bool)[np.newaxis, :, :]


def _apply_batch(crossed: np.ndarray) -> np.ndarray:
    """Realized permutations ``(B, N)`` of a ``(B, 2n-1, N/2)`` batch.

    Simulates the switched network column by column on the whole batch:
    token ``i`` starts at wire position ``i``; a column swaps positions
    ``2j <-> 2j+1`` where its switch ``j`` is crossed (blocks are
    aligned, so the global pair index is ``pos // 2`` in every column);
    between columns the fixed Benes wiring fans each size-``M`` block
    out to its two halves (forward) or merges them back (mirror).
    """
    B, S, H = crossed.shape
    N = 2 * H
    n = (S + 1) // 2
    pos = np.arange(N, dtype=np.int64)
    cur = np.broadcast_to(pos, (B, N)).copy()

    def through_column(s: int) -> None:
        swap = np.take_along_axis(crossed[:, s, :], cur >> 1, axis=1)
        np.bitwise_xor(cur, swap.astype(np.int64), out=cur)

    for d in range(n - 1):
        M = N >> d
        through_column(d)
        # top output of switch j enters the top half at sub-position j:
        # local 2j + p  ->  p*M/2 + j
        t = cur & (M - 1)
        cur += ((t & 1) * (M >> 1) + (t >> 1)) - t
    through_column(n - 1)  # middle column: the 2x2 base case
    for d in range(n - 2, -1, -1):
        M = N >> d
        # sub-output j of half p re-enters the last column's switch j:
        # local p*M/2 + j  ->  2j + p
        t = cur & (M - 1)
        cur += (((t & ((M >> 1) - 1)) << 1) | (t >> (n - d - 1))) - t
        through_column(2 * n - 2 - d)
    return cur


def apply_settings_batch(settings: BenesSettingsBatch) -> np.ndarray:
    """Simulate the switched network for a whole batch; row ``b`` is the
    realized permutation of batch element ``b`` (token injected at input
    ``i`` appears at output ``result[b, i]``)."""
    return _apply_batch(settings.crossed)


def apply_settings(settings: BenesSettings) -> List[int]:
    """Simulate the switched network; returns the realized permutation
    (token injected at input ``i`` appears at output ``result[i]``).

    Runs on the batched engine; identical to
    :func:`apply_settings_legacy`.
    """
    return _apply_batch(_settings_to_crossed(settings))[0].tolist()


# -- the legacy recursion (kept as a differential oracle) ----------------


def route_permutation_legacy(perm: Sequence[int]) -> BenesSettings:
    """The original recursive looping algorithm — the oracle the batched
    engine is checked against, bit for bit."""
    n = _validate_perm(perm)
    N = 1 << n
    settings = BenesSettings(
        n=n, stages=[[False] * (N // 2) for _ in range(num_switch_stages(n))]
    )
    _route_legacy(list(perm), stage0=0, settings=settings, offset=0)
    return settings


def _two_color(perm: List[int]) -> List[int]:
    """Assign each input a sub-network (0 = top, 1 = bottom) such that
    switch partners (inputs 2j, 2j+1 and outputs 2j, 2j+1) get different
    colors and ``color(output) = color(input)`` along ``perm``."""
    N = len(perm)
    inv = [0] * N
    for i, p in enumerate(perm):
        inv[p] = i
    color: List[Optional[int]] = [None] * N
    for start in range(N):
        if color[start] is not None:
            continue
        i, c = start, 0
        while True:
            color[i] = c
            partner_out = perm[i] ^ 1  # shares the output switch
            j = inv[partner_out]  # must take the other network
            color[j] = 1 - c
            nxt = j ^ 1  # shares j's input switch
            if color[nxt] is not None:
                break  # chain closed into a cycle
            i, c = nxt, c  # nxt must take the opposite of j = same as c
    return color  # type: ignore[return-value]


def _route_legacy(
    perm: List[int], stage0: int, settings: BenesSettings, offset: int
) -> None:
    N = len(perm)
    half = N // 2
    if N == 2:
        settings.stages[stage0][offset] = perm[0] == 1
        return
    n_sub = N.bit_length() - 1
    last = stage0 + 2 * n_sub - 2

    in_color = _two_color(perm)
    out_color = [0] * N
    for i, p in enumerate(perm):
        out_color[p] = in_color[i]

    for j in range(half):
        assert in_color[2 * j] != in_color[2 * j + 1], "input coloring failed"
        assert out_color[2 * j] != out_color[2 * j + 1], "output coloring failed"
        settings.stages[stage0][offset + j] = in_color[2 * j] == 1
        settings.stages[last][offset + j] = out_color[2 * j] == 1

    # sub-permutations on half-size terminal spaces: input i reaches its
    # sub-network's terminal i//2 and must exit at sub-terminal perm[i]//2
    top = [0] * half
    bottom = [0] * half
    for i, p in enumerate(perm):
        (top if in_color[i] == 0 else bottom)[i // 2] = p // 2
    _route_legacy(top, stage0 + 1, settings, offset)
    _route_legacy(bottom, stage0 + 1, settings, offset + half // 2)


def apply_settings_legacy(settings: BenesSettings) -> List[int]:
    """The original recursive simulator — oracle for
    :func:`apply_settings` / :func:`apply_settings_batch`."""
    N = settings.num_terminals
    result = [0] * N
    _apply_legacy(list(range(N)), 0, settings, 0, list(range(N)), result)
    return result


def _apply_legacy(
    tokens: List[int],
    stage0: int,
    settings: BenesSettings,
    offset: int,
    out_ids: List[int],
    result: List[int],
) -> None:
    """Push ``tokens`` through the sub-network whose outputs are the
    global outputs ``out_ids``; record arrivals in ``result``."""
    N = len(tokens)
    if N == 2:
        a, b = tokens
        if settings.stages[stage0][offset]:
            a, b = b, a
        result[a] = out_ids[0]
        result[b] = out_ids[1]
        return
    half = N // 2
    n_sub = N.bit_length() - 1
    last = stage0 + 2 * n_sub - 2

    top_in: List[int] = []
    bot_in: List[int] = []
    for j in range(half):
        a, b = tokens[2 * j], tokens[2 * j + 1]
        if settings.stages[stage0][offset + j]:
            a, b = b, a
        top_in.append(a)
        bot_in.append(b)

    top_out: List[int] = []
    bot_out: List[int] = []
    for j in range(half):
        pa, pb = out_ids[2 * j], out_ids[2 * j + 1]
        if settings.stages[last][offset + j]:
            pa, pb = pb, pa
        top_out.append(pa)
        bot_out.append(pb)

    _apply_legacy(top_in, stage0 + 1, settings, offset, top_out, result)
    _apply_legacy(bot_in, stage0 + 1, settings, offset + half // 2, bot_out, result)
