"""Dynamic (queued) routing on butterflies: the injection-rate wall.

Section 2.3's lower bound rests on "the maximum injection rate is
Theta(1/log R) since the average distance is O(log R) and the traffic is
balanced".  :mod:`repro.algorithms.routing` verifies the *static* side
(balanced path counts); this module adds the *dynamic* side: a
synchronous store-and-forward simulator with unit-capacity links and
FIFO queues, showing

* throughput tracking offered load up to a per-input rate near 1 —
  i.e. a per-**node** rate ``~ 1/(n+1) = Theta(1/log N)``, the paper's
  injection-rate ceiling; and
* queueing delay exploding as the offered load approaches the wall.

The simulator is deliberately simple (one FIFO per output link, one
packet per link per cycle, infinite buffers) — it is the model under
which the paper's counting argument is exact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple

import numpy as np

__all__ = ["SimResult", "simulate_butterfly_queued", "saturation_per_node_rate"]


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run."""

    n: int
    rate_per_input: float
    cycles: int
    offered: int  # packets injected
    delivered: int  # packets that reached stage n
    avg_latency: float  # cycles from injection to delivery (delivered only)
    max_queue: int  # largest backlog observed

    @property
    def rows(self) -> int:
        return 1 << self.n

    @property
    def throughput_per_input(self) -> float:
        return self.delivered / (self.cycles * self.rows)

    @property
    def rate_per_node(self) -> float:
        """Offered rate normalised per network node (the paper's figure):
        ``R`` inputs inject into ``N = (n+1) R`` nodes."""
        return self.rate_per_input / (self.n + 1)

    @property
    def accepted_fraction(self) -> float:
        return self.delivered / max(self.offered, 1)


def simulate_butterfly_queued(
    n: int,
    rate_per_input: float,
    cycles: int = 2000,
    warmup: int = 200,
    seed: int = 0,
) -> SimResult:
    """Simulate Bernoulli(``rate_per_input``) arrivals per input per cycle
    with uniform random destinations.

    Queues: one FIFO per (node, output link).  Each cycle every link
    forwards at most one packet; packets choose the straight or cross
    link by their destination's bit at the current stage.  Delivery and
    latency are measured for packets injected after ``warmup``.
    """
    if not 0 < rate_per_input <= 1:
        raise ValueError(f"rate must be in (0, 1], got {rate_per_input}")
    if n < 1 or cycles < 1:
        raise ValueError("need n >= 1 and cycles >= 1")
    R = 1 << n
    rng = np.random.default_rng(seed)
    # queues[s][r][o]: packets at node (r, s) waiting on output o
    # (0 = straight, 1 = cross); a packet is (dest_row, inject_cycle)
    queues: List[List[Tuple[Deque, Deque]]] = [
        [(deque(), deque()) for _ in range(R)] for _ in range(n)
    ]
    offered = delivered = 0
    latency_total = 0
    max_queue = 0

    inject = rng.random((cycles, R)) < rate_per_input
    dests = rng.integers(0, R, size=(cycles, R))

    for t in range(cycles):
        # advance stages back-to-front so a packet moves one hop per cycle
        for s in range(n - 1, -1, -1):
            bit = 1 << s
            for r in range(R):
                straight, cross = queues[s][r]
                # straight link (r,s)->(r,s+1)
                if straight:
                    pkt = straight.popleft()
                    if s + 1 == n:
                        if pkt[1] >= warmup:
                            delivered += 1
                            latency_total += t + 1 - pkt[1]
                    else:
                        _enqueue(queues, pkt, r, s + 1, n)
                # cross link (r,s)->(r^bit,s+1)
                if cross:
                    pkt = cross.popleft()
                    if s + 1 == n:
                        if pkt[1] >= warmup:
                            delivered += 1
                            latency_total += t + 1 - pkt[1]
                    else:
                        _enqueue(queues, pkt, r ^ bit, s + 1, n)
        # injections at stage 0
        for r in np.nonzero(inject[t])[0]:
            pkt = (int(dests[t, r]), t)
            if t >= warmup:
                offered += 1
            _enqueue(queues, pkt, int(r), 0, n)
        if t % 64 == 0:
            backlog = max(
                len(q)
                for stage in queues
                for node in stage
                for q in node
            )
            max_queue = max(max_queue, backlog)

    avg_latency = latency_total / delivered if delivered else float("inf")
    return SimResult(
        n=n,
        rate_per_input=rate_per_input,
        cycles=cycles,
        offered=offered,
        delivered=delivered,
        avg_latency=avg_latency,
        max_queue=max_queue,
    )


def _enqueue(queues, pkt, r: int, s: int, n: int) -> None:
    dest = pkt[0]
    out = 1 if ((r ^ dest) >> s) & 1 else 0
    queues[s][r][out].append(pkt)


def saturation_per_node_rate(
    n: int,
    cycles: int = 1500,
    threshold: float = 0.95,
    seed: int = 0,
) -> float:
    """Largest tested per-node rate whose throughput stays within
    ``threshold`` of offered load (coarse bisection over per-input
    rates)."""
    lo, hi = 0.1, 1.0
    best = lo
    for _ in range(6):
        mid = (lo + hi) / 2
        res = simulate_butterfly_queued(n, mid, cycles=cycles, seed=seed)
        if res.accepted_fraction >= threshold:
            best, lo = mid, mid
        else:
            hi = mid
    return best / (n + 1)
