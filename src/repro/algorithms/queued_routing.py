"""Dynamic (queued) routing on butterflies: the injection-rate wall, as a batched NumPy engine.

Section 2.3's lower bound rests on "the maximum injection rate is
Theta(1/log R) since the average distance is O(log R) and the traffic is
balanced".  :mod:`repro.algorithms.routing` verifies the *static* side
(balanced path counts); this module adds the *dynamic* side: a
synchronous store-and-forward simulator with unit-capacity links and
FIFO queues, showing

* throughput tracking offered load up to a per-input rate near 1 —
  i.e. a per-**node** rate ``~ 1/(n+1) = Theta(1/log N)``, the paper's
  injection-rate ceiling; and
* queueing delay exploding as the offered load approaches the wall.

The model (under which the paper's counting argument is exact):

* one FIFO per (node, output link), infinite buffers;
* each link forwards at most one packet per cycle; a packet advances at
  most one stage per cycle (stages are serviced back-to-front);
* Bernoulli(``rate_per_input``) arrivals per input per cycle with
  uniform random destinations, routed by destination bits;
* after the measured window a bounded *drain* phase (no new injections)
  lets packets already in flight complete, so short runs do not
  under-report acceptance.

Two interchangeable implementations are provided.
:func:`simulate_butterfly_queued` is the production engine: every FIFO
is a ring-buffer row of one flat NumPy array, each cycle pops every
nonempty queue at once, and a two-pass collision-free scatter moves the
popped packets to their next-stage queues — there is no Python-level
loop over nodes, and :func:`sweep_rates` batches many independent
(rate, seed) runs through the *same* arbitration loop.
:func:`simulate_butterfly_queued_legacy` is the original pure-Python
triple loop, kept as the reference for differential tests: with the
same seed both produce *identical* offered / delivered / drained counts
and latency totals (the legacy enqueue order — cycle ascending, then
source row ascending — is exactly the scatter-pass order, because the
two packets that can collide on one queue always differ in bit
``stage`` of the source row).

Metric definitions (see :class:`SimResult`):

* ``throughput_per_input`` — post-warmup deliveries per input per
  *measured* cycle, i.e. ``delivered / ((cycles - warmup) * R)``;
* ``accepted_fraction`` — ``(delivered + drained) / offered``: the
  fraction of offered packets the network delivered once in-flight
  packets were given the bounded drain to land;
* ``max_queue`` — the exact peak backlog of any single FIFO (tracked on
  every enqueue, not sampled).
"""

from __future__ import annotations

import csv
import json
import multiprocessing
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..backend import ArrayBackend, get_backend
from ..backend.shm import attach_cached, share_arrays

__all__ = [
    "SimResult",
    "StatsTrace",
    "simulate_butterfly_queued",
    "simulate_butterfly_queued_legacy",
    "sweep_rates",
    "saturation_per_node_rate",
]

#: Default drain budget, in multiples of the hop count ``n + 1``: long
#: enough to land the pipeline tail at sub-saturation loads, far too
#: short to erase the growing backlog that signals saturation.
_DRAIN_FACTOR = 4


def _default_drain(n: int) -> int:
    return _DRAIN_FACTOR * (n + 1)


def _qid_layout(n: int, B: int) -> Tuple[int, int, int, int]:
    """Global queue-id layout for a ``B``-job batch on ``B_n``.

    Returns ``(jb, jmask, sshift, num_q)`` for the id packing ``stage |
    classbit | job | row-rest | out`` shared by the engine, the
    injection precompute, and the shared-memory sweep workers.
    """
    jb = max((B - 1).bit_length(), 0)
    jmask = (1 << jb) - 1
    sshift = jb + n + 1
    return jb, jmask, sshift, n << sshift


def _packet_dtype(n: int, cycles: int, drain: int):
    """Packed-packet dtype: ``(inject_cycle << n) | route`` must fit."""
    return np.int32 if ((cycles + drain) << n) < 2**31 else np.int64


def _prepare_injections(
    n: int,
    jobs: Sequence[Tuple[float, int]],
    cycles: int,
    warmup: int,
    pdtype,
) -> Tuple[np.ndarray, ...]:
    """Precompute every injection of every job, grouped by cycle.

    Returns ``(offered, inj_percycle, ival, iqid, itin)`` — exactly the
    arrays :func:`_run_batch` consumes.  Factored out of the engine so
    the serial path and the shared-memory sweep workers prepare (or
    attach) byte-identical arrays: the rng consumption order here *is*
    the reference order.
    """
    R = 1 << n
    B = len(jobs)
    _jb, _jmask, sshift, _num_q = _qid_layout(n, B)
    offered = np.zeros(B, np.int64)
    inj_percycle = np.zeros((cycles, B), np.int64)
    parts_t, parts_val, parts_qid = [], [], []
    for j, (rate, seed) in enumerate(jobs):
        rng = np.random.default_rng(seed)
        inj = rng.random((cycles, R)) < rate
        dests = rng.integers(0, R, size=(cycles, R))
        t_idx, r_idx = np.nonzero(inj)
        t_idx = t_idx.astype(np.int64)
        r_idx = r_idx.astype(np.int64)
        d = dests[t_idx, r_idx].astype(np.int64)
        parts_t.append(t_idx)
        parts_val.append((t_idx << n) | (r_idx ^ d))
        parts_qid.append(
            ((r_idx & 1) << (sshift - 1))  # stage 0: class bit = row bit 0
            | (np.int64(j) << n)
            | ((r_idx >> 1) << 1)
            | ((r_idx ^ d) & 1)
        )
        offered[j] = np.count_nonzero(t_idx >= warmup)
        inj_percycle[:, j] = np.bincount(t_idx, minlength=cycles)
    if B == 1:  # np.nonzero is row-major: already grouped by cycle
        ival = parts_val[0].astype(pdtype)
        iqid = parts_qid[0]
        itin = parts_t[0]
    else:
        t_all = np.concatenate(parts_t)
        grouped = np.argsort(t_all, kind="stable")  # <= 1 arrival/queue/cycle
        ival = np.concatenate(parts_val)[grouped].astype(pdtype)
        iqid = np.concatenate(parts_qid)[grouped]
        itin = t_all[grouped]
    return offered, inj_percycle, ival, iqid, itin


@dataclass
class StatsTrace:
    """Per-cycle observability record of one simulation run.

    One row per simulated cycle (measured window *and* drain phase;
    rows at index ``>= measured_cycles`` are drain cycles).
    ``delivered`` counts every packet leaving stage ``n`` that cycle,
    including pre-warmup ones, so ``injected.sum() == delivered.sum() +
    in_flight[-1]`` holds exactly.  ``depth_hist[d]`` is the number of
    (cycle, FIFO) samples with backlog ``d`` — queue-depth occupancy
    aggregated over the whole run.
    """

    cycle: np.ndarray  # cycle index
    injected: np.ndarray  # packets injected this cycle
    delivered: np.ndarray  # packets delivered this cycle (all phases)
    in_flight: np.ndarray  # packets in the network after the cycle
    max_depth: np.ndarray  # deepest single FIFO after the cycle
    depth_hist: np.ndarray  # aggregate backlog histogram over (cycle, FIFO)
    measured_cycles: int  # rows at index >= this are drain cycles

    _COLUMNS = ("cycle", "injected", "delivered", "in_flight", "max_depth")

    def rows(self) -> Iterator[Dict[str, int]]:
        """Per-cycle rows as dicts (CSV column order)."""
        for vals in zip(*(getattr(self, c) for c in self._COLUMNS)):
            yield dict(zip(self._COLUMNS, (int(v) for v in vals)))

    def to_csv(self, path: str) -> str:
        """Write the per-cycle table to ``path``; returns ``path``."""
        with open(path, "w", newline="") as fh:
            w = csv.DictWriter(fh, fieldnames=self._COLUMNS)
            w.writeheader()
            w.writerows(self.rows())
        return path

    def to_json(self, path: str) -> str:
        """Write per-cycle arrays plus the depth histogram to ``path``."""
        payload = {c: [int(v) for v in getattr(self, c)] for c in self._COLUMNS}
        payload["depth_hist"] = [int(v) for v in self.depth_hist]
        payload["measured_cycles"] = self.measured_cycles
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        return path


@dataclass(frozen=True)
class SimResult:
    """Outcome of one simulation run.

    ``delivered`` counts post-warmup packets landing inside the measured
    window; ``drained`` counts post-warmup packets landing during the
    bounded drain phase (no injections) that follows it.  ``avg_latency``
    averages over both.  ``max_queue`` is the exact peak backlog of any
    single FIFO, tracked on every enqueue.
    """

    n: int
    rate_per_input: float
    cycles: int
    offered: int  # packets injected after warmup
    delivered: int  # post-warmup packets delivered within the window
    avg_latency: float  # cycles from injection to delivery (delivered + drained)
    max_queue: int  # exact largest single-FIFO backlog
    warmup: int = 0
    drained: int = 0  # post-warmup packets delivered during the drain
    drain_cycles: int = 0  # drain cycles actually run (stops when empty)
    in_flight: int = 0  # packets still queued when the run stopped
    trace: Optional[StatsTrace] = field(default=None, repr=False, compare=False)

    @property
    def rows(self) -> int:
        return 1 << self.n

    @property
    def measured_cycles(self) -> int:
        """Cycles in the measured (post-warmup) window."""
        return max(self.cycles - self.warmup, 1)

    @property
    def throughput_per_input(self) -> float:
        """Post-warmup deliveries per input per measured cycle:
        ``delivered / ((cycles - warmup) * R)`` — dividing by all
        ``cycles`` would bias the figure low by ``warmup / cycles``."""
        return self.delivered / (self.measured_cycles * self.rows)

    @property
    def rate_per_node(self) -> float:
        """Offered rate normalised per network node (the paper's figure):
        ``R`` inputs inject into ``N = (n+1) R`` nodes."""
        return self.rate_per_input / (self.n + 1)

    @property
    def delivered_total(self) -> int:
        """Post-warmup deliveries including the drain phase."""
        return self.delivered + self.drained

    @property
    def accepted_fraction(self) -> float:
        """``(delivered + drained) / offered``: in-flight packets given
        the bounded drain to land are not misread as losses."""
        return self.delivered_total / max(self.offered, 1)


def _validate(n: int, rate_per_input: float, cycles: int) -> None:
    if not 0 < rate_per_input <= 1:
        raise ValueError(f"rate must be in (0, 1], got {rate_per_input}")
    if n < 1 or cycles < 1:
        raise ValueError("need n >= 1 and cycles >= 1")


def _run_batch(
    n: int,
    jobs: Sequence[Tuple[float, int]],
    cycles: int,
    warmup: int,
    drain: Optional[int],
    trace: bool = False,
    backend=None,
    injections: Optional[Tuple[np.ndarray, ...]] = None,
) -> List[SimResult]:
    """Run ``len(jobs)`` independent ``(rate, seed)`` simulations through
    one shared per-link FIFO arbitration loop.

    Every FIFO of every job gets a global queue id ``stage | classbit |
    job | row-rest | out`` (``classbit`` = bit ``stage`` of the queue's
    row, ``row-rest`` = the remaining row bits) and lives as a
    ring-buffer row of one flat array with monotone head/tail counters.
    A packet is one packed integer ``(inject_cycle << n) | (source_row ^
    dest)``: bits of ``row ^ dest`` above the current stage are
    invariant along the route, so the routing bit at stage ``s`` is just
    bit ``s`` of the stored value.  Each cycle pops every nonempty
    queue's head at once — with stage in the top id bits the sorted
    active-queue list splits into movers and final-stage deliveries with
    a single ``searchsorted`` — and scatters the movers to their target
    queues in two passes split on ``classbit``: the two packets that can
    collide on one target queue always differ in that bit of the source
    row, and the bit-0 source is the lower row, so the two passes
    reproduce the reference FIFO arrival order (cycle, then source row)
    exactly, with no per-cycle sort.  The cycle's injections ride in the
    first pass (stage-0 targets are disjoint from mover targets).  Jobs
    never share queues, so batched results are bit-identical to running
    each job alone.  ``trace`` is honoured for single-job batches only.
    """
    for rate, _seed in jobs:
        _validate(n, rate, cycles)
    if drain is None:
        drain = _default_drain(n)
    be = get_backend(backend)
    R = 1 << n
    B = len(jobs)
    total_cycles = cycles + drain
    # stage | classbit | job | row-rest | out
    jb, jmask, sshift, num_q = _qid_layout(n, B)
    final_floor = (n - 1) << sshift
    # one packed int per packet: (inject_cycle << n) | (source_row ^ dest).
    # row ^ dest above bit s is invariant along the route (bits below s are
    # already corrected), so the routing decision at stage s+1 is just bit
    # s+1 of the stored value — no current-row lookup needed.
    pdtype = _packet_dtype(n, cycles, drain)

    # -- per-queue lookup tables (qid -> movement precomputation) --------
    # queue id layout: stage s on top, then bit s of the queue's row (the
    # scatter-pass class, making each pass a run of sorted id ranges),
    # then job, then the remaining row bits, then the output link.
    ids = np.arange(num_q, dtype=np.int64)
    s_t = ids >> sshift
    sb_t = (ids >> (sshift - 1)) & 1
    j_t = (ids >> n) & jmask
    rr_t = (ids >> 1) & ((R >> 1) - 1)
    o_t = ids & 1
    row_t = (rr_t & ((1 << s_t) - 1)) | (sb_t << s_t) | ((rr_t >> s_t) << (s_t + 1))
    nrow_t = row_t ^ (o_t << s_t)
    s2 = s_t + 1
    nsb_t = (nrow_t >> s2) & 1
    nrest_t = (nrow_t & ((1 << s2) - 1)) | ((nrow_t >> (s2 + 1)) << s2)
    q_nbase = (s2 << sshift) | (nsb_t << (sshift - 1)) | (j_t << n) | (nrest_t << 1)
    # movers of stage s split into scatter passes at these sorted-id cuts;
    # the final entry is the first final-stage id, so one searchsorted
    # over ``act`` yields the class cuts *and* the delivery cut
    half = 1 << (sshift - 1)
    class_bounds = np.array(
        [(s << sshift) + k * half for s in range(n - 1) for k in (1, 2)]
        + [final_floor],
        dtype=np.int64,
    )
    # routing-bit position per queue (bit s+1 of the packed value); a
    # single gathered variable-shift beats the per-stage scalar-slice
    # loop once there are more than a few stages
    q_nshift = s2.astype(np.int32) if n > 4 else None

    # -- every injection of every job, grouped by cycle ------------------
    # either prepared here, or attached as shared-memory views by a
    # sweep worker (see sweep_rates) — same arrays either way
    if injections is None:
        injections = _prepare_injections(n, jobs, cycles, warmup, pdtype)
    offered, inj_percycle, ival, iqid, itin = injections
    offered = offered.copy()  # result field; never mutate a shared view
    inj_off = np.searchsorted(itin, np.arange(cycles + 1))

    # -- ring buffers: one row per FIFO, head/tail monotone counters -----
    depth_cap = 16
    buf = np.zeros(num_q * depth_cap, pdtype)  # flat (num_q, depth_cap)
    # head/tail/qpeak count pops/arrivals per queue: <= 2 per cycle, so
    # int16 is safe below 2**14 cycles and keeps the hot arrays L2-sized
    cdtype = (
        np.int16 if total_cycles < 2**14
        else np.int32 if total_cycles < 2**30 else np.int64
    )
    head = np.zeros(num_q, cdtype)
    tail = np.zeros(num_q, cdtype)
    solo = B == 1 and not trace  # scalar accounting fast path
    qpeak = None if solo else np.zeros(num_q, cdtype)  # per-FIFO backlog peak
    peak_seen = 0  # running global peak, drives capacity growth

    inflight = np.zeros(B, np.int64)
    total_inflight = 0
    delivered = np.zeros(B, np.int64)
    drained = np.zeros(B, np.int64)
    latency = np.zeros(B, np.float64)  # integer-valued; exact below 2**53
    drain_cycles = np.zeros(B, np.int64)

    do_trace = trace and B == 1
    tr_rows: List[Tuple[int, int, int, int, int]] = []
    hist = np.zeros(1, np.int64)
    # solo fast path: final-stage pops are stashed per cycle and settled
    # in one vectorized pass after the loop (fin_t holds each chunk's t)
    fin_vals: List[np.ndarray] = []
    fin_t: List[int] = []

    def grow() -> None:
        nonlocal depth_cap, buf
        new_cap = depth_cap * 2
        nb = np.zeros(num_q * new_cap, pdtype)
        depth = tail - head
        q_rep = np.repeat(np.arange(num_q), depth)
        ofs = np.arange(int(depth.sum())) - np.repeat(
            np.cumsum(depth) - depth, depth
        )
        nb[q_rep * new_cap + ((head[q_rep] + ofs) & (new_cap - 1))] = buf[
            q_rep * depth_cap + ((head[q_rep] + ofs) & (depth_cap - 1))
        ]
        buf, depth_cap = nb, new_cap

    for t in range(total_cycles):
        if t >= cycles:
            if total_inflight == 0:
                break
            drain_cycles += inflight > 0
        if peak_seen + 2 >= depth_cap:  # <= 2 arrivals per queue per cycle
            grow()
        mask = depth_cap - 1
        dbits = mask.bit_length()
        cyc_delivered = 0
        cut = 0
        cuts: List[int] = []
        act = (head < tail).nonzero()[0]  # method call: skips wrappers
        if act.size:
            pval = be.ring_advance(buf, head, act, dbits, mask)
            cuts = act.searchsorted(class_bounds).tolist()
            cut = cuts[-1]
            if cut < act.size:  # final-stage pops: deliveries
                cyc_delivered = act.size - cut
                total_inflight -= cyc_delivered
                if solo:
                    # defer the latency/warmup arithmetic: stash the
                    # popped values and settle everything in one
                    # vectorized pass after the loop
                    inflight[0] -= cyc_delivered
                    fin_vals.append(pval[cut:])
                    fin_t.append(t)
                else:
                    done_tin = pval[cut:] >> n
                    counted = (
                        slice(None) if int(done_tin.min()) >= warmup
                        else done_tin >= warmup
                    )
                    tin_c = done_tin[counted]
                    jd = (act[cut:] >> n) & jmask
                    inflight -= be.bincount(jd, minlength=B)
                    if tin_c.size:
                        jdc = jd[counted]
                        latency += be.bincount(
                            jdc, weights=t + 1 - tin_c, minlength=B
                        )
                        bump = be.bincount(jdc, minlength=B)
                        if t < cycles:
                            delivered += bump
                        else:
                            drained += bump
        # arrivals: movers split into the two collision-free scatter
        # passes along the precomputed sorted-id runs; this cycle's
        # injections ride in the first pass (stage-0 targets are disjoint
        # from mover targets, and input FIFOs see <= 1 injection/cycle)
        segs_a: List[np.ndarray] = []
        vals_a: List[np.ndarray] = []
        segs_b: List[np.ndarray] = []
        vals_b: List[np.ndarray] = []
        if cut:
            mq = act[:cut]
            mval = pval[:cut]
            if q_nshift is not None:
                nout = mval >> q_nshift[mq]
            else:
                # act is stage-sorted, so the routing-bit index (stage+1)
                # is constant on each stage run: scalar shifts beat the
                # gather when there are only a few stages
                nout = np.empty_like(mval)
                lo = 0
                for s in range(n - 1):
                    hi = cuts[2 * s + 1]
                    if hi > lo:
                        np.right_shift(mval[lo:hi], s + 1, out=nout[lo:hi])
                    lo = hi
            nout &= 1
            nqid = q_nbase[mq]
            nqid |= nout
            prev = 0
            for i in range(0, len(cuts) - 1, 2):
                ca, cb = cuts[i], cuts[i + 1]
                if ca > prev:
                    segs_a.append(nqid[prev:ca])
                    vals_a.append(mval[prev:ca])
                if cb > ca:
                    segs_b.append(nqid[ca:cb])
                    vals_b.append(mval[ca:cb])
                prev = cb
        cyc_injected = 0
        if t < cycles:
            a, b = int(inj_off[t]), int(inj_off[t + 1])
            if b > a:
                cyc_injected = b - a
                total_inflight += cyc_injected
                segs_a.append(iqid[a:b])
                vals_a.append(ival[a:b])
                if solo:
                    inflight[0] += cyc_injected
                else:
                    inflight += inj_percycle[t]
        touched: List[np.ndarray] = []
        for segs, vals in ((segs_a, vals_a), (segs_b, vals_b)):
            if not segs:
                continue
            qc = segs[0] if len(segs) == 1 else np.concatenate(segs)
            vc = vals[0] if len(vals) == 1 else np.concatenate(vals)
            # targets unique within a pass
            be.ring_advance(buf, tail, qc, dbits, mask, vc)
            touched.append(qc)
        if touched:
            # pops precede pushes, so a FIFO's depth peaks at end of
            # cycle: sampling the touched queues once here is exact
            qt = touched[0] if len(touched) == 1 else np.concatenate(touched)
            dep = tail[qt] - head[qt]
            if not solo:
                qpeak[qt] = np.maximum(qpeak[qt], dep)
            pk = int(dep.max())
            if pk > peak_seen:
                peak_seen = pk
        if do_trace:
            depth_all = tail - head
            tr_rows.append(
                (t, cyc_injected, cyc_delivered, total_inflight,
                 int(depth_all.max()))
            )
            h = np.bincount(depth_all)
            if h.size > hist.size:
                hist = np.pad(hist, (0, h.size - hist.size))
            hist[: h.size] += h

    if solo:
        maxq = np.array([peak_seen], np.int64)
        if fin_vals:
            # settle the deferred final-stage accounting in one pass
            allv = np.concatenate(fin_vals)
            tins = allv >> n
            counts = np.array([len(v) for v in fin_vals], np.int64)
            t_arr = np.repeat(np.array(fin_t, np.int64), counts)
            post = tins >= warmup
            delivered[0] = int(np.count_nonzero(post & (t_arr < cycles)))
            drained[0] = int(np.count_nonzero(post)) - int(delivered[0])
            latency[0] = float(((t_arr + 1) - tins)[post].sum())
    else:
        maxq = qpeak.reshape(n, 2, 1 << jb, R).max(axis=(0, 1, 3))[:B]

    results = []
    for j, (rate, _seed) in enumerate(jobs):
        completed = int(delivered[j] + drained[j])
        tr = None
        if do_trace:
            cols = [np.asarray(c, np.int64) for c in zip(*tr_rows)] if tr_rows else [
                np.empty(0, np.int64)
            ] * 5
            tr = StatsTrace(*cols, depth_hist=hist, measured_cycles=cycles)
        results.append(
            SimResult(
                n=n,
                rate_per_input=rate,
                cycles=cycles,
                offered=int(offered[j]),
                delivered=int(delivered[j]),
                avg_latency=float(latency[j]) / completed if completed else float("inf"),
                max_queue=int(maxq[j]),
                warmup=warmup,
                drained=int(drained[j]),
                drain_cycles=int(drain_cycles[j]),
                in_flight=int(inflight[j]),
                trace=tr,
            )
        )
    return results


def simulate_butterfly_queued(
    n: int,
    rate_per_input: float,
    cycles: int = 2000,
    warmup: int = 200,
    seed: int = 0,
    drain: Optional[int] = None,
    trace: bool = False,
    backend=None,
) -> SimResult:
    """Simulate Bernoulli(``rate_per_input``) arrivals per input per cycle
    with uniform random destinations — vectorized engine.

    Every FIFO is a ring-buffer row of one flat NumPy array; each cycle
    pops every nonempty queue at once and a two-pass collision-free
    scatter moves the packets on (reproducing the reference enqueue
    order — cycle, then source row — exactly, so results match
    :func:`simulate_butterfly_queued_legacy` packet-for-packet).  After
    the measured window, up to ``drain`` extra cycles (default
    ``4 * (n + 1)``) run without injections so in-flight packets are not
    misread as losses.  With ``trace=True`` the result carries a
    per-cycle :class:`StatsTrace`.
    """
    return _run_batch(
        n, [(rate_per_input, seed)], cycles, warmup, drain, trace=trace,
        backend=backend,
    )[0]


def simulate_butterfly_queued_legacy(
    n: int,
    rate_per_input: float,
    cycles: int = 2000,
    warmup: int = 200,
    seed: int = 0,
    drain: Optional[int] = None,
) -> SimResult:
    """Reference pure-Python simulator (the pre-vectorization triple
    loop), kept for differential testing: same seed gives identical
    offered / delivered / drained counts and latency totals as
    :func:`simulate_butterfly_queued`.  Its ``max_queue`` is still the
    historical coarse sample (every 64 cycles), a lower bound on the
    engine's exact peak.
    """
    _validate(n, rate_per_input, cycles)
    if drain is None:
        drain = _default_drain(n)
    R = 1 << n
    rng = np.random.default_rng(seed)
    # queues[s][r][o]: packets at node (r, s) waiting on output o
    # (0 = straight, 1 = cross); a packet is (dest_row, inject_cycle)
    queues: List[List[Tuple[Deque, Deque]]] = [
        [(deque(), deque()) for _ in range(R)] for _ in range(n)
    ]
    offered = delivered = drained = 0
    latency_total = 0
    max_queue = 0
    drain_cycles = 0
    in_flight = 0

    inject = rng.random((cycles, R)) < rate_per_input
    dests = rng.integers(0, R, size=(cycles, R))

    for t in range(cycles + drain):
        if t >= cycles:
            if in_flight == 0:
                break
            drain_cycles += 1
        # advance stages back-to-front so a packet moves one hop per cycle
        for s in range(n - 1, -1, -1):
            bit = 1 << s
            for r in range(R):
                straight, cross = queues[s][r]
                # straight link (r,s)->(r,s+1)
                if straight:
                    pkt = straight.popleft()
                    if s + 1 == n:
                        in_flight -= 1
                        if pkt[1] >= warmup:
                            if t < cycles:
                                delivered += 1
                            else:
                                drained += 1
                            latency_total += t + 1 - pkt[1]
                    else:
                        _enqueue(queues, pkt, r, s + 1, n)
                # cross link (r,s)->(r^bit,s+1)
                if cross:
                    pkt = cross.popleft()
                    if s + 1 == n:
                        in_flight -= 1
                        if pkt[1] >= warmup:
                            if t < cycles:
                                delivered += 1
                            else:
                                drained += 1
                            latency_total += t + 1 - pkt[1]
                    else:
                        _enqueue(queues, pkt, r ^ bit, s + 1, n)
        # injections at stage 0
        if t < cycles:
            for r in np.nonzero(inject[t])[0]:
                pkt = (int(dests[t, r]), t)
                if t >= warmup:
                    offered += 1
                in_flight += 1
                _enqueue(queues, pkt, int(r), 0, n)
        if t % 64 == 0:
            backlog = max(
                len(q)
                for stage in queues
                for node in stage
                for q in node
            )
            max_queue = max(max_queue, backlog)

    completed = delivered + drained
    avg_latency = latency_total / completed if completed else float("inf")
    return SimResult(
        n=n,
        rate_per_input=rate_per_input,
        cycles=cycles,
        offered=offered,
        delivered=delivered,
        avg_latency=avg_latency,
        max_queue=max_queue,
        warmup=warmup,
        drained=drained,
        drain_cycles=drain_cycles,
        in_flight=in_flight,
    )


def _enqueue(queues, pkt, r: int, s: int, n: int) -> None:
    dest = pkt[0]
    out = 1 if ((r ^ dest) >> s) & 1 else 0
    queues[s][r][out].append(pkt)


def _sweep_chunk(args: Tuple) -> List[SimResult]:
    """Module-level worker so :func:`sweep_rates` chunks pickle cleanly."""
    n, jobs, cycles, warmup, drain, backend = args
    return _run_batch(n, jobs, cycles, warmup, drain, backend=backend)


#: Keys of the per-chunk injection arrays inside the sweep's shared block.
_INJ_KEYS = ("offered", "inj_percycle", "ival", "iqid", "itin")


def _sweep_chunk_shm(args: Tuple) -> List[SimResult]:
    """Pool worker that *attaches* its chunk's injection arrays.

    The per-job pickle payload is ``(pack, chunk_index, ...)`` — a few
    hundred bytes regardless of how many cycles or rows the simulation
    has; the big precomputed injection arrays travel once, through the
    shared-memory block the parent packed.
    """
    pack, ci, n, jobs, cycles, warmup, drain, backend = args
    views = attach_cached(pack)
    injections = tuple(views[f"c{ci}_{k}"] for k in _INJ_KEYS)
    return _run_batch(
        n, jobs, cycles, warmup, drain, backend=backend, injections=injections
    )


def sweep_rates(
    n: int,
    rates: Sequence[float],
    *,
    cycles: int = 1500,
    warmup: int = 200,
    seeds: Sequence[int] = (0,),
    drain: Optional[int] = None,
    workers: Optional[int] = None,
    batch: int = 16,
    backend=None,
) -> List[SimResult]:
    """Run the engine over the ``rates x seeds`` grid.

    Results come back rate-major (all seeds of ``rates[0]`` first).
    Jobs are independent seeded simulations on disjoint queues, so they
    are *batched* through one shared arbitration loop ``batch`` jobs at
    a time — each vectorized cycle serves the whole batch — and with
    ``workers > 1`` the batches are additionally farmed out to a
    :mod:`multiprocessing` pool.  The parent precomputes each chunk's
    injection arrays once and publishes them through one shared-memory
    block; workers attach zero-copy views instead of re-pickling the
    arrays per job.  The grouping never changes the numbers: every
    grouping is bit-identical to running each job alone.
    """
    backend = backend.name if isinstance(backend, ArrayBackend) else backend
    jobs = [(float(rate), int(s)) for rate in rates for s in seeds]
    batch = max(1, batch)
    chunk_jobs = [jobs[i : i + batch] for i in range(0, len(jobs), batch)]
    if workers and workers > 1 and len(chunk_jobs) > 1:
        pdtype = _packet_dtype(
            n, cycles, drain if drain is not None else _default_drain(n)
        )
        arrays = {}
        for ci, cj in enumerate(chunk_jobs):
            inj = _prepare_injections(n, cj, cycles, warmup, pdtype)
            for key, arr in zip(_INJ_KEYS, inj):
                arrays[f"c{ci}_{key}"] = arr
        procs = min(workers, len(chunk_jobs))
        with share_arrays(**arrays) as pack:
            del arrays
            payloads = [
                (pack, ci, n, cj, cycles, warmup, drain, backend)
                for ci, cj in enumerate(chunk_jobs)
            ]
            with multiprocessing.get_context().Pool(procs) as pool:
                parts = pool.map(_sweep_chunk_shm, payloads)
    else:
        parts = [
            _sweep_chunk((n, cj, cycles, warmup, drain, backend))
            for cj in chunk_jobs
        ]
    return [res for part in parts for res in part]


def saturation_per_node_rate(
    n: int,
    cycles: int = 1500,
    threshold: float = 0.95,
    seed: int = 0,
    drain: Optional[int] = None,
) -> float:
    """Largest tested per-node rate whose accepted fraction stays within
    ``threshold`` of offered load (bisection over per-input rates).

    Both bracket ends are probed before bisecting.  The floor (per-input
    0.1): if even that saturates, the network has no feasible tested
    rate and the function returns 0.0 instead of misreporting the floor
    as a saturation point.  The ceiling (per-input 1.0): if the network
    stays unsaturated at full injection, the answer is the full rate
    ``1.0 / (n + 1)`` itself — bisecting would converge to ~0.986 of it
    and misreport an arbitrary bracket edge as a saturation point.
    """
    lo, hi = 0.1, 1.0

    def accepted(rate: float) -> float:
        return simulate_butterfly_queued(
            n, rate, cycles=cycles, seed=seed, drain=drain
        ).accepted_fraction

    if accepted(lo) < threshold:
        return 0.0
    if accepted(hi) >= threshold:
        # unsaturated at full per-input rate: the ceiling is the answer
        return hi / (n + 1)
    best = lo
    for _ in range(6):
        mid = (lo + hi) / 2
        if accepted(mid) >= threshold:
            best, lo = mid, mid
        else:
            hi = mid
    return best / (n + 1)
