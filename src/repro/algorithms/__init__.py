"""Ascend/FFT dataflow execution and routing simulation on the topologies."""

from .ascend import AscendTrace, run_on_butterfly, run_on_isn
from .benes_routing import BenesSettings, apply_settings, num_switch_stages, route_permutation
from .fft import dit_combine, fft_via_butterfly, fft_via_isn
from .queued_routing import (
    SimResult,
    StatsTrace,
    saturation_per_node_rate,
    simulate_butterfly_queued,
    simulate_butterfly_queued_legacy,
    sweep_rates,
)
from .routing import RoutingDemand, measure_offmodule_traffic, path_rows

__all__ = [
    "AscendTrace",
    "BenesSettings",
    "route_permutation",
    "apply_settings",
    "num_switch_stages",
    "run_on_butterfly",
    "run_on_isn",
    "dit_combine",
    "fft_via_butterfly",
    "fft_via_isn",
    "RoutingDemand",
    "measure_offmodule_traffic",
    "path_rows",
    "SimResult",
    "StatsTrace",
    "simulate_butterfly_queued",
    "simulate_butterfly_queued_legacy",
    "sweep_rates",
    "saturation_per_node_rate",
]
