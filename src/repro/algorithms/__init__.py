"""Ascend/FFT dataflow execution and routing simulation on the topologies."""

from .ascend import AscendTrace, run_on_butterfly, run_on_isn
from .benes_routing import (
    BenesSettings,
    BenesSettingsBatch,
    apply_settings,
    apply_settings_batch,
    apply_settings_legacy,
    num_switch_stages,
    route_permutation,
    route_permutation_legacy,
    route_permutations,
)
from .fft import dit_combine, fft_via_butterfly, fft_via_isn
from .queued_routing import (
    SimResult,
    StatsTrace,
    saturation_per_node_rate,
    simulate_butterfly_queued,
    simulate_butterfly_queued_legacy,
    sweep_rates,
)
from .routing import RoutingDemand, measure_offmodule_traffic, path_rows

__all__ = [
    "AscendTrace",
    "BenesSettings",
    "BenesSettingsBatch",
    "route_permutation",
    "route_permutations",
    "route_permutation_legacy",
    "apply_settings",
    "apply_settings_batch",
    "apply_settings_legacy",
    "num_switch_stages",
    "run_on_butterfly",
    "run_on_isn",
    "dit_combine",
    "fft_via_butterfly",
    "fft_via_isn",
    "RoutingDemand",
    "measure_offmodule_traffic",
    "path_rows",
    "SimResult",
    "StatsTrace",
    "simulate_butterfly_queued",
    "simulate_butterfly_queued_legacy",
    "sweep_rates",
    "saturation_per_node_rate",
]
