"""Uniform random routing on partitioned butterflies (Section 2.3's
lower-bound argument, made empirical).

A packet from input ``(x, 0)`` to output ``(y, n)`` follows the unique
forward path whose row at stage ``s`` takes its low ``s`` bits from the
destination and the rest from the source.  For a module partition, the
off-module traffic per module per step bounds the pins the module needs:
with uniform sources/destinations the demand is ``Theta(M / log R)`` for
an ``M``-node module — the paper's matching lower bound for Theorem 2.1.

Everything is vectorised over packets with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..topology.bits import level_swap_array
from ..topology.swap import SwapNetworkParams
from ..transform.swap_butterfly import SwapButterfly

__all__ = ["RoutingDemand", "path_rows", "measure_offmodule_traffic"]


def path_rows(n: int, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Rows visited per stage: shape ``(n + 1, num_packets)``.

    ``row_s = (src & ~mask_s) | (dst & mask_s)`` with ``mask_s = 2**s - 1``:
    destination bits are fixed one per stage boundary, in ascend order.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    rows = np.empty((n + 1, len(src)), dtype=np.int64)
    for s in range(n + 1):
        mask = (1 << s) - 1
        rows[s] = (src & ~mask) | (dst & mask)
    return rows


def _sigma_vec(params: SwapNetworkParams, level: int, x: np.ndarray) -> np.ndarray:
    """Vectorised level swap on an int64 array."""
    return level_swap_array(x, params.ks, level)


def _phi_vec(sb: SwapButterfly, s: int, x: np.ndarray) -> np.ndarray:
    """Vectorised automorphism map: physical rows of logical rows at stage s."""
    offs = sb.params.offsets
    u = x
    for level in range(2, sb.params.l + 1):
        if s > offs[level - 1]:
            u = _sigma_vec(sb.params, level, u)
    return u


@dataclass
class RoutingDemand:
    """Measured off-module traffic for one partition."""

    num_packets: int
    rows_per_module: int
    num_modules: int  # true module count R / 2**k1, crossings or not
    crossings_per_module: Dict[int, int]  # off-module traversals touching m
    total_crossings: int

    @property
    def max_per_module(self) -> int:
        return max(self.crossings_per_module.values(), default=0)

    def demand_per_module_per_packet(self) -> float:
        """Average boundary traversals charged to a module, per packet.

        Averages over *all* modules of the partition — a module that saw no
        crossing still counts in the denominator.  (Dividing by only the
        modules present in ``crossings_per_module`` overstated the demand
        whenever some module was never touched.)
        """
        if self.num_modules == 0 or self.num_packets == 0:
            return 0.0
        return self.total_crossings * 2 / (self.num_modules * self.num_packets)


def measure_offmodule_traffic(
    ks,
    num_packets: int = 10000,
    rng: Optional[np.random.Generator] = None,
) -> RoutingDemand:
    """Route random packets through the swap-butterfly and count module
    boundary traversals under the row partition (``2**k1`` rows/module)."""
    params = SwapNetworkParams(ks)
    sb = SwapButterfly(params)
    n, R = params.n, params.num_rows
    k1 = params.ks[0]
    rng = rng or np.random.default_rng(0)
    src = rng.integers(0, R, size=num_packets)
    dst = rng.integers(0, R, size=num_packets)
    logical = path_rows(n, src, dst)
    # physical rows (the partition is defined on swap-butterfly rows)
    phys = np.empty_like(logical)
    for s in range(n + 1):
        phys[s] = _phi_vec(sb, s, logical[s])
    modules = phys >> k1
    num_modules = R >> k1
    # one bincount over all crossing endpoints replaces the per-crossing
    # dict loop; identical counts for every seed, any module order
    a, b = modules[:-1], modules[1:]
    cross = a != b
    counts = np.bincount(
        np.concatenate([a[cross], b[cross]]), minlength=num_modules
    )
    per_module: Dict[int, int] = {
        m: int(c) for m, c in enumerate(counts) if c
    }
    total = int(np.count_nonzero(cross))
    return RoutingDemand(
        num_packets=num_packets,
        rows_per_module=1 << k1,
        num_modules=num_modules,
        crossings_per_module=per_module,
        total_crossings=total,
    )
