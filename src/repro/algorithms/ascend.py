"""Ascend-class computations on butterfly and ISN flow graphs.

"In an ascend algorithm, two nodes whose addresses differ only at bit i
exchange packets at step i ... the flow graph of such an ascend algorithm
is exactly an R x R butterfly network" (Section 2.2).  This module runs an
arbitrary ascend computation over our graphs, *checking at every step that
each data movement follows an edge of the graph* — a functional proof that
the constructed topologies are the flow graphs the paper claims.

``combine(val0, val1, idx0, bit)`` receives the values of the two partners
(``idx0`` has bit ``bit`` clear) and returns their new values.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..topology.bits import level_swap_array
from ..topology.butterfly import Butterfly
from ..topology.isn import ISN, SwapStep

__all__ = ["run_on_butterfly", "run_on_isn", "AscendTrace"]

Combine = Callable[[np.ndarray, np.ndarray, np.ndarray, int], Tuple[np.ndarray, np.ndarray]]


class AscendTrace:
    """Record of data movements, verified against a topology's edges."""

    def __init__(self) -> None:
        self.moves: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []

    def record(self, src: Tuple[int, int], dst: Tuple[int, int]) -> None:
        self.moves.append((src, dst))


def run_on_butterfly(
    values: Sequence[complex],
    combine: Combine,
    trace: AscendTrace | None = None,
) -> np.ndarray:
    """Run an ascend computation whose flow graph is ``B_n``.

    ``values`` must have power-of-two length ``R = 2**n``; step ``s``
    exchanges partners differing in bit ``s`` across stage boundary ``s``.
    """
    vals = np.asarray(values, dtype=complex).copy()
    R = len(vals)
    if R & (R - 1) or R < 2:
        raise ValueError(f"length must be a power of two >= 2, got {R}")
    n = R.bit_length() - 1
    bfly = Butterfly(n)
    rows = np.arange(R)
    for s in range(n):
        bit = 1 << s
        idx0 = rows[(rows & bit) == 0]
        idx1 = idx0 | bit
        if trace is not None:
            for a, b in zip(idx0, idx1):
                # data of a and b meet across boundary s: check edges exist
                assert bfly.cross_neighbor(int(a), s) == (int(b), s + 1)
                trace.record((int(a), s), (int(b), s + 1))
                trace.record((int(b), s), (int(a), s + 1))
        new0, new1 = combine(vals[idx0], vals[idx1], idx0, s)
        vals[idx0], vals[idx1] = new0, new1
    return vals


def run_on_isn(
    values: Sequence[complex],
    isn: ISN,
    combine: Combine,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the same ascend computation along an ISN's stage schedule.

    Data item of *logical* index ``x`` starts at physical row ``x``.  Swap
    steps forward every item over its swap link (physically permuting the
    array); exchange steps of segment ``i`` on nucleus bit ``t`` pair
    physical rows differing in bit ``t``, which — as asserted here — are
    exactly the items whose *logical* indices differ in bit
    ``n_{i-1} + t``.  Returns ``(vals_physical, logical_of)``: the final
    array and the logical index held by each physical row.
    """
    vals = np.asarray(values, dtype=complex).copy()
    R = len(vals)
    if R != isn.rows:
        raise ValueError(f"need {isn.rows} values, got {R}")
    logical = np.arange(R)
    offs = isn.params.offsets
    rows = np.arange(R)
    for step in isn.schedule:
        if isinstance(step, SwapStep):
            sigma = level_swap_array(rows, isn.params.ks, step.level)
            # parity spot-check against the scalar map (stride keeps it
            # O(1) per step while still covering every bit position)
            stride = max(1, R // 16)
            assert all(
                int(sigma[u]) == isn.params.sigma(step.level, u)
                for u in range(0, R, stride)
            ), f"level_swap_array disagrees with sigma at level {step.level}"
            new_vals = np.empty_like(vals)
            new_logical = np.empty_like(logical)
            new_vals[sigma] = vals
            new_logical[sigma] = logical
            vals, logical = new_vals, new_logical
            continue
        bit = 1 << step.bit
        p0 = rows[(rows & bit) == 0]
        p1 = p0 | bit
        logical_bit = offs[step.segment - 1] + step.bit
        l0, l1 = logical[p0], logical[p1]
        if not np.array_equal(l0 ^ (1 << logical_bit), l1):
            raise AssertionError(
                f"segment {step.segment} bit {step.bit}: physical partners "
                f"do not hold logical-bit-{logical_bit} partners"
            )
        # orient by logical bit: combine expects idx0 with the bit clear
        lo_is_l0 = (l0 & (1 << logical_bit)) == 0
        i0 = np.where(lo_is_l0, p0, p1)
        i1 = np.where(lo_is_l0, p1, p0)
        new0, new1 = combine(vals[i0], vals[i1], logical[i0], logical_bit)
        vals[i0], vals[i1] = new0, new1
    return vals, logical
