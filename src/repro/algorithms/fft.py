"""FFT executed over butterfly and ISN flow graphs (Section 2.2's argument).

The radix-2 decimation-in-time FFT *is* an ascend algorithm: loading the
input in bit-reversed order, step ``b`` combines partners differing in
index bit ``b`` with twiddle ``exp(-2 pi i j / 2**(b+1))``.  Running it
through :mod:`repro.algorithms.ascend` therefore proves functionally that

* our ``B_n`` is the FFT flow graph (every data exchange is an edge), and
* our ISNs compute the same FFT with extra forwarding over swap links —
  the paper's core intuition for why bypassing swap stages yields a
  butterfly automorphism.

Results are compared against ``numpy.fft.fft`` in the tests and benches.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..topology.bits import bit_reverse
from ..topology.isn import ISN
from .ascend import AscendTrace, run_on_butterfly, run_on_isn

__all__ = ["dit_combine", "fft_via_butterfly", "fft_via_isn"]


def dit_combine(
    v0: np.ndarray, v1: np.ndarray, idx0: np.ndarray, bit: int
) -> Tuple[np.ndarray, np.ndarray]:
    """One decimation-in-time butterfly: partners differing in ``bit``.

    ``idx0`` are the indices with the bit clear; the twiddle exponent is
    the low ``bit`` bits of the index.
    """
    m = 1 << (bit + 1)
    j = idx0 & ((1 << bit) - 1)
    tw = np.exp(-2j * np.pi * j / m)
    t = tw * v1
    return v0 + t, v0 - t


def _bit_reversed(x: np.ndarray) -> np.ndarray:
    R = len(x)
    n = R.bit_length() - 1
    perm = np.array([bit_reverse(k, n) for k in range(R)])
    return x[perm]


def fft_via_butterfly(
    x: Sequence[complex], trace: AscendTrace | None = None
) -> np.ndarray:
    """DFT of ``x`` computed by the ascend algorithm on ``B_n``."""
    arr = np.asarray(x, dtype=complex)
    return run_on_butterfly(_bit_reversed(arr), dit_combine, trace=trace)


def fft_via_isn(x: Sequence[complex], isn: ISN) -> np.ndarray:
    """DFT of ``x`` computed on the ISN (with swap-link forwarding).

    The ISN's physical output order is the composite permutation of all
    swap levels; we un-permute by the tracked logical indices before
    returning, so the result is directly comparable to ``numpy.fft.fft``.
    """
    arr = np.asarray(x, dtype=complex)
    if len(arr) != isn.rows:
        raise ValueError(f"need {isn.rows} samples, got {len(arr)}")
    vals, logical = run_on_isn(_bit_reversed(arr), isn, dit_combine)
    out = np.empty_like(vals)
    out[logical] = vals
    return out
