"""Zero-copy array handoff for multiprocessing workers.

``share_arrays`` packs a set of named NumPy arrays into one
``multiprocessing.shared_memory`` block and returns a tiny picklable
:class:`ShmPack` descriptor (block name + per-array offset/shape/dtype).
Workers call :func:`attach` (or the per-process cached
:func:`attach_cached`) to map the block and get back views — no matter
how large the arrays are, the per-job pickle payload is just the
descriptor, a few hundred bytes.

Typical use::

    with share_arrays(perms=perms) as pack:
        with Pool(w) as pool:
            pool.map(_worker, [(pack, lo, hi) for lo, hi in spans])
        crossed = read_array(pack, "crossed")   # if workers wrote results

The context manager closes *and unlinks* the block on exit; workers
attach read-write, so a pool can also write results back into a shared
output array (see ``route_permutations``).  :func:`read_array` copies a
shared array out (attach → copy → detach), so no view outlives the
block.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterator, Tuple

import numpy as np

__all__ = [
    "ShmArraySpec",
    "ShmPack",
    "share_arrays",
    "attach",
    "attach_cached",
    "read_array",
]

_ALIGN = 64  # cache-line align each array within the block


@dataclass(frozen=True)
class ShmArraySpec:
    """Placement of one array inside a shared block."""

    key: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class ShmPack:
    """Picklable descriptor of a shared block; size is O(#arrays)."""

    block: str
    specs: Tuple[ShmArraySpec, ...]

    @property
    def keys(self):
        return tuple(s.key for s in self.specs)


def _layout(arrays: Dict[str, np.ndarray]):
    offset = 0
    specs = []
    for key, a in arrays.items():
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        specs.append(ShmArraySpec(key, offset, tuple(a.shape), a.dtype.str))
        offset += a.nbytes
    return tuple(specs), max(offset, 1)


def _views(pack: ShmPack, buf) -> Dict[str, np.ndarray]:
    out = {}
    for s in pack.specs:
        n = int(np.prod(s.shape, dtype=np.int64))
        a = np.frombuffer(buf, dtype=np.dtype(s.dtype), count=n, offset=s.offset)
        out[s.key] = a.reshape(s.shape)
    return out


@contextmanager
def share_arrays(**arrays: np.ndarray) -> Iterator[ShmPack]:
    """Copy ``arrays`` into one shared block; yield its picklable pack.

    The single copy-in here replaces a per-job pickle round trip in the
    workers.  Only the descriptor is yielded — no view outlives the
    block, so the exit path can always close and unlink it.  Read
    results back with :func:`read_array` *inside* the ``with`` block.
    """
    specs, size = _layout(arrays)
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        pack = ShmPack(shm.name, specs)
        views = _views(pack, shm.buf)
        for key, a in arrays.items():
            views[key][...] = a
        del views
        yield pack
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def read_array(pack: ShmPack, key: str) -> np.ndarray:
    """Copy one array out of a still-linked shared block."""
    shm, views = attach(pack)
    try:
        return views[key].copy()
    finally:
        del views
        shm.close()


def attach(pack: ShmPack):
    """Map an existing block; returns (shm, {key: view}).

    The caller owns the mapping: keep ``shm`` referenced while the
    views are in use and ``shm.close()`` when done.  Attaches untracked
    where Python supports it (3.13+); on older forking platforms the
    duplicate registration is an idempotent no-op and the creating
    process's unlink clears it.
    """
    try:
        shm = shared_memory.SharedMemory(name=pack.block, create=False, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        shm = shared_memory.SharedMemory(name=pack.block, create=False)
    return shm, _views(pack, shm.buf)


# Per-process cache so pool workers map each block once, not per job.
_ATTACHED: Dict[str, tuple] = {}


def attach_cached(pack: ShmPack) -> Dict[str, np.ndarray]:
    """Like :func:`attach` but cached per process by block name."""
    hit = _ATTACHED.get(pack.block)
    if hit is None:
        hit = attach(pack)
        _ATTACHED[pack.block] = hit
    return hit[1]
