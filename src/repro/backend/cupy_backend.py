"""CuPy backend stub: reports GPU unavailability cleanly.

Device-resident kernels are staged work — today this module only
detects whether CuPy is importable and raises
:class:`~repro.backend.base.BackendUnavailable` with a message that
says *why* the backend cannot be used, so ``REPRO_BACKEND=cupy``
fails fast with a diagnosis instead of an ImportError deep in an
engine.
"""

from __future__ import annotations

from .base import ArrayBackend, BackendUnavailable

try:
    import cupy
except Exception:  # ImportError, or a broken CUDA install raising at import
    cupy = None


class CupyBackend(ArrayBackend):
    """GPU backend placeholder; always unavailable for now."""

    name = "cupy"

    def __init__(self):
        if cupy is None:
            raise BackendUnavailable(
                "the 'cupy' backend requires the cupy package (and a CUDA "
                "GPU), which is not installed"
            )
        raise BackendUnavailable(  # pragma: no cover - needs cupy installed
            "the 'cupy' backend is a stub: device kernels are not wired "
            "up yet; use REPRO_BACKEND=numpy or numba"
        )
