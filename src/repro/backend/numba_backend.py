"""Numba-jitted backend: ``_kernels`` compiled with ``numba.njit``.

The kernel bodies are exactly the ones the pure ``python`` backend runs
interpreted (and that the conformance suite pins against NumPy), so
compiling them changes speed, not semantics.  When numba is not
installed, constructing the backend raises
:class:`~repro.backend.base.BackendUnavailable` with a clear message.
"""

from __future__ import annotations

from .base import BackendUnavailable, KernelBackend

try:
    import numba
except ImportError:  # pragma: no cover - exercised only without numba
    numba = None


class NumbaBackend(KernelBackend):
    """JIT-compiled loop kernels (requires the optional numba package)."""

    name = "numba"

    def __init__(self):
        if numba is None:
            raise BackendUnavailable(
                "the 'numba' backend requires the numba package, which is "
                "not installed; use REPRO_BACKEND=numpy (default) instead"
            )
        super().__init__(jit=numba.njit(cache=False, nogil=True))
