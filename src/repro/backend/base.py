"""Array-ops backend facade: op contracts and the kernel-driven base.

The facade is deliberately tiny — seven operations cover the hot inner
loops of all five engines (graph build, queued-routing ring buffer,
WireTable build/validate, packaging bincounts, batched Benes
cycle-chasing):

``gather(a, idx)``
    ``a[idx]`` for 1-D ``a``; result has ``idx``'s shape and ``a``'s
    dtype.
``scatter(a, idx, vals)``
    In-place ``a[idx] = vals`` for 1-D ``a``; duplicate indices resolve
    last-write-wins.  Returns ``a``.
``scatter_add(a, idx, vals)``
    In-place unbuffered ``a[idx] += vals`` (``np.add.at`` semantics:
    duplicates accumulate).  Returns ``a``.
``bincount(x, weights=None, minlength=0)``
    ``np.bincount`` semantics for flat non-negative integer ``x``.
``cummax(a)``
    Running maximum of 1-D ``a`` (``np.maximum.accumulate``), new array.
``take_wrap(a, idx, out=None)``
    ``a.take(idx, mode="wrap", out=out)`` over ``a`` flattened —
    indices taken modulo ``a.size``.
``ring_advance(buf, counters, qids, dbits, mask, vals=None)``
    One step of the packed ring-buffer protocol shared by the queued
    simulator: queue ``q`` owns slots ``buf[q << dbits:(q+1) << dbits]``
    and ``counters[q] & mask`` is its cursor.  With ``vals is None``
    this *pops* (returns the read values), otherwise it *pushes*
    ``vals``; either way the touched cursors advance by one.  ``qids``
    must not contain duplicates.

Every implementation is NumPy-array-in / NumPy-array-out so engines are
backend-agnostic: results must match the reference ``numpy`` backend in
dtype, shape, and value (see ``tests/test_backend_conformance.py``).
"""

from __future__ import annotations

import numpy as np


class BackendUnavailable(RuntimeError):
    """Raised when a backend's runtime dependency is missing."""


class ArrayBackend:
    """Abstract op set; concrete backends override every method."""

    name = "abstract"

    def gather(self, a, idx):
        raise NotImplementedError

    def scatter(self, a, idx, vals):
        raise NotImplementedError

    def scatter_add(self, a, idx, vals):
        raise NotImplementedError

    def bincount(self, x, weights=None, minlength=0):
        raise NotImplementedError

    def cummax(self, a):
        raise NotImplementedError

    def take_wrap(self, a, idx, out=None):
        raise NotImplementedError

    def ring_advance(self, buf, counters, qids, dbits, mask, vals=None):
        raise NotImplementedError

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class NumpyBackend(ArrayBackend):
    """Reference implementation: thin bindings to NumPy itself."""

    name = "numpy"

    def gather(self, a, idx):
        return a[idx]

    def scatter(self, a, idx, vals):
        a[idx] = vals
        return a

    def scatter_add(self, a, idx, vals):
        np.add.at(a, idx, vals)
        return a

    def bincount(self, x, weights=None, minlength=0):
        return np.bincount(x, weights=weights, minlength=minlength)

    def cummax(self, a):
        return np.maximum.accumulate(a)

    def take_wrap(self, a, idx, out=None):
        return a.take(idx, mode="wrap", out=out)

    def ring_advance(self, buf, counters, qids, dbits, mask, vals=None):
        # slot math must run in the qid dtype: counters may be a narrow
        # type (the sim uses int16 cursors) while qids span the buffer
        c = counters[qids]
        slots = (qids << dbits) | (c & mask)
        if vals is None:
            popped = buf[slots]
            counters[qids] = c + 1
            return popped
        buf[slots] = vals
        counters[qids] = c + 1
        return None


class KernelBackend(ArrayBackend):
    """Backend assembled from the loop kernels in ``_kernels``.

    ``jit`` transforms each kernel before use: identity for the pure
    ``python`` backend, ``numba.njit`` for the jitted one.  All shape,
    dtype, and scalar-broadcast handling lives here, so it is covered
    by the pure-Python conformance runs and shared verbatim by numba.
    """

    name = "python"

    def __init__(self, jit=None):
        from . import _kernels as k

        wrap = jit if jit is not None else (lambda f: f)
        self._gather = wrap(k.gather_loop)
        self._scatter = wrap(k.scatter_loop)
        self._scatter_scalar = wrap(k.scatter_scalar_loop)
        self._scatter_add = wrap(k.scatter_add_loop)
        self._scatter_add_scalar = wrap(k.scatter_add_scalar_loop)
        self._bincount = wrap(k.bincount_loop)
        self._bincount_weighted = wrap(k.bincount_weighted_loop)
        self._cummax = wrap(k.cummax_loop)
        self._take_wrap = wrap(k.take_wrap_loop)
        self._ring_pop = wrap(k.ring_pop_loop)
        self._ring_push = wrap(k.ring_push_loop)

    def gather(self, a, idx):
        idx = np.asarray(idx)
        flat = np.ascontiguousarray(idx).ravel()
        out = np.empty(flat.shape[0], dtype=a.dtype)
        self._gather(a, flat, out)
        return out.reshape(idx.shape)

    def scatter(self, a, idx, vals):
        idx = np.ascontiguousarray(idx).ravel()
        if np.ndim(vals) == 0:
            self._scatter_scalar(a, idx, a.dtype.type(vals))
        else:
            vals = np.ascontiguousarray(vals).ravel().astype(a.dtype, copy=False)
            self._scatter(a, idx, vals)
        return a

    def scatter_add(self, a, idx, vals):
        idx = np.ascontiguousarray(idx).ravel()
        if np.ndim(vals) == 0:
            self._scatter_add_scalar(a, idx, a.dtype.type(vals))
        else:
            vals = np.ascontiguousarray(vals).ravel().astype(a.dtype, copy=False)
            self._scatter_add(a, idx, vals)
        return a

    def bincount(self, x, weights=None, minlength=0):
        x = np.ascontiguousarray(x).ravel()
        length = int(minlength)
        if x.shape[0]:
            if int(x.min()) < 0:
                raise ValueError("bincount input must be non-negative")
            length = max(length, int(x.max()) + 1)
        if weights is None:
            out = np.zeros(length, dtype=np.intp)
            self._bincount(x, out)
        else:
            weights = np.ascontiguousarray(weights).ravel().astype(np.float64)
            out = np.zeros(length, dtype=np.float64)
            self._bincount_weighted(x, weights, out)
        return out

    def cummax(self, a):
        a = np.ascontiguousarray(a)
        out = np.empty_like(a)
        self._cummax(a, out)
        return out

    def take_wrap(self, a, idx, out=None):
        idx = np.asarray(idx)
        flat_idx = np.ascontiguousarray(idx).ravel()
        if out is None:
            out = np.empty(idx.shape, dtype=a.dtype)
        flat_out = out.reshape(-1)
        self._take_wrap(np.ascontiguousarray(a).ravel(), flat_idx, flat_out)
        return out

    def ring_advance(self, buf, counters, qids, dbits, mask, vals=None):
        qids = np.ascontiguousarray(qids).ravel()
        dbits = int(dbits)
        mask = int(mask)
        if vals is None:
            out = np.empty(qids.shape[0], dtype=buf.dtype)
            self._ring_pop(buf, counters, qids, dbits, mask, out)
            return out
        vals = np.ascontiguousarray(vals).ravel().astype(buf.dtype, copy=False)
        self._ring_push(buf, counters, qids, dbits, mask, vals)
        return None
