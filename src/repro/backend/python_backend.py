"""Pure-Python loop backend.

An independent implementation of every facade op built from the plain
loop kernels in ``_kernels`` — no vectorized NumPy in the inner loops.
It exists to give the conformance grid a genuinely different execution
path even on machines without numba/CuPy, and to keep the kernel bodies
(shared verbatim with the numba backend) under test coverage.
"""

from __future__ import annotations

from .base import KernelBackend


class PythonBackend(KernelBackend):
    """Interpreted loop kernels; slow, for conformance testing."""

    name = "python"

    def __init__(self):
        super().__init__(jit=None)
