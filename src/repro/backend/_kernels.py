"""Loop kernels behind the non-NumPy array backends.

Each kernel is written in the nopython subset of Python (plain loops,
scalar indexing, no fancy NumPy) so the same function object can run
either as-is (the ``python`` backend) or compiled with ``numba.njit``
(the ``numba`` backend).  Keeping one body for both means the pure
Python conformance tests exercise exactly the code numba compiles.

All kernels take flat (1-D) arrays and preallocated outputs; shape and
dtype handling lives in :class:`repro.backend.base.KernelBackend`.
"""

from __future__ import annotations


def gather_loop(a, idx, out):
    """out[i] = a[idx[i]] for flat ``a``/``idx``/``out``."""
    for i in range(idx.shape[0]):
        out[i] = a[idx[i]]


def scatter_loop(a, idx, vals):
    """a[idx[i]] = vals[i]; duplicate indices resolve last-write-wins."""
    for i in range(idx.shape[0]):
        a[idx[i]] = vals[i]


def scatter_scalar_loop(a, idx, val):
    """a[idx[i]] = val for a scalar fill value."""
    for i in range(idx.shape[0]):
        a[idx[i]] = val


def scatter_add_loop(a, idx, vals):
    """a[idx[i]] += vals[i]; duplicate indices accumulate."""
    for i in range(idx.shape[0]):
        a[idx[i]] += vals[i]


def scatter_add_scalar_loop(a, idx, val):
    """a[idx[i]] += val for a scalar increment."""
    for i in range(idx.shape[0]):
        a[idx[i]] += val


def bincount_loop(x, out):
    """out[x[i]] += 1 over flat non-negative ``x``."""
    for i in range(x.shape[0]):
        out[x[i]] += 1


def bincount_weighted_loop(x, weights, out):
    """out[x[i]] += weights[i] over flat non-negative ``x``."""
    for i in range(x.shape[0]):
        out[x[i]] += weights[i]


def cummax_loop(a, out):
    """Running maximum of flat ``a`` into ``out`` (same length)."""
    n = a.shape[0]
    if n == 0:
        return
    m = a[0]
    out[0] = m
    for i in range(1, n):
        v = a[i]
        if v > m:
            m = v
        out[i] = m


def take_wrap_loop(a, idx, out):
    """out[i] = a[idx[i] mod len(a)] — NumPy's ``take(mode="wrap")``."""
    n = a.shape[0]
    for i in range(idx.shape[0]):
        out[i] = a[idx[i] % n]


def ring_pop_loop(buf, counters, qids, dbits, mask, out):
    """Pop one slot per (unique) queue id from a packed ring buffer.

    Queue ``q`` owns the slice ``buf[q << dbits : (q + 1) << dbits]``;
    ``counters[q] & mask`` is its cursor.  Reads the slot, then
    advances the cursor.
    """
    for i in range(qids.shape[0]):
        q = qids[i]
        c = counters[q]
        out[i] = buf[(q << dbits) | (c & mask)]
        counters[q] = c + 1


def ring_push_loop(buf, counters, qids, dbits, mask, vals):
    """Push one value per (unique) queue id into a packed ring buffer."""
    for i in range(qids.shape[0]):
        q = qids[i]
        c = counters[q]
        buf[(q << dbits) | (c & mask)] = vals[i]
        counters[q] = c + 1
