"""Pluggable array-ops backends for the five vectorized engines.

One small facade (:class:`~repro.backend.base.ArrayBackend`: ``gather``,
``scatter``, ``scatter_add``, ``bincount``, ``cummax``, ``take_wrap``,
``ring_advance``) sits behind the hot kernels of graph build, the
queued-routing ring buffer, WireTable build/validate, packaging
bincounts, and batched Benes cycle-chasing.  Selection, in precedence
order:

1. an explicit ``backend=`` kwarg on the engine entry point (a name or
   an :class:`ArrayBackend` instance),
2. the ``REPRO_BACKEND`` environment variable,
3. the default, ``"numpy"``.

Registered backends: ``numpy`` (reference), ``python`` (interpreted
loop kernels, always available, used by the conformance grid), ``numba``
(the same kernels jit-compiled; optional), and ``cupy`` (stub that
reports unavailability).  Unavailable backends raise
:class:`BackendUnavailable` at selection time with a clear message.

Shared-memory (zero-copy) array handoff for multiprocessing workers
lives in :mod:`repro.backend.shm`.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Type, Union

from .base import ArrayBackend, BackendUnavailable, NumpyBackend
from .cupy_backend import CupyBackend
from .numba_backend import NumbaBackend
from .python_backend import PythonBackend
from . import shm

__all__ = [
    "ArrayBackend",
    "BackendUnavailable",
    "NumpyBackend",
    "PythonBackend",
    "NumbaBackend",
    "CupyBackend",
    "get_backend",
    "available_backends",
    "shm",
]

BACKENDS: Dict[str, Type[ArrayBackend]] = {
    "numpy": NumpyBackend,
    "python": PythonBackend,
    "numba": NumbaBackend,
    "cupy": CupyBackend,
}

_CACHE: Dict[str, ArrayBackend] = {}


def get_backend(backend: Union[str, ArrayBackend, None] = None) -> ArrayBackend:
    """Resolve a backend: kwarg > ``REPRO_BACKEND`` env var > numpy.

    Accepts a registered name, an :class:`ArrayBackend` instance (passed
    through), or ``None`` to consult the environment.  Raises
    :class:`BackendUnavailable` if the selected backend's dependency is
    missing, ``ValueError`` for an unknown name.
    """
    if isinstance(backend, ArrayBackend):
        return backend
    name = backend
    if name is None:
        name = os.environ.get("REPRO_BACKEND", "").strip() or "numpy"
    key = str(name).lower()
    if key not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; registered: {sorted(BACKENDS)}"
        )
    hit = _CACHE.get(key)
    if hit is None:
        hit = _CACHE[key] = BACKENDS[key]()
    return hit


def available_backends() -> List[str]:
    """Names of registered backends that construct successfully here."""
    out = []
    for key in BACKENDS:
        try:
            get_backend(key)
        except BackendUnavailable:
            continue
        out.append(key)
    return out
