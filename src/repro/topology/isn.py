"""Indirect swap networks (ISNs) — the paper's Section 2.1 / Appendix A.2.

An ISN is the flow graph of the recursive FFT algorithm on a swap network
``SN(l, Q_{k1})``.  Writing the algorithm bottom-up gives a *stage
schedule*: a sequence of steps, each of which is either

* an **exchange step** on nucleus bit ``t`` (the flow graph contributes,
  between consecutive stages, a *straight* link ``(u, j)-(u, j+1)`` and a
  *cross* link ``(u, j)-(u ^ 2**t, j+1)`` for every row ``u``), or
* a **level-i swap step** (every row ``u`` forwards over its level-``i``
  swap link: ``(u, j)-(sigma_i(u), j+1)``; note that the unordered row pair
  ``{u, sigma_i(u)}`` therefore carries *two* parallel stage links, one
  leaving each row — the "duplication" the paper exploits).

For parameters ``(k_1, ..., k_l)`` the schedule is::

    exchange bits 0 .. k_1-1
    for i = 2 .. l:  swap level i;  exchange bits 0 .. k_i-1

giving ``m = n_l + (l - 1)`` steps and ``m + 1`` node stages of
``R = 2**n_l`` rows.  Figure 1 of the paper is ``ISN`` with
``k = (1, 1)``: 4 stages of 4 rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, Union

import numpy as np

from .bits import flip_bit, level_swap_array
from .graph import Graph, edge_array
from .swap import SwapNetworkParams

__all__ = ["ExchangeStep", "SwapStep", "ISN", "isn_graph"]

IsnNode = Tuple[int, int]  # (row, stage)


@dataclass(frozen=True)
class ExchangeStep:
    """A butterfly exchange on nucleus bit ``bit`` within segment ``segment``."""

    bit: int
    segment: int  # 1-based level whose FFT pass this exchange belongs to

    kind = "exchange"


@dataclass(frozen=True)
class SwapStep:
    """A forwarding step over level-``level`` swap links."""

    level: int  # 2-based

    kind = "swap"


Step = Union[ExchangeStep, SwapStep]


class ISN:
    """Indirect swap network ``ISN(l; k_1..k_l)``.

    Node addressing follows the paper: ``(x, y)`` with row
    ``x in [0, 2**n_l)`` and stage ``y in [0, m]``.
    """

    def __init__(self, params: SwapNetworkParams) -> None:
        self.params = params
        self.schedule: List[Step] = self._build_schedule()

    @classmethod
    def from_ks(cls, ks: Sequence[int]) -> "ISN":
        return cls(SwapNetworkParams(ks))

    def _build_schedule(self) -> List[Step]:
        steps: List[Step] = []
        ks = self.params.ks
        for t in range(ks[0]):
            steps.append(ExchangeStep(bit=t, segment=1))
        for level in range(2, self.params.l + 1):
            steps.append(SwapStep(level=level))
            for t in range(ks[level - 1]):
                steps.append(ExchangeStep(bit=t, segment=level))
        return steps

    # -- sizes -----------------------------------------------------------
    @property
    def rows(self) -> int:
        return self.params.num_rows

    @property
    def num_steps(self) -> int:
        """``m = n_l + (l - 1)``."""
        return len(self.schedule)

    @property
    def stages(self) -> int:
        """Number of node stages, ``m + 1``."""
        return self.num_steps + 1

    @property
    def num_nodes(self) -> int:
        return self.stages * self.rows

    @property
    def num_edges(self) -> int:
        total = 0
        for step in self.schedule:
            if step.kind == "exchange":
                total += 2 * self.rows  # straight + cross per row
            else:
                total += self.rows  # one swap link leaving every row
        return total

    # -- link generators ---------------------------------------------------
    def step_links(self, j: int) -> Iterator[Tuple[IsnNode, IsnNode, str]]:
        """Links between node stages ``j`` and ``j + 1`` with their kind
        (``'straight' | 'cross' | 'swap'``)."""
        if not 0 <= j < self.num_steps:
            raise ValueError(f"step index must be in [0, {self.num_steps}), got {j}")
        step = self.schedule[j]
        if isinstance(step, ExchangeStep):
            for u in range(self.rows):
                yield ((u, j), (u, j + 1), "straight")
                yield ((u, j), (flip_bit(u, step.bit), j + 1), "cross")
        else:
            for u in range(self.rows):
                yield ((u, j), (self.params.sigma(step.level, u), j + 1), "swap")

    def links(self) -> Iterator[Tuple[IsnNode, IsnNode, str]]:
        for j in range(self.num_steps):
            yield from self.step_links(j)

    def swap_step_indices(self) -> List[int]:
        """Step indices ``j`` whose boundary carries swap links."""
        return [j for j, s in enumerate(self.schedule) if s.kind == "swap"]

    def swap_links_per_row(self) -> int:
        """Swap-link *endpoints* per row in the ISN: each swap step places
        one link leaving every row at stage ``j`` and one arriving at stage
        ``j + 1``, i.e. 2 per swap step = ``2(l - 1)`` per row.  (After the
        butterfly transformation each is doubled, giving the paper's
        ``4(l-1)`` swap links per row.)"""
        return 2 * (self.params.l - 1)

    def boundary_link_lists(self) -> List[List[Tuple[int, int]]]:
        """Per-boundary ``(u, v)`` row pairs, for the stage-column layout
        engine (Section 2.1 notes ISNs themselves admit layouts based on
        collinear complete-graph wiring; the stage-column form is the
        directly buildable one — swap boundaries become permutation
        boundaries)."""
        out: List[List[Tuple[int, int]]] = []
        for j in range(self.num_steps):
            out.append(
                [(u, v) for (u, _s), (v, _s1), _k in self.step_links(j)]
            )
        return out

    # -- materialisation ---------------------------------------------------
    def edge_array(self) -> np.ndarray:
        """All links as one ``(num_edges, 2, 2)`` int64 array, one
        vectorized chunk per schedule step."""
        rows = np.arange(self.rows, dtype=np.int64)
        chunks = []
        for j, step in enumerate(self.schedule):
            if isinstance(step, ExchangeStep):
                chunks.append(edge_array((rows, j), (rows, j + 1)))
                chunks.append(
                    edge_array((rows, j), (rows ^ (1 << step.bit), j + 1))
                )
            else:
                sig = level_swap_array(rows, self.params.ks, step.level)
                chunks.append(edge_array((rows, j), (sig, j + 1)))
        return np.concatenate(chunks)

    def graph(self) -> Graph:
        # Every (row, stage) node touches some step link (k_1 >= 1 gives at
        # least one step, and each step covers all rows at both stages), so
        # the bulk insert alone yields the full node set.
        g = Graph(name=f"ISN{self.params.ks}")
        g.add_edges_from(self.edge_array())
        return g

    def node_link_kinds(self) -> dict:
        """Map node -> sorted tuple of incident link kinds.  Used to verify
        the paper's structural remark: with ``k_1 >= 3`` the majority of
        nodes have two straight and two cross links, the remainder one
        straight, one cross and one swap link (first/last stages aside)."""
        kinds: dict = {}
        for u, v, kind in self.links():
            kinds.setdefault(u, []).append(kind)
            kinds.setdefault(v, []).append(kind)
        return {node: tuple(sorted(ks)) for node, ks in kinds.items()}


def isn_graph(ks: Sequence[int]) -> Graph:
    """Convenience: the :class:`Graph` of ``ISN(l; ks)``."""
    return ISN.from_ks(ks).graph()
