"""Complete graphs and complete multigraphs.

The collinear layout of ``K_N`` (Appendix B) is the wiring primitive of
every butterfly layout in the paper; the inter-block structure of the
recursive grid layout is a complete *multigraph* (``K_N`` with every edge
replicated, e.g. quadruple links in the board example of Section 5.2).
"""

from __future__ import annotations

from .graph import Graph

__all__ = ["complete_graph", "complete_multigraph", "num_links"]


def complete_graph(n: int) -> Graph:
    """``K_n`` on nodes ``0 .. n-1``."""
    return complete_multigraph(n, 1)


def complete_multigraph(n: int, multiplicity: int) -> Graph:
    """``K_n`` with every edge carrying ``multiplicity`` parallel links."""
    if n < 1:
        raise ValueError(f"K_n needs n >= 1, got {n}")
    if multiplicity < 1:
        raise ValueError(f"multiplicity must be >= 1, got {multiplicity}")
    g = Graph(name=f"K_{n}" + (f"x{multiplicity}" if multiplicity > 1 else ""))
    g.add_nodes(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v, multiplicity)
    return g


def num_links(n: int, multiplicity: int = 1) -> int:
    """Number of links of ``K_n`` with replication: ``m * n(n-1)/2``."""
    return multiplicity * n * (n - 1) // 2
