"""Network topologies: butterflies, hypercubes, complete graphs, swap
networks and indirect swap networks (ISNs)."""

from .bits import (
    bit,
    bit_reverse,
    flip_bit,
    flip_bit_array,
    get_bits,
    group_offsets,
    ilog2,
    is_power_of_two,
    level_swap,
    level_swap_array,
    popcount,
    set_bits,
    swap_bit_groups,
)
from .benes import Benes, benes_boundary_bits, benes_graph
from .bitonic import BitonicNetwork, bitonic_num_stages, bitonic_schedule, bitonic_sort
from .omega import Omega, destination_tag_route, omega_graph, perfect_shuffle
from .butterfly import Butterfly, butterfly_graph, wrapped_butterfly_graph
from .complete import complete_graph, complete_multigraph, num_links
from .graph import Graph, edge_array
from .hypercube import generalized_hypercube_graph, hypercube_graph
from .isn import ISN, ExchangeStep, SwapStep, isn_graph
from .properties import (
    bfs_distances,
    butterfly_average_distance,
    complete_graph_bisection_width,
    diameter,
)
from .swap import SwapNetwork, SwapNetworkParams, hsn_graph, swap_network_graph

__all__ = [
    "Graph",
    "edge_array",
    "Benes",
    "benes_graph",
    "benes_boundary_bits",
    "BitonicNetwork",
    "bitonic_schedule",
    "bitonic_num_stages",
    "bitonic_sort",
    "Omega",
    "omega_graph",
    "perfect_shuffle",
    "destination_tag_route",
    "Butterfly",
    "butterfly_graph",
    "wrapped_butterfly_graph",
    "hypercube_graph",
    "generalized_hypercube_graph",
    "complete_graph",
    "complete_multigraph",
    "num_links",
    "SwapNetwork",
    "SwapNetworkParams",
    "swap_network_graph",
    "hsn_graph",
    "ISN",
    "ExchangeStep",
    "SwapStep",
    "isn_graph",
    "bit",
    "flip_bit",
    "get_bits",
    "set_bits",
    "swap_bit_groups",
    "group_offsets",
    "level_swap",
    "level_swap_array",
    "flip_bit_array",
    "is_power_of_two",
    "ilog2",
    "popcount",
    "bit_reverse",
    "complete_graph_bisection_width",
    "butterfly_average_distance",
    "bfs_distances",
    "diameter",
]
