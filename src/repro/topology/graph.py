"""A small, deterministic, multiplicity-aware undirected graph.

The paper reasons about three graph-like objects:

* simple graphs (butterflies, hypercubes),
* multigraphs obtained by merging rows/clusters into supernodes ("complete
  multigraphs" with quadruple links, Section 3.2), and
* explicit isomorphisms ("automorphisms of butterfly networks").

``Graph`` supports all three: parallel edges are tracked by multiplicity,
iteration order is deterministic (insertion order for nodes, sorted
within adjacency when asked), and there are first-class operations for
quotienting by a node mapping and checking that an explicit node bijection
is an isomorphism.  We deliberately avoid networkx here: the graphs are
the core data structure of the reproduction and we want exact,
multiplicity-preserving semantics plus cheap hashing of edge multisets.

Construction has two speeds.  The per-edge path (:meth:`Graph.add_edge`)
accepts arbitrary hashable nodes and updates the adjacency dict eagerly.
The bulk path (:meth:`Graph.add_edges_from` with an int64 ndarray,
assembled with :func:`edge_array`) is columnar: chunks are validated
vectorized and *staged*; whole-graph operations — ``num_edges``,
:meth:`Graph.to_edge_array`, :meth:`Graph.same_as`,
:meth:`Graph.quotient`, :meth:`Graph.subgraph` — run directly on the
staged arrays, and the dict-of-Counter adjacency is folded in lazily the
first time a per-node query (neighbors, degrees, edge iteration, ...)
needs it.  This is what lets the topology generators materialise graphs
with hundreds of thousands of edges in milliseconds and is the substrate
for the sharding/batching work on the roadmap.
"""

from __future__ import annotations

from collections import Counter
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

Node = Hashable
Edge = Tuple[Node, Node]

__all__ = ["Graph", "edge_array"]


def edge_array(
    u: Union[np.ndarray, Sequence],
    v: Union[np.ndarray, Sequence],
) -> np.ndarray:
    """Assemble an int64 edge array for :meth:`Graph.add_edges_from`.

    ``u`` and ``v`` describe the two endpoint columns of ``E`` edges:

    * 1-D arrays (or scalars broadcast against the other side) give scalar
      int nodes and a ``(E, 2)`` result;
    * tuples/lists of per-component columns give tuple nodes — e.g.
      ``edge_array((rows, stage), (rows2, stage + 1))`` for the
      ``(row, stage)`` nodes of multistage networks — and a ``(E, 2, k)``
      result.

    Scalar entries (like a constant stage index) broadcast to the common
    length.
    """
    tuple_nodes = isinstance(u, (tuple, list))
    if tuple_nodes != isinstance(v, (tuple, list)):
        raise ValueError("endpoint descriptions must have the same shape")
    ucols = tuple(u) if tuple_nodes else (u,)
    vcols = tuple(v) if tuple_nodes else (v,)
    if len(ucols) != len(vcols):
        raise ValueError(
            f"endpoint arity mismatch: {len(ucols)} vs {len(vcols)}"
        )
    m = max(np.size(c) for c in ucols + vcols)
    if tuple_nodes:
        out = np.empty((m, 2, len(ucols)), dtype=np.int64)
        for j, col in enumerate(ucols):
            out[:, 0, j] = col
        for j, col in enumerate(vcols):
            out[:, 1, j] = col
    else:
        out = np.empty((m, 2), dtype=np.int64)
        out[:, 0] = ucols[0]
        out[:, 1] = vcols[0]
    return out


def _canon(u: Node, v: Node) -> Edge:
    """Canonical (sorted) form of an undirected edge key."""
    # Nodes in this project are ints or tuples of ints; both sort fine.
    return (u, v) if _key(u) <= _key(v) else (v, u)


def _key(n: Node):
    # Allow mixing of ints and tuples in exceptional cases by sorting on
    # (type-rank, value).
    if isinstance(n, tuple):
        return (1, n)
    return (0, (n,))


class Graph:
    """Undirected multigraph with integer edge multiplicities.

    Self-loops are rejected: none of the paper's networks contain them
    (a level-``i`` swap link whose endpoints coincide is simply absent in
    the *direct* network; in the *indirect* network the corresponding link
    joins distinct stages, so it is never a loop).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._adj: Dict[Node, Counter] = {}
        self._num_edges = 0  # counts multiplicity
        # Staged bulk chunks [(edges, counts), ...] not yet folded into
        # ``_adj``; see ``_materialize``.
        self._pending: List[Tuple[np.ndarray, np.ndarray]] = []
        #: Edges dropped as supernode-internal by the :meth:`quotient` that
        #: produced this graph (0 for graphs built any other way).
        self.internal_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, u: Node) -> None:
        if u not in self._adj:
            self._adj[u] = Counter()

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        adj = self._adj
        for u in nodes:
            if u not in adj:
                adj[u] = Counter()

    def add_edge(self, u: Node, v: Node, count: int = 1) -> None:
        if count < 1:
            raise ValueError(f"edge multiplicity must be >= 1, got {count}")
        if u == v:
            raise ValueError(f"self-loop at {u!r} not allowed")
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] += count
        self._adj[v][u] += count
        self._num_edges += count

    def add_edges_from(
        self,
        edges: Union[np.ndarray, Iterable[Tuple[Node, Node]]],
        count: Union[int, np.ndarray] = 1,
    ) -> None:
        """Bulk-insert edges; the ndarray form is the vectorized fast path.

        ``edges`` is either

        * an int64 ndarray of shape ``(E, 2)`` (scalar int nodes) or
          ``(E, 2, k)`` (arity-``k`` int-tuple nodes) — see
          :func:`edge_array` — inserted via one ``np.unique`` aggregation
          pass, or
        * any iterable of ``(u, v)`` pairs, inserted per-edge.

        ``count`` is the multiplicity of every edge (scalar) or, with an
        ndarray ``edges``, optionally a per-edge ``(E,)`` array — the form
        :meth:`to_edge_array` returns, making
        ``h.add_edges_from(*g.to_edge_array())`` a round trip.
        Duplicate rows accumulate multiplicity exactly like repeated
        :meth:`add_edge` calls.

        Array chunks are validated vectorized and *staged*: the
        dict-of-Counter adjacency is only built when a per-node query first
        needs it, so construct-then-export/compare/quotient pipelines never
        pay for it at all.
        """
        if isinstance(edges, np.ndarray):
            self._stage_edge_array(edges, count)
            return
        if not isinstance(count, int):
            raise TypeError("per-edge count arrays require ndarray edges")
        for u, v in edges:
            self.add_edge(u, v, count)

    def _stage_edge_array(self, arr: np.ndarray, count: Union[int, np.ndarray]) -> None:
        """Validate an int64 edge chunk and stage it for lazy folding."""
        if arr.ndim not in (2, 3) or arr.shape[1] != 2:
            raise ValueError(
                f"edge array must have shape (E, 2) or (E, 2, k), got {arr.shape}"
            )
        if not np.issubdtype(arr.dtype, np.integer):
            raise ValueError(f"edge array must be integer-typed, got {arr.dtype}")
        arr = arr.astype(np.int64, copy=False)
        num = arr.shape[0]
        counts = np.broadcast_to(np.asarray(count, dtype=np.int64), (num,))
        if num == 0:
            return
        if counts.min() < 1:
            raise ValueError(
                f"edge multiplicity must be >= 1, got {int(counts.min())}"
            )
        arity = arr.shape[2] if arr.ndim == 3 else 0
        loops = (
            (arr[:, 0] == arr[:, 1]).all(axis=1) if arity else arr[:, 0] == arr[:, 1]
        )
        if loops.any():
            i = int(np.flatnonzero(loops)[0])
            u = tuple(arr[i, 0]) if arity else int(arr[i, 0])
            raise ValueError(f"self-loop at {u!r} not allowed")
        self._pending.append((arr, counts))
        self._num_edges += int(counts.sum())

    def _materialize(self) -> None:
        """Fold staged bulk chunks into the adjacency dict."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        for arr, counts in pending:
            self._insert_edge_array(arr, counts)

    def _staged_arrays(self) -> Optional[Tuple[np.ndarray, np.ndarray, int]]:
        """``(edges, counts, arity)`` when this graph is *purely* staged —
        every edge and node lives in pending chunks of one arity — else
        ``None``.  The arrays cover the whole graph, so array-native
        operations can skip materialisation entirely."""
        if not self._pending or self._adj:
            return None
        arities = {a.shape[2] if a.ndim == 3 else 0 for a, _ in self._pending}
        if len(arities) != 1:
            return None
        arity = arities.pop()
        k = arity if arity else 1
        arr = np.concatenate(
            [a.reshape(a.shape[0], 2, k) for a, _ in self._pending]
        )
        counts = np.concatenate([c for _, c in self._pending])
        return arr, counts, arity

    @staticmethod
    def _pack_rows(
        rows: np.ndarray,
    ) -> Optional[Tuple[np.ndarray, np.ndarray, List[int]]]:
        """Pack int64 ``(m, w)`` rows into scalar codes *monotone in the
        lexicographic row order*, or ``None`` when the column ranges would
        overflow an int64.  Returns ``(codes, mins, ranges)``; decode with
        :meth:`_unpack_codes`."""
        mins = rows.min(axis=0)
        ranges = (rows.max(axis=0) - mins + 1).tolist()
        span = 1
        for r in ranges:
            span *= int(r)
            if span >= (1 << 62):
                return None
        shifted = rows - mins
        code = shifted[:, 0].copy()
        for j in range(1, rows.shape[1]):
            code *= ranges[j]
            code += shifted[:, j]
        return code, mins, ranges

    @staticmethod
    def _unpack_codes(
        codes: np.ndarray, mins: np.ndarray, ranges: List[int]
    ) -> np.ndarray:
        w = len(ranges)
        out = np.empty((len(codes), w), dtype=np.int64)
        rem = codes
        for j in range(w - 1, -1, -1):
            out[:, j] = rem % ranges[j] + mins[j]
            rem = rem // ranges[j]
        return out

    @staticmethod
    def _aggregate_rows(
        rows: np.ndarray, weights: np.ndarray, backend=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted unique rows of an int64 ``(m, w)`` array plus summed
        weights.  Rows are packed into scalar int64 keys whenever the
        column ranges fit (1-D ``np.unique`` is an order of magnitude
        faster than the axis=0 row sort); the row sort is the fallback.
        The weight aggregation runs on the selected array backend."""
        from ..backend import get_backend

        be = get_backend(backend)
        packed = Graph._pack_rows(rows)
        if packed is not None:
            codes, mins, ranges = packed
            keys, inv = np.unique(codes, return_inverse=True)
            agg = be.bincount(inv, weights=weights).astype(np.int64)
            return Graph._unpack_codes(keys, mins, ranges), agg
        uniq, inv = np.unique(rows, axis=0, return_inverse=True)
        agg = be.bincount(inv.ravel(), weights=weights).astype(np.int64)
        return uniq, agg

    def _insert_edge_array(self, arr: np.ndarray, counts: np.ndarray) -> None:
        """Fold one validated chunk into ``_adj`` (both directions at once:
        each distinct ordered pair becomes one adjacency update)."""
        arity = arr.shape[2] if arr.ndim == 3 else 0
        k = arity if arity else 1
        num = arr.shape[0]
        directed = np.concatenate([arr, arr[:, ::-1]], axis=0).reshape(2 * num, -1)
        uniq, agg = self._aggregate_rows(
            directed, np.concatenate([counts, counts])
        )
        m = len(agg)
        # Insert grouped by source node; fresh adjacency rows are filled via
        # C-level dict.update (rows are unique, so no merge is needed).
        new_group = np.empty(m, dtype=bool)
        new_group[0] = True
        new_group[1:] = (uniq[1:, :k] != uniq[:-1, :k]).any(axis=1)
        starts = np.flatnonzero(new_group)
        ends = np.append(starts[1:], m)
        if arity:
            vs = list(map(tuple, uniq[:, k:].tolist()))
            us = list(map(tuple, uniq[starts, :k].tolist()))
        else:
            vs = uniq[:, 1].tolist()
            us = uniq[starts, 0].tolist()
        counts_list = agg.tolist()
        adj = self._adj
        for u, s, e in zip(us, starts.tolist(), ends.tolist()):
            ctr = adj.get(u)
            if ctr is None:
                ctr = adj[u] = Counter()
            if ctr:
                for i in range(s, e):
                    ctr[vs[i]] += counts_list[i]
            else:
                dict.update(ctr, zip(vs[s:e], counts_list[s:e]))

    def to_edge_array(self) -> Tuple[np.ndarray, np.ndarray]:
        """Export ``(edges, counts)``: the canonical int64 edge array.

        ``edges`` has shape ``(m, 2)`` (all-int nodes) or ``(m, 2, k)``
        (uniform arity-``k`` int-tuple nodes) with one row per distinct
        unordered edge, endpoints in canonical order and rows sorted;
        ``counts`` holds the multiplicities.  Raises ``ValueError`` when the
        node set is not representable (mixed or non-int node types).
        Isolated nodes do not appear in the export.
        """
        staged = self._staged_arrays()
        if staged is not None:
            arr, counts, arity = staged
            k = arity if arity else 1
            a = arr[:, 0].reshape(-1, k)
            b = arr[:, 1].reshape(-1, k)
            # canonicalise each row: endpoints in lexicographic order
            if arity:
                flip = np.zeros(len(counts), dtype=bool)
                decided = np.zeros(len(counts), dtype=bool)
                for j in range(k):
                    less = b[:, j] < a[:, j]
                    flip |= less & ~decided
                    decided |= less | (b[:, j] > a[:, j])
            else:
                flip = b[:, 0] < a[:, 0]
            lo = np.where(flip[:, None], b, a)
            hi = np.where(flip[:, None], a, b)
            uniq, agg = self._aggregate_rows(
                np.concatenate([lo, hi], axis=1), counts
            )
            edges = uniq.reshape(-1, 2, k) if arity else uniq
            return edges, agg
        self._materialize()
        arity = self._export_arity()
        us: List[Node] = []
        vs: List[Node] = []
        cs: List[int] = []
        for u, ctr in self._adj.items():
            for v, c in ctr.items():
                us.append(u)
                vs.append(v)
                cs.append(c)
        if not us:
            shape = (0, 2, arity) if arity else (0, 2)
            return np.empty(shape, dtype=np.int64), np.empty(0, dtype=np.int64)
        a = np.asarray(us, dtype=np.int64)
        b = np.asarray(vs, dtype=np.int64)
        counts = np.asarray(cs, dtype=np.int64)
        # keep each unordered edge once: rows with u < v lexicographically
        if arity:
            keep = np.zeros(len(counts), dtype=bool)
            decided = np.zeros(len(counts), dtype=bool)
            for j in range(arity):
                less = a[:, j] < b[:, j]
                keep |= less & ~decided
                decided |= less | (a[:, j] > b[:, j])
        else:
            keep = a < b
        a, b, counts = a[keep], b[keep], counts[keep]
        edges = np.stack([a, b], axis=1)
        flat = edges.reshape(len(counts), -1)
        order = np.lexsort(tuple(flat[:, j] for j in range(flat.shape[1] - 1, -1, -1)))
        return edges[order], counts[order]

    def _export_arity(self) -> int:
        """0 for all-int nodes, k for uniform int-tuple nodes; else raise."""
        arity: Optional[int] = None
        for u in self._adj:
            if isinstance(u, (int, np.integer)) and not isinstance(u, bool):
                this = 0
            elif isinstance(u, tuple) and all(
                isinstance(x, (int, np.integer)) and not isinstance(x, bool)
                for x in u
            ):
                this = len(u)
            else:
                raise ValueError(
                    f"node {u!r} is not an int or int-tuple; no array form"
                )
            if arity is None:
                arity = this
            elif arity != this:
                raise ValueError(
                    "mixed node shapes cannot be exported as one edge array"
                )
        if arity == 0 or arity is None:
            return 0
        return arity

    def remove_node(self, u: Node) -> None:
        self._materialize()
        if u not in self._adj:
            raise KeyError(u)
        for v, c in self._adj[u].items():
            del self._adj[v][u]
            self._num_edges -= c
        del self._adj[u]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        self._materialize()
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Total number of edges, counting multiplicity.

        Tracked incrementally, so this never forces materialisation."""
        return self._num_edges

    @property
    def num_simple_edges(self) -> int:
        """Number of distinct adjacent pairs (multiplicity ignored)."""
        self._materialize()
        return sum(len(c) for c in self._adj.values()) // 2

    def nodes(self) -> List[Node]:
        self._materialize()
        return list(self._adj)

    def has_node(self, u: Node) -> bool:
        self._materialize()
        return u in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        self._materialize()
        return v in self._adj.get(u, ())

    def multiplicity(self, u: Node, v: Node) -> int:
        self._materialize()
        return self._adj.get(u, Counter())[v]

    def neighbors(self, u: Node) -> List[Node]:
        """Distinct neighbors of ``u``, sorted for determinism."""
        self._materialize()
        return sorted(self._adj[u], key=_key)

    def degree(self, u: Node) -> int:
        """Degree counting multiplicity."""
        self._materialize()
        return sum(self._adj[u].values())

    def simple_degree(self, u: Node) -> int:
        """Number of distinct neighbors."""
        self._materialize()
        return len(self._adj[u])

    def max_degree(self) -> int:
        self._materialize()
        return max((self.degree(u) for u in self._adj), default=0)

    def edges(self) -> Iterator[Tuple[Node, Node, int]]:
        """Yield ``(u, v, multiplicity)`` once per unordered pair, sorted."""
        self._materialize()
        for u in sorted(self._adj, key=_key):
            for v in sorted(self._adj[u], key=_key):
                if _key(u) <= _key(v):
                    yield (u, v, self._adj[u][v])

    def edge_multiset(self) -> Counter:
        """Multiset of canonical edges; the graph's identity up to naming."""
        out: Counter = Counter()
        for u, v, c in self.edges():
            out[_canon(u, v)] = c
        return out

    def degree_histogram(self) -> Counter:
        self._materialize()
        return Counter(self.degree(u) for u in self._adj)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Induced subgraph on ``nodes`` (unknown nodes silently ignored).

        Runs in ``O(sum(deg(u) for kept u))``: only the adjacency rows of
        kept nodes are scanned, never the full (sorted) edge list.
        """
        self._materialize()
        keep = set(nodes)
        g = Graph(name=f"{self.name}|sub")
        for u in self._adj:
            if u in keep:
                g.add_node(u)
        total = 0
        for u in g._adj:
            row = g._adj[u]
            for v, c in self._adj[u].items():
                if v in keep:
                    row[v] = c
                    total += c
        g._num_edges = total // 2
        return g

    def quotient(self, mapping: Callable[[Node], Node], keep_internal: bool = False) -> "Graph":
        """Merge nodes by ``mapping``; parallel edges accumulate multiplicity.

        Edges whose endpoints map to the same supernode are dropped —
        matching the paper's supernode arguments (e.g. merging each ISN row
        yields the HSN it was derived from, with each inter-cluster link
        duplicated).  The number of dropped edges is always recorded on the
        result as :attr:`internal_edges`; ``keep_internal`` is retained for
        backward compatibility and no longer changes behaviour.

        ``mapping`` is called once per node; the per-edge remap/accumulate
        work is vectorized whenever the supernode labels are plain ints, and
        a purely staged graph is quotiented array-to-array without ever
        building its adjacency dict.
        """
        g = Graph(name=f"{self.name}|quotient")
        staged = self._staged_arrays()
        if staged is not None:
            arr, counts, arity = staged
            k = arity if arity else 1
            packed = self._pack_rows(arr.reshape(-1, k))
            if packed is not None:
                codes, mins, ranges = packed
                keys, inv = np.unique(codes, return_inverse=True)
                rows = self._unpack_codes(keys, mins, ranges)
                node_list: List[Node] = (
                    list(map(tuple, rows.tolist())) if arity
                    else rows[:, 0].tolist()
                )
                mapped = [mapping(u) for u in node_list]
                for m in mapped:
                    g.add_node(m)
                if all(
                    isinstance(m, (int, np.integer)) and not isinstance(m, bool)
                    for m in mapped
                ):
                    ends = np.asarray(mapped, dtype=np.int64)[inv].reshape(-1, 2)
                    ext = ends[:, 0] != ends[:, 1]
                    g.internal_edges = int(counts[~ext].sum())
                    if ext.any():
                        g._stage_edge_array(ends[ext], counts[ext])
                else:
                    internal = 0
                    for (iu, iv), c in zip(
                        inv.reshape(-1, 2).tolist(), counts.tolist()
                    ):
                        mu, mv = mapped[iu], mapped[iv]
                        if mu == mv:
                            internal += c
                            continue
                        g.add_edge(mu, mv, c)
                    g.internal_edges = internal
                return g
        self._materialize()
        nodes = list(self._adj)
        mapped = [mapping(u) for u in nodes]
        for m in mapped:
            g.add_node(m)
        idx = {u: i for i, u in enumerate(nodes)}
        ui: List[int] = []
        vi: List[int] = []
        cs: List[int] = []
        for u, ctr in self._adj.items():
            iu = idx[u]
            for v, c in ctr.items():
                iv = idx[v]
                if iu < iv:
                    ui.append(iu)
                    vi.append(iv)
                    cs.append(c)
        if cs and all(
            isinstance(m, (int, np.integer)) and not isinstance(m, bool)
            for m in mapped
        ):
            mapped_arr = np.asarray(mapped, dtype=np.int64)
            mu = mapped_arr[np.asarray(ui)]
            mv = mapped_arr[np.asarray(vi)]
            counts = np.asarray(cs, dtype=np.int64)
            ext = mu != mv
            g.internal_edges = int(counts[~ext].sum())
            if ext.any():
                g._stage_edge_array(
                    np.stack([mu[ext], mv[ext]], axis=1), counts[ext]
                )
        else:
            internal = 0
            for iu, iv, c in zip(ui, vi, cs):
                mu, mv = mapped[iu], mapped[iv]
                if mu == mv:
                    internal += c
                    continue
                g.add_edge(mu, mv, c)
            g.internal_edges = internal
        return g

    def relabel(self, mapping: Mapping[Node, Node]) -> "Graph":
        """Apply a node bijection; multiplicities preserved."""
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("relabel mapping is not injective")
        self._materialize()
        g = Graph(name=self.name)
        for u in self._adj:
            g.add_node(mapping[u])
        for u, v, c in self.edges():
            g.add_edge(mapping[u], mapping[v], c)
        return g

    def connected_components(self) -> List[List[Node]]:
        self._materialize()
        seen: set = set()
        comps: List[List[Node]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp = [start]
            seen.add(start)
            stack = [start]
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if v not in seen:
                        seen.add(v)
                        comp.append(v)
                        stack.append(v)
            comps.append(comp)
        return comps

    def is_connected(self) -> bool:
        return self.num_nodes <= 1 or len(self.connected_components()) == 1

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def same_as(self, other: "Graph") -> bool:
        """Exact equality: same node set and same edge multiset."""
        if self._num_edges != other._num_edges:
            return False
        # Two purely staged graphs compare array-to-array: their node sets
        # are exactly their edge endpoints, so canonical edge arrays decide.
        if (
            self._staged_arrays() is not None
            and other._staged_arrays() is not None
        ):
            e1, c1 = self.to_edge_array()
            e2, c2 = other.to_edge_array()
            return (
                e1.shape == e2.shape
                and bool((e1 == e2).all())
                and bool((c1 == c2).all())
            )
        self._materialize()
        other._materialize()
        return (
            set(self._adj) == set(other._adj)
            and self.edge_multiset() == other.edge_multiset()
        )

    def is_isomorphic_by(self, other: "Graph", mapping: Mapping[Node, Node]) -> bool:
        """Check that the explicit bijection ``mapping`` (self -> other) is an
        isomorphism preserving edge multiplicities."""
        self._materialize()
        other._materialize()
        if set(mapping) != set(self._adj):
            return False
        if set(mapping.values()) != set(other._adj):
            return False
        if len(set(mapping.values())) != len(mapping):
            return False
        return self.relabel(mapping).edge_multiset() == other.edge_multiset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph({self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
