"""A small, deterministic, multiplicity-aware undirected graph.

The paper reasons about three graph-like objects:

* simple graphs (butterflies, hypercubes),
* multigraphs obtained by merging rows/clusters into supernodes ("complete
  multigraphs" with quadruple links, Section 3.2), and
* explicit isomorphisms ("automorphisms of butterfly networks").

``Graph`` supports all three: parallel edges are tracked by multiplicity,
iteration order is deterministic (insertion order for nodes, sorted
within adjacency when asked), and there are first-class operations for
quotienting by a node mapping and checking that an explicit node bijection
is an isomorphism.  We deliberately avoid networkx here: the graphs are
the core data structure of the reproduction and we want exact,
multiplicity-preserving semantics plus cheap hashing of edge multisets.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Mapping, Tuple

Node = Hashable
Edge = Tuple[Node, Node]

__all__ = ["Graph"]


def _canon(u: Node, v: Node) -> Edge:
    """Canonical (sorted) form of an undirected edge key."""
    # Nodes in this project are ints or tuples of ints; both sort fine.
    return (u, v) if _key(u) <= _key(v) else (v, u)


def _key(n: Node):
    # Allow mixing of ints and tuples in exceptional cases by sorting on
    # (type-rank, value).
    if isinstance(n, tuple):
        return (1, n)
    return (0, (n,))


class Graph:
    """Undirected multigraph with integer edge multiplicities.

    Self-loops are rejected: none of the paper's networks contain them
    (a level-``i`` swap link whose endpoints coincide is simply absent in
    the *direct* network; in the *indirect* network the corresponding link
    joins distinct stages, so it is never a loop).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._adj: Dict[Node, Counter] = {}
        self._num_edges = 0  # counts multiplicity

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, u: Node) -> None:
        if u not in self._adj:
            self._adj[u] = Counter()

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        for u in nodes:
            self.add_node(u)

    def add_edge(self, u: Node, v: Node, count: int = 1) -> None:
        if count < 1:
            raise ValueError(f"edge multiplicity must be >= 1, got {count}")
        if u == v:
            raise ValueError(f"self-loop at {u!r} not allowed")
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] += count
        self._adj[v][u] += count
        self._num_edges += count

    def remove_node(self, u: Node) -> None:
        if u not in self._adj:
            raise KeyError(u)
        for v, c in self._adj[u].items():
            del self._adj[v][u]
            self._num_edges -= c
        del self._adj[u]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Total number of edges, counting multiplicity."""
        return self._num_edges

    @property
    def num_simple_edges(self) -> int:
        """Number of distinct adjacent pairs (multiplicity ignored)."""
        return sum(len(c) for c in self._adj.values()) // 2

    def nodes(self) -> List[Node]:
        return list(self._adj)

    def has_node(self, u: Node) -> bool:
        return u in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        return v in self._adj.get(u, ())

    def multiplicity(self, u: Node, v: Node) -> int:
        return self._adj.get(u, Counter())[v]

    def neighbors(self, u: Node) -> List[Node]:
        """Distinct neighbors of ``u``, sorted for determinism."""
        return sorted(self._adj[u], key=_key)

    def degree(self, u: Node) -> int:
        """Degree counting multiplicity."""
        return sum(self._adj[u].values())

    def simple_degree(self, u: Node) -> int:
        """Number of distinct neighbors."""
        return len(self._adj[u])

    def max_degree(self) -> int:
        return max((self.degree(u) for u in self._adj), default=0)

    def edges(self) -> Iterator[Tuple[Node, Node, int]]:
        """Yield ``(u, v, multiplicity)`` once per unordered pair, sorted."""
        for u in sorted(self._adj, key=_key):
            for v in sorted(self._adj[u], key=_key):
                if _key(u) <= _key(v):
                    yield (u, v, self._adj[u][v])

    def edge_multiset(self) -> Counter:
        """Multiset of canonical edges; the graph's identity up to naming."""
        out: Counter = Counter()
        for u, v, c in self.edges():
            out[_canon(u, v)] = c
        return out

    def degree_histogram(self) -> Counter:
        return Counter(self.degree(u) for u in self._adj)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        keep = set(nodes)
        g = Graph(name=f"{self.name}|sub")
        for u in self._adj:
            if u in keep:
                g.add_node(u)
        for u, v, c in self.edges():
            if u in keep and v in keep:
                g.add_edge(u, v, c)
        return g

    def quotient(self, mapping: Callable[[Node], Node], keep_internal: bool = False) -> "Graph":
        """Merge nodes by ``mapping``; parallel edges accumulate multiplicity.

        Edges whose endpoints map to the same supernode are dropped unless
        ``keep_internal`` — matching the paper's supernode arguments (e.g.
        merging each ISN row yields the HSN it was derived from, with each
        inter-cluster link duplicated).
        """
        g = Graph(name=f"{self.name}|quotient")
        for u in self._adj:
            g.add_node(mapping(u))
        internal = 0
        for u, v, c in self.edges():
            mu, mv = mapping(u), mapping(v)
            if mu == mv:
                internal += c
                continue
            g.add_edge(mu, mv, c)
        if keep_internal:
            g.internal_edges = internal  # type: ignore[attr-defined]
        return g

    def relabel(self, mapping: Mapping[Node, Node]) -> "Graph":
        """Apply a node bijection; multiplicities preserved."""
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("relabel mapping is not injective")
        g = Graph(name=self.name)
        for u in self._adj:
            g.add_node(mapping[u])
        for u, v, c in self.edges():
            g.add_edge(mapping[u], mapping[v], c)
        return g

    def connected_components(self) -> List[List[Node]]:
        seen: set = set()
        comps: List[List[Node]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp = [start]
            seen.add(start)
            stack = [start]
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if v not in seen:
                        seen.add(v)
                        comp.append(v)
                        stack.append(v)
            comps.append(comp)
        return comps

    def is_connected(self) -> bool:
        return self.num_nodes <= 1 or len(self.connected_components()) == 1

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def same_as(self, other: "Graph") -> bool:
        """Exact equality: same node set and same edge multiset."""
        return (
            set(self._adj) == set(other._adj)
            and self.edge_multiset() == other.edge_multiset()
        )

    def is_isomorphic_by(self, other: "Graph", mapping: Mapping[Node, Node]) -> bool:
        """Check that the explicit bijection ``mapping`` (self -> other) is an
        isomorphism preserving edge multiplicities."""
        if set(mapping) != set(self._adj):
            return False
        if set(mapping.values()) != set(other._adj):
            return False
        if len(set(mapping.values())) != len(mapping):
            return False
        return self.relabel(mapping).edge_multiset() == other.edge_multiset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph({self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
