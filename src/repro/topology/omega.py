"""Omega (shuffle-exchange) networks — another "related topology" from the
paper's switch-fabric motivation.

An omega network on ``R = 2**n`` rows has ``n`` identical stage
boundaries: node ``(u, s)`` connects to ``(sigma(u), s+1)`` and
``(sigma(u) ^ 1, s+1)`` where ``sigma`` is the perfect shuffle (rotate
the address left by one bit).  Functionally it is destination-tag
routable: a packet from any input reaches output ``y`` by selecting, at
stage ``s``, the link whose low bit matches bit ``n-1-s`` of ``y`` —
verified exhaustively in the tests.

Structurally the omega network is isomorphic to the butterfly (both are
FFT networks); here it exercises the *generalised* stage-column layout
engine, whose boundaries need not be single-bit exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .graph import Graph

__all__ = ["Omega", "omega_graph", "perfect_shuffle", "destination_tag_route"]


def perfect_shuffle(u: int, n: int) -> int:
    """Rotate the low ``n`` bits of ``u`` left by one."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    mask = (1 << n) - 1
    u &= mask
    return ((u << 1) | (u >> (n - 1))) & mask


@dataclass(frozen=True)
class Omega:
    """Omega network on ``2**n`` rows with ``n + 1`` node stages."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")

    @property
    def rows(self) -> int:
        return 1 << self.n

    @property
    def stages(self) -> int:
        return self.n + 1

    @property
    def num_nodes(self) -> int:
        return self.stages * self.rows

    @property
    def num_edges(self) -> int:
        return 2 * self.rows * self.n

    def boundary_links(self, s: int) -> Iterator[Tuple[Tuple[int, int], Tuple[int, int], str]]:
        if not 0 <= s < self.n:
            raise ValueError(f"boundary must be in [0, {self.n}), got {s}")
        for u in range(self.rows):
            v = perfect_shuffle(u, self.n)
            yield ((u, s), (v, s + 1), "shuffle")
            yield ((u, s), (v ^ 1, s + 1), "shuffle-exchange")

    def links(self) -> Iterator[Tuple[Tuple[int, int], Tuple[int, int], str]]:
        for s in range(self.n):
            yield from self.boundary_links(s)

    def boundary_link_lists(self) -> List[List[Tuple[int, int]]]:
        """Per-boundary (u, v) row pairs, for the generalised stage-column
        layout engine."""
        out: List[List[Tuple[int, int]]] = []
        for s in range(self.n):
            out.append([(u, v) for (u, _), (v, _), _k in self.boundary_links(s)])
        return out

    def graph(self) -> Graph:
        g = Graph(name=f"Omega_{self.n}")
        for s in range(self.stages):
            for u in range(self.rows):
                g.add_node((u, s))
        for u, v, _k in self.links():
            g.add_edge(u, v)
        return g


def omega_graph(n: int) -> Graph:
    """Convenience: the :class:`Graph` of the omega network on ``2**n`` rows."""
    return Omega(n).graph()


def destination_tag_route(n: int, src: int, dst: int) -> List[int]:
    """Rows visited routing ``src -> dst`` by destination tags.

    At stage ``s`` the packet takes the link to
    ``shuffle(current) with low bit set to bit (n-1-s) of dst``; after
    ``n`` stages the row equals ``dst`` regardless of ``src``.
    """
    R = 1 << n
    if not (0 <= src < R and 0 <= dst < R):
        raise ValueError("src/dst out of range")
    rows = [src]
    cur = src
    for s in range(n):
        cur = perfect_shuffle(cur, n)
        want = (dst >> (n - 1 - s)) & 1
        cur = (cur & ~1) | want
        rows.append(cur)
    return rows
