"""Butterfly networks (the paper's target topology).

An ``n``-dimensional (unwrapped) butterfly ``B_n`` has ``(n + 1)`` stages of
``R = 2**n`` rows each, for ``N = (n + 1) * 2**n`` nodes.  A node is the
pair ``(row, stage)`` with ``row in [0, 2**n)`` and ``stage in [0, n]``.
Between stages ``s`` and ``s + 1`` every node ``(r, s)`` has

* a **straight** link to ``(r, s + 1)``, and
* a **cross** link to ``(r XOR 2**s, s + 1)``

so that two rows whose addresses differ only in bit ``s`` exchange at stage
boundary ``s`` — the flow graph of the ascend algorithm the paper uses to
relate ISNs and butterflies.  An ``R x R`` butterfly in the paper's usage is
``B_n`` with ``n = log2 R``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from .bits import flip_bit, ilog2
from .graph import Graph, edge_array

__all__ = ["Butterfly", "butterfly_graph", "wrapped_butterfly_graph"]

BflyNode = Tuple[int, int]  # (row, stage)


@dataclass(frozen=True)
class Butterfly:
    """Structural description of ``B_n`` with cheap generators.

    The full :class:`~repro.topology.graph.Graph` is built lazily by
    :meth:`graph`; most algorithms (layout, partitioning, routing) only
    need the generators, which avoid materialising millions of edges.
    """

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"butterfly dimension must be >= 1, got {self.n}")

    # -- sizes ----------------------------------------------------------
    @property
    def rows(self) -> int:
        """Number of rows ``R = 2**n`` (the paper's ``R x R`` convention)."""
        return 1 << self.n

    @property
    def stages(self) -> int:
        """Number of node stages, ``n + 1``."""
        return self.n + 1

    @property
    def num_nodes(self) -> int:
        """``N = (n + 1) * 2**n``."""
        return self.stages * self.rows

    @property
    def num_edges(self) -> int:
        """``n`` stage boundaries times ``2**n`` straight plus ``2**n`` cross."""
        return self.n * self.rows * 2

    @classmethod
    def from_rows(cls, R: int) -> "Butterfly":
        """Construct the ``R x R`` butterfly, ``R`` a power of two."""
        return cls(ilog2(R))

    # -- node/edge generators -------------------------------------------
    def nodes(self) -> Iterator[BflyNode]:
        for s in range(self.stages):
            for r in range(self.rows):
                yield (r, s)

    def straight_neighbor(self, r: int, s: int) -> BflyNode:
        self._check(r, s, boundary=True)
        return (r, s + 1)

    def cross_neighbor(self, r: int, s: int) -> BflyNode:
        """Neighbor across stage boundary ``s`` differing in row bit ``s``."""
        self._check(r, s, boundary=True)
        return (flip_bit(r, s), s + 1)

    def edges(self) -> Iterator[Tuple[BflyNode, BflyNode]]:
        for s in range(self.n):
            for r in range(self.rows):
                yield ((r, s), (r, s + 1))
                yield ((r, s), (flip_bit(r, s), s + 1))

    def boundary_edges(self, s: int) -> Iterator[Tuple[BflyNode, BflyNode]]:
        """All edges between stages ``s`` and ``s + 1``."""
        if not 0 <= s < self.n:
            raise ValueError(f"stage boundary must be in [0, {self.n}), got {s}")
        for r in range(self.rows):
            yield ((r, s), (r, s + 1))
            yield ((r, s), (flip_bit(r, s), s + 1))

    def degree(self, r: int, s: int) -> int:
        self._check(r, s)
        return 2 if s in (0, self.n) else 4

    def row_edge_count(self) -> int:
        """Edges incident to one row: ``2n`` straight+cross leaving it plus
        ``n`` cross arriving (cross links are counted once per row pair
        elsewhere; this helper counts edge endpoints on one row's nodes)."""
        return 4 * self.n  # 2 per interior boundary endpoint, summed

    def _check(self, r: int, s: int, boundary: bool = False) -> None:
        hi = self.n if boundary else self.stages
        if not 0 <= r < self.rows:
            raise ValueError(f"row {r} out of range [0, {self.rows})")
        if not 0 <= s < hi:
            raise ValueError(f"stage {s} out of range [0, {hi})")

    # -- materialisation -------------------------------------------------
    def edge_array(self) -> np.ndarray:
        """All edges as one ``(num_edges, 2, 2)`` int64 array of
        ``((row, stage), (row', stage + 1))`` pairs, built stage by stage
        with vectorized row arithmetic."""
        r = np.arange(self.rows, dtype=np.int64)
        chunks = []
        for s in range(self.n):
            chunks.append(edge_array((r, s), (r, s + 1)))
            chunks.append(edge_array((r, s), (r ^ (1 << s), s + 1)))
        return np.concatenate(chunks)

    def graph(self) -> Graph:
        # Every node is an edge endpoint (n >= 1), so the bulk insert
        # introduces the whole node set — the graph stays purely staged.
        g = Graph(name=f"B_{self.n}")
        g.add_edges_from(self.edge_array())
        return g


def butterfly_graph(n: int) -> Graph:
    """Convenience: the :class:`Graph` of ``B_n``."""
    return Butterfly(n).graph()


def wrapped_butterfly_graph(n: int) -> Graph:
    """Wrapped butterfly: stages 0 and ``n`` merged (each row becomes a
    cycle).  Not used by the paper's layouts but standard enough that a
    butterfly library should provide it."""
    b = Butterfly(n)
    g = Graph(name=f"wrapped-B_{n}")
    if n == 1:
        # Cross links are the only survivors; rows 0/1 still appear there,
        # but add the nodes explicitly for clarity.
        g.add_node((0, 0))
        g.add_node((1, 0))
    arr = b.edge_array()
    arr[:, :, 1] %= n  # wrap stage n onto stage 0
    # n == 1 degenerates: straight links wrap onto themselves; drop them.
    keep = (arr[:, 0, 0] != arr[:, 1, 0]) | (arr[:, 0, 1] != arr[:, 1, 1])
    g.add_edges_from(arr[keep])
    return g
