"""Swap networks ``SN(l, Q_{k1})`` and hierarchical swap networks (HSNs).

Appendix A of the paper.  An ``l``-level swap network on parameters
``k_1 >= k_2 >= ... >= k_l`` (each ``k_i <= k_1`` and, per the recursive
definition, ``k_i <= n_{i-1}``) has ``2**n_l`` nodes, ``n_l = sum(k_i)``.
Two nodes are adjacent iff

(a) their addresses differ in exactly one of the low ``k_1`` bits
    (a *nucleus* link of some dimension ``i < k_1``), or
(b) one address is obtained from the other by swapping the ``i``-th bit
    group with the rightmost ``k_i`` bits for some ``i in [2, l]``
    (a *level-i inter-cluster* link).

An HSN is the special case ``k_1 = k_2 = ... = k_l``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from .bits import flip_bit, group_offsets, level_swap, level_swap_array
from .graph import Graph, edge_array

__all__ = ["SwapNetworkParams", "SwapNetwork", "swap_network_graph", "hsn_graph"]


@dataclass(frozen=True)
class SwapNetworkParams:
    """The parameter vector ``(k_1, ..., k_l)`` shared by SNs and ISNs.

    Validation enforces the constraints from the paper's definition:
    ``k_i >= 1`` and ``k_i <= n_{i-1}`` for ``i >= 2`` (a level can swap at
    most as many bits as all previous levels provide).  The paper's layouts
    additionally use ``k_i <= k_1``, which follows from the HSN-derived
    families it considers; we check the weaker recursive constraint and
    expose :meth:`is_hsn_like` for the stronger one.
    """

    ks: Tuple[int, ...]

    def __init__(self, ks: Sequence[int]) -> None:
        object.__setattr__(self, "ks", tuple(int(k) for k in ks))
        if not self.ks:
            raise ValueError("need at least one level (k_1)")
        offs = group_offsets(self.ks)  # validates k_i >= 1
        for i in range(2, len(self.ks) + 1):
            if self.ks[i - 1] > offs[i - 1]:
                raise ValueError(
                    f"k_{i} = {self.ks[i - 1]} exceeds n_{i - 1} = {offs[i - 1]}"
                )

    @property
    def l(self) -> int:
        """Number of levels."""
        return len(self.ks)

    @property
    def n(self) -> int:
        """Total address width ``n_l = sum(k_i)``."""
        return sum(self.ks)

    @property
    def offsets(self) -> List[int]:
        """``[n_0, n_1, ..., n_l]``; group ``i`` is bits ``[n_{i-1}, n_i)``."""
        return group_offsets(self.ks)

    @property
    def num_rows(self) -> int:
        """``R = 2**n_l``."""
        return 1 << self.n

    def is_hsn_like(self) -> bool:
        """True when ``k_i <= k_1`` for all levels (paper's layout families)."""
        return all(k <= self.ks[0] for k in self.ks)

    def is_hsn(self) -> bool:
        return len(set(self.ks)) == 1

    def sigma(self, level: int, x: int) -> int:
        """Level-``level`` swap of address ``x`` (1-based level; level 1 = id)."""
        return level_swap(x, self.ks, level)

    @classmethod
    def for_dimension(cls, n: int, l: int) -> "SwapNetworkParams":
        """The paper's parameter choice for an ``n``-dimensional butterfly
        with ``l`` levels: ``k_i = ceil(n/l)`` for the first ``n mod l``
        levels and ``floor(n/l)`` for the rest (Section 3.3 uses exactly
        this for ``l = 3``: e.g. ``n % 3 == 1`` gives ``k_1 = (n+2)/3`` and
        ``k_2 = k_3 = (n-1)/3``)."""
        if l < 1 or n < l:
            raise ValueError(f"need 1 <= l <= n, got l={l} n={n}")
        q, r = divmod(n, l)
        ks = [q + 1] * r + [q] * (l - r)
        return cls(ks)


class SwapNetwork:
    """``SN(l, Q_{k1})`` with general per-level group sizes."""

    def __init__(self, params: SwapNetworkParams) -> None:
        self.params = params

    @property
    def num_nodes(self) -> int:
        return self.params.num_rows

    def nucleus_links(self) -> Iterator[Tuple[int, int]]:
        k1 = self.params.ks[0]
        for u in range(self.num_nodes):
            for i in range(k1):
                v = flip_bit(u, i)
                if u < v:
                    yield (u, v)

    def inter_cluster_links(self, level: int) -> Iterator[Tuple[int, int]]:
        """Level-``level`` links (level >= 2); fixed points yield no link."""
        if not 2 <= level <= self.params.l:
            raise ValueError(f"level must be in [2, {self.params.l}], got {level}")
        for u in range(self.num_nodes):
            v = self.params.sigma(level, u)
            if u < v:
                yield (u, v)

    def graph(self) -> Graph:
        # k_1 >= 1, so every node has a nucleus link: the bulk insert alone
        # yields the full node set and the graph stays purely staged.
        g = Graph(name=f"SN{self.params.ks}")
        u = np.arange(self.num_nodes, dtype=np.int64)
        chunks = []
        for i in range(self.params.ks[0]):
            lo = u[(u >> i) & 1 == 0]
            chunks.append(edge_array(lo, lo | (1 << i)))
        for level in range(2, self.params.l + 1):
            v = level_swap_array(u, self.params.ks, level)
            keep = u < v  # fixed points yield no link; each pair once
            chunks.append(edge_array(u[keep], v[keep]))
        g.add_edges_from(np.concatenate(chunks))
        return g


def swap_network_graph(ks: Sequence[int]) -> Graph:
    """Convenience constructor for ``SN`` graphs."""
    return SwapNetwork(SwapNetworkParams(ks)).graph()


def hsn_graph(l: int, k: int) -> Graph:
    """``HSN(l, Q_k)``: the homogeneous special case."""
    return swap_network_graph([k] * l)
