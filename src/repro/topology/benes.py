"""Benes networks — the rearrangeable switching fabric the paper's
introduction motivates ("many network switches/routers are based on
butterfly, Benes, or related interconnection topologies").

Two views are provided:

* the **row-level** Benes graph (matching the paper's per-row butterfly
  convention): ``2n`` node stages of ``R = 2**n`` rows, whose stage
  boundaries exchange bits ``0, 1, ..., n-1, n-2, ..., 0`` — an ascending
  butterfly followed by its mirror, sharing the middle stage; and
* the **switch-level** recursive structure used by the looping routing
  algorithm in :mod:`repro.algorithms.benes_routing`.

The row-level graph plugs directly into the packaging machinery: with
``2**k`` consecutive rows per module, exactly the boundaries on bits
``>= k`` leave the module — ``2(n - k)`` of the ``2n - 1`` boundaries —
so Benes fabrics inherit butterfly-style packaging economics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .bits import flip_bit
from .graph import Graph

__all__ = ["Benes", "benes_graph", "benes_boundary_bits"]

BenesNode = Tuple[int, int]


def benes_boundary_bits(n: int) -> List[int]:
    """Exchange-bit schedule: ``0..n-1`` ascending, then ``n-2..0``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return list(range(n)) + list(range(n - 2, -1, -1))


@dataclass(frozen=True)
class Benes:
    """Row-level Benes network on ``R = 2**n`` rows."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")

    @property
    def rows(self) -> int:
        return 1 << self.n

    @property
    def boundaries(self) -> List[int]:
        return benes_boundary_bits(self.n)

    @property
    def stages(self) -> int:
        return len(self.boundaries) + 1  # 2n

    @property
    def num_nodes(self) -> int:
        return self.stages * self.rows

    @property
    def num_edges(self) -> int:
        return 2 * self.rows * len(self.boundaries)

    def boundary_links(self, s: int) -> Iterator[Tuple[BenesNode, BenesNode, str]]:
        bits = self.boundaries
        if not 0 <= s < len(bits):
            raise ValueError(f"boundary must be in [0, {len(bits)}), got {s}")
        t = bits[s]
        for u in range(self.rows):
            yield ((u, s), (u, s + 1), "straight")
            yield ((u, s), (flip_bit(u, t), s + 1), "cross")

    def links(self) -> Iterator[Tuple[BenesNode, BenesNode, str]]:
        for s in range(len(self.boundaries)):
            yield from self.boundary_links(s)

    def graph(self) -> Graph:
        g = Graph(name=f"Benes_{self.n}")
        for s in range(self.stages):
            for u in range(self.rows):
                g.add_node((u, s))
        for u, v, _k in self.links():
            g.add_edge(u, v)
        return g

    def offmodule_links_per_module(self, k: int) -> int:
        """Row partition (``2**k`` consecutive rows/module): each boundary
        on a bit ``>= k`` contributes one outgoing and one incoming cross
        link per row."""
        if not 0 <= k <= self.n:
            raise ValueError(f"k must be in [0, {self.n}], got {k}")
        leaving = sum(1 for t in self.boundaries if t >= k)
        return 2 * leaving * (1 << k)


def benes_graph(n: int) -> Graph:
    """Convenience: the row-level Benes graph."""
    return Benes(n).graph()
