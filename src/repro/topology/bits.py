"""Bit-string address algebra used throughout the paper.

Swap networks, indirect swap networks (ISNs), and the ISN-to-butterfly
transformation are all defined in terms of operations on binary node
addresses: extracting groups of bits, swapping the *i*-th group with the
rightmost ``k_i`` bits (the paper's level-*i* swap), and flipping single
bits (butterfly/hypercube exchanges).  This module collects those
primitives in one place so the rest of the code can speak the paper's
notation directly.

All functions operate on non-negative Python integers interpreted as
fixed-width bit strings; the width is implicit (callers keep track of the
total address length ``n``).

The ``*_array`` variants apply the same operations element-wise to numpy
int64 arrays; they are the primitives behind the vectorized graph
constructors and the routing simulator.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = [
    "bit",
    "flip_bit",
    "get_bits",
    "set_bits",
    "swap_bit_groups",
    "group_offsets",
    "level_swap",
    "flip_bit_array",
    "level_swap_array",
    "is_power_of_two",
    "ilog2",
    "popcount",
    "bit_reverse",
    "to_bit_string",
    "from_bit_string",
]


def bit(x: int, i: int) -> int:
    """Return bit ``i`` (0 = least significant) of ``x``."""
    if i < 0:
        raise ValueError(f"bit index must be non-negative, got {i}")
    return (x >> i) & 1


def flip_bit(x: int, i: int) -> int:
    """Return ``x`` with bit ``i`` complemented (a dimension-``i`` exchange)."""
    if i < 0:
        raise ValueError(f"bit index must be non-negative, got {i}")
    return x ^ (1 << i)


def get_bits(x: int, lo: int, width: int) -> int:
    """Extract ``width`` bits of ``x`` starting at position ``lo``.

    ``get_bits(x, lo, w)`` is the integer value of the bit slice
    ``x[lo + w - 1 : lo]`` in the paper's ``Z_{i:j}`` notation.
    """
    if lo < 0 or width < 0:
        raise ValueError(f"lo and width must be non-negative, got lo={lo} width={width}")
    return (x >> lo) & ((1 << width) - 1)


def set_bits(x: int, lo: int, width: int, value: int) -> int:
    """Return ``x`` with the ``width``-bit field at position ``lo`` replaced by ``value``."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    mask = ((1 << width) - 1) << lo
    return (x & ~mask) | (value << lo)


def swap_bit_groups(x: int, lo1: int, lo2: int, width: int) -> int:
    """Swap the ``width``-bit fields of ``x`` at positions ``lo1`` and ``lo2``.

    The two fields must be disjoint (or identical, in which case the result
    is ``x``).  This is the primitive behind the paper's level-*i* swap.
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    if lo1 == lo2 or width == 0:
        return x
    a, b = (lo1, lo2) if lo1 < lo2 else (lo2, lo1)
    if a + width > b:
        raise ValueError(
            f"bit groups [{a},{a + width}) and [{b},{b + width}) overlap"
        )
    f1 = get_bits(x, lo1, width)
    f2 = get_bits(x, lo2, width)
    x = set_bits(x, lo1, width, f2)
    return set_bits(x, lo2, width, f1)


def group_offsets(ks: Sequence[int]) -> List[int]:
    """Partial sums ``n_0 = 0, n_1 = k_1, ..., n_l = sum(k_i)``.

    Group ``i`` (1-based, as in the paper) occupies bits
    ``[n_{i-1}, n_i)`` of an address.
    """
    offs = [0]
    for k in ks:
        if k < 1:
            raise ValueError(f"all k_i must be >= 1, got {list(ks)}")
        offs.append(offs[-1] + k)
    return offs


def level_swap(x: int, ks: Sequence[int], level: int) -> int:
    """The paper's level-``i`` swap ``sigma_i`` for an address in ``SN(l, Q_{k1})``.

    Swaps the ``level``-th bit group (bits ``[n_{level-1}, n_level)``) with
    the rightmost ``k_level`` bits.  ``level`` is 1-based; ``level == 1`` is
    the identity (nucleus dimensions are exchanged bit-wise, not swapped).
    """
    if not 1 <= level <= len(ks):
        raise ValueError(f"level must be in [1, {len(ks)}], got {level}")
    if level == 1:
        return x
    offs = group_offsets(ks)
    return swap_bit_groups(x, offs[level - 1], 0, ks[level - 1])


def flip_bit_array(x: np.ndarray, i: int) -> np.ndarray:
    """Element-wise :func:`flip_bit` on an int64 array."""
    if i < 0:
        raise ValueError(f"bit index must be non-negative, got {i}")
    return x ^ (1 << i)


def level_swap_array(x: np.ndarray, ks: Sequence[int], level: int) -> np.ndarray:
    """Element-wise :func:`level_swap` (the paper's ``sigma_i``) on int64.

    Swapping the ``level``-th bit group with the rightmost ``k_level`` bits
    needs only shifts and masks, so the whole address vector is transformed
    in a handful of numpy ops.
    """
    if not 1 <= level <= len(ks):
        raise ValueError(f"level must be in [1, {len(ks)}], got {level}")
    if level == 1:
        return x
    offs = group_offsets(ks)
    k = ks[level - 1]
    lo = offs[level - 1]
    mask = (1 << k) - 1
    low = x & mask
    high = (x >> lo) & mask
    cleared = x & ~((mask << lo) | mask)
    return cleared | (low << lo) | high


def is_power_of_two(x: int) -> bool:
    """True iff ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact integer log2; raises if ``x`` is not a power of two."""
    if not is_power_of_two(x):
        raise ValueError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


def popcount(x: int) -> int:
    """Number of set bits of ``x``."""
    if x < 0:
        raise ValueError("popcount of negative value")
    return x.bit_count()


def bit_reverse(x: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``x`` (used by the FFT flow-graph check)."""
    r = 0
    for _ in range(width):
        r = (r << 1) | (x & 1)
        x >>= 1
    return r


def to_bit_string(x: int, width: int) -> str:
    """Render ``x`` as a ``width``-character binary string, MSB first."""
    if x < 0 or x >= (1 << width):
        raise ValueError(f"{x} does not fit in {width} bits")
    return format(x, f"0{width}b")


def from_bit_string(s: str) -> int:
    """Parse a binary string (MSB first) into an integer."""
    if not s or any(c not in "01" for c in s):
        raise ValueError(f"not a binary string: {s!r}")
    return int(s, 2)


def all_addresses(width: int) -> Iterable[int]:
    """Iterate all ``2**width`` addresses of the given width."""
    return range(1 << width)
