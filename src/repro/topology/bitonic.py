"""Batcher bitonic sorting networks.

The paper's introduction cites "renewed interest in VLSI layouts of
switching and sorting networks" and references Even et al.'s layout of
the Batcher bitonic sorter [11].  The bitonic sorter on ``R = 2**r``
wires is a multistage network of ``r(r+1)/2`` compare-exchange stages;
like a butterfly, each stage boundary pairs wires differing in a single
address bit, so the whole machinery here (stage-column layouts, row
packaging) applies directly.

:func:`bitonic_schedule` gives the per-boundary exchange bits (and the
merge phase each belongs to); :func:`bitonic_sort` executes the network
on data (vectorised), which the tests verify against ``sorted`` and the
0-1 principle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from .bits import ilog2
from .graph import Graph

__all__ = ["bitonic_schedule", "bitonic_num_stages", "bitonic_sort", "BitonicNetwork"]


def bitonic_num_stages(r: int) -> int:
    """Compare-exchange stage count: ``r (r + 1) / 2``."""
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    return r * (r + 1) // 2


def bitonic_schedule(r: int) -> List[Tuple[int, int]]:
    """The network's boundary schedule: ``(phase_bit, exchange_bit)``.

    Phase ``k`` (``k = 1..r``) merges bitonic runs of length ``2**k``; its
    steps compare wires differing in bit ``j`` for ``j = k-1 .. 0``.  The
    comparison direction on a pair is ascending iff bit ``k`` of the wire
    index is 0 (i.e. the pair sits in an ascending run).
    """
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    return [(k, j) for k in range(1, r + 1) for j in range(k - 1, -1, -1)]


def bitonic_sort(values: Sequence[float]) -> np.ndarray:
    """Sort by executing the bitonic network (each step vectorised)."""
    arr = np.asarray(values).copy()
    R = len(arr)
    if R < 2 or R & (R - 1):
        raise ValueError(f"length must be a power of two >= 2, got {R}")
    r = ilog2(R)
    idx = np.arange(R)
    for k, j in bitonic_schedule(r):
        bit = 1 << j
        lo = idx[(idx & bit) == 0]
        hi = lo | bit
        ascending = (lo & (1 << k)) == 0
        a, b = arr[lo], arr[hi]
        small, big = np.minimum(a, b), np.maximum(a, b)
        arr[lo] = np.where(ascending, small, big)
        arr[hi] = np.where(ascending, big, small)
    return arr


@dataclass(frozen=True)
class BitonicNetwork:
    """The sorter as a multistage network (flow-graph view)."""

    r: int

    def __post_init__(self) -> None:
        if self.r < 1:
            raise ValueError(f"r must be >= 1, got {self.r}")

    @property
    def rows(self) -> int:
        return 1 << self.r

    @property
    def boundaries(self) -> List[int]:
        """Exchange bit per stage boundary."""
        return [j for _k, j in bitonic_schedule(self.r)]

    @property
    def stages(self) -> int:
        return bitonic_num_stages(self.r) + 1

    @property
    def num_nodes(self) -> int:
        return self.stages * self.rows

    @property
    def num_edges(self) -> int:
        return 2 * self.rows * (self.stages - 1)

    def links(self) -> Iterator[Tuple[Tuple[int, int], Tuple[int, int], str]]:
        for s, t in enumerate(self.boundaries):
            bit = 1 << t
            for u in range(self.rows):
                yield ((u, s), (u, s + 1), "straight")
                yield ((u, s), (u ^ bit, s + 1), "cross")

    def graph(self) -> Graph:
        g = Graph(name=f"bitonic_{self.r}")
        for s in range(self.stages):
            for u in range(self.rows):
                g.add_node((u, s))
        for u, v, _k in self.links():
            g.add_edge(u, v)
        return g

    def offmodule_links_per_module(self, k: int) -> int:
        """Row partition (``2**k`` rows/module): boundaries on bits
        ``>= k`` leave — ``(r - k)(r - k + 1)/2 + k (r - k)`` of them."""
        if not 0 <= k <= self.r:
            raise ValueError(f"k must be in [0, {self.r}], got {k}")
        leaving = sum(1 for t in self.boundaries if t >= k)
        return 2 * leaving * (1 << k)
