"""Hypercubes and generalized hypercubes.

``Q_k`` is the nucleus of the paper's swap networks.  The 2-dimensional
radix-``r`` *generalized hypercube* (Bhuyan–Agrawal) appears in Section 3.2:
merging each nucleus of ``HSN(3, Q_{n/3})`` into a supernode yields a
``GHC`` where every pair of supernodes in the same row or column of a 2-D
arrangement is adjacent — which is exactly why the inter-block wiring of
the butterfly layout reduces to collinear layouts of complete graphs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .graph import Graph, edge_array

__all__ = ["hypercube_graph", "generalized_hypercube_graph"]


def hypercube_graph(k: int) -> Graph:
    """The binary ``k``-cube ``Q_k`` on nodes ``0 .. 2**k - 1``."""
    if k < 0:
        raise ValueError(f"hypercube dimension must be >= 0, got {k}")
    g = Graph(name=f"Q_{k}")
    if k == 0:
        g.add_node(0)  # Q_0 is a single node with no edges
    else:
        u = np.arange(1 << k, dtype=np.int64)
        # dimension i pairs u with u ^ 2**i; keep each pair once (u < v)
        chunks = []
        for i in range(k):
            lo = u[(u >> i) & 1 == 0]
            chunks.append(edge_array(lo, lo | (1 << i)))
        g.add_edges_from(np.concatenate(chunks))
    return g


def generalized_hypercube_graph(radices: Sequence[int]) -> Graph:
    """Generalized hypercube ``GHC(r_1, ..., r_d)``.

    Nodes are tuples ``(a_1, ..., a_d)`` with ``a_i in [0, r_i)``; two nodes
    are adjacent iff they differ in exactly one coordinate.  The paper's
    "2-dimensional radix-``2**(n/3)`` generalized hypercube" is
    ``generalized_hypercube_graph([2**(n//3)] * 2)``.
    """
    if not radices or any(r < 2 for r in radices):
        raise ValueError(f"all radices must be >= 2, got {list(radices)}")
    # All radices are >= 2, so every node has a neighbor: the bulk edge
    # insert below introduces the whole node set.
    g = Graph(name="GHC(" + ",".join(map(str, radices)) + ")")
    d = len(radices)
    grid = np.stack(
        np.meshgrid(*(np.arange(r, dtype=np.int64) for r in radices), indexing="ij"),
        axis=-1,
    ).reshape(-1, d)
    chunks = []
    for pos, r in enumerate(radices):
        for lo in range(r - 1):
            for hi in range(lo + 1, r):
                src = grid[grid[:, pos] == lo]
                dst = src.copy()
                dst[:, pos] = hi
                chunks.append(np.stack([src, dst], axis=1))
    g.add_edges_from(np.concatenate(chunks))
    return g
