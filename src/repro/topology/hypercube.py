"""Hypercubes and generalized hypercubes.

``Q_k`` is the nucleus of the paper's swap networks.  The 2-dimensional
radix-``r`` *generalized hypercube* (Bhuyan–Agrawal) appears in Section 3.2:
merging each nucleus of ``HSN(3, Q_{n/3})`` into a supernode yields a
``GHC`` where every pair of supernodes in the same row or column of a 2-D
arrangement is adjacent — which is exactly why the inter-block wiring of
the butterfly layout reduces to collinear layouts of complete graphs.
"""

from __future__ import annotations

from itertools import product
from typing import Sequence

from .bits import flip_bit
from .graph import Graph

__all__ = ["hypercube_graph", "generalized_hypercube_graph"]


def hypercube_graph(k: int) -> Graph:
    """The binary ``k``-cube ``Q_k`` on nodes ``0 .. 2**k - 1``."""
    if k < 0:
        raise ValueError(f"hypercube dimension must be >= 0, got {k}")
    g = Graph(name=f"Q_{k}")
    g.add_nodes(range(1 << k))
    for u in range(1 << k):
        for i in range(k):
            v = flip_bit(u, i)
            if u < v:
                g.add_edge(u, v)
    return g


def generalized_hypercube_graph(radices: Sequence[int]) -> Graph:
    """Generalized hypercube ``GHC(r_1, ..., r_d)``.

    Nodes are tuples ``(a_1, ..., a_d)`` with ``a_i in [0, r_i)``; two nodes
    are adjacent iff they differ in exactly one coordinate.  The paper's
    "2-dimensional radix-``2**(n/3)`` generalized hypercube" is
    ``generalized_hypercube_graph([2**(n//3)] * 2)``.
    """
    if not radices or any(r < 2 for r in radices):
        raise ValueError(f"all radices must be >= 2, got {list(radices)}")
    g = Graph(name="GHC(" + ",".join(map(str, radices)) + ")")
    for node in product(*(range(r) for r in radices)):
        g.add_node(node)
    for node in product(*(range(r) for r in radices)):
        for pos, r in enumerate(radices):
            for alt in range(node[pos] + 1, r):
                other = node[:pos] + (alt,) + node[pos + 1 :]
                g.add_edge(node, other)
    return g
