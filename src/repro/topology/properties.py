"""Graph-theoretic property calculators used by the analysis layer.

Exact bisection width of complete graphs (Appendix B's lower-bound match),
average distance in butterflies (the injection-rate argument of Section
2.3), and small generic helpers.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable

from .graph import Graph

__all__ = [
    "complete_graph_bisection_width",
    "butterfly_average_distance",
    "bfs_distances",
    "diameter",
]


def complete_graph_bisection_width(n: int) -> int:
    """Bisection width of ``K_n``: ``n**2 / 4`` for even ``n`` and
    ``(n**2 - 1) / 4`` for odd ``n`` — i.e. ``floor(n/2) * ceil(n/2)``.

    Appendix B shows the optimal collinear layout meets this exactly:
    ``floor(n**2 / 4)`` tracks.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return (n // 2) * ((n + 1) // 2)


def butterfly_average_distance(n: int, samples: int = 0) -> float:
    """Average forward distance between a random stage-0 node and a random
    stage-``n`` node of ``B_n``: exactly ``n`` hops (every input-output
    path traverses all ``n`` stage boundaries).  Provided as a function so
    the injection-rate bound can cite a computed quantity; ``samples`` is
    accepted for signature compatibility with sampled estimators."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return float(n)


def bfs_distances(g: Graph, source: Hashable) -> Dict[Hashable, int]:
    """Unweighted shortest-path distances from ``source``."""
    dist = {source: 0}
    q = deque([source])
    while q:
        u = q.popleft()
        for v in g.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                q.append(v)
    return dist


def diameter(g: Graph) -> int:
    """Exact diameter by all-sources BFS (small graphs only)."""
    best = 0
    for u in g.nodes():
        d = bfs_distances(g, u)
        if len(d) != g.num_nodes:
            raise ValueError("graph is disconnected")
        best = max(best, max(d.values()))
    return best
