"""The naive packaging baseline the paper compares against (Section 2.3).

"As a basis for comparison, the average number of off-module links per
node when placing consecutive rows of a butterfly network onto the same
module is approximately equal to 2."

Placing ``m`` consecutive rows of a *plain* butterfly per module leaves
all cross links on high row bits crossing module boundaries: for module
size ``m = 2**b`` there are ``n - b`` stage boundaries whose cross links
leave (those on bits ``>= b``), two link endpoints per node pair — about
``2 (n - b) 2**b`` pins per module, i.e. ~2 per node for ``b << n``.

Exact counting shares the packaging layer's columnar style: the cross
links of ``B_n`` are one flip-bit table ``rows ^ 2**s`` (built once per
dimension and reused across *all* candidate module sizes by
:func:`max_rows_within_pin_limit`, which previously re-enumerated
``O(n 2**n)`` links per candidate); crossing endpoints are
``bincount``-ed per module.  The per-link Python loop survives as
:meth:`NaiveRowPartition.exact_pin_counts_legacy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Dict, Tuple

import numpy as np

from ..topology.bits import flip_bit
from ..topology.butterfly import Butterfly

__all__ = [
    "NaiveRowPartition",
    "naive_offmodule_per_module",
    "naive_avg_per_node",
    "max_rows_within_pin_limit",
    "naive_module_count",
    "paper_estimate_max_rows",
    "paper_estimate_module_count",
]


@lru_cache(maxsize=8)
def _flip_table(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """``(rows, rows ^ 2**s)`` for ``B_n``: every cross-link row pair, one
    ``(n, 2**n)`` int64 table shared across all module sizes."""
    rows = np.arange(1 << n, dtype=np.int64)
    flipped = rows[None, :] ^ (np.int64(1) << np.arange(n, dtype=np.int64))[:, None]
    return rows, flipped


def _naive_pin_counts(n: int, rows_per_module: int) -> np.ndarray:
    """Off-module link endpoints per module, columnar.

    Each stage boundary carries *two* cross links per row pair —
    ``(r, s)-(r^2^s, s+1)`` and ``(r^2^s, s)-(r, s+1)`` — so every row
    contributes one outgoing cross link per boundary: the ``(n, 2**n)``
    flip table *is* the directed cross-link set.
    """
    rows, flipped = _flip_table(n)
    num_modules = -((1 << n) // -rows_per_module)
    mu = rows // rows_per_module
    mv = flipped // rows_per_module
    cross = mu[None, :] != mv
    ids = np.concatenate(
        [np.broadcast_to(mu, mv.shape)[cross], mv[cross]]
    )
    return np.bincount(ids, minlength=num_modules)


@dataclass
class NaiveRowPartition:
    """``rows_per_module`` consecutive rows of ``B_n`` per module.

    ``rows_per_module`` need not be a power of two (the Section 5.2
    comparison uses 3 rows per chip).
    """

    bfly: Butterfly
    rows_per_module: int

    def __post_init__(self) -> None:
        if not 1 <= self.rows_per_module <= self.bfly.rows:
            raise ValueError(
                f"rows_per_module must be in [1, {self.bfly.rows}]"
            )

    def module_of(self, node: Tuple[int, int]) -> int:
        return node[0] // self.rows_per_module

    def module_ids(self, rows: np.ndarray, stages: np.ndarray = None) -> np.ndarray:
        """Columnar ``module_of``; stages are irrelevant to row packing."""
        return np.asarray(rows, dtype=np.int64) // self.rows_per_module

    @property
    def num_modules(self) -> int:
        return -(-self.bfly.rows // self.rows_per_module)

    def exact_pin_counts(self) -> Dict[int, int]:
        """Off-module link endpoints per module, by the columnar kernel."""
        counts = _naive_pin_counts(self.bfly.n, self.rows_per_module)
        return {m: int(c) for m, c in enumerate(counts)}

    def exact_pin_counts_legacy(self) -> Dict[int, int]:
        """The original per-link loop; kept as a differential oracle."""
        pins = {m: 0 for m in range(self.num_modules)}
        b = self.bfly
        for s in range(b.n):
            for r in range(b.rows):
                v = flip_bit(r, s)
                mu = r // self.rows_per_module
                mv = v // self.rows_per_module
                if mu != mv:
                    pins[mu] += 1
                    pins[mv] += 1
        return pins

    @property
    def max_pins(self) -> int:
        return int(_naive_pin_counts(self.bfly.n, self.rows_per_module).max())

    def avg_per_node(self) -> Fraction:
        pins = _naive_pin_counts(self.bfly.n, self.rows_per_module)
        total_nodes = self.bfly.num_nodes
        return Fraction(int(pins.sum()), total_nodes)


def naive_offmodule_per_module(n: int, b: int) -> int:
    """Closed form for ``2**b`` consecutive rows of ``B_n`` per module.

    Cross links on bit ``t >= b`` leave the module: per such boundary each
    of the ``2**b`` rows sends one cross link out and receives one in.
    """
    if not 0 <= b <= n:
        raise ValueError(f"b must be in [0, {n}], got {b}")
    return 2 * (n - b) * (1 << b)


def naive_avg_per_node(n: int, b: int) -> Fraction:
    """~2 for ``b << n``: ``2 (n - b) / (n + 1)``."""
    return Fraction(naive_offmodule_per_module(n, b), (n + 1) * (1 << b))


def max_rows_within_pin_limit(n: int, pin_limit: int) -> int:
    """Largest count of consecutive rows of ``B_n`` whose module needs at
    most ``pin_limit`` off-module links (Section 5.2: 3 rows for the
    64-pin chip on ``B_9``).

    One flip-bit table serves every candidate size: each candidate is a
    fresh integer division of the same row/flipped columns, not a fresh
    ``O(n 2**n)`` link enumeration.
    """
    rows = 1 << n
    best = 0
    for m in range(1, rows + 1):
        if int(_naive_pin_counts(n, m).max()) <= pin_limit:
            best = m
        elif best:
            break
    if best == 0:
        raise ValueError(f"even one row of B_{n} exceeds {pin_limit} pins")
    return best


def naive_module_count(n: int, pin_limit: int) -> int:
    """Modules needed by the naive scheme under a pin limit, using exact
    pin counts."""
    m = max_rows_within_pin_limit(n, pin_limit)
    return -(-(1 << n) // m)


def paper_estimate_max_rows(n: int, pin_limit: int) -> int:
    """The paper's own sizing of the naive scheme: "approximately 2
    off-module links per node", i.e. ``2 m (n+1) <= pin_limit``.

    Section 5.2 applies exactly this estimate: 3 rows of ``B_9`` under a
    64-pin chip.  (Exact counting is slightly kinder to the baseline for
    aligned power-of-two groups, where low-bit cross links stay inside —
    see :func:`max_rows_within_pin_limit`; we reproduce both figures.)
    """
    m = pin_limit // (2 * (n + 1))
    if m < 1:
        raise ValueError(f"pin limit {pin_limit} too small for B_{n}")
    return m


def paper_estimate_module_count(n: int, pin_limit: int) -> int:
    """§5.2's 171 chips: ``ceil(2**n / paper_estimate_max_rows)``."""
    return -(-(1 << n) // paper_estimate_max_rows(n, pin_limit))
