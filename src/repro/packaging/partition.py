"""Partitions of swap-butterflies onto modules (Section 2.3).

Two schemes from the paper:

* :class:`RowPartition` — ``2**k1`` consecutive swap-butterfly rows per
  module (all stages).  Straight and cross links are confined; only swap
  links leave.  This is the scheme of the board example (Section 5.2):
  for ``n = 9, k = (3,3,3)`` a module holds 80 nodes and has 56 off-module
  links.

* :class:`NucleusPartition` — one nucleus butterfly per module (the
  finer variant of Theorem 2.1): stage columns are cut at the composite
  boundaries into segments of sizes ``(k1 + 1, k2, ..., kl)`` and the rows
  of segment ``i`` are grouped ``2**k_i`` at a time.  Interior modules
  have ``k_i * 2**k_i`` nodes and exactly ``2**(k_i+2)`` off-module links.

Both classes expose ``module_of(node)`` plus exact enumeration helpers;
:mod:`repro.packaging.pins` counts off-module links for any partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from ..topology.swap import SwapNetworkParams
from ..transform.swap_butterfly import SwapButterfly

__all__ = ["Partition", "RowPartition", "NucleusPartition"]

Node = Tuple[int, int]


class Partition:
    """Interface: a map from swap-butterfly nodes to module ids."""

    sb: SwapButterfly

    def module_of(self, node: Node) -> Hashable:
        raise NotImplementedError

    def modules(self) -> List[Hashable]:
        seen = {}
        for s in range(self.sb.stages):
            for u in range(self.sb.rows):
                seen.setdefault(self.module_of((u, s)), None)
        return list(seen)

    def module_sizes(self) -> Dict[Hashable, int]:
        sizes: Dict[Hashable, int] = {}
        for s in range(self.sb.stages):
            for u in range(self.sb.rows):
                m = self.module_of((u, s))
                sizes[m] = sizes.get(m, 0) + 1
        return sizes

    @property
    def num_modules(self) -> int:
        return len(self.module_sizes())


@dataclass
class RowPartition(Partition):
    """``2**row_bits`` consecutive rows (all stages) per module."""

    sb: SwapButterfly
    row_bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.row_bits <= self.sb.n:
            raise ValueError(
                f"row_bits must be in [0, {self.sb.n}], got {self.row_bits}"
            )

    @classmethod
    def natural(cls, sb: SwapButterfly) -> "RowPartition":
        """The paper's choice: ``row_bits = k1`` so each module holds one
        cluster of every nucleus."""
        return cls(sb, sb.params.ks[0])

    def module_of(self, node: Node) -> int:
        return node[0] >> self.row_bits

    @property
    def rows_per_module(self) -> int:
        return 1 << self.row_bits

    @property
    def nodes_per_module(self) -> int:
        return self.rows_per_module * self.sb.stages

    @property
    def num_modules(self) -> int:
        return 1 << (self.sb.n - self.row_bits)


@dataclass
class NucleusPartition(Partition):
    """One nucleus butterfly per module (Theorem 2.1).

    Stage segments: segment 1 covers stages ``[0, k1]`` (the input stage
    rides along, so the first segment has ``k1 + 1`` columns); segment
    ``i >= 2`` covers ``[n_{i-1} + 1, n_i]``.  Rows of segment ``i`` are
    grouped ``2**k_i`` at a time.  Module id: ``(segment, row_group)``.
    """

    sb: SwapButterfly

    def segment_of_stage(self, s: int) -> int:
        """1-based segment of stage-column ``s``."""
        offs = self.sb.params.offsets
        for i in range(1, self.sb.params.l + 1):
            if s <= offs[i]:
                return i
        raise ValueError(f"stage {s} out of range")

    def module_of(self, node: Node) -> Tuple[int, int]:
        u, s = node
        seg = self.segment_of_stage(s)
        ki = self.sb.params.ks[seg - 1]
        return (seg, u >> ki)

    def segment_stage_range(self, seg: int) -> Tuple[int, int]:
        """Inclusive stage-column range of segment ``seg``."""
        offs = self.sb.params.offsets
        if seg == 1:
            return (0, offs[1])
        return (offs[seg - 1] + 1, offs[seg])

    def nodes_per_module(self, seg: int) -> int:
        lo, hi = self.segment_stage_range(seg)
        return (hi - lo + 1) * (1 << self.sb.params.ks[seg - 1])

    @property
    def max_nodes_per_module(self) -> int:
        return max(
            self.nodes_per_module(i) for i in range(1, self.sb.params.l + 1)
        )

    @property
    def num_modules(self) -> int:
        n = self.sb.n
        return sum(1 << (n - k) for k in self.sb.params.ks)
