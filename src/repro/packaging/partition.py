"""Partitions of swap-butterflies onto modules (Section 2.3).

Two schemes from the paper:

* :class:`RowPartition` — ``2**k1`` consecutive swap-butterfly rows per
  module (all stages).  Straight and cross links are confined; only swap
  links leave.  This is the scheme of the board example (Section 5.2):
  for ``n = 9, k = (3,3,3)`` a module holds 80 nodes and has 56 off-module
  links.

* :class:`NucleusPartition` — one nucleus butterfly per module (the
  finer variant of Theorem 2.1): stage columns are cut at the composite
  boundaries into segments of sizes ``(k1 + 1, k2, ..., kl)`` and the rows
  of segment ``i`` are grouped ``2**k_i`` at a time.  Interior modules
  have ``k_i * 2**k_i`` nodes and exactly ``2**(k_i+2)`` off-module links.

Both classes expose ``module_of(node)`` plus exact enumeration helpers.
The columnar interface — :meth:`Partition.module_ids` mapping int64
``(rows, stages)`` columns to dense int64 module codes, with
:meth:`Partition.module_labels` decoding codes back to the hashable ids
``module_of`` returns — is what :mod:`repro.packaging.pins` feeds whole
edge arrays through.  ``RowPartition`` and ``NucleusPartition`` resolve
codes by bit arithmetic; the base class falls back to a ``module_of``
enumeration, so any custom partition that only defines ``module_of``
still works (at legacy speed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

import numpy as np

from ..topology.swap import SwapNetworkParams
from ..transform.swap_butterfly import SwapButterfly

__all__ = ["Partition", "RowPartition", "NucleusPartition"]

Node = Tuple[int, int]


class Partition:
    """Interface: a map from swap-butterfly nodes to module ids."""

    sb: SwapButterfly

    def module_of(self, node: Node) -> Hashable:
        raise NotImplementedError

    # -- columnar interface ------------------------------------------------
    def module_ids(self, rows: np.ndarray, stages: np.ndarray) -> np.ndarray:
        """Dense int64 module codes of the nodes ``(rows[i], stages[i])``.

        Codes index :meth:`module_labels`.  Fallback implementation: a
        ``module_of`` loop against the first-seen code table (subclasses
        override with pure bit arithmetic).
        """
        table = {m: i for i, m in enumerate(self.module_labels())}
        rows = np.asarray(rows, dtype=np.int64)
        stages = np.asarray(stages, dtype=np.int64)
        return np.fromiter(
            (table[self.module_of((int(u), int(s)))] for u, s in zip(rows, stages)),
            dtype=np.int64,
            count=len(rows),
        )

    def module_labels(self) -> List[Hashable]:
        """Module ids indexed by code, in first-seen stage-major order
        (the order the legacy enumerators produced)."""
        seen: Dict[Hashable, None] = {}
        for s in range(self.sb.stages):
            for u in range(self.sb.rows):
                seen.setdefault(self.module_of((u, s)), None)
        return list(seen)

    # -- derived enumeration ----------------------------------------------
    def modules(self) -> List[Hashable]:
        return self.module_labels()

    def module_sizes(self) -> Dict[Hashable, int]:
        """Nodes per module, from one ``module_ids`` pass + ``bincount``."""
        labels = self.module_labels()
        rows = np.tile(np.arange(self.sb.rows, dtype=np.int64), self.sb.stages)
        stages = np.repeat(
            np.arange(self.sb.stages, dtype=np.int64), self.sb.rows
        )
        counts = np.bincount(
            self.module_ids(rows, stages), minlength=len(labels)
        )
        return {m: int(c) for m, c in zip(labels, counts)}

    def module_sizes_legacy(self) -> Dict[Hashable, int]:
        """The original per-node loop; kept as a differential oracle."""
        sizes: Dict[Hashable, int] = {}
        for s in range(self.sb.stages):
            for u in range(self.sb.rows):
                m = self.module_of((u, s))
                sizes[m] = sizes.get(m, 0) + 1
        return sizes

    @property
    def num_modules(self) -> int:
        return len(self.module_labels())


@dataclass
class RowPartition(Partition):
    """``2**row_bits`` consecutive rows (all stages) per module."""

    sb: SwapButterfly
    row_bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.row_bits <= self.sb.n:
            raise ValueError(
                f"row_bits must be in [0, {self.sb.n}], got {self.row_bits}"
            )

    @classmethod
    def natural(cls, sb: SwapButterfly) -> "RowPartition":
        """The paper's choice: ``row_bits = k1`` so each module holds one
        cluster of every nucleus."""
        return cls(sb, sb.params.ks[0])

    def module_of(self, node: Node) -> int:
        return node[0] >> self.row_bits

    def module_ids(self, rows: np.ndarray, stages: np.ndarray) -> np.ndarray:
        return np.asarray(rows, dtype=np.int64) >> self.row_bits

    def module_labels(self) -> List[int]:
        return list(range(self.num_modules))

    def module_sizes(self) -> Dict[int, int]:
        # closed form: every module holds the same full-stage row block
        return {m: self.nodes_per_module for m in range(self.num_modules)}

    @property
    def rows_per_module(self) -> int:
        return 1 << self.row_bits

    @property
    def nodes_per_module(self) -> int:
        return self.rows_per_module * self.sb.stages

    @property
    def num_modules(self) -> int:
        return 1 << (self.sb.n - self.row_bits)


@dataclass
class NucleusPartition(Partition):
    """One nucleus butterfly per module (Theorem 2.1).

    Stage segments: segment 1 covers stages ``[0, k1]`` (the input stage
    rides along, so the first segment has ``k1 + 1`` columns); segment
    ``i >= 2`` covers ``[n_{i-1} + 1, n_i]``.  Rows of segment ``i`` are
    grouped ``2**k_i`` at a time.  Module id: ``(segment, row_group)``.

    Codes are segment-major: segment ``i`` owns the dense code block
    ``[start_i, start_i + 2**(n - k_i))`` with ``start_i = sum_{j<i}
    2**(n - k_j)`` — the same order the stage-major node sweep first
    encounters the modules in.
    """

    sb: SwapButterfly

    def segment_of_stage(self, s: int) -> int:
        """1-based segment of stage-column ``s``."""
        offs = self.sb.params.offsets
        for i in range(1, self.sb.params.l + 1):
            if s <= offs[i]:
                return i
        raise ValueError(f"stage {s} out of range")

    def module_of(self, node: Node) -> Tuple[int, int]:
        u, s = node
        seg = self.segment_of_stage(s)
        ki = self.sb.params.ks[seg - 1]
        return (seg, u >> ki)

    # -- columnar tables ---------------------------------------------------
    def _code_tables(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-stage segment index (0-based), per-segment shift ``k_i``,
        and per-segment code block start; built once and cached."""
        cached = getattr(self, "_code_tables_cache", None)
        if cached is None:
            p = self.sb.params
            seg_of_stage = np.empty(self.sb.stages, dtype=np.int64)
            for s in range(self.sb.stages):
                seg_of_stage[s] = self.segment_of_stage(s) - 1
            ks = np.asarray(p.ks, dtype=np.int64)
            blocks = [1 << (p.n - k) for k in p.ks]
            starts = np.concatenate(
                ([0], np.cumsum(blocks[:-1], dtype=np.int64))
            ).astype(np.int64)
            cached = (seg_of_stage, ks, starts)
            self._code_tables_cache = cached
        return cached

    def module_ids(self, rows: np.ndarray, stages: np.ndarray) -> np.ndarray:
        seg_of_stage, ks, starts = self._code_tables()
        seg = seg_of_stage[np.asarray(stages, dtype=np.int64)]
        return starts[seg] + (np.asarray(rows, dtype=np.int64) >> ks[seg])

    def module_labels(self) -> List[Tuple[int, int]]:
        p = self.sb.params
        return [
            (i, g)
            for i in range(1, p.l + 1)
            for g in range(1 << (p.n - p.ks[i - 1]))
        ]

    def module_sizes(self) -> Dict[Tuple[int, int], int]:
        # closed form: every module of segment i has nodes_per_module(i)
        p = self.sb.params
        return {
            (i, g): self.nodes_per_module(i)
            for i in range(1, p.l + 1)
            for g in range(1 << (p.n - p.ks[i - 1]))
        }

    def segment_stage_range(self, seg: int) -> Tuple[int, int]:
        """Inclusive stage-column range of segment ``seg``."""
        offs = self.sb.params.offsets
        if seg == 1:
            return (0, offs[1])
        return (offs[seg - 1] + 1, offs[seg])

    def nodes_per_module(self, seg: int) -> int:
        lo, hi = self.segment_stage_range(seg)
        return (hi - lo + 1) * (1 << self.sb.params.ks[seg - 1])

    @property
    def max_nodes_per_module(self) -> int:
        return max(
            self.nodes_per_module(i) for i in range(1, self.sb.params.l + 1)
        )

    @property
    def num_modules(self) -> int:
        n = self.sb.n
        return sum(1 << (n - k) for k in self.sb.params.ks)
