"""Exact off-module link accounting plus the paper's closed forms.

The central quantities of Section 2.3:

* per-module off-module link counts (pin demand),
* the average number of off-module links per *node* — the paper's figure
  of merit, ``4(l-1)(2**k1 - 1) / ((n_l + 1) 2**k1) < 4/k1 = O(1/log N)``
  for the row partition,
* Theorem 2.1's per-module bound ``2**(k1+2)`` for the nucleus partition.

Exact counts are one columnar pass over the swap-butterfly's
``edge_array()``: map both endpoint columns through the partition's
vectorized ``module_ids``, compare, and ``np.bincount`` the crossing
endpoints into per-module pin counts.  The original per-link Python loop
survives as :func:`count_off_module_links_legacy`, the differential
oracle the tests hold the kernel to (same totals *and* the same
per-module dicts); the closed forms are provided independently so tests
can confirm all three agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable

import numpy as np

from ..backend import get_backend
from ..transform.swap_butterfly import SwapButterfly
from .partition import Partition

__all__ = [
    "PinReport",
    "count_off_module_links",
    "count_off_module_links_legacy",
    "row_partition_offmodule_per_module",
    "row_partition_avg_per_node",
    "row_partition_avg_bound",
    "nucleus_partition_module_bound",
]


@dataclass
class PinReport:
    """Exact pin accounting for one partition."""

    num_modules: int
    total_links: int
    off_module_links: int
    per_module: Dict[Hashable, int]
    nodes_per_module: Dict[Hashable, int]

    @property
    def max_per_module(self) -> int:
        return max(self.per_module.values(), default=0)

    @property
    def avg_per_node(self) -> Fraction:
        """Average off-module *link endpoints* per node: every off-module
        link consumes one pin at each of its two modules."""
        total_nodes = sum(self.nodes_per_module.values())
        return Fraction(2 * self.off_module_links, total_nodes)

    @property
    def avg_per_module(self) -> Fraction:
        return Fraction(
            sum(self.per_module.values()), max(self.num_modules, 1)
        )


def count_off_module_links(partition: Partition, backend=None) -> PinReport:
    """Columnar pin accounting: one pass over ``edge_array()``.

    Both endpoint columns go through the partition's vectorized
    ``module_ids``; crossing endpoints are ``bincount``-ed into per-module
    pin counts and decoded back to the partition's module labels.
    """
    be = get_backend(backend)
    sb = partition.sb
    ea = sb.cached_edge_array()
    mu = partition.module_ids(ea[:, 0, 0], ea[:, 0, 1])
    mv = partition.module_ids(ea[:, 1, 0], ea[:, 1, 1])
    cross = mu != mv
    labels = partition.module_labels()
    counts = be.bincount(
        np.concatenate([mu[cross], mv[cross]]), minlength=len(labels)
    )
    return PinReport(
        num_modules=len(labels),
        total_links=int(ea.shape[0]),
        off_module_links=int(np.count_nonzero(cross)),
        per_module={m: int(c) for m, c in zip(labels, counts)},
        nodes_per_module=partition.module_sizes(),
    )


def count_off_module_links_legacy(partition: Partition) -> PinReport:
    """The original per-link enumeration; kept as a differential oracle."""
    sb = partition.sb
    per_module: Dict[Hashable, int] = {}
    sizes = partition.module_sizes_legacy()
    for m in sizes:
        per_module[m] = 0
    off = 0
    total = 0
    for u, v, _kind in sb.links():
        total += 1
        mu, mv = partition.module_of(u), partition.module_of(v)
        if mu != mv:
            off += 1
            per_module[mu] += 1
            per_module[mv] += 1
    return PinReport(
        num_modules=len(sizes),
        total_links=total,
        off_module_links=off,
        per_module=per_module,
        nodes_per_module=sizes,
    )


# ---------------------------------------------------------------------------
# closed forms (Section 2.3)
# ---------------------------------------------------------------------------


def row_partition_offmodule_per_module(ks, row_bits=None) -> int:
    """Off-module links of one module under the row partition.

    For module = ``2**b`` consecutive rows (``b = k1`` by default): at each
    composite level ``i``, the rows whose level-``i`` swap leaves the module
    are those with ``u[0:k_i] != u[n_{i-1}:n_i]`` — ``2**b - 2**(b-k_i)``
    of them per module (``b >= k_i``) — each contributing 2 outgoing and,
    symmetrically, 2 incoming links.
    """
    from ..topology.swap import SwapNetworkParams

    p = SwapNetworkParams(ks)
    b = p.ks[0] if row_bits is None else row_bits
    total = 0
    for i in range(2, p.l + 1):
        ki = p.ks[i - 1]
        if b >= ki:
            leaving_rows = (1 << b) - (1 << (b - ki))
        else:
            leaving_rows = (1 << b)  # every row's swap leaves a small module
        total += 4 * leaving_rows
    return total


def row_partition_avg_per_node(ks) -> Fraction:
    """The paper's display: ``4(l-1)(2**k1 - 1) / ((n_l + 1) 2**k1)``.

    Exact for HSNs (all ``k_i`` equal); for mixed ``k_i`` the general form
    is ``sum_i 4 (2**k1 - 2**(k1-k_i)) / ((n_l + 1) 2**k1)``.
    """
    from ..topology.swap import SwapNetworkParams

    p = SwapNetworkParams(ks)
    k1, n = p.ks[0], p.n
    num = sum(4 * ((1 << k1) - (1 << (k1 - p.ks[i - 1]))) for i in range(2, p.l + 1))
    return Fraction(num, (n + 1) * (1 << k1))


def row_partition_avg_bound(ks) -> Fraction:
    """The paper's chain of bounds: ``... < 4(l-1)/(n_l+1) < 4/k1``."""
    from ..topology.swap import SwapNetworkParams

    p = SwapNetworkParams(ks)
    return Fraction(4, p.ks[0])


def nucleus_partition_module_bound(k1: int) -> int:
    """Theorem 2.1: at most ``2**(k1+2)`` off-module links per module."""
    if k1 < 1:
        raise ValueError(f"k1 must be >= 1, got {k1}")
    return 1 << (k1 + 2)
