"""Partitioning and packaging of butterfly networks (Sections 2 and 5)."""

from .baseline import (
    NaiveRowPartition,
    max_rows_within_pin_limit,
    naive_avg_per_node,
    naive_module_count,
    naive_offmodule_per_module,
    paper_estimate_max_rows,
    paper_estimate_module_count,
)
from .board import BoardDesign, ChipSpec, board_design, paper_board_example
from .hierarchy import HierarchicalDesign, LevelSpec, design_two_level
from .multilevel import LevelStats, multilevel_design, multilevel_pins
from .optimizer import (
    Candidate,
    enumerate_parameter_vectors,
    exact_pin_maxima,
    optimize_packaging,
)
from .partition import NucleusPartition, Partition, RowPartition
from .pins import (
    PinReport,
    count_off_module_links,
    count_off_module_links_legacy,
    nucleus_partition_module_bound,
    row_partition_avg_bound,
    row_partition_avg_per_node,
    row_partition_offmodule_per_module,
)

__all__ = [
    "Partition",
    "RowPartition",
    "NucleusPartition",
    "PinReport",
    "count_off_module_links",
    "count_off_module_links_legacy",
    "row_partition_offmodule_per_module",
    "row_partition_avg_per_node",
    "row_partition_avg_bound",
    "nucleus_partition_module_bound",
    "NaiveRowPartition",
    "naive_offmodule_per_module",
    "naive_avg_per_node",
    "max_rows_within_pin_limit",
    "naive_module_count",
    "paper_estimate_max_rows",
    "paper_estimate_module_count",
    "ChipSpec",
    "BoardDesign",
    "board_design",
    "paper_board_example",
    "LevelSpec",
    "HierarchicalDesign",
    "design_two_level",
    "Candidate",
    "enumerate_parameter_vectors",
    "exact_pin_maxima",
    "optimize_packaging",
    "LevelStats",
    "multilevel_design",
    "multilevel_pins",
]
