"""The hierarchical layout model (Section 5.1).

An ``l``-level hierarchical layout composes modules: a level-``i`` module
consists of level-``(i-1)`` modules interconnected by level-``i`` wires;
level-0 modules are network nodes.  Each level carries its own constraints
(maximum pins, maximum side, wire width).  Viewing level-``(i-1)`` modules
as supernodes, every level is a multilayer layout — so the multilayer
model is the one-level special case.

This module provides the constraint records and a two-level composer for
butterflies built from the paper's partitions; Section 5.2's concrete
instance lives in :mod:`repro.packaging.board`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..topology.swap import SwapNetworkParams
from ..transform.swap_butterfly import SwapButterfly
from .board import BoardDesign, ChipSpec, board_design
from .pins import row_partition_offmodule_per_module

__all__ = ["LevelSpec", "HierarchicalDesign", "design_two_level"]


@dataclass(frozen=True)
class LevelSpec:
    """Packaging constraints of one hierarchy level.

    ``None`` means unconstrained.  ``wire_width`` scales the channel
    tracks of that level's layout (the paper notes minimum wire widths
    differ between chip, board and cabinet levels).
    """

    name: str
    max_pins: Optional[int] = None
    max_side: Optional[int] = None
    wire_width: int = 1
    wiring_layers: int = 2

    def __post_init__(self) -> None:
        if self.wire_width < 1 or self.wiring_layers < 2:
            raise ValueError("wire width >= 1 and layers >= 2 required")


@dataclass
class HierarchicalDesign:
    """A validated multi-level design with per-level statistics."""

    n: int
    ks: Tuple[int, int, int]
    levels: Tuple[LevelSpec, ...]
    board: BoardDesign
    violations: List[str] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return not self.violations

    def summary(self) -> Dict[str, object]:
        s: Dict[str, object] = dict(self.board.summary())
        s["feasible"] = self.feasible
        s["violations"] = list(self.violations)
        return s


def design_two_level(
    ks: Sequence[int],
    chip_level: LevelSpec,
    board_level: LevelSpec,
    verify_exact: bool = False,
) -> HierarchicalDesign:
    """Compose a chip+board design and check it against both level specs.

    Chip side must be given (``chip_level.max_side``); the board's channel
    tracks are scaled by ``board_level.wire_width`` and folded onto
    ``board_level.wiring_layers`` layers.  ``verify_exact`` is forwarded
    to :func:`~repro.packaging.board.board_design` to re-check the
    closed-form chip pin count against the columnar enumeration.
    """
    if chip_level.max_side is None:
        raise ValueError("chip level needs max_side (chips are placed as squares)")
    params = SwapNetworkParams(ks)
    pins = row_partition_offmodule_per_module(params.ks)
    violations: List[str] = []
    if chip_level.max_pins is not None and pins > chip_level.max_pins:
        violations.append(
            f"chip pins {pins} exceed limit {chip_level.max_pins}"
        )
    chip = ChipSpec(
        max_pins=chip_level.max_pins if chip_level.max_pins is not None else pins,
        side=chip_level.max_side,
    )
    try:
        bd = board_design(
            params.ks, chip, layers=board_level.wiring_layers,
            verify_exact=verify_exact,
        )
    except ValueError as e:
        # infeasible partition: report with a degenerate board
        raise ValueError(f"two-level design infeasible: {e}") from e
    if board_level.wire_width != 1:
        w = board_level.wire_width
        side_x = bd.grid_cols * (chip.side + bd.wire_space_between_chips * w)
        side_y = bd.grid_rows * (chip.side + bd.channel_tracks * w)
        bd.board_side_x, bd.board_side_y = side_x, side_y
        bd.board_area = side_x * side_y
    if board_level.max_side is not None and (
        bd.board_side_x > board_level.max_side
        or bd.board_side_y > board_level.max_side
    ):
        violations.append(
            f"board side {max(bd.board_side_x, bd.board_side_y)} exceeds "
            f"limit {board_level.max_side}"
        )
    return HierarchicalDesign(
        n=params.n,
        ks=params.ks,
        levels=(chip_level, board_level),
        board=bd,
        violations=violations,
    )
