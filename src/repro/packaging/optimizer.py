"""Parameter selection under packaging constraints (Sections 2.3, 3.3, 5.2).

"By appropriately selecting parameters for the indirect swap network to be
transformed, the resultant hierarchical layout for the butterfly network
can be adapted to various packaging constraints."  This module performs
that selection: enumerate admissible ``(l; k_1..k_l)`` vectors for a
target dimension ``n``, score each against module-size and pin limits,
and rank by (number of modules, pins per module, board area when l = 3).

It also encodes the paper's observation that when module size is the
binding constraint, a *larger* ``k1`` with a *smaller* ``l`` (the nucleus
variant) can beat the row partition for practically sized networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Iterator, List, Optional, Tuple

from ..topology.swap import SwapNetworkParams
from .pins import (
    nucleus_partition_module_bound,
    row_partition_avg_per_node,
    row_partition_offmodule_per_module,
)

__all__ = ["Candidate", "enumerate_parameter_vectors", "optimize_packaging"]


@dataclass(frozen=True)
class Candidate:
    """One scored parameter choice."""

    ks: Tuple[int, ...]
    scheme: str  # 'row' | 'nucleus'
    num_modules: int
    max_nodes_per_module: int
    pins_per_module: int
    avg_links_per_node: Fraction

    @property
    def l(self) -> int:
        return len(self.ks)

    def sort_key(self) -> Tuple:
        return (
            self.num_modules,
            self.pins_per_module,
            float(self.avg_links_per_node),
        )


def enumerate_parameter_vectors(
    n: int, max_l: int = 4
) -> Iterator[Tuple[int, ...]]:
    """All HSN-like vectors ``(k_1 >= k_2 >= ... >= k_l)`` summing to ``n``.

    The paper's layouts require ``k_i <= k_1``; we enumerate the
    non-increasing representatives (order of the tail levels only permutes
    clusters).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")

    def rec(remaining: int, cap: int, prefix: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
        if remaining == 0:
            yield prefix
            return
        if len(prefix) == max_l:
            return
        for k in range(min(cap, remaining), 0, -1):
            # validity: k_i <= n_{i-1} for i >= 2 (SwapNetworkParams rule)
            if prefix and k > sum(prefix):
                continue
            yield from rec(remaining - k, k, prefix + (k,))

    yield from rec(n, n, ())


def _candidates_for(ks: Tuple[int, ...]) -> Iterator[Candidate]:
    params = SwapNetworkParams(ks)
    n, l, k1 = params.n, params.l, params.ks[0]
    if l >= 2:
        yield Candidate(
            ks=params.ks,
            scheme="row",
            num_modules=1 << (n - k1),
            max_nodes_per_module=(1 << k1) * (n + 1),
            pins_per_module=row_partition_offmodule_per_module(params.ks),
            avg_links_per_node=row_partition_avg_per_node(params.ks),
        )
        # nucleus scheme: interior modules have k_i * 2**k_i nodes and
        # 2**(k_i + 2) pins; the first segment carries the input stage.
        num = sum(1 << (n - k) for k in params.ks)
        max_nodes = max(
            (params.ks[0] + 1) * (1 << params.ks[0]),
            *(k * (1 << k) for k in params.ks),
        )
        pins = nucleus_partition_module_bound(k1)
        # every composite-boundary link crosses modules under this scheme:
        # 2 * 2**n links per boundary, (l-1) boundaries, 2 pins per link.
        yield Candidate(
            ks=params.ks,
            scheme="nucleus",
            num_modules=num,
            max_nodes_per_module=max_nodes,
            pins_per_module=pins,
            avg_links_per_node=Fraction(4 * (l - 1), n + 1),
        )


def optimize_packaging(
    n: int,
    max_nodes_per_module: Optional[int] = None,
    max_pins_per_module: Optional[int] = None,
    max_l: int = 4,
) -> List[Candidate]:
    """Feasible candidates for ``B_n``, best first.

    Ranking follows the paper's priorities: fewest modules, then fewest
    pins, then lowest average off-module links per node.
    """
    out: List[Candidate] = []
    for ks in enumerate_parameter_vectors(n, max_l=max_l):
        if len(ks) < 2:
            continue  # no partitioning benefit from a single level
        for cand in _candidates_for(ks):
            if (
                max_nodes_per_module is not None
                and cand.max_nodes_per_module > max_nodes_per_module
            ):
                continue
            if (
                max_pins_per_module is not None
                and cand.pins_per_module > max_pins_per_module
            ):
                continue
            out.append(cand)
    out.sort(key=Candidate.sort_key)
    return out
