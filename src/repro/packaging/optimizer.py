"""Parameter selection under packaging constraints (Sections 2.3, 3.3, 5.2).

"By appropriately selecting parameters for the indirect swap network to be
transformed, the resultant hierarchical layout for the butterfly network
can be adapted to various packaging constraints."  This module performs
that selection: enumerate admissible ``(l; k_1..k_l)`` vectors for a
target dimension ``n``, score each against module-size and pin limits,
and rank by (number of modules, pins per module, board area when l = 3).

It also encodes the paper's observation that when module size is the
binding constraint, a *larger* ``k1`` with a *smaller* ``l`` (the nucleus
variant) can beat the row partition for practically sized networks.

``optimize_packaging(..., exact=True)`` additionally verifies every
candidate's closed-form pin count against the columnar
:func:`~repro.packaging.pins.count_off_module_links` kernel: both schemes
of one parameter vector share a single memoized swap-butterfly edge
array, vectors are batched, and ``workers > 1`` fans the batches out to
a :mod:`multiprocessing` pool (mirroring ``sweep_rates`` from the
queued-routing engine).  A row candidate whose exact count diverges from
the closed form raises; a nucleus candidate must respect Theorem 2.1's
``2**(k1+2)`` bound.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace
from fractions import Fraction
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..backend import ArrayBackend
from ..backend.shm import attach_cached, share_arrays
from ..topology.swap import SwapNetworkParams
from ..transform.swap_butterfly import SwapButterfly
from .partition import NucleusPartition, RowPartition
from .pins import (
    count_off_module_links,
    nucleus_partition_module_bound,
    row_partition_avg_per_node,
    row_partition_offmodule_per_module,
)

__all__ = [
    "Candidate",
    "enumerate_parameter_vectors",
    "exact_pin_maxima",
    "optimize_packaging",
]


@dataclass(frozen=True)
class Candidate:
    """One scored parameter choice.

    ``exact_pins`` is populated (and checked against the closed form) only
    by ``optimize_packaging(..., exact=True)``; the nucleus scheme's
    closed form is Theorem 2.1's *bound*, so its exact count may be
    smaller (boundary segments have one-sided composite boundaries).
    """

    ks: Tuple[int, ...]
    scheme: str  # 'row' | 'nucleus'
    num_modules: int
    max_nodes_per_module: int
    pins_per_module: int
    avg_links_per_node: Fraction
    exact_pins: Optional[int] = None

    @property
    def l(self) -> int:
        return len(self.ks)

    def sort_key(self) -> Tuple:
        return (
            self.num_modules,
            self.pins_per_module,
            float(self.avg_links_per_node),
        )


def enumerate_parameter_vectors(
    n: int, max_l: int = 4
) -> Iterator[Tuple[int, ...]]:
    """All HSN-like vectors ``(k_1 >= k_2 >= ... >= k_l)`` summing to ``n``.

    The paper's layouts require ``k_i <= k_1``; we enumerate the
    non-increasing representatives (order of the tail levels only permutes
    clusters).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")

    def rec(remaining: int, cap: int, prefix: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
        if remaining == 0:
            yield prefix
            return
        if len(prefix) == max_l:
            return
        for k in range(min(cap, remaining), 0, -1):
            # validity: k_i <= n_{i-1} for i >= 2 (SwapNetworkParams rule)
            if prefix and k > sum(prefix):
                continue
            yield from rec(remaining - k, k, prefix + (k,))

    yield from rec(n, n, ())


def _candidates_for(ks: Tuple[int, ...]) -> Iterator[Candidate]:
    params = SwapNetworkParams(ks)
    n, l, k1 = params.n, params.l, params.ks[0]
    if l >= 2:
        yield Candidate(
            ks=params.ks,
            scheme="row",
            num_modules=1 << (n - k1),
            max_nodes_per_module=(1 << k1) * (n + 1),
            pins_per_module=row_partition_offmodule_per_module(params.ks),
            avg_links_per_node=row_partition_avg_per_node(params.ks),
        )
        # nucleus scheme: interior modules have k_i * 2**k_i nodes and
        # 2**(k_i + 2) pins; the first segment carries the input stage.
        num = sum(1 << (n - k) for k in params.ks)
        max_nodes = max(
            (params.ks[0] + 1) * (1 << params.ks[0]),
            *(k * (1 << k) for k in params.ks),
        )
        pins = nucleus_partition_module_bound(k1)
        # every composite-boundary link crosses modules under this scheme:
        # 2 * 2**n links per boundary, (l-1) boundaries, 2 pins per link.
        yield Candidate(
            ks=params.ks,
            scheme="nucleus",
            num_modules=num,
            max_nodes_per_module=max_nodes,
            pins_per_module=pins,
            avg_links_per_node=Fraction(4 * (l - 1), n + 1),
        )


def _exact_pin_maxima_sb(sb: SwapButterfly, backend=None) -> Dict[str, int]:
    """Exact max off-module links per module for both schemes of ``sb``."""
    return {
        "row": count_off_module_links(
            RowPartition.natural(sb), backend=backend
        ).max_per_module,
        "nucleus": count_off_module_links(
            NucleusPartition(sb), backend=backend
        ).max_per_module,
    }


@lru_cache(maxsize=256)
def exact_pin_maxima(ks: Tuple[int, ...], backend=None) -> Dict[str, int]:
    """Exact max off-module links per module for both schemes of ``ks``.

    One swap-butterfly (and one memoized edge array) serves both the row
    and the nucleus partition; results are cached per parameter vector so
    repeated sweeps over overlapping grids never re-count.
    """
    return _exact_pin_maxima_sb(SwapButterfly.from_ks(ks), backend=backend)


def _exact_chunk(args) -> Dict[Tuple[int, ...], Dict[str, int]]:
    """Module-level worker so multiprocessing chunks pickle cleanly."""
    ks_batch, backend = args
    return {ks: exact_pin_maxima(ks, backend) for ks in ks_batch}


def _exact_chunk_shm(args) -> Dict[Tuple[int, ...], Dict[str, int]]:
    """Pool worker that adopts parent-built edge arrays from shared memory.

    Each job pickles only ``(pack, ((ks, key), ...), backend)``: the
    worker rebuilds the cheap :class:`SwapButterfly` parameter object per
    vector and adopts the big memoized edge array as a zero-copy view of
    the block the parent packed once — no per-job pickle of the edge
    array in either direction.
    """
    pack, items, backend = args
    views = attach_cached(pack)
    out = {}
    for ks, key in items:
        sb = SwapButterfly.from_ks(ks)
        sb.adopt_edge_array(views[key])
        out[ks] = _exact_pin_maxima_sb(sb, backend=backend)
    return out


def optimize_packaging(
    n: int,
    max_nodes_per_module: Optional[int] = None,
    max_pins_per_module: Optional[int] = None,
    max_l: int = 4,
    exact: bool = False,
    workers: Optional[int] = None,
    batch: int = 8,
    backend=None,
) -> List[Candidate]:
    """Feasible candidates for ``B_n``, best first.

    Ranking follows the paper's priorities: fewest modules, then fewest
    pins, then lowest average off-module links per node.  Feasibility
    filters always use the closed forms (the nucleus bound is the pin
    *budget* a module must provision for); ``exact=True`` attaches the
    columnar exact count to every candidate and raises if a row
    candidate's closed form is wrong or a nucleus candidate exceeds
    Theorem 2.1's bound.
    """
    backend = backend.name if isinstance(backend, ArrayBackend) else backend
    vectors = [
        ks for ks in enumerate_parameter_vectors(n, max_l=max_l)
        if len(ks) >= 2  # no partitioning benefit from a single level
    ]
    exact_by_ks: Dict[Tuple[int, ...], Dict[str, int]] = {}
    if exact:
        batch = max(1, batch)
        chunks = [
            tuple(vectors[i : i + batch])
            for i in range(0, len(vectors), batch)
        ]
        if workers and workers > 1 and len(chunks) > 1:
            # build each vector's edge array once, publish all of them
            # through one shared block; workers adopt zero-copy views
            arrays = {}
            keyed = []
            for i, ks in enumerate(vectors):
                key = f"ea{i}"
                arrays[key] = SwapButterfly.from_ks(ks).cached_edge_array()
                keyed.append((ks, key))
            keyed_chunks = [
                tuple(keyed[i : i + batch])
                for i in range(0, len(keyed), batch)
            ]
            procs = min(workers, len(keyed_chunks))
            with share_arrays(**arrays) as pack:
                del arrays
                payloads = [(pack, c, backend) for c in keyed_chunks]
                with multiprocessing.get_context().Pool(procs) as pool:
                    parts = pool.map(_exact_chunk_shm, payloads)
        else:
            parts = [_exact_chunk((c, backend)) for c in chunks]
        for part in parts:
            exact_by_ks.update(part)

    out: List[Candidate] = []
    for ks in vectors:
        for cand in _candidates_for(ks):
            if (
                max_nodes_per_module is not None
                and cand.max_nodes_per_module > max_nodes_per_module
            ):
                continue
            if (
                max_pins_per_module is not None
                and cand.pins_per_module > max_pins_per_module
            ):
                continue
            if exact:
                measured = exact_by_ks[cand.ks][cand.scheme]
                if cand.scheme == "row" and measured != cand.pins_per_module:
                    raise AssertionError(
                        f"row closed form {cand.pins_per_module} != exact "
                        f"{measured} for ks={cand.ks}"
                    )
                if cand.scheme == "nucleus" and measured > cand.pins_per_module:
                    raise AssertionError(
                        f"nucleus exact {measured} exceeds Theorem 2.1 bound "
                        f"{cand.pins_per_module} for ks={cand.ks}"
                    )
                cand = replace(cand, exact_pins=measured)
            out.append(cand)
    out.sort(key=Candidate.sort_key)
    return out
