"""Multi-level packaging hierarchies (Section 2.3's extension).

"The proposed partitioning and packaging methods can be extended to the
case where there are more than two levels in the packaging hierarchy by
selecting appropriate ISNs ...  Since the module sizes at higher levels
are usually larger, the improvements over the simple partitioning and
packaging scheme are even more significant."

With parameters ``(k_1, ..., k_l)`` the natural nesting places
``2**n_i`` consecutive swap-butterfly rows into each level-``i`` module
(``n_i = k_1 + ... + k_i``): chips hold ``2**k1`` rows, boards hold
``2**k2`` chips, and so on.  A level-``i`` module's boundary is crossed
only by swap links of levels ``> i``:

    pins(i) = sum_{j > i} 4 (2**n_i - 2**(n_i - k_j))

— the closed form verified against exact enumeration in the tests.  The
naive comparison at level ``i`` is consecutive-row packing of the plain
butterfly with the same module size, ``~ 2 (n - n_i) 2**n_i`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence

from ..topology.swap import SwapNetworkParams
from ..transform.swap_butterfly import SwapButterfly
from .baseline import naive_offmodule_per_module
from .partition import RowPartition
from .pins import count_off_module_links

__all__ = ["LevelStats", "multilevel_pins", "multilevel_design"]


@dataclass(frozen=True)
class LevelStats:
    """Packaging statistics of one hierarchy level."""

    level: int
    row_bits: int  # n_i: rows per module = 2**n_i
    num_modules: int
    nodes_per_module: int
    pins_per_module: int  # our scheme, closed form (== exact; tested)
    naive_pins_same_size: int  # consecutive-row packing of the plain butterfly
    submodules_per_module: int  # level-(i-1) modules inside (2**k_i)

    @property
    def improvement(self) -> Fraction:
        if self.pins_per_module == 0:
            return Fraction(0)
        return Fraction(self.naive_pins_same_size, self.pins_per_module)


def multilevel_pins(ks: Sequence[int], level: int) -> int:
    """Closed form: off-module links per level-``level`` module."""
    p = SwapNetworkParams(ks)
    if not 1 <= level <= p.l:
        raise ValueError(f"level must be in [1, {p.l}], got {level}")
    ni = p.offsets[level]
    total = 0
    for j in range(level + 1, p.l + 1):
        kj = p.ks[j - 1]
        total += 4 * ((1 << ni) - (1 << (ni - kj)))
    return total


def multilevel_design(ks: Sequence[int], verify: bool = False) -> List[LevelStats]:
    """Per-level packaging statistics for the nested row hierarchy.

    ``verify=True`` additionally counts every link against each level's
    partition (the columnar kernel, sharing one memoized edge array
    across all ``l`` levels) and asserts the closed form.
    """
    p = SwapNetworkParams(ks)
    n = p.n
    sb = SwapButterfly(p) if verify else None
    out: List[LevelStats] = []
    for level in range(1, p.l + 1):
        ni = p.offsets[level]
        pins = multilevel_pins(ks, level)
        if verify:
            rep = count_off_module_links(RowPartition(sb, ni))
            if rep.max_per_module != pins or (
                rep.per_module and set(rep.per_module.values()) != {pins}
            ):
                raise AssertionError(
                    f"closed form {pins} != enumerated "
                    f"{sorted(set(rep.per_module.values()))} at level {level}"
                )
        out.append(
            LevelStats(
                level=level,
                row_bits=ni,
                num_modules=1 << (n - ni),
                nodes_per_module=(n + 1) << ni,
                pins_per_module=pins,
                naive_pins_same_size=naive_offmodule_per_module(n, ni),
                submodules_per_module=1 << p.ks[level - 1] if level > 1 else 1,
            )
        )
    return out
