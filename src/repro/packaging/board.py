"""The worked board-level example of Section 5.2.

A 9-dimensional butterfly built at two packaging levels — chips and one
board.  Chips are pin-limited (64 off-chip links) squares of side 20; a
level-2 link has unit width.  The paper derives:

* 64 chips of 80 nodes each (8 consecutive swap-butterfly rows per chip);
* chips arranged as an 8 x 8 grid, neighboring rows/columns separated by
  the collinear layout of ``K_8`` with quadruple links = 64 tracks,
  reduced to 60 by moving neighbor-pair links onto the inter-chip gap;
* board area 409.6K with two wiring layers, 160K with four, 78.4K with
  eight (sides 640 / 400 / 280);
* the naive row packing needs ~171 chips (three rows per 64-pin chip
  under the paper's 2-links-per-node estimate).

:func:`board_design` generalises the calculation to any ``(l=3)``
parameter vector, chip spec, and layer count, using the exact partition
counts from :mod:`repro.packaging.pins`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..layout.collinear import optimal_track_count
from ..layout.tracks import TrackGrouping
from ..topology.swap import SwapNetworkParams
from ..transform.swap_butterfly import SwapButterfly
from .baseline import paper_estimate_module_count
from .partition import RowPartition
from .pins import count_off_module_links, row_partition_offmodule_per_module

__all__ = ["ChipSpec", "BoardDesign", "board_design", "paper_board_example"]


@dataclass(frozen=True)
class ChipSpec:
    """Chip-level packaging constraints (Section 5.2 uses 64 pins, side 20)."""

    max_pins: int
    side: int

    def __post_init__(self) -> None:
        if self.max_pins < 1 or self.side < 1:
            raise ValueError("chip spec must be positive")


@dataclass
class BoardDesign:
    """A complete two-level design for one parameter choice."""

    ks: Tuple[int, int, int]
    chip: ChipSpec
    layers: int
    # chip level
    num_chips: int
    nodes_per_chip: int
    pins_per_chip: int  # exact off-chip links of a chip
    # board level
    grid_rows: int
    grid_cols: int
    channel_links: int  # inter-chip links separating neighboring rows/cols
    channel_links_optimized: int  # after the neighbor-pair improvement
    channel_tracks: int  # physical channel width at ``layers`` layers
    board_side_x: int
    board_side_y: int
    board_area: int
    wire_space_between_chips: int
    # baseline
    naive_chips_paper_estimate: int

    def summary(self) -> Dict[str, int]:
        return {
            "num_chips": self.num_chips,
            "nodes_per_chip": self.nodes_per_chip,
            "pins_per_chip": self.pins_per_chip,
            "channel_links": self.channel_links,
            "channel_links_optimized": self.channel_links_optimized,
            "channel_tracks": self.channel_tracks,
            "board_side": self.board_side_x,
            "board_area": self.board_area,
            "naive_chips": self.naive_chips_paper_estimate,
        }


def board_design(
    ks: Sequence[int],
    chip: ChipSpec,
    layers: int = 2,
    optimize_neighbor_links: bool = True,
    verify_exact: bool = False,
) -> BoardDesign:
    """Two-level design: row-partition chips on a recursive-grid board.

    Chips = ``2**k1`` consecutive swap-butterfly rows; the board arranges
    them as a ``2**k3 x 2**k2`` grid wired by replicated collinear layouts,
    with channel tracks folded onto ``layers`` wiring layers exactly as in
    Theorem 4.1.  ``verify_exact=True`` re-derives the per-chip pin count
    from the columnar link enumeration and raises if the closed form
    disagrees.
    """
    if len(ks) != 3:
        raise ValueError(f"board example uses l = 3, got {len(ks)}")
    params = SwapNetworkParams(ks)
    k1, k2, k3 = params.ks
    sb = SwapButterfly(params)
    part = RowPartition.natural(sb)
    pins = row_partition_offmodule_per_module(params.ks)
    if verify_exact:
        measured = count_off_module_links(part).max_per_module
        if measured != pins:
            raise AssertionError(
                f"closed-form pins {pins} != exact {measured} for ks={params.ks}"
            )
    if pins > chip.max_pins:
        raise ValueError(
            f"partition needs {pins} off-chip links > chip limit {chip.max_pins}"
        )
    gc, gr = 1 << k2, 1 << k3

    # Channel link counts: collinear K_{2**k2} with 4*2**(k1-k2) parallel
    # links between every chip pair in a grid row (and symmetrically for
    # columns).  The paper's improvement reroutes the links joining two
    # *adjacent* chips through the gap between them, saving 4*2**(k1-k2)
    # (type-1 links occupy min(1, ...) = 1 base track) per channel.
    mult_row = 4 << (k1 - k2)
    links_row = optimal_track_count(gc) * mult_row
    mult_col = 4 << (k1 - k3)
    links_col = optimal_track_count(gr) * mult_col
    opt_row = links_row - (mult_row if optimize_neighbor_links and gc > 1 else 0)
    opt_col = links_col - (mult_col if optimize_neighbor_links and gr > 1 else 0)

    gh = TrackGrouping(L=layers, horizontal=True, total_tracks=opt_row)
    gv = TrackGrouping(L=layers, horizontal=False, total_tracks=opt_col)
    side_y = gr * (chip.side + gh.physical_tracks)
    side_x = gc * (chip.side + gv.physical_tracks)

    return BoardDesign(
        ks=params.ks,
        chip=chip,
        layers=layers,
        num_chips=part.num_modules,
        nodes_per_chip=part.nodes_per_module,
        pins_per_chip=pins,
        grid_rows=gr,
        grid_cols=gc,
        channel_links=links_row,
        channel_links_optimized=opt_row,
        channel_tracks=gh.physical_tracks,
        board_side_x=side_x,
        board_side_y=side_y,
        board_area=side_x * side_y,
        wire_space_between_chips=gh.physical_tracks,
        naive_chips_paper_estimate=paper_estimate_module_count(
            params.n, chip.max_pins
        ),
    )


def paper_board_example(layers: int = 2) -> BoardDesign:
    """Exactly the Section 5.2 configuration: ``B_9``, 64-pin side-20 chips."""
    return board_design((3, 3, 3), ChipSpec(max_pins=64, side=20), layers=layers)
