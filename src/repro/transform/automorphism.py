"""Verification that the swap-butterfly is an automorphism of ``B_n``.

Two independent checks are provided:

* :func:`verify_by_generators` walks every butterfly edge and confirms its
  image under ``phi`` is a swap-butterfly link (and counts match), without
  materialising either graph — usable up to large ``n``.
* :func:`verify_by_graphs` materialises both graphs and compares relabeled
  edge multisets exactly — the gold check for small/medium ``n``.
"""

from __future__ import annotations

from typing import Sequence

from ..topology.bits import flip_bit
from ..topology.butterfly import Butterfly
from ..topology.swap import SwapNetworkParams
from .swap_butterfly import SwapButterfly

__all__ = ["verify_by_generators", "verify_by_graphs", "verify_automorphism"]


def verify_by_generators(ks: Sequence[int]) -> bool:
    """Edge-by-edge check using the explicit relabeling ``phi``.

    For every butterfly boundary ``s`` and row ``x``, the straight edge
    ``(x,s)-(x,s+1)`` must map to a swap-butterfly link between
    ``(phi_s(x), s)`` and ``(phi_{s+1}(x), s+1)``, and similarly for the
    cross edge on bit ``s``.  Since both graphs are ``2 R n``-edge simple
    graphs and the map is a bijection on nodes, edge containment in one
    direction with equal counts proves isomorphism.
    """
    sb = SwapButterfly(SwapNetworkParams(ks))
    n, R = sb.n, sb.rows

    # Precompute swap-butterfly adjacency per boundary as sets of pairs.
    sb_links = []
    for s in range(n):
        sb_links.append({(u, v) for (u, _s), (v, _s1), _k in sb.boundary_links(s)})

    for s in range(n):
        phi_s = [sb.phi(s, x) for x in range(R)]
        phi_s1 = [sb.phi(s + 1, x) for x in range(R)]
        links = sb_links[s]
        for x in range(R):
            if (phi_s[x], phi_s1[x]) not in links:
                return False
            if (phi_s[x], phi_s1[flip_bit(x, s)]) not in links:
                return False
        # 2R butterfly edges mapped into a set of exactly 2R links; check
        # the images are distinct (bijectivity of the map on this boundary).
        images = set()
        for x in range(R):
            images.add((phi_s[x], phi_s1[x]))
            images.add((phi_s[x], phi_s1[flip_bit(x, s)]))
        if len(images) != 2 * R:
            return False
    return True


def verify_by_graphs(ks: Sequence[int]) -> bool:
    """Materialise ``B_n`` and the swap-butterfly; compare relabeled graphs."""
    sb = SwapButterfly(SwapNetworkParams(ks))
    bfly = Butterfly(sb.n).graph()
    target = sb.graph()
    return bfly.is_isomorphic_by(target, sb.butterfly_to_swapbf())


def verify_automorphism(ks: Sequence[int], materialize: bool = False) -> bool:
    """Check the transformation for parameter vector ``ks``."""
    if materialize:
        return verify_by_graphs(ks)
    return verify_by_generators(ks)
