"""The ISN -> butterfly transformation (Section 2.2).

Given an ISN, we *bypass* the node stage that follows each swap step:
every swap link ``(u, j) -> (sigma(u), j+1)`` is doubled and the two copies
are reconnected, through the removed node ``(sigma(u), j+1)``, to that
node's straight and cross links into stage ``j + 2``.  The result — the
**swap-butterfly** — has ``n_l + 1`` stages and is an automorphism
(relabeling) of the ``n_l``-dimensional butterfly ``B_{n_l}``.

Stage boundaries of the swap-butterfly therefore come in two flavours:

* an **exchange boundary** on nucleus bit ``t >= 1`` of segment ``i``
  (straight + cross links, exactly as in a butterfly), and
* a **composite boundary** for swap level ``i`` — the bypassed pair
  "level-``i`` swap followed by exchange on bit 0": node ``(u, s)``
  connects to ``(sigma_i(u), s+1)`` and ``(sigma_i(u) XOR 1, s+1)``.
  These are the only links that leave a cluster of ``2**k_1`` consecutive
  rows, which is what makes the packaging scheme work.

The explicit butterfly relabeling is: butterfly node ``(x, s)`` maps to
swap-butterfly node ``(phi_s(x), s)`` where ``phi_s = sigma_i o ... o
sigma_2`` over all levels ``i`` whose swap occurs strictly before node
stage ``s`` (i.e. ``n_{i-1} < s``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple, Union

import numpy as np

from ..topology.bits import flip_bit, level_swap_array
from ..topology.graph import Graph, edge_array
from ..topology.isn import ISN, ExchangeStep, SwapStep
from ..topology.swap import SwapNetworkParams

__all__ = ["ExchangeBoundary", "CompositeBoundary", "SwapButterfly"]

SbNode = Tuple[int, int]  # (row, stage)


@dataclass(frozen=True)
class ExchangeBoundary:
    """Plain butterfly boundary: straight + cross on nucleus bit ``bit``."""

    bit: int
    segment: int

    kind = "exchange"


@dataclass(frozen=True)
class CompositeBoundary:
    """Bypassed swap boundary for ``level``: swap then exchange on bit 0."""

    level: int

    kind = "composite"


Boundary = Union[ExchangeBoundary, CompositeBoundary]


class SwapButterfly:
    """The butterfly automorphism obtained from ``ISN(l; k_1..k_l)``."""

    def __init__(self, params: SwapNetworkParams) -> None:
        self.params = params
        self.boundaries: List[Boundary] = self._build_boundaries()

    @classmethod
    def from_ks(cls, ks: Sequence[int]) -> "SwapButterfly":
        return cls(SwapNetworkParams(ks))

    @classmethod
    def from_isn(cls, isn: ISN) -> "SwapButterfly":
        return cls(isn.params)

    def _build_boundaries(self) -> List[Boundary]:
        isn = ISN(self.params)
        out: List[Boundary] = []
        steps = isn.schedule
        j = 0
        while j < len(steps):
            step = steps[j]
            if isinstance(step, SwapStep):
                nxt = steps[j + 1]
                # The ISN schedule always places the segment's bit-0
                # exchange right after the swap; the bypass merges them.
                assert isinstance(nxt, ExchangeStep) and nxt.bit == 0
                out.append(CompositeBoundary(level=step.level))
                j += 2
            else:
                if step.bit == 0 and step.segment == 1 or step.bit >= 1:
                    out.append(ExchangeBoundary(bit=step.bit, segment=step.segment))
                    j += 1
                else:  # pragma: no cover - schedule invariant
                    raise AssertionError("unexpected bit-0 exchange outside segment 1")
        return out

    # -- sizes -----------------------------------------------------------
    @property
    def n(self) -> int:
        """Dimension of the butterfly this is an automorphism of."""
        return self.params.n

    @property
    def rows(self) -> int:
        return self.params.num_rows

    @property
    def stages(self) -> int:
        return self.n + 1

    @property
    def num_nodes(self) -> int:
        return self.stages * self.rows

    @property
    def num_edges(self) -> int:
        return 2 * self.rows * self.n

    # -- link generators ---------------------------------------------------
    def boundary_links(self, s: int) -> Iterator[Tuple[SbNode, SbNode, str]]:
        """Links between stages ``s`` and ``s+1`` with kinds
        ``'straight' | 'cross' | 'swap-straight' | 'swap-cross'``."""
        if not 0 <= s < self.n:
            raise ValueError(f"boundary must be in [0, {self.n}), got {s}")
        b = self.boundaries[s]
        if isinstance(b, ExchangeBoundary):
            for u in range(self.rows):
                yield ((u, s), (u, s + 1), "straight")
                yield ((u, s), (flip_bit(u, b.bit), s + 1), "cross")
        else:
            for u in range(self.rows):
                v = self.params.sigma(b.level, u)
                yield ((u, s), (v, s + 1), "swap-straight")
                yield ((u, s), (flip_bit(v, 0), s + 1), "swap-cross")

    def links(self) -> Iterator[Tuple[SbNode, SbNode, str]]:
        for s in range(self.n):
            yield from self.boundary_links(s)

    def composite_boundary_stages(self) -> List[int]:
        """Stage boundaries carrying (bypassed) swap links: these sit at
        ``s = n_{i-1}`` for ``i = 2..l``."""
        return [s for s, b in enumerate(self.boundaries) if b.kind == "composite"]

    def swap_links_per_row(self) -> int:
        """The paper's ``4(l - 1)``: at each composite boundary a row has 2
        outgoing and 2 incoming links."""
        return 4 * (self.params.l - 1)

    # -- automorphism ------------------------------------------------------
    def phi(self, s: int, x: int) -> int:
        """Physical row of logical butterfly row ``x`` at node stage ``s``.

        Applies ``sigma_2`` first, then ``sigma_3``, ..., for every level
        whose swap occurred strictly before stage ``s``.
        """
        if not 0 <= s <= self.n:
            raise ValueError(f"stage must be in [0, {self.n}], got {s}")
        offs = self.params.offsets
        u = x
        for level in range(2, self.params.l + 1):
            if s > offs[level - 1]:
                u = self.params.sigma(level, u)
        return u

    def phi_inverse(self, s: int, u: int) -> int:
        """Logical butterfly row of physical row ``u`` at stage ``s``."""
        offs = self.params.offsets
        x = u
        for level in range(self.params.l, 1, -1):
            if s > offs[level - 1]:
                x = self.params.sigma(level, x)
        return x

    def butterfly_to_swapbf(self) -> Dict[SbNode, SbNode]:
        """Node bijection ``B_n -> swap-butterfly``: ``(x, s) -> (phi_s(x), s)``."""
        return {
            (x, s): (self.phi(s, x), s)
            for s in range(self.stages)
            for x in range(self.rows)
        }

    def row_labels(self, s: int) -> List[int]:
        """For display (Figure 2): the butterfly row number of each physical
        row at stage ``s`` — ``phi_inverse(s, u)`` listed by physical row."""
        return [self.phi_inverse(s, u) for u in range(self.rows)]

    # -- materialisation ---------------------------------------------------
    def edge_array(self) -> np.ndarray:
        """All links as one ``(num_edges, 2, 2)`` int64 array, one
        vectorized chunk per stage boundary."""
        rows = np.arange(self.rows, dtype=np.int64)
        chunks = []
        for s, b in enumerate(self.boundaries):
            if isinstance(b, ExchangeBoundary):
                chunks.append(edge_array((rows, s), (rows, s + 1)))
                chunks.append(edge_array((rows, s), (rows ^ (1 << b.bit), s + 1)))
            else:
                sig = level_swap_array(rows, self.params.ks, b.level)
                chunks.append(edge_array((rows, s), (sig, s + 1)))
                chunks.append(edge_array((rows, s), (sig ^ 1, s + 1)))
        return np.concatenate(chunks)

    def cached_edge_array(self) -> np.ndarray:
        """Memoized, read-only :meth:`edge_array`.

        The packaging kernels map every link through several partitions of
        the same swap-butterfly; building the 2 x ``num_edges`` column set
        once and sharing the (write-protected) array keeps repeated pin
        counts allocation-free.
        """
        ea = getattr(self, "_edge_array_cache", None)
        if ea is None:
            ea = self.edge_array()
            ea.setflags(write=False)
            self._edge_array_cache = ea
        return ea

    def adopt_edge_array(self, ea: np.ndarray) -> None:
        """Install a precomputed :meth:`edge_array` as the memoized cache.

        Lets a pool worker reuse an edge array the parent already built
        and published through shared memory — the worker rebuilds the
        cheap parameter object with :meth:`from_ks` and adopts the big
        array as a zero-copy view instead of recomputing (or unpickling)
        it.  The array must have the exact shape/dtype
        :meth:`edge_array` would produce.
        """
        expect = (self.num_edges, 2, 2)
        if ea.shape != expect or ea.dtype != np.int64:
            raise ValueError(
                f"edge array must have shape {expect} int64, "
                f"got {ea.shape} {ea.dtype}"
            )
        if ea.flags.writeable:
            ea = ea.view()
            ea.setflags(write=False)
        self._edge_array_cache = ea

    def graph(self) -> Graph:
        # Every (row, stage) node is an endpoint of some boundary link
        # (n >= 1), so the bulk insert alone yields the full node set.
        g = Graph(name=f"SwapBfly{self.params.ks}")
        g.add_edges_from(self.edge_array())
        return g
