"""ISN -> butterfly transformation (swap-butterflies) and automorphism
verification."""

from .automorphism import verify_automorphism, verify_by_generators, verify_by_graphs
from .swap_butterfly import CompositeBoundary, ExchangeBoundary, SwapButterfly

__all__ = [
    "SwapButterfly",
    "ExchangeBoundary",
    "CompositeBoundary",
    "verify_automorphism",
    "verify_by_generators",
    "verify_by_graphs",
]
