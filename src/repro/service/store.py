"""Content-addressed on-disk artifact store for the design service.

Every cached design answer is one *entry* keyed by the SHA-256 of the
canonical JSON of ``{"kind": ..., "params": ..., "schema_version": ...}``
— same query, same key, across processes and machines.  An entry is a
directory holding a small JSON *manifest* (the served result plus
integrity digests) and an optional NumPy ``.npz`` *payload* carrying the
heavy arrays (WireTable segment columns, partition module codes, Benes
switch settings) so repeated parameter points become O(1) lookups while
the artifact itself stays reusable.

Directory layout under the cache root::

    objects/<key[:2]>/<key>/manifest.json   # always present
    objects/<key[:2]>/<key>/payload.npz     # optional array payload
    locks/<key>.lock                        # single-flight compute locks
    quarantine/<key>/...                    # corrupt entries, moved aside

Integrity: :meth:`ArtifactStore.get` re-derives the key from the
manifest's ``kind``/``params`` and checks the result digest on every
read (cheap — the manifest is small); the payload's SHA-256 is checked
whenever the arrays are loaded (:meth:`load_arrays`) and by
:meth:`verify`, which sweeps the whole store.  Anything that fails a
check is *quarantined* — moved out of ``objects/`` so it can never be
served again — and the read reports a miss, letting the caller recompute.

Concurrency: writes are atomic (staged in a temp directory, then
``os.replace``-d into place), and :meth:`single_flight` hands one
process the compute lock per key so concurrent misses for the same query
compute once; losers wait for the winner and re-read the cache.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import io
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

__all__ = [
    "ArtifactStore",
    "CacheEntry",
    "SCHEMA_VERSION",
    "canonical_json",
    "cache_key",
    "default_cache_dir",
]

#: Bump when the manifest layout or any handler's result schema changes:
#: the version is part of the cache key, so old entries simply stop
#: matching instead of being served with a stale shape.  v2: the
#: ``saturation`` bisection now probes the 1.0 bracket ceiling (old
#: entries carried the ~0.986 artifact) and the ``sim`` kind exists.
SCHEMA_VERSION = 2

_MANIFEST = "manifest.json"
_PAYLOAD = "payload.npz"


def canonical_json(obj: object) -> bytes:
    """Deterministic JSON bytes: sorted keys, no whitespace, UTF-8."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def cache_key(kind: str, params: Dict[str, object]) -> str:
    """SHA-256 hex of the canonical ``{kind, params, schema_version}``."""
    return hashlib.sha256(
        canonical_json(
            {"kind": kind, "params": params, "schema_version": SCHEMA_VERSION}
        )
    ).hexdigest()


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(xdg, "repro")


def _sha256_file(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One row of :meth:`ArtifactStore.ls`."""

    key: str
    kind: str
    params: Dict[str, object]
    created: float  # unix seconds (recorded in the manifest at put time)
    last_access: float  # unix seconds (manifest mtime, touched on reads)
    size_bytes: int
    has_payload: bool

    def as_row(self) -> Dict[str, object]:
        return {
            "key": self.key[:12],
            "kind": self.kind,
            "params": json.dumps(self.params, sort_keys=True),
            "size": self.size_bytes,
            "payload": self.has_payload,
        }


class ArtifactStore:
    """Content-addressed cache of design-service artifacts.

    ``lock_timeout`` bounds how long a single-flight loser waits for the
    winner before computing anyway; locks older than ``stale_lock_s``
    are presumed abandoned (crashed holder) and broken.
    """

    def __init__(
        self,
        root: str,
        lock_timeout: float = 120.0,
        stale_lock_s: float = 600.0,
    ) -> None:
        self.root = os.path.abspath(root)
        self.lock_timeout = lock_timeout
        self.stale_lock_s = stale_lock_s
        os.makedirs(os.path.join(self.root, "objects"), exist_ok=True)
        os.makedirs(os.path.join(self.root, "locks"), exist_ok=True)
        os.makedirs(os.path.join(self.root, "quarantine"), exist_ok=True)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def entry_dir(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], key)

    def _lock_path(self, key: str) -> str:
        return os.path.join(self.root, "locks", f"{key}.lock")

    def _quarantine_dir(self, key: str) -> str:
        return os.path.join(self.root, "quarantine", key)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def get(self, kind: str, params: Dict[str, object]) -> Optional[Dict]:
        """The cached result dict, or ``None`` on miss.

        Verifies the manifest on every read: the key must re-derive from
        the stored ``kind``/``params``, the result digest must match, and
        a declared payload file must exist with the declared size.  Any
        failure quarantines the entry and reports a miss.
        """
        key = cache_key(kind, params)
        manifest = self._read_manifest(key)
        if manifest is None:
            return None
        if not self._manifest_ok(key, manifest):
            self.quarantine(key)
            return None
        self._touch(key)
        return manifest["result"]

    def load_arrays(
        self, kind: str, params: Dict[str, object]
    ) -> Optional[Dict[str, np.ndarray]]:
        """The entry's array payload, SHA-256 verified, or ``None``.

        ``None`` means miss, no payload, or a corrupt payload (which is
        quarantined on the spot).
        """
        key = cache_key(kind, params)
        manifest = self._read_manifest(key)
        if manifest is None:
            return None
        if not self._manifest_ok(key, manifest) or not self._payload_ok(
            key, manifest
        ):
            self.quarantine(key)
            return None
        if manifest.get("payload") is None:
            return None
        self._touch(key)
        path = os.path.join(self.entry_dir(key), manifest["payload"]["file"])
        with np.load(path, allow_pickle=False) as npz:
            return {name: npz[name] for name in npz.files}

    def _touch(self, key: str) -> None:
        """Bump the manifest mtime — the entry's last-access stamp, which
        age-based :meth:`gc` uses so hot entries never age out."""
        with contextlib.suppress(OSError):
            os.utime(os.path.join(self.entry_dir(key), _MANIFEST))

    def _read_manifest(self, key: str) -> Optional[Dict]:
        path = os.path.join(self.entry_dir(key), _MANIFEST)
        try:
            with open(path, "rb") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            # unreadable manifest: the entry can never be trusted again
            self.quarantine(key)
            return None

    def _manifest_ok(self, key: str, manifest: Dict) -> bool:
        """Cheap per-read checks: key re-derivation, result digest,
        payload existence + size (content hash is :meth:`_payload_ok`)."""
        try:
            if manifest.get("schema_version") != SCHEMA_VERSION:
                return False
            if cache_key(manifest["kind"], manifest["params"]) != key:
                return False
            digest = hashlib.sha256(
                canonical_json(manifest["result"])
            ).hexdigest()
            if digest != manifest["result_sha256"]:
                return False
            payload = manifest.get("payload")
            if payload is not None:
                path = os.path.join(self.entry_dir(key), payload["file"])
                if not os.path.isfile(path):
                    return False
                if os.path.getsize(path) != payload["size"]:
                    return False
            return True
        except (KeyError, TypeError):
            return False

    def _payload_ok(self, key: str, manifest: Dict) -> bool:
        payload = manifest.get("payload")
        if payload is None:
            return True
        path = os.path.join(self.entry_dir(key), payload["file"])
        try:
            return _sha256_file(path) == payload["sha256"]
        except OSError:
            return False

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def put(
        self,
        kind: str,
        params: Dict[str, object],
        result: Dict,
        arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> str:
        """Store ``result`` (JSON manifest) and ``arrays`` (npz payload)
        atomically; returns the entry key.  A concurrent identical put
        wins or loses whole — never a torn entry."""
        key = cache_key(kind, params)
        final = self.entry_dir(key)
        os.makedirs(os.path.dirname(final), exist_ok=True)
        stage = tempfile.mkdtemp(
            prefix=f".{key[:8]}-", dir=os.path.dirname(final)
        )
        try:
            payload_meta = None
            if arrays:
                buf = io.BytesIO()
                np.savez(buf, **arrays)
                raw = buf.getvalue()
                with open(os.path.join(stage, _PAYLOAD), "wb") as fh:
                    fh.write(raw)
                payload_meta = {
                    "file": _PAYLOAD,
                    "sha256": hashlib.sha256(raw).hexdigest(),
                    "size": len(raw),
                }
            manifest = {
                "schema_version": SCHEMA_VERSION,
                "kind": kind,
                "params": params,
                "key": key,
                "created": time.time(),
                "result": result,
                "result_sha256": hashlib.sha256(
                    canonical_json(result)
                ).hexdigest(),
                "payload": payload_meta,
            }
            with open(os.path.join(stage, _MANIFEST), "wb") as fh:
                fh.write(json.dumps(manifest, indent=1).encode("utf-8"))
            try:
                os.replace(stage, final)
            except OSError as e:
                # a concurrent writer landed the same key first; theirs
                # is byte-equivalent (same key => same query), keep it
                if e.errno not in (errno.ENOTEMPTY, errno.EEXIST):
                    raise
                shutil.rmtree(stage, ignore_errors=True)
        finally:
            shutil.rmtree(stage, ignore_errors=True)
        return key

    def quarantine(self, key: str) -> bool:
        """Move a (corrupt) entry out of ``objects/``; True if moved."""
        src = self.entry_dir(key)
        if not os.path.isdir(src):
            return False
        dst = self._quarantine_dir(key)
        shutil.rmtree(dst, ignore_errors=True)
        try:
            os.replace(src, dst)
        except OSError:
            shutil.rmtree(src, ignore_errors=True)
        return True

    # ------------------------------------------------------------------
    # single-flight compute lock
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def single_flight(self, key: str) -> Iterator[bool]:
        """Yield True to exactly one concurrent holder per key.

        Losers block until the winner releases (or ``lock_timeout``
        expires), then yield False — the caller should re-read the cache
        before deciding to compute after all.
        """
        path = self._lock_path(key)
        deadline = time.monotonic() + self.lock_timeout
        fd = None
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode())
                break
            except FileExistsError:
                try:
                    age = time.time() - os.path.getmtime(path)
                except OSError:
                    continue  # holder released between probe and stat
                if age > self.stale_lock_s:
                    with contextlib.suppress(OSError):
                        os.unlink(path)  # abandoned by a dead holder
                    continue
                if time.monotonic() >= deadline:
                    yield False
                    return
                time.sleep(0.02)
        try:
            yield True
        finally:
            os.close(fd)
            with contextlib.suppress(OSError):
                os.unlink(path)

    # ------------------------------------------------------------------
    # admin: ls / verify / gc / stats
    # ------------------------------------------------------------------
    def _keys(self) -> List[str]:
        objects = os.path.join(self.root, "objects")
        keys: List[str] = []
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            keys.extend(
                k for k in sorted(os.listdir(shard_dir))
                if not k.startswith(".")
            )
        return keys

    def ls(self) -> List[CacheEntry]:
        """Every readable entry, oldest first (unreadable ones skipped)."""
        out: List[CacheEntry] = []
        for key in self._keys():
            manifest = self._read_manifest(key)
            if manifest is None:
                continue
            d = self.entry_dir(key)
            size = sum(
                os.path.getsize(os.path.join(d, f))
                for f in os.listdir(d)
                if os.path.isfile(os.path.join(d, f))
            )
            try:
                last_access = os.path.getmtime(os.path.join(d, _MANIFEST))
            except OSError:
                last_access = 0.0
            out.append(
                CacheEntry(
                    key=key,
                    kind=manifest.get("kind", "?"),
                    params=manifest.get("params", {}),
                    created=manifest.get("created", 0.0),
                    last_access=last_access,
                    size_bytes=size,
                    has_payload=manifest.get("payload") is not None,
                )
            )
        out.sort(key=lambda e: (e.created, e.key))
        return out

    def verify(self) -> Dict[str, object]:
        """Full-store integrity sweep: manifest digests *and* payload
        SHA-256 for every entry; corrupt entries are quarantined."""
        checked, ok, corrupt = 0, 0, []
        for key in self._keys():
            checked += 1
            manifest = self._read_manifest(key)
            if (
                manifest is not None
                and self._manifest_ok(key, manifest)
                and self._payload_ok(key, manifest)
            ):
                ok += 1
                continue
            if os.path.isdir(self.entry_dir(key)):
                self.quarantine(key)
            corrupt.append(key)
        return {
            "checked": checked,
            "ok": ok,
            "corrupt": corrupt,
            "quarantined": len(corrupt),
        }

    def gc(self, max_age_s: Optional[float] = None) -> Dict[str, object]:
        """Drop quarantined entries, stale locks, and (optionally)
        entries not *accessed* within ``max_age_s``.

        Age is measured from the entry's last read (:meth:`get` /
        :meth:`load_arrays` touch the manifest), not its creation time —
        a hot entry served on every request stays cached no matter how
        long ago it was computed.
        """
        removed, freed = 0, 0
        qdir = os.path.join(self.root, "quarantine")
        for name in os.listdir(qdir):
            path = os.path.join(qdir, name)
            freed += _tree_size(path)
            shutil.rmtree(path, ignore_errors=True)
            removed += 1
        now = time.time()
        if max_age_s is not None:
            for e in self.ls():
                if now - e.last_access > max_age_s:
                    path = self.entry_dir(e.key)
                    freed += _tree_size(path)
                    shutil.rmtree(path, ignore_errors=True)
                    removed += 1
        locks = os.path.join(self.root, "locks")
        for name in os.listdir(locks):
            path = os.path.join(locks, name)
            with contextlib.suppress(OSError):
                if now - os.path.getmtime(path) > self.stale_lock_s:
                    os.unlink(path)
        return {"removed": removed, "freed_bytes": freed}

    def stats(self) -> Dict[str, object]:
        entries = self.ls()
        kinds: Dict[str, int] = {}
        for e in entries:
            kinds[e.kind] = kinds.get(e.kind, 0) + 1
        return {
            "root": self.root,
            "entries": len(entries),
            "bytes": sum(e.size_bytes for e in entries),
            "kinds": kinds,
            "quarantined": len(
                os.listdir(os.path.join(self.root, "quarantine"))
            ),
        }


def _tree_size(path: str) -> int:
    total = 0
    for dirpath, _dirs, files in os.walk(path):
        for f in files:
            with contextlib.suppress(OSError):
                total += os.path.getsize(os.path.join(dirpath, f))
    return total
