"""Design-query handlers: validate params, compute, cache, serve.

One handler per query *kind* — the same five answers the CLI has always
printed, now factored so the ``repro`` subcommands, the HTTP front end
(:mod:`repro.service.server`) and the bench harness all go through one
cached path:

``layout``
    build + validate a grid-scheme butterfly layout; summary metrics and
    wire-length statistics, WireTable columns as the array payload.
``dims``
    closed-form grid-scheme dimensions (no payload).
``package``
    exact-vs-closed-form pin accounting for the row / nucleus / naive
    partition schemes; module-id codes as the payload.
``benes``
    route a seeded batch of permutations through the Benes engine;
    crossing statistics, the switch-settings tensor as the payload.
``saturation``
    bisection search for the queued-routing saturation rate (no payload).
``sim``
    one seeded queued-routing run at a fixed injection rate; throughput,
    accepted fraction, latency and queue statistics (no payload).

Results are plain JSON-native dicts and contain **no timings or other
nondeterminism** — a warm hit must serve bytes identical to the cold
compute, which is also what the bench harness gates on.  Parameters are
normalized (defaults filled, types coerced) *before* keying so every
spelling of the same query shares one cache entry; anything malformed
raises :class:`QueryError`, which the server maps to HTTP 400.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from .store import ArtifactStore, cache_key

__all__ = [
    "QUERY_KINDS", "QueryError", "normalize_params", "split_exec_params",
    "compute", "query",
]

Arrays = Optional[Dict[str, np.ndarray]]


class QueryError(ValueError):
    """Malformed query (unknown kind / bad parameter vector) -> HTTP 4xx."""


# ----------------------------------------------------------------------
# parameter schemas
# ----------------------------------------------------------------------

def _as_int(v: object, name: str) -> int:
    if isinstance(v, bool) or not isinstance(v, (int, float, str)):
        raise QueryError(f"{name} must be an integer, got {v!r}")
    try:
        i = int(v)
    except (TypeError, ValueError) as e:
        raise QueryError(f"{name} must be an integer, got {v!r}") from e
    if isinstance(v, float) and v != i:
        raise QueryError(f"{name} must be an integer, got {v!r}")
    return i

def _as_float(v: object, name: str) -> float:
    if isinstance(v, bool) or not isinstance(v, (int, float, str)):
        raise QueryError(f"{name} must be a number, got {v!r}")
    try:
        f = float(v)
    except (TypeError, ValueError) as e:
        raise QueryError(f"{name} must be a number, got {v!r}") from e
    if not math.isfinite(f):
        raise QueryError(f"{name} must be finite, got {v!r}")
    return f

def _as_bool(v: object, name: str) -> bool:
    if isinstance(v, bool):
        return v
    if isinstance(v, str) and v.lower() in ("true", "1", "yes"):
        return True
    if isinstance(v, str) and v.lower() in ("false", "0", "no"):
        return False
    raise QueryError(f"{name} must be a boolean, got {v!r}")

def _as_ks(v: object, name: str = "ks") -> list:
    """A parameter vector: ``[3, 3, 3]`` or the CLI spelling ``"3,3,3"``."""
    if isinstance(v, str):
        v = [x for x in v.replace(" ", "").split(",") if x]
    if not isinstance(v, (list, tuple)) or not v:
        raise QueryError(f"{name} must be a non-empty list of integers")
    ks = [_as_int(x, name) for x in v]
    if any(k < 1 for k in ks):
        raise QueryError(f"{name} entries must be >= 1, got {ks}")
    if sum(ks) > 24:
        raise QueryError(f"sum({name}) capped at 24 for the service, got {sum(ks)}")
    return ks

def _as_choice(choices: Tuple[str, ...]) -> Callable[[object, str], str]:
    def conv(v: object, name: str) -> str:
        if v not in choices:
            raise QueryError(f"{name} must be one of {choices}, got {v!r}")
        return str(v)
    return conv

def _bounded_int(lo: int, hi: int) -> Callable[[object, str], int]:
    def conv(v: object, name: str) -> int:
        i = _as_int(v, name)
        if not lo <= i <= hi:
            raise QueryError(f"{name} must be in [{lo}, {hi}], got {i}")
        return i
    return conv

def _rate(v: object, name: str) -> float:
    f = _as_float(v, name)
    if not 0.0 < f <= 1.0:
        raise QueryError(f"{name} must be in (0, 1], got {f}")
    return f

def _optional(conv: Callable[[object, str], object]) -> Callable:
    def wrapped(v: object, name: str) -> object:
        if v is None or v == "":
            return None
        return conv(v, name)
    return wrapped

def _positive_int(v: object, name: str) -> int:
    i = _as_int(v, name)
    if i < 1:
        raise QueryError(f"{name} must be a positive integer, got {i}")
    return i


#: ``kind -> {param: (converter, default)}``; a default of ``...`` marks
#: the parameter required.  The HTTP layer reuses the converters to
#: coerce query-string values, so GET and POST queries key identically.
PARAM_SPECS: Dict[str, Dict[str, Tuple[Callable, object]]] = {
    "layout": {
        "ks": (_as_ks, ...),
        "layers": (_bounded_int(2, 64), 2),
        "node_side": (_bounded_int(1, 64), 4),
        "track_order": (_as_choice(("forward", "reversed")), "forward"),
        "recirculating": (_as_bool, False),
    },
    "dims": {
        "ks": (_as_ks, ...),
        "layers": (_bounded_int(2, 64), 2),
        "node_side": (_bounded_int(1, 64), 4),
    },
    "package": {
        "ks": (_as_ks, ...),
        "scheme": (_as_choice(("row", "nucleus", "naive", "all")), "all"),
        "rows_per_module": (_optional(_bounded_int(1, 1 << 20)), None),
    },
    "benes": {
        "n": (_bounded_int(1, 16), ...),
        "batch": (_bounded_int(1, 100_000), 8),
        "seed": (_bounded_int(0, 2**31 - 1), 0),
    },
    "saturation": {
        "n": (_bounded_int(1, 12), ...),
        "cycles": (_bounded_int(1, 1_000_000), 1500),
        "threshold": (_as_float, 0.95),
        "seed": (_bounded_int(0, 2**31 - 1), 0),
        "drain": (_optional(_bounded_int(1, 1_000_000)), None),
    },
    "sim": {
        "n": (_bounded_int(1, 12), ...),
        "rate": (_rate, ...),
        "cycles": (_bounded_int(1, 1_000_000), 600),
        "warmup": (_bounded_int(0, 1_000_000), 100),
        "seed": (_bounded_int(0, 2**31 - 1), 0),
        "drain": (_optional(_bounded_int(1, 1_000_000)), None),
    },
}

QUERY_KINDS = tuple(PARAM_SPECS)

#: Execution knobs: how to compute, never what to compute.  They are
#: split off *before* normalization, excluded from the cache key and
#: from ``result["params"]`` — same design, same artifact, so a warm
#: cache serves identical bytes whatever budget/worker count produced
#: them (the chunked pipeline is byte-identical to the monolithic one).
EXEC_PARAM_SPECS: Dict[str, Dict[str, Callable]] = {
    "layout": {
        "memory_budget_bytes": _optional(_positive_int),
        "workers": _optional(_positive_int),
    },
}


def split_exec_params(
    kind: str, params: Dict[str, object]
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """``(design_params, exec_params)`` with exec knobs validated and
    removed; unknown keys stay in ``design_params`` for
    :func:`normalize_params` to reject."""
    spec = EXEC_PARAM_SPECS.get(kind, {})
    if not isinstance(params, dict) or not spec:
        return params, {}
    rest = dict(params)
    ex: Dict[str, object] = {}
    for name, conv in spec.items():
        if name in rest:
            val = conv(rest.pop(name), name)
            if val is not None:
                ex[name] = val
    return rest, ex


def normalize_params(kind: str, params: Dict[str, object]) -> Dict[str, object]:
    """Validated params with defaults filled — the dict that gets keyed.

    Raises :class:`QueryError` on unknown kind, unknown or missing
    parameters, or values outside the service's bounds.
    """
    if kind not in PARAM_SPECS:
        raise QueryError(
            f"unknown query kind {kind!r}; expected one of {QUERY_KINDS}"
        )
    spec = PARAM_SPECS[kind]
    if not isinstance(params, dict):
        raise QueryError(f"params must be an object, got {type(params).__name__}")
    unknown = set(params) - set(spec)
    if unknown:
        raise QueryError(f"unknown parameter(s) for {kind}: {sorted(unknown)}")
    out: Dict[str, object] = {}
    for name, (conv, default) in spec.items():
        if name in params:
            out[name] = conv(params[name], name)
        elif default is ...:
            raise QueryError(f"missing required parameter {name!r} for {kind}")
        else:
            out[name] = default
    return out


# ----------------------------------------------------------------------
# compute kernels (cache misses)
# ----------------------------------------------------------------------

def _layout_payload(t) -> Dict[str, np.ndarray]:
    import json

    return {
        "indptr": t.indptr, "x1": t.x1, "y1": t.y1,
        "x2": t.x2, "y2": t.y2, "layer": t.layer,
        "nets_json": np.frombuffer(
            json.dumps(t.nets).encode("utf-8"), dtype=np.uint8
        ),
    }


def _layout_result(p: Dict, rep, summary: Dict, ws) -> Dict:
    return {
        "kind": "layout",
        "params": p,
        "valid": bool(rep.ok),
        "errors": [str(e) for e in rep.errors[:10]],
        "summary": {k: int(v) for k, v in summary.items()},
        "wire_stats": {
            k: v for k, v in ws.as_row("grid").items()
            if k not in ("layout", "wires", "max")
        },
    }


def _compute_layout(
    p: Dict[str, object], ex: Optional[Dict[str, object]] = None
) -> Tuple[Dict, Arrays]:
    ex = ex or {}
    budget = ex.get("memory_budget_bytes")
    workers = ex.get("workers")
    if budget is None and workers is None:
        from ..analysis.wirestats import wire_stats
        from ..layout import build_grid_layout, validate_layout

        res = build_grid_layout(
            tuple(p["ks"]), W=p["node_side"], L=p["layers"],
            track_order=p["track_order"], recirculating=p["recirculating"],
        )
        rep = validate_layout(res.layout, res.graph)
        summary = res.layout.summary()
        ws = wire_stats(res.layout)
        t = res.layout.wire_table()
        return _layout_result(p, rep, summary, ws), _layout_payload(t)

    # chunked route: stream the build under the byte budget, validate
    # with the (optionally parallel) streaming pipeline — result and
    # payload are byte-identical to the monolithic route above, which is
    # why neither knob may enter the cache key
    from ..analysis.wirestats import wire_stats_from_lengths
    from ..layout import chunked_grid_table, grid_graph
    from ..layout.wiretable import WireTable
    from ..transform.swap_butterfly import SwapButterfly

    build = chunked_grid_table(
        tuple(p["ks"]), W=p["node_side"], L=p["layers"],
        track_order=p["track_order"], recirculating=p["recirculating"],
        memory_budget_bytes=budget,
    )
    graph = grid_graph(
        SwapButterfly.from_ks(tuple(p["ks"])), p["recirculating"]
    )
    rep, summary = build.validate_and_summarize(graph=graph, workers=workers)
    # the array payload is O(wires) by definition; a second (serial)
    # enumeration assembles it and the wire-length stats
    parts = list(build.chunks())
    ws = wire_stats_from_lengths(
        np.concatenate([t.wire_lengths() for t in parts])
    )
    table = WireTable.concat(parts)
    return _layout_result(p, rep, summary, ws), _layout_payload(table)


def _compute_dims(p: Dict[str, object]) -> Tuple[Dict, Arrays]:
    from ..layout import grid_dims

    d = grid_dims(tuple(p["ks"]), W=p["node_side"], L=p["layers"])
    return {
        "kind": "dims",
        "params": p,
        "summary": {k: int(v) for k, v in d.summary().items()},
    }, None


def _compute_package(p: Dict[str, object]) -> Tuple[Dict, Arrays]:
    from ..packaging import (
        NaiveRowPartition,
        NucleusPartition,
        RowPartition,
        count_off_module_links,
        naive_offmodule_per_module,
        nucleus_partition_module_bound,
        row_partition_offmodule_per_module,
    )
    from ..topology.bits import ilog2, is_power_of_two
    from ..topology.butterfly import Butterfly
    from ..transform.swap_butterfly import SwapButterfly

    ks = tuple(p["ks"])
    sb = SwapButterfly.from_ks(ks)
    n, k1 = sb.n, sb.params.ks[0]
    schemes = (
        ["row", "nucleus", "naive"] if p["scheme"] == "all" else [p["scheme"]]
    )
    rows, all_ok = [], True
    arrays: Dict[str, np.ndarray] = {}
    for scheme in schemes:
        if scheme == "row":
            part = RowPartition.natural(sb)
            rep = count_off_module_links(part)
            closed = row_partition_offmodule_per_module(sb.params.ks)
            exact, ok = rep.max_per_module, rep.max_per_module == closed
            modules, avg = rep.num_modules, float(rep.avg_per_node)
            ea = sb.cached_edge_array()
            arrays["row_module_ids"] = np.asarray(
                part.module_ids(ea[:, 0, 0], ea[:, 0, 1])
            )
        elif scheme == "nucleus":
            part = NucleusPartition(sb)
            rep = count_off_module_links(part)
            closed = nucleus_partition_module_bound(k1)
            exact, ok = rep.max_per_module, rep.max_per_module <= closed
            modules, avg = rep.num_modules, float(rep.avg_per_node)
            ea = sb.cached_edge_array()
            arrays["nucleus_module_ids"] = np.asarray(
                part.module_ids(ea[:, 0, 0], ea[:, 0, 1])
            )
        else:
            m = p["rows_per_module"] or (1 << k1)
            part = NaiveRowPartition(Butterfly(n), m)
            pins = part.exact_pin_counts()
            exact = max(pins.values(), default=0)
            if is_power_of_two(m):
                closed = naive_offmodule_per_module(n, ilog2(m))
                ok = exact == closed
            else:  # the paper's ~2-links-per-node estimate
                closed = 2 * m * (n + 1)
                ok = exact <= closed
            modules = part.num_modules
            avg = float(part.avg_per_node())
            arrays["naive_pin_counts"] = np.array(
                [pins[k] for k in sorted(pins)], dtype=np.int64
            )
        all_ok &= ok
        rows.append(
            {
                "scheme": scheme,
                "modules": int(modules),
                "pins closed-form": int(closed),
                "pins exact": int(exact),
                "avg links/node": round(avg, 4),
                "match": "OK" if ok else "FAILED",
            }
        )
    result = {
        "kind": "package",
        "params": p,
        "n": int(n),
        "schemes": rows,
        "all_match": bool(all_ok),
    }
    return result, arrays


def _compute_benes(p: Dict[str, object]) -> Tuple[Dict, Arrays]:
    from ..algorithms.benes_routing import (
        apply_settings_batch,
        num_switch_stages,
        route_permutations,
    )

    n, batch, seed = p["n"], p["batch"], p["seed"]
    N = 1 << n
    rng = np.random.default_rng(seed)
    perms = np.array([rng.permutation(N) for _ in range(batch)])
    settings = route_permutations(perms)
    realized_ok = bool(np.array_equal(apply_settings_batch(settings), perms))
    counts = settings.count_crossed()
    result = {
        "kind": "benes",
        "params": p,
        "terminals": N,
        "switches": num_switch_stages(n) * (N // 2),
        "realized_ok": realized_ok,
        "crossed": {
            "min": int(counts.min()),
            "mean": float(counts.mean()),
            "max": int(counts.max()),
        },
    }
    arrays = {
        "perms": perms.astype(np.int64),
        "crossed": settings.crossed.astype(np.uint8),
    }
    return result, arrays


def _compute_saturation(p: Dict[str, object]) -> Tuple[Dict, Arrays]:
    from ..algorithms.queued_routing import saturation_per_node_rate

    rate = saturation_per_node_rate(
        p["n"], cycles=p["cycles"], threshold=p["threshold"],
        seed=p["seed"], drain=p["drain"],
    )
    return {
        "kind": "saturation",
        "params": p,
        "rate_per_node": float(rate),
        "paper_wall": 1.0 / (p["n"] + 1),
    }, None


def _compute_sim(p: Dict[str, object]) -> Tuple[Dict, Arrays]:
    from ..algorithms.queued_routing import simulate_butterfly_queued

    res = simulate_butterfly_queued(
        p["n"], p["rate"], cycles=p["cycles"], warmup=p["warmup"],
        seed=p["seed"], drain=p["drain"],
    )
    latency = float(res.avg_latency)
    return {
        "kind": "sim",
        "params": p,
        "offered": int(res.offered),
        "delivered": int(res.delivered_total),
        "throughput_per_input": float(res.throughput_per_input),
        "accepted_fraction": float(res.accepted_fraction),
        # inf (nothing completed) is not strict JSON; serve null instead
        "avg_latency": latency if math.isfinite(latency) else None,
        "max_queue": int(res.max_queue),
    }, None


_COMPUTE: Dict[str, Callable[[Dict], Tuple[Dict, Arrays]]] = {
    "layout": _compute_layout,
    "dims": _compute_dims,
    "package": _compute_package,
    "benes": _compute_benes,
    "saturation": _compute_saturation,
    "sim": _compute_sim,
}


def compute(
    kind: str,
    params: Dict[str, object],
    exec_params: Optional[Dict[str, object]] = None,
) -> Tuple[Dict, Arrays]:
    """Run the query uncached; params must already be normalized.

    ``exec_params`` (already split/validated) steer *how* the answer is
    computed — they never change the answer's bytes.

    Engine-level ``ValueError``s (a parameter vector the constructions
    reject, e.g. ``k_i > k1``) surface as :class:`QueryError` so the
    HTTP layer answers 400, not 500.
    """
    try:
        if kind in EXEC_PARAM_SPECS:
            return _COMPUTE[kind](params, exec_params)
        return _COMPUTE[kind](params)
    except QueryError:
        raise
    except ValueError as e:
        raise QueryError(f"{kind}: {e}") from e


def query(
    kind: str,
    params: Dict[str, object],
    store: Optional[ArtifactStore] = None,
    use_cache: bool = True,
    info: Optional[Dict[str, object]] = None,
    exec_params: Optional[Dict[str, object]] = None,
) -> Dict:
    """Answer a design query, serving from ``store`` when possible.

    Misses compute under the store's single-flight lock, so concurrent
    identical queries compute once.  ``info`` (if given) receives
    ``cache`` (``"hit"`` / ``"miss"`` / ``"off"``) and ``key``.

    Execution knobs (``memory_budget_bytes``, ``workers`` for
    ``layout``) may ride along inside ``params`` — the HTTP layer passes
    query strings through verbatim — or arrive via ``exec_params``.
    Either way they are validated, stripped before normalization, and
    excluded from the cache key: they choose the compute strategy, not
    the artifact.
    """
    params, ex = split_exec_params(kind, params)
    if exec_params:
        spec = EXEC_PARAM_SPECS.get(kind, {})
        for name, val in exec_params.items():
            if name not in spec:
                raise QueryError(
                    f"unknown exec parameter {name!r} for {kind}"
                )
            val = spec[name](val, name)
            if val is not None:
                ex[name] = val
    p = normalize_params(kind, params)
    if info is None:
        info = {}
    info["key"] = key = cache_key(kind, p)
    if store is None or not use_cache:
        info["cache"] = "off"
        return compute(kind, p, ex)[0]
    cached = store.get(kind, p)
    if cached is not None:
        info["cache"] = "hit"
        return cached
    with store.single_flight(key):
        cached = store.get(kind, p)  # the winner may have landed it
        if cached is not None:
            info["cache"] = "hit"
            return cached
        result, arrays = compute(kind, p, ex)
        store.put(kind, p, result, arrays)
    info["cache"] = "miss"
    return result
