"""Cached design-query service: content-addressed artifact store,
query handlers, and a stdlib HTTP front end.

The five engines answer design queries ("layout for ISN(l; k1..k3)",
"optimal packaging under a pin limit", "saturation rate at n") in
seconds; this package makes repeated parameter points O(1): results are
stored content-addressed on disk (:mod:`~repro.service.store`), computed
on miss through one shared handler layer (:mod:`~repro.service.handlers`)
that the CLI subcommands also use, and served over HTTP by ``repro
serve`` (:mod:`~repro.service.server`).  The cache doubles as a
regression corpus: ``repro cache verify`` re-hashes every stored
artifact and quarantines anything corrupt."""

from .handlers import QUERY_KINDS, QueryError, compute, normalize_params, query
from .store import (
    SCHEMA_VERSION,
    ArtifactStore,
    CacheEntry,
    cache_key,
    canonical_json,
    default_cache_dir,
)
from .server import ServiceHTTPHandler, make_server, serve

__all__ = [
    "ArtifactStore",
    "CacheEntry",
    "SCHEMA_VERSION",
    "cache_key",
    "canonical_json",
    "default_cache_dir",
    "QUERY_KINDS",
    "QueryError",
    "normalize_params",
    "compute",
    "query",
    "ServiceHTTPHandler",
    "make_server",
    "serve",
]
