"""Dependency-light HTTP front end for the design service.

Stdlib only (``http.server``): the library stays importable with bare
NumPy, and ``repro serve`` needs nothing the test environment does not
already have.  Threaded when the platform provides ``ThreadingHTTPServer``
(the normal case), with a graceful single-threaded fallback otherwise;
either way the artifact store's single-flight locking keeps concurrent
identical misses from computing twice.

Routes (all answers are canonical JSON — sorted keys, compact — so a
warm hit is byte-identical to the cold compute that populated it; the
``X-Repro-Cache`` header, not the body, says which one served you):

==============================  ========================================
``GET /v1/health``              liveness + schema version
``GET /v1/cache/stats``         entry/byte counts per kind
``GET /v1/<kind>?ks=3,3,3&...`` query via query-string parameters
``POST /v1/query``              query via JSON body ``{kind, params}``
==============================  ========================================

Malformed queries (unknown kind, bad parameter vector) answer ``400``
with ``{"error": ...}``; unknown routes ``404``; compute crashes ``500``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from .handlers import QUERY_KINDS, QueryError, query
from .store import SCHEMA_VERSION, ArtifactStore, canonical_json

__all__ = ["ServiceHTTPHandler", "make_server", "serve"]

try:  # pragma: no cover - always present on CPython >= 3.7
    from http.server import ThreadingHTTPServer as _ServerBase
except ImportError:  # pragma: no cover - single-threaded fallback
    _ServerBase = HTTPServer


class ServiceHTTPHandler(BaseHTTPRequestHandler):
    """One design query per request; see the module docstring for routes."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    @property
    def store(self) -> Optional[ArtifactStore]:
        return self.server.artifact_store

    def log_message(self, fmt: str, *args) -> None:
        if getattr(self.server, "quiet", False):
            return
        super().log_message(fmt, *args)

    def _send_json(
        self, status: int, payload: Dict, headers: Optional[Dict] = None
    ) -> None:
        body = canonical_json(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for k, v in (headers or {}).items():
            self.send_header(k, v)
        self.end_headers()
        self.wfile.write(body)

    def _answer(self, kind: str, params: Dict) -> None:
        info: Dict[str, object] = {}
        try:
            result = query(
                kind, params,
                store=self.store,
                use_cache=self.server.use_cache,
                info=info,
            )
        except QueryError as e:
            self._send_json(400, {"error": str(e), "kind": kind})
            return
        except Exception as e:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"internal error: {e}"})
            return
        self._send_json(
            200, result,
            headers={
                "X-Repro-Cache": str(info.get("cache", "off")),
                "X-Repro-Key": str(info.get("key", "")),
            },
        )

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path, params = self._split()
        if path == "/v1/health":
            self._send_json(
                200,
                {"ok": True, "schema_version": SCHEMA_VERSION,
                 "kinds": list(QUERY_KINDS)},
            )
        elif path == "/v1/cache/stats":
            if self.store is None:
                self._send_json(200, {"entries": 0, "cache": "off"})
            else:
                self._send_json(200, self.store.stats())
        elif path.startswith("/v1/"):
            self._answer(path[len("/v1/"):], params)
        else:
            self._send_json(404, {"error": f"no such route {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path, _params = self._split()
        if path != "/v1/query":
            self._send_json(404, {"error": f"no such route {path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            doc = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(doc, dict):
                raise ValueError("body must be a JSON object")
            kind = doc.get("kind")
            params = doc.get("params", {})
            if not isinstance(kind, str):
                raise ValueError('body must carry a string "kind"')
        except (ValueError, UnicodeDecodeError) as e:
            self._send_json(400, {"error": f"bad request body: {e}"})
            return
        self._answer(kind, params)

    def _split(self) -> Tuple[str, Dict[str, str]]:
        parts = urlsplit(self.path)
        return parts.path.rstrip("/") or "/", dict(parse_qsl(parts.query))


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    store: Optional[ArtifactStore] = None,
    use_cache: bool = True,
    quiet: bool = False,
    threaded: bool = True,
) -> HTTPServer:
    """A configured (but not yet serving) HTTP server; ``port=0`` binds
    an ephemeral port (read it back from ``server_address[1]``)."""
    cls = _ServerBase if threaded else HTTPServer
    srv = cls((host, port), ServiceHTTPHandler)
    srv.artifact_store = store
    srv.use_cache = use_cache and store is not None
    srv.quiet = quiet
    return srv


def serve(
    host: str,
    port: int,
    store: Optional[ArtifactStore],
    use_cache: bool = True,
    max_requests: Optional[int] = None,
    quiet: bool = False,
) -> HTTPServer:
    """Run the service until interrupted (or for ``max_requests``
    requests — handy for smoke tests); returns the closed server."""
    srv = make_server(host, port, store=store, use_cache=use_cache,
                      quiet=quiet)
    try:
        if max_requests is not None:
            for _ in range(max_requests):
                srv.handle_request()
        else:  # pragma: no cover - interactive loop
            srv.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive loop
        pass
    finally:
        srv.server_close()
    return srv
