"""SVG rendering of board-level designs (Section 5.2 pictures).

Draws the chip grid with channel gaps to scale — the "top view" the
paper describes for the recursive grid layout at the packaging level.
Purely schematic (chips and channel bands, not individual board wires;
the wire-level picture is :mod:`repro.viz.svg` on a built layout).
"""

from __future__ import annotations

from ..packaging.board import BoardDesign

__all__ = ["board_to_svg", "save_board_svg"]


def board_to_svg(design: BoardDesign, scale: float = 1.0) -> str:
    """Render the chip grid and channels of a :class:`BoardDesign`."""
    chip = design.chip.side
    gap_h = design.channel_tracks
    # vertical channels have the same width in the symmetric designs we
    # build; recompute from the board side for generality
    gap_v = design.board_side_x // design.grid_cols - chip
    W = design.board_side_x * scale
    H = design.board_side_y * scale
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{W:.0f}" '
        f'height="{H:.0f}" viewBox="0 0 {W:.0f} {H:.0f}">',
        f'<rect width="{W:.0f}" height="{H:.0f}" fill="#f4f7e8"/>',
    ]
    # channel bands
    for g in range(design.grid_rows):
        y = (g * (chip + gap_h) + chip) * scale
        parts.append(
            f'<rect x="0" y="{y:.1f}" width="{W:.0f}" '
            f'height="{gap_h * scale:.1f}" fill="#cdd9f0"/>'
        )
    for c in range(design.grid_cols):
        x = (c * (chip + gap_v) + chip) * scale
        parts.append(
            f'<rect x="{x:.1f}" y="0" width="{gap_v * scale:.1f}" '
            f'height="{H:.0f}" fill="#cdd9f0" fill-opacity="0.6"/>'
        )
    # chips
    for g in range(design.grid_rows):
        for c in range(design.grid_cols):
            x = c * (chip + gap_v) * scale
            y = g * (chip + gap_h) * scale
            idx = g * design.grid_cols + c
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{chip * scale:.1f}" '
                f'height="{chip * scale:.1f}" fill="#888" stroke="#333" '
                f'stroke-width="0.8"><title>chip {idx}: '
                f"{design.nodes_per_chip} nodes, {design.pins_per_chip} pins"
                f"</title></rect>"
            )
    parts.append("</svg>")
    return "\n".join(parts)


def save_board_svg(design: BoardDesign, path: str, scale: float = 1.0) -> str:
    """Write the board render to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(board_to_svg(design, scale))
    return path
