"""Text renderings of the paper's figures.

* Figures 1-2 annotate each swap-butterfly node with its *butterfly row
  number*; :func:`swap_butterfly_figure` reproduces exactly that label
  matrix (physical rows down, stages across).
* Figure 4 is the collinear layout of ``K_9``; :func:`collinear_figure`
  lists each track's links, grouped by type, matching the figure's
  structure.
* :func:`isn_schedule_figure` prints an ISN's stage schedule (which
  boundaries are exchanges on which bits, which are swaps).
"""

from __future__ import annotations

from typing import List

from ..layout.collinear import track_assignment
from ..topology.isn import ExchangeStep, ISN
from ..transform.swap_butterfly import CompositeBoundary, SwapButterfly

__all__ = ["swap_butterfly_figure", "collinear_figure", "isn_schedule_figure"]


def swap_butterfly_figure(sb: SwapButterfly) -> str:
    """The Figure 1/2 label matrix: entry ``(u, s)`` is the butterfly row
    embedded at physical row ``u``, stage ``s``."""
    width = max(3, len(str(sb.rows - 1)) + 1)
    header = "row".ljust(6) + "".join(
        f"s{s}".rjust(width) for s in range(sb.stages)
    )
    lines = [header]
    for u in range(sb.rows):
        labels = [sb.phi_inverse(s, u) for s in range(sb.stages)]
        lines.append(
            str(u).ljust(6) + "".join(str(x).rjust(width) for x in labels)
        )
    marks = ["boundaries:".ljust(6)]
    for s, b in enumerate(sb.boundaries):
        tag = f"x{b.bit}" if not isinstance(b, CompositeBoundary) else f"S{b.level}"
        marks.append(tag)
    lines.append(" ".join(marks))
    return "\n".join(lines)


def collinear_figure(n: int, order: str = "forward") -> str:
    """Track-by-track listing of the optimal collinear layout of ``K_n``."""
    assign = track_assignment(n, order)  # type: ignore[arg-type]
    by_track: dict = {}
    for (a, b), t in assign.items():
        by_track.setdefault(t, []).append((a, b))
    lines = [f"collinear layout of K_{n}: {max(by_track) + 1} tracks"]
    for t in sorted(by_track):
        links = sorted(by_track[t])
        types = {b - a for a, b in links}
        tag = ",".join(str(i) for i in sorted(types))
        lines.append(
            f"track {t:>3} (type {tag}): "
            + " ".join(f"{a}-{b}" for a, b in links)
        )
    return "\n".join(lines)


def isn_schedule_figure(isn: ISN) -> str:
    """Human-readable stage schedule of an ISN."""
    lines = [
        f"ISN{isn.params.ks}: {isn.rows} rows x {isn.stages} stages "
        f"({isn.num_steps} steps)"
    ]
    for j, step in enumerate(isn.schedule):
        if isinstance(step, ExchangeStep):
            lines.append(
                f"step {j:>2}: exchange bit {step.bit} (segment {step.segment})"
            )
        else:
            lines.append(f"step {j:>2}: level-{step.level} swap")
    return "\n".join(lines)
