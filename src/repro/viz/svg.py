"""SVG rendering of layouts (Figures 3 and 4 style output).

Pure-string SVG generation (no dependencies): node rectangles, wire
polylines colored by layer, vias as dots.  Scales/flips coordinates so
renders match the paper's figures (y grows upward in our layouts).
"""

from __future__ import annotations

from typing import Optional

from ..layout.model import Layout

__all__ = ["layout_to_svg", "save_svg"]

_LAYER_COLORS = [
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#ff7f0e",
    "#9467bd",
    "#8c564b",
    "#17becf",
    "#e377c2",
    "#bcbd22",
    "#7f7f7f",
]


def _color(layer: int) -> str:
    return _LAYER_COLORS[(layer - 1) % len(_LAYER_COLORS)]


def layout_to_svg(
    layout: Layout,
    scale: float = 4.0,
    margin: float = 10.0,
    node_fill: str = "#dddddd",
    show_vias: bool = True,
    max_wires: Optional[int] = None,
) -> str:
    """Render a layout as an SVG document string.

    ``max_wires`` truncates very large layouts (rendering every wire of an
    ``n = 12`` butterfly produces a 100 MB file; the structure is visible
    from a sample).
    """
    x0, y0, x1, y1 = layout.bounding_box()
    W = (x1 - x0) * scale + 2 * margin
    H = (y1 - y0) * scale + 2 * margin

    def tx(x: int) -> float:
        return (x - x0) * scale + margin

    def ty(y: int) -> float:
        # flip: our +y is up, SVG +y is down
        return (y1 - y) * scale + margin

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{W:.0f}" '
        f'height="{H:.0f}" viewBox="0 0 {W:.0f} {H:.0f}">',
        f'<rect width="{W:.0f}" height="{H:.0f}" fill="white"/>',
    ]
    for node, r in layout.nodes.items():
        parts.append(
            f'<rect x="{tx(r.x):.1f}" y="{ty(r.y2):.1f}" '
            f'width="{r.w * scale:.1f}" height="{r.h * scale:.1f}" '
            f'fill="{node_fill}" stroke="#555" stroke-width="0.6">'
            f"<title>{node}</title></rect>"
        )
    wires = layout.wires if max_wires is None else layout.wires[:max_wires]
    for w in wires:
        for s in w.segments:
            parts.append(
                f'<line x1="{tx(s.x1):.1f}" y1="{ty(s.y1):.1f}" '
                f'x2="{tx(s.x2):.1f}" y2="{ty(s.y2):.1f}" '
                f'stroke="{_color(s.layer)}" stroke-width="0.8" '
                f'stroke-opacity="0.8"/>'
            )
        if show_vias:
            for vx, vy in w.vias():
                parts.append(
                    f'<circle cx="{tx(vx):.1f}" cy="{ty(vy):.1f}" r="1.2" '
                    f'fill="#222"/>'
                )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(layout: Layout, path: str, **kwargs) -> str:
    """Write the SVG render to ``path``; returns the path."""
    svg = layout_to_svg(layout, **kwargs)
    with open(path, "w", encoding="utf-8") as f:
        f.write(svg)
    return path
