"""Figure regeneration: SVG layout renders and text figures."""

from .ascii import collinear_figure, isn_schedule_figure, swap_butterfly_figure
from .board_svg import board_to_svg, save_board_svg
from .svg import layout_to_svg, save_svg

__all__ = [
    "layout_to_svg",
    "board_to_svg",
    "save_board_svg",
    "save_svg",
    "swap_butterfly_figure",
    "collinear_figure",
    "isn_schedule_figure",
]
