"""2-D grid layouts of hypercubes (the conclusion's companion claim).

Split ``Q_n`` as ``n = a + b``: place node ``x`` at grid position
``(x >> b, x & (2**b - 1))``.  Dimensions ``0..b-1`` connect nodes within
a grid row (the induced graph is ``Q_b`` on column indices) and
dimensions ``b..n-1`` within a grid column (``Q_a``) — so the generic
grid recipe applies with hypercube row/column graphs.

The channel demand is the collinear congestion of a hypercube in natural
order, which has the closed form ``floor(2^{b+1}/3)`` (property-tested
against the engine): cut ``c = 0b0101...`` is worst, crossed by ``2^d``
dimension-``d`` links for every other ``d``.  With a balanced split this
gives layout side ``~ (2/3) N`` and area ``(4/9) N^2 (1 + o(1))`` — the
hypercube analogue of the butterfly result, matching the authors'
companion paper [26] on hypercubic networks.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..topology.bits import flip_bit
from ..topology.graph import Graph
from .grid2d import Grid2DResult, build_grid2d_layout

__all__ = [
    "hypercube_collinear_congestion",
    "hypercube_2d_layout",
    "hypercube_2d_dims",
    "hypercube_2d_area_estimate",
]


def hypercube_collinear_congestion(b: int) -> int:
    """Max cut congestion of ``Q_b`` in natural order: ``floor(2^{b+1}/3)``."""
    if b < 0:
        raise ValueError(f"dimension must be >= 0, got {b}")
    return (1 << (b + 1)) // 3


def _sub_hypercube(k: int) -> Graph:
    g = Graph(name=f"Q_{k}-row")
    g.add_nodes(range(1 << k))
    for u in range(1 << k):
        for d in range(k):
            v = flip_bit(u, d)
            if u < v:
                g.add_edge(u, v)
    return g


def hypercube_2d_layout(
    n: int,
    split: Optional[Tuple[int, int]] = None,
    W: Optional[int] = None,
    L: int = 2,
    split_channels: bool = False,
) -> Grid2DResult:
    """Wire-level 2-D layout of ``Q_n`` under the ``L``-layer grid model.

    ``split = (a, b)`` controls the grid shape (default: balanced, with
    the larger half horizontal).  The grid node ``(r, c)`` is hypercube
    node ``(r << b) | c``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    a, b = split if split is not None else (n // 2, n - n // 2)
    if a + b != n or a < 0 or b < 0 or a + b == 0:
        raise ValueError(f"split {split} does not partition n = {n}")
    if a == 0 or b == 0:
        raise ValueError("degenerate split: use the collinear layout directly")
    row = _sub_hypercube(b)
    col = _sub_hypercube(a)
    return build_grid2d_layout(
        rows=1 << a,
        cols=1 << b,
        row_graph=lambda r: row,
        col_graph=lambda c: col,
        W=W if W is not None else n,  # Thompson: node side = degree
        L=L,
        name=f"Q{n}",
        split_channels=split_channels,
    )


def hypercube_2d_dims(
    n: int,
    split: Optional[Tuple[int, int]] = None,
    W: Optional[int] = None,
    L: int = 2,
):
    """Exact closed-form dimensions of :func:`hypercube_2d_layout` (same
    arithmetic as the builder, evaluable at any ``n``)."""
    from .grid2d import Grid2DDims
    from .tracks import TrackGrouping

    a, b = split if split is not None else (n // 2, n - n // 2)
    if a + b != n or a < 1 or b < 1:
        raise ValueError(f"split {split} does not partition n = {n}")
    side = W if W is not None else n
    row_demand = hypercube_collinear_congestion(b)
    col_demand = hypercube_collinear_congestion(a)
    gh = TrackGrouping(L=L, horizontal=True, total_tracks=row_demand)
    gv = TrackGrouping(L=L, horizontal=False, total_tracks=col_demand)
    return Grid2DDims(
        rows=1 << a,
        cols=1 << b,
        W=side,
        L=L,
        row_tracks=row_demand,
        col_tracks=col_demand,
        chan_h=gh.physical_tracks,
        chan_v=gv.physical_tracks,
        cell_w=side + 2 + gv.physical_tracks,
        cell_h=side + 2 + gh.physical_tracks,
    )


def hypercube_2d_area_estimate(n: int, L: int = 2) -> float:
    """Leading term of the balanced layout's area: ``(4/9) N^2 (2/L)^2``
    with ``N = 2**n`` (each side ``~ (2/3) N / (L/2)`` for even splits)."""
    if L < 2:
        raise ValueError(f"L must be >= 2, got {L}")
    N = 1 << n
    g = L / 2 if L % 2 == 0 else (L + 1) / 2  # H groups; V differs for odd L
    gv = L / 2 if L % 2 == 0 else (L - 1) / 2
    return (2 / 3) ** 2 * N * N / (g * gv)
