"""2-D layouts of cube-connected cycles (CCC) networks.

The paper cites Chen & Lau's "Tighter layouts of the cube-connected
cycles" [7] among the efficient-layout literature its scheme relates to.
``CCC(n)`` replaces each vertex of ``Q_n`` by an ``n``-cycle — node
``(x, d)`` with cycle links ``(x, d)-(x, d+1 mod n)`` and one dimension
link ``(x, d)-(x XOR 2**d, d)`` — giving a degree-3 network with
``N = n 2**n`` nodes and bisection ``Theta(2**n)``.

The layout follows the paper's grid philosophy: hypercube vertices
arranged as a ``2**a x 2**b`` grid (``a + b = n``), each grid cell a
vertical stack of the vertex's ``n`` cycle nodes, with

* cycle links wired inside the cell (neighbors abut; the wrap link uses
  one in-cell track),
* dimension links ``d < b`` routed through per-grid-row horizontal
  channels (hypercube pattern on columns), reached by per-cell riser
  tracks, and
* dimension links ``d >= b`` routed through per-grid-column vertical
  channels directly from the node's right edge.

Channel tracks are shared only across a full-cell gap (``min_gap = 1``
left-edge assignment), so the width is within one cell of the hypercube
congestion ``floor(2**(b+1)/3)``.  The resulting area is
``Theta(4**n) = Theta((N/log N)^2)`` with leading constant ``4/9`` for
balanced splits — bisection-optimal up to the constant, matching the
CCC-layout literature's shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..topology.bits import flip_bit
from ..topology.graph import Graph
from .collinear_generic import left_edge_tracks
from .geometry import Rect, Wire
from .model import Layout, multilayer_model, thompson_model
from .tracks import TrackGrouping, base_layer_pair

__all__ = ["ccc_graph", "CccDims", "CccResult", "ccc_2d_layout", "ccc_2d_dims"]

# node-side slots (W >= 4): 0 cycle/straight, 1 dim-out, 2 wrap, 3 dim-in
_SLOT_DIM_OUT = 1
_SLOT_WRAP = 2
_SLOT_DIM_IN = 3


def ccc_graph(n: int) -> Graph:
    """The CCC(n) graph on nodes ``(x, d)``."""
    if n < 2:
        raise ValueError(f"CCC needs n >= 2, got {n}")
    g = Graph(name=f"CCC_{n}")
    for x in range(1 << n):
        for d in range(n):
            g.add_node((x, d))
    for x in range(1 << n):
        for d in range(n):
            g.add_edge((x, d), (x, (d + 1) % n))
            y = flip_bit(x, d)
            if x < y:
                g.add_edge((x, d), (y, d))
    return g


@dataclass(frozen=True)
class CccDims:
    n: int
    a: int
    b: int
    W: int
    L: int
    cell_w: int
    cell_h: int
    chan_h: int
    chan_v: int
    grid_cell_w: int
    grid_cell_h: int

    @property
    def width(self) -> int:
        return (1 << self.b) * self.grid_cell_w

    @property
    def height(self) -> int:
        return (1 << self.a) * self.grid_cell_h

    @property
    def area(self) -> int:
        return self.width * self.height


def _subcube_tracks(dims: int, cells: int, L: int, horizontal: bool):
    """Left-edge tracks for the union of hypercube matchings on ``cells``
    positions (one edge per pair per dimension), with full-cell gaps."""
    g = Graph()
    g.add_nodes(range(cells))
    for d in range(dims):
        for u in range(cells):
            v = flip_bit(u, d)
            if u < v:
                g.add_edge(u, v)
    assign = left_edge_tracks(g, range(cells), min_gap=1)
    demand = max(assign.values()) + 1 if assign else 0
    grouping = TrackGrouping(L=L, horizontal=horizontal, total_tracks=max(demand, 1))
    return assign, (grouping.physical_tracks if demand else 0), grouping


def ccc_2d_layout(
    n: int,
    split: Optional[Tuple[int, int]] = None,
    W: int = 4,
    L: int = 2,
) -> "CccResult":
    """Build and return the wire-level CCC(n) layout."""
    if n < 2:
        raise ValueError(f"CCC needs n >= 2, got {n}")
    if W < 4:
        raise ValueError(f"node side must be >= 4, got {W}")
    a, b = split if split is not None else (n // 2, n - n // 2)
    if a + b != n or a < 1 or b < 1:
        raise ValueError(f"split {split} does not partition n = {n}")

    row_assign, chan_h, gh = _subcube_tracks(b, 1 << b, L, horizontal=True)
    col_assign, chan_v, gv = _subcube_tracks(a, 1 << a, L, horizontal=False)

    # cell geometry: node column + right channel (wrap + one riser per d<b)
    risers = b
    cell_w = W + 1 + (1 + risers) + 1
    cell_h = n * (W + 1)
    gc_w = cell_w + 1 + chan_v + 1
    gc_h = cell_h + 1 + chan_h + 1
    dims = CccDims(
        n=n, a=a, b=b, W=W, L=L,
        cell_w=cell_w, cell_h=cell_h,
        chan_h=chan_h, chan_v=chan_v,
        grid_cell_w=gc_w, grid_cell_h=gc_h,
    )

    model = thompson_model() if L == 2 else multilayer_model(L)
    base = base_layer_pair(L)
    lay = Layout(model=model, name=f"CCC{n}-L{L}")
    graph = ccc_graph(n)

    def origin(x: int) -> Tuple[int, int]:
        r, c = x >> b, x & ((1 << b) - 1)
        return (c * gc_w, r * gc_h)

    def node_pos(x: int, d: int) -> Tuple[int, int]:
        ox, oy = origin(x)
        return (ox, oy + d * (W + 1))

    for x in range(1 << n):
        for d in range(n):
            px, py = node_pos(x, d)
            lay.add_node((x, d), Rect(px, py, W, W))

    # --- cycle links ------------------------------------------------------
    for x in range(1 << n):
        ox, oy = origin(x)
        for d in range(n - 1):
            px, py = node_pos(x, d)
            lay.add_wire(
                Wire.from_path(
                    ((x, d), (x, d + 1), "cycle"),
                    [(px, py + W), (px, py + W + 1)],
                    base,
                )
            )
        if n >= 2:
            # wrap link via the cell channel's track 0
            track_x = ox + W + 1
            _, y_hi = node_pos(x, n - 1)
            _, y_lo = node_pos(x, 0)
            lay.add_wire(
                Wire.from_path(
                    ((x, n - 1), (x, 0), "wrap"),
                    [
                        (ox + W, y_hi + _SLOT_WRAP),
                        (track_x, y_hi + _SLOT_WRAP),
                        (track_x, y_lo + _SLOT_WRAP),
                        (ox + W, y_lo + _SLOT_WRAP),
                    ],
                    base,
                )
            )

    # --- dimension links d < b: horizontal row channels -------------------
    # map channel-track keys: assignment on column indices, one edge per
    # (pair, dimension); copies within a pair are ordered by dimension
    row_pairs: Dict[Tuple[int, int], List[int]] = {}
    for d in range(b):
        for cc in range(1 << b):
            c2 = flip_bit(cc, d)
            if cc < c2:
                row_pairs.setdefault((cc, c2), []).append(d)
    for lst in row_pairs.values():
        lst.sort()

    for (c1, c2, copy), track in sorted(row_assign.items()):
        d = row_pairs[(c1, c2)][copy]
        pair = gh.layer_pair(track)
        for r in range(1 << a):
            x1 = (r << b) | c1
            x2 = (r << b) | c2
            o1, o2 = origin(x1), origin(x2)
            rx1 = o1[0] + W + 1 + 1 + d  # riser track for dimension d
            rx2 = o2[0] + W + 1 + 1 + d
            _, y1 = node_pos(x1, d)
            _, y2 = node_pos(x2, d)
            track_y = r * gc_h + cell_h + 1 + gh.offset_of(track)
            lay.add_wire(
                Wire.from_legs(
                    ((x1, d), (x2, d), "dim"),
                    [
                        ([(o1[0] + W, y1 + _SLOT_DIM_OUT),
                          (rx1, y1 + _SLOT_DIM_OUT)], base),
                        ([(rx1, y1 + _SLOT_DIM_OUT), (rx1, track_y),
                          (rx2, track_y), (rx2, y2 + _SLOT_DIM_IN)], pair),
                        ([(rx2, y2 + _SLOT_DIM_IN),
                          (o2[0] + W, y2 + _SLOT_DIM_IN)], base),
                    ],
                )
            )

    # --- dimension links d >= b: vertical column channels -----------------
    col_pairs: Dict[Tuple[int, int], List[int]] = {}
    for d in range(b, n):
        for rr in range(1 << a):
            r2 = flip_bit(rr, d - b)
            if rr < r2:
                col_pairs.setdefault((rr, r2), []).append(d)
    for lst in col_pairs.values():
        lst.sort()

    for (r1, r2, copy), track in sorted(col_assign.items()):
        d = col_pairs[(r1, r2)][copy]
        pair = gv.layer_pair(track)
        for cc in range(1 << b):
            x1 = (r1 << b) | cc
            x2 = (r2 << b) | cc
            o1, o2 = origin(x1), origin(x2)
            _, y1 = node_pos(x1, d)
            _, y2 = node_pos(x2, d)
            track_x = cc * gc_w + cell_w + 1 + gv.offset_of(track)
            lay.add_wire(
                Wire.from_legs(
                    ((x1, d), (x2, d), "dim"),
                    [
                        ([(o1[0] + W, y1 + _SLOT_DIM_OUT),
                          (track_x, y1 + _SLOT_DIM_OUT)], base),
                        ([(track_x, y1 + _SLOT_DIM_OUT),
                          (track_x, y2 + _SLOT_DIM_IN)], pair),
                        ([(track_x, y2 + _SLOT_DIM_IN),
                          (o2[0] + W, y2 + _SLOT_DIM_IN)], base),
                    ],
                )
            )

    return CccResult(layout=lay, graph=graph, dims=dims)


@dataclass
class CccResult:
    layout: Layout
    graph: Graph
    dims: CccDims

    def summary(self) -> Dict[str, int]:
        s = self.layout.summary()
        s["chan_h"] = self.dims.chan_h
        s["chan_v"] = self.dims.chan_v
        return s


def ccc_2d_dims(
    n: int,
    split: Optional[Tuple[int, int]] = None,
    W: int = 4,
    L: int = 2,
) -> CccDims:
    """Exact closed-form dimensions of :func:`ccc_2d_layout` (evaluable at
    any ``n`` — used to exhibit the Theta(4^n) constant converging)."""
    if n < 2:
        raise ValueError(f"CCC needs n >= 2, got {n}")
    a, b = split if split is not None else (n // 2, n - n // 2)
    if a + b != n or a < 1 or b < 1:
        raise ValueError(f"split {split} does not partition n = {n}")
    _, chan_h, _g = _subcube_tracks(b, 1 << b, L, horizontal=True)
    _, chan_v, _g = _subcube_tracks(a, 1 << a, L, horizontal=False)
    cell_w = W + 1 + (1 + b) + 1
    cell_h = n * (W + 1)
    return CccDims(
        n=n, a=a, b=b, W=W, L=L,
        cell_w=cell_w, cell_h=cell_h,
        chan_h=chan_h, chan_v=chan_v,
        grid_cell_w=cell_w + 1 + chan_v + 1,
        grid_cell_h=cell_h + 1 + chan_h + 1,
    )
