"""Collinear layouts of arbitrary graphs (generalising Appendix B).

Appendix B's complete-graph layout is an instance of a general fact: for
a fixed node order, the minimum number of tracks for a collinear layout
equals the maximum *cut congestion* — the number of links crossing any
gap between consecutive nodes — because track sharing is exactly interval
graph coloring, which the left-edge algorithm solves optimally with
``max-overlap`` colors.

This module provides that engine: exact congestion, optimal track
assignment for any multigraph on ordered nodes, and the validated
geometric layout.  The butterfly paper's conclusion extends its results
to hypercubes and k-ary n-cubes, whose grid-scheme channels are collinear
layouts of *hypercubes* and *cycles* rather than complete graphs — built
on top of this engine in :mod:`repro.layout.hypercube_layout` and
:mod:`repro.layout.ghc_layout`.

For ``K_N`` the engine reproduces Appendix B exactly: congestion =
``floor(N^2/4)`` (the bisection bound), and the left-edge assignment uses
exactly that many tracks (property-tested against the paper's explicit
residue-class assignment).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..topology.graph import Graph
from .geometry import LayerPair, Rect, THOMPSON_LAYERS, Wire
from .model import Layout, LayoutModel, thompson_model

__all__ = [
    "cut_congestion",
    "max_congestion",
    "left_edge_tracks",
    "GenericCollinearLayout",
    "generic_collinear_layout",
]

Interval = Tuple[int, int]  # (left node index, right node index), left < right


def _intervals(graph: Graph, order: Sequence[Hashable]) -> List[Tuple[Interval, Tuple]]:
    """All links as index intervals, one entry per parallel copy.

    Returns ``((a, b), (u, v, copy))`` with ``a < b`` positions in
    ``order``.
    """
    pos = {node: i for i, node in enumerate(order)}
    if len(pos) != graph.num_nodes or set(pos) != set(graph.nodes()):
        raise ValueError("order must enumerate exactly the graph's nodes")
    out: List[Tuple[Interval, Tuple]] = []
    for u, v, mult in graph.edges():
        a, b = pos[u], pos[v]
        if a > b:
            a, b = b, a
            u, v = v, u
        for copy in range(mult):
            out.append(((a, b), (u, v, copy)))
    return out


def cut_congestion(graph: Graph, order: Sequence[Hashable]) -> List[int]:
    """Links crossing each of the ``n - 1`` gaps between consecutive nodes."""
    n = graph.num_nodes
    diff = [0] * (n + 1)
    for (a, b), _link in _intervals(graph, order):
        diff[a] += 1
        diff[b] -= 1
    out: List[int] = []
    run = 0
    for i in range(n - 1):
        run += diff[i]
        out.append(run)
    return out


def max_congestion(graph: Graph, order: Sequence[Hashable]) -> int:
    """The collinear track lower bound for this node order."""
    cong = cut_congestion(graph, order)
    return max(cong, default=0)


def left_edge_tracks(
    graph: Graph, order: Sequence[Hashable], min_gap: int = 0
) -> Dict[Tuple, int]:
    """Optimal track assignment (left-edge algorithm).

    Intervals sorted by left endpoint; each takes the lowest-numbered
    track whose current occupant ends at least ``min_gap`` before its
    start.  With ``min_gap = 0`` (collinear layouts, where terminal
    ordering at the shared node resolves the touch) this uses exactly
    ``max_congestion`` tracks — the optimum.  Channel routers that place
    lead-in/lead-out jogs at the shared row pass ``min_gap = 1``.
    """
    items = sorted(_intervals(graph, order), key=lambda it: (it[0], it[1]))
    # free heap: tracks ordered by (end, track); new tracks appended
    assign: Dict[Tuple, int] = {}
    ends: List[Tuple[int, int]] = []  # heap of (end position, track id)
    next_track = 0
    for (a, b), link in items:
        if ends and ends[0][0] + min_gap <= a:
            _end, t = heapq.heappop(ends)
        else:
            t = next_track
            next_track += 1
        assign[link] = t
        heapq.heappush(ends, (b, t))
    return assign


@dataclass
class GenericCollinearLayout:
    """Geometric collinear layout of any graph on an ordered node row."""

    graph: Graph
    order: Tuple[Hashable, ...]
    node_side: int
    layout: Layout
    track_of: Dict[Tuple, int]
    tracks_total: int
    congestion: int

    def summary(self) -> Dict[str, int]:
        s = self.layout.summary()
        s["tracks"] = self.tracks_total
        s["congestion"] = self.congestion
        return s


def generic_collinear_layout(
    graph: Graph,
    order: Optional[Sequence[Hashable]] = None,
    node_side: Optional[int] = None,
    layers: LayerPair = THOMPSON_LAYERS,
    model: Optional[LayoutModel] = None,
) -> GenericCollinearLayout:
    """Construct the optimal collinear layout of ``graph``.

    Terminal discipline matches :func:`repro.layout.collinear.collinear_layout`:
    node ``u`` attaches each wire at a distinct top-edge offset ordered by
    (neighbor position, copy), which keeps same-track chained links from
    overlapping.
    """
    nodes = list(order) if order is not None else sorted(
        graph.nodes(), key=lambda x: (isinstance(x, tuple), x)
    )
    pos = {node: i for i, node in enumerate(nodes)}
    assign = left_edge_tracks(graph, nodes)
    congestion = max_congestion(graph, nodes)
    tracks_total = max(assign.values(), default=-1) + 1
    assert tracks_total == congestion or not assign

    degree = max((graph.degree(u) for u in nodes), default=0)
    side = node_side if node_side is not None else max(degree, 1)
    if side < degree:
        raise ValueError(f"node side {side} cannot host {degree} terminals")
    pitch = side + 1
    top = side

    # per-node terminal ranks ordered by (neighbor position, copy)
    def terminal_x(u: Hashable, v: Hashable, copy: int) -> int:
        iu = pos[u]
        rank = 0
        for w in graph.neighbors(u):
            if pos[w] < pos[v]:
                rank += graph.multiplicity(u, w)
        return iu * pitch + rank + copy

    lay = Layout(model=model or thompson_model(), name=f"collinear-{graph.name}")
    for i, u in enumerate(nodes):
        lay.add_node(u, Rect(i * pitch, 0, side, side))

    track_of: Dict[Tuple, int] = {}
    for (u, v, copy), t in sorted(assign.items(), key=lambda kv: str(kv)):
        y = top + 1 + t
        xa = terminal_x(u, v, copy)
        xb = terminal_x(v, u, copy)
        lay.add_wire(
            Wire.from_path((u, v, copy), [(xa, top), (xa, y), (xb, y), (xb, top)], layers)
        )
        track_of[(u, v, copy)] = t
    return GenericCollinearLayout(
        graph=graph,
        order=tuple(nodes),
        node_side=side,
        layout=lay,
        track_of=track_of,
        tracks_total=tracks_total,
        congestion=congestion,
    )
