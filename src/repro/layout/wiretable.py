"""Columnar wire storage: the vectorized layout engine's core.

A :class:`WireTable` holds every wire of a layout as int64 numpy columns
(one row per segment, CSR-style ``indptr`` per wire) instead of a list of
:class:`~repro.layout.geometry.Wire` objects.  Builders emit tables
directly; conversion to/from the object representation is lossless
(``from_wires`` / ``to_wires``), so visualisation and all existing
object-level callers keep working while the hot paths — construction,
validation, measurement — run as numpy sweeps.

Segments are stored normalized exactly like :class:`Segment`
(``(x1, y1) <= (x2, y2)`` lexicographically), which is what makes
``to_wires`` byte-for-byte reproduce the object builder's output; the
differential suite in ``tests/test_layout_vectorized.py`` pins that.

Path order (which endpoint is the wire's start) is not stored — neither
does :class:`Wire`, whose ``path_points`` reconstructs it from segment
contiguity.  :meth:`WireTable.paths` performs the same reconstruction
vectorized: a short loop over segment *positions* (bounded by the longest
wire, ~7 segments here) with each step a whole-table numpy operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..backend import get_backend
from .geometry import LayerPair, Segment, Wire

__all__ = ["WireTable", "WireTableBuilder", "merge_legs"]

Point = Tuple[int, int]


def merge_legs(
    net: Tuple, legs: Sequence[Tuple[Sequence[Point], LayerPair]]
) -> List[Tuple[int, int, int, int, int]]:
    """The exact run-merge of :meth:`Wire.from_legs`, on plain tuples.

    Returns directed runs ``(ax, ay, bx, by, layer)``: consecutive
    duplicate points dropped, collinear same-layer continuing runs merged.
    Shared by the table builders so that a table-native wire and the
    object wire built from the same legs have identical segments.
    """
    runs: List[Tuple[int, int, int, int, int]] = []
    last: Optional[Point] = None
    for leg_points, pair in legs:
        vl, hl = pair.vertical, pair.horizontal
        for p in leg_points:
            if last is None or p == last:
                last = p if last is None else last
                continue
            a, b = last, p
            if a[0] != b[0] and a[1] != b[1]:
                raise ValueError(f"non-rectilinear leg {a} -> {b}")
            layer = vl if a[0] == b[0] else hl
            if runs:
                pax, pay, pbx, pby, pl = runs[-1]
                same_line = pl == layer and (
                    (pax == pbx == a[0] == b[0]) or (pay == pby == a[1] == b[1])
                )
                if same_line:
                    d_prev = (pbx - pax, pby - pay)
                    d_cur = (b[0] - a[0], b[1] - a[1])
                    if d_prev[0] * d_cur[0] > 0 or d_prev[1] * d_cur[1] > 0:
                        runs[-1] = (pax, pay, b[0], b[1], pl)
                        last = p
                        continue
            runs.append((a[0], a[1], b[0], b[1], layer))
            last = p
    if not runs:
        raise ValueError(f"wire {net}: empty path")
    return runs


@dataclass
class _Paths:
    """Reconstructed path points for every wire of a table.

    Wire ``w``'s points live at ``px[pt_indptr[w] : pt_indptr[w + 1]]``
    (always ``segments + 1`` points).  ``bad[w]`` marks discontiguous
    wires (their tail points are unreliable); ``bad_at[w]`` is the
    segment index the walk failed at (0 for the first pair).
    """

    px: np.ndarray
    py: np.ndarray
    pt_indptr: np.ndarray
    bad: np.ndarray
    bad_at: np.ndarray


@dataclass
class WireTable:
    """All wires of a layout as int64 segment columns.

    ``nets[w]`` is wire ``w``'s net tuple; its segments occupy rows
    ``indptr[w] : indptr[w + 1]`` of the coordinate/layer columns, in path
    order, normalized like :class:`Segment`.
    """

    nets: List[Tuple]
    indptr: np.ndarray
    x1: np.ndarray
    y1: np.ndarray
    x2: np.ndarray
    y2: np.ndarray
    layer: np.ndarray
    _paths: Optional[_Paths] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "WireTable":
        z = np.zeros(0, dtype=np.int64)
        return cls(nets=[], indptr=np.zeros(1, dtype=np.int64),
                   x1=z, y1=z.copy(), x2=z.copy(), y2=z.copy(), layer=z.copy())

    @classmethod
    def from_segment_arrays(
        cls,
        nets: List[Tuple],
        indptr: np.ndarray,
        x1: np.ndarray,
        y1: np.ndarray,
        x2: np.ndarray,
        y2: np.ndarray,
        layer: np.ndarray,
        normalize: bool = True,
    ) -> "WireTable":
        """Assemble from raw columns, normalizing endpoint order and
        validating the same invariants ``Segment`` enforces."""
        arrs = [np.ascontiguousarray(a, dtype=np.int64)
                for a in (x1, y1, x2, y2, layer)]
        x1, y1, x2, y2, layer = arrs
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        if len(nets) != len(indptr) - 1:
            raise ValueError("indptr does not match nets")
        if indptr[-1] != len(x1):
            raise ValueError("indptr does not cover the segment columns")
        if np.any((x1 != x2) & (y1 != y2)):
            raise ValueError("segment must be axis-aligned")
        if np.any((x1 == x2) & (y1 == y2)):
            raise ValueError("zero-length segment")
        if layer.size and int(layer.min()) < 1:
            raise ValueError("layer must be >= 1")
        if normalize:
            swap = (x1 > x2) | ((x1 == x2) & (y1 > y2))
            if np.any(swap):
                x1, x2 = np.where(swap, x2, x1), np.where(swap, x1, x2)
                y1, y2 = np.where(swap, y2, y1), np.where(swap, y1, y2)
        return cls(nets=list(nets), indptr=indptr,
                   x1=x1, y1=y1, x2=x2, y2=y2, layer=layer)

    @classmethod
    def from_wires(cls, wires: Sequence[Wire]) -> "WireTable":
        """Lossless import of object wires (already-normalized segments)."""
        counts = np.fromiter((len(w.segments) for w in wires),
                             dtype=np.int64, count=len(wires))
        indptr = np.zeros(len(wires) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        cols = np.empty((5, total), dtype=np.int64)
        i = 0
        for w in wires:
            for s in w.segments:
                cols[0, i] = s.x1
                cols[1, i] = s.y1
                cols[2, i] = s.x2
                cols[3, i] = s.y2
                cols[4, i] = s.layer
                i += 1
        return cls(nets=[w.net for w in wires], indptr=indptr,
                   x1=cols[0], y1=cols[1], x2=cols[2], y2=cols[3],
                   layer=cols[4])

    @classmethod
    def concat(cls, tables: Sequence["WireTable"]) -> "WireTable":
        """Concatenate tables, preserving wire order."""
        tables = [t for t in tables if t.num_wires]
        if not tables:
            return cls.empty()
        nets: List[Tuple] = []
        for t in tables:
            nets.extend(t.nets)
        counts = np.concatenate([np.diff(t.indptr) for t in tables])
        indptr = np.zeros(len(nets) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(
            nets=nets,
            indptr=indptr,
            x1=np.concatenate([t.x1 for t in tables]),
            y1=np.concatenate([t.y1 for t in tables]),
            x2=np.concatenate([t.x2 for t in tables]),
            y2=np.concatenate([t.y2 for t in tables]),
            layer=np.concatenate([t.layer for t in tables]),
        )

    def permuted(self, order: np.ndarray, backend=None) -> "WireTable":
        """Reorder wires by ``order`` (new position ``i`` takes old wire
        ``order[i]``), gathering each wire's segment block."""
        be = get_backend(backend)
        order = np.asarray(order, dtype=np.int64)
        counts = np.diff(self.indptr)[order]
        indptr = np.zeros(len(order) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # source row index for every destination row
        starts = self.indptr[order]
        dst_starts = indptr[:-1]
        idx = np.arange(int(indptr[-1]), dtype=np.int64)
        idx += np.repeat(starts - dst_starts, counts)
        return WireTable(
            nets=[self.nets[int(o)] for o in order],
            indptr=indptr,
            x1=be.gather(self.x1, idx), y1=be.gather(self.y1, idx),
            x2=be.gather(self.x2, idx), y2=be.gather(self.y2, idx),
            layer=be.gather(self.layer, idx),
        )

    def slice_wires(self, lo: int, hi: int) -> "WireTable":
        """Self-contained table over wires ``lo:hi``.

        The coordinate/layer columns are numpy *views* into this table's
        storage (zero-copy); only the rebased ``indptr`` is new.  The
        chunked builders and validators stream blocks through this.
        """
        lo = max(0, min(int(lo), self.num_wires))
        hi = max(lo, min(int(hi), self.num_wires))
        s0, s1 = int(self.indptr[lo]), int(self.indptr[hi])
        return WireTable(
            nets=self.nets[lo:hi],
            indptr=self.indptr[lo:hi + 1] - self.indptr[lo],
            x1=self.x1[s0:s1], y1=self.y1[s0:s1],
            x2=self.x2[s0:s1], y2=self.y2[s0:s1],
            layer=self.layer[s0:s1],
        )

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    @property
    def num_wires(self) -> int:
        return len(self.nets)

    @property
    def num_segments(self) -> int:
        return int(self.indptr[-1])

    @property
    def is_horizontal(self) -> np.ndarray:
        """Per-segment horizontal mask (``y1 == y2``)."""
        return self.y1 == self.y2

    @property
    def wire_of(self) -> np.ndarray:
        """Per-segment wire index."""
        return np.repeat(np.arange(self.num_wires, dtype=np.int64),
                         np.diff(self.indptr))

    def seg_lengths(self) -> np.ndarray:
        return (self.x2 - self.x1) + (self.y2 - self.y1)

    def wire_lengths(self) -> np.ndarray:
        """Per-wire rectilinear length."""
        if self.num_wires == 0:
            return np.zeros(0, dtype=np.int64)
        return np.add.reduceat(self.seg_lengths(), self.indptr[:-1])

    def total_wire_length(self) -> int:
        return int(self.seg_lengths().sum())

    def max_wire_length(self) -> int:
        lens = self.wire_lengths()
        return int(lens.max()) if lens.size else 0

    def layers_used(self) -> List[int]:
        return sorted(int(v) for v in np.unique(self.layer))

    def bounding_box(self) -> Optional[Tuple[int, int, int, int]]:
        """Extent over segments, or ``None`` for an empty table."""
        if self.num_segments == 0:
            return None
        return (int(self.x1.min()), int(self.y1.min()),
                int(self.x2.max()), int(self.y2.max()))

    # ------------------------------------------------------------------
    # path reconstruction (vectorized Wire.path_points)
    # ------------------------------------------------------------------
    def paths(self) -> _Paths:
        """Reconstruct every wire's ordered point path (cached).

        Mirrors :meth:`Wire.path_points` including its failure points:
        ``bad`` wires are those whose object counterpart raises, with
        ``bad_at`` the failing segment index.
        """
        if self._paths is not None:
            return self._paths
        nw, ns = self.num_wires, self.num_segments
        counts = np.diff(self.indptr)
        pt_indptr = self.indptr + np.arange(nw + 1, dtype=np.int64)
        px = np.zeros(ns + nw, dtype=np.int64)
        py = np.zeros(ns + nw, dtype=np.int64)
        bad = np.zeros(nw, dtype=bool)
        bad_at = np.zeros(nw, dtype=np.int64)
        if nw == 0:
            self._paths = _Paths(px, py, pt_indptr, bad, bad_at)
            return self._paths

        first = self.indptr[:-1]
        single = counts == 1
        multi = ~single
        # single-segment wires: [ (x1,y1), (x2,y2) ] (normalized order)
        s_idx = first[single]
        s_pt = pt_indptr[:-1][single]
        px[s_pt] = self.x1[s_idx]
        py[s_pt] = self.y1[s_idx]
        px[s_pt + 1] = self.x2[s_idx]
        py[s_pt + 1] = self.y2[s_idx]

        # multi-segment wires: resolve the start from the first joint
        m_w = np.flatnonzero(multi)
        if m_w.size:
            i0 = first[m_w]
            e1x, e1y = self.x1[i0], self.y1[i0]
            e2x, e2y = self.x2[i0], self.y2[i0]
            f1x, f1y = self.x1[i0 + 1], self.y1[i0 + 1]
            f2x, f2y = self.x2[i0 + 1], self.y2[i0 + 1]
            e1_shared = ((e1x == f1x) & (e1y == f1y)) | ((e1x == f2x) & (e1y == f2y))
            e2_shared = ((e2x == f1x) & (e2y == f1y)) | ((e2x == f2x) & (e2y == f2y))
            none = ~(e1_shared | e2_shared)
            bad[m_w[none]] = True
            # legacy picks the first of [E1, E2] found in the next segment
            shx = np.where(e1_shared, e1x, e2x)
            shy = np.where(e1_shared, e1y, e2y)
            stx = np.where(e1_shared, e2x, e1x)
            sty = np.where(e1_shared, e2y, e1y)
            p0 = pt_indptr[:-1][m_w]
            px[p0], py[p0] = stx, sty
            px[p0 + 1], py[p0 + 1] = shx, shy
            curx, cury = shx.copy(), shy.copy()
            mcount = int(counts.max())
            active_w = m_w
            for j in range(1, mcount):
                keep = counts[active_w] > j
                active_w = active_w[keep]
                if not active_w.size:
                    break
                curx, cury = curx[keep], cury[keep]
                ij = first[active_w] + j
                ax, ay = self.x1[ij], self.y1[ij]
                bx, by = self.x2[ij], self.y2[ij]
                at_a = (curx == ax) & (cury == ay)
                at_b = (curx == bx) & (cury == by)
                miss = ~(at_a | at_b) & ~bad[active_w]
                bad[active_w[miss]] = True
                bad_at[active_w[miss]] = j
                nxtx = np.where(at_a, bx, ax)
                nxty = np.where(at_a, by, ay)
                pj = pt_indptr[:-1][active_w] + j + 1
                px[pj], py[pj] = nxtx, nxty
                curx, cury = nxtx, nxty
        self._paths = _Paths(px, py, pt_indptr, bad, bad_at)
        return self._paths

    def vias_per_wire(self, backend=None) -> np.ndarray:
        """Number of layer-changing bends per wire (contiguous wires)."""
        nw = self.num_wires
        out = np.zeros(nw, dtype=np.int64)
        if self.num_segments <= 1:
            return out
        be = get_backend(backend)
        w = self.wire_of
        inner = np.flatnonzero(w[:-1] == w[1:])
        change = self.layer[inner] != self.layer[inner + 1]
        be.scatter_add(out, w[inner[change]], 1)
        return out

    def num_vias(self) -> int:
        return int(self.vias_per_wire().sum())

    # ------------------------------------------------------------------
    # object conversion
    # ------------------------------------------------------------------
    def to_wires(self) -> List[Wire]:
        """Materialise object wires (lossless; segments already normalized
        so ``Segment`` construction re-derives the same values)."""
        x1 = self.x1.tolist()
        y1 = self.y1.tolist()
        x2 = self.x2.tolist()
        y2 = self.y2.tolist()
        lay = self.layer.tolist()
        bounds = self.indptr.tolist()
        out: List[Wire] = []
        for w, net in enumerate(self.nets):
            lo, hi = bounds[w], bounds[w + 1]
            segs = [
                Segment(x1[i], y1[i], x2[i], y2[i], lay[i])
                for i in range(lo, hi)
            ]
            out.append(Wire(net=net, segments=segs))
        return out

    def net_segment_map(self):
        """``net -> ((x1, y1, x2, y2, layer), ...)`` for set-level
        comparisons in the differential tests."""
        rows = np.stack([self.x1, self.y1, self.x2, self.y2, self.layer], axis=1)
        rows_l = rows.tolist()
        bounds = self.indptr.tolist()
        return {
            net: tuple(tuple(r) for r in rows_l[bounds[w]:bounds[w + 1]])
            for w, net in enumerate(self.nets)
        }


class WireTableBuilder:
    """Incremental table assembly for builders with irregular wire shapes.

    ``add_legs``/``add_path`` replicate the object builders' merge
    semantics (via :func:`merge_legs`) without creating any ``Wire`` or
    ``Segment`` objects; ``extend_table`` splices in a pre-vectorized
    block of wires.  ``build()`` produces the normalized table.
    """

    def __init__(self) -> None:
        self._nets: List[Tuple] = []
        self._counts: List[int] = []
        self._rows: List[Tuple[int, int, int, int, int]] = []
        self._tables: List[Tuple[int, WireTable]] = []  # (position, table)

    def add_legs(
        self, net: Tuple, legs: Sequence[Tuple[Sequence[Point], LayerPair]]
    ) -> None:
        runs = merge_legs(net, legs)
        self._nets.append(net)
        self._counts.append(len(runs))
        self._rows.extend(runs)

    def add_path(
        self, net: Tuple, points: Sequence[Point], layers: LayerPair
    ) -> None:
        self.add_legs(net, [(points, layers)])

    def extend_table(self, table: WireTable) -> None:
        if table.num_wires:
            self._tables.append((len(self._nets), table))
            self._nets.extend(table.nets)
            self._counts.extend(np.diff(table.indptr).tolist())
            # rows are spliced at build() time to avoid quadratic copies
            self._rows.append(("table", len(self._tables) - 1, 0, 0, 0))

    def build(self) -> WireTable:
        parts: List[np.ndarray] = []
        plain: List[Tuple[int, int, int, int, int]] = []

        def flush() -> None:
            if plain:
                parts.append(np.array(plain, dtype=np.int64).reshape(-1, 5))
                plain.clear()

        for row in self._rows:
            if row[0] == "table":
                flush()
                t = self._tables[row[1]][1]
                parts.append(
                    np.stack([t.x1, t.y1, t.x2, t.y2, t.layer], axis=1)
                )
            else:
                plain.append(row)
        flush()
        if parts:
            cols = np.concatenate(parts, axis=0)
        else:
            cols = np.zeros((0, 5), dtype=np.int64)
        indptr = np.zeros(len(self._nets) + 1, dtype=np.int64)
        np.cumsum(np.asarray(self._counts, dtype=np.int64), out=indptr[1:])
        return WireTable.from_segment_arrays(
            list(self._nets), indptr,
            cols[:, 0], cols[:, 1], cols[:, 2], cols[:, 3], cols[:, 4],
        )
