"""Vectorized (columnar) planner for the recursive grid layout scheme.

Produces the exact same wire-level embedding as the object-per-wire path
in :mod:`repro.layout.grid_scheme` — wire for wire, in the same order —
but assembles the geometry as numpy arrays and emits a
:class:`~repro.layout.wiretable.WireTable` directly.

The construction mirrors the legacy builder category by category:

* exchange boundaries: one horizontal ``straight`` run plus one 3-segment
  ``cross`` wire per (block, local row);
* composite boundaries: channel items (intra / out / in) are ranked by the
  same ``(destination coordinate, row, kind, direction)`` key via a single
  lexsort per boundary, giving every item its channel track;
* level >= 3 stubs: pending feedthroughs ranked per block by
  ``(destination grid row, stage, rank, role)`` exactly like the legacy
  ``pending_feeds.sort``;
* inter-block wires: out/in stubs are joined on the link id, grouped by
  the channel key, and the three legs are fused with
  :meth:`Wire.from_legs`' merge rule applied analytically — consecutive
  collinear runs merge iff the channel group's layer equals the base
  layer, which splits each channel category into a fixed-segment-count
  "merged" and "unmerged" variant.

Finally all categories are concatenated and permuted into the legacy
emission order (blocks by id — boundaries by stage — items by rank, then
channel groups in sorted key order).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from ..topology.bits import level_swap_array
from ..transform.swap_butterfly import ExchangeBoundary, SwapButterfly
from .collinear import TrackOrder, track_assignment
from .collinear_generic import left_edge_tracks
from .geometry import Rect
from .grid_scheme import GridDims, _column_union_graph
from .tracks import TrackGrouping, base_layer_pair
from .wiretable import WireTable

__all__ = ["build_grid_nodes", "build_grid_table"]

_KIND = ("sc", "ss")  # index = kind code; string sort order 'sc' < 'ss'
_SLOT_OUT = (2, 1)  # by kind code (sc, ss); 'cross' shares slot 1
_SLOT_IN = (4, 3)


def build_grid_nodes(sb: SwapButterfly, dims: GridDims) -> Dict[Hashable, Rect]:
    """Node rectangles of the full grid layout, in legacy insertion order
    (blocks by id, stages major, local rows minor)."""
    bd = dims.block
    k2 = dims.ks[1]
    gc = dims.grid_cols
    R = bd.nrows
    W = bd.W
    nodes: Dict[Hashable, Rect] = {}
    for bid in range(dims.grid_rows * gc):
        ox = (bid & (gc - 1)) * dims.cell_w
        oy = (bid >> k2) * dims.cell_h
        row0 = bid << dims.ks[0]
        for s in range(sb.n + 1):
            x = bd.colx[s] + ox
            for rr in range(R):
                nodes[(row0 + rr, s)] = Rect(x, bd.row_y(rr) + oy, W, W)
    return nodes


def _pair_layers(L: int, horizontal: bool, group: np.ndarray):
    """Vectorized :meth:`TrackGrouping.layer_pair`: per-group (vertical,
    horizontal) layer arrays for a channel direction."""
    g = group
    if L % 2 == 0:
        return 2 * g + 1, 2 * g + 2
    if horizontal:
        return np.where(g >= 1, 2 * g, 2), 2 * g + 1
    return 2 * g + 2, 2 * g + 1


class _Cat:
    """One category of wires with a uniform per-wire segment count."""

    __slots__ = ("nets", "segs", "keys")

    def __init__(self, nets: List, segs: np.ndarray, keys: np.ndarray) -> None:
        # segs: (nw, c, 5) int64; keys: (nw, 6) int64
        self.nets = nets
        self.segs = segs
        self.keys = keys

    def table(self) -> WireTable:
        nw, c, _ = self.segs.shape
        flat = self.segs.reshape(nw * c, 5)
        return WireTable.from_segment_arrays(
            self.nets,
            np.arange(nw + 1, dtype=np.int64) * c,
            flat[:, 0], flat[:, 1], flat[:, 2], flat[:, 3], flat[:, 4],
        )


def _hvh(x1, y1, tx, y2, x2, vl, hl) -> np.ndarray:
    """Stack the ubiquitous H-V-H channel wire: ``(x1,y1)->(tx,y1)``,
    vertical at ``tx``, ``(tx,y2)->(x2,y2)``.  Assumes ``x1 < tx < x2``
    (channel tracks sit strictly between stage columns)."""
    nw = len(tx)
    segs = np.empty((nw, 3, 5), dtype=np.int64)
    segs[:, 0, 0] = x1
    segs[:, 0, 1] = y1
    segs[:, 0, 2] = tx
    segs[:, 0, 3] = y1
    segs[:, 0, 4] = hl
    segs[:, 1, 0] = tx
    segs[:, 1, 1] = np.minimum(y1, y2)
    segs[:, 1, 2] = tx
    segs[:, 1, 3] = np.maximum(y1, y2)
    segs[:, 1, 4] = vl
    segs[:, 2, 0] = tx
    segs[:, 2, 1] = y2
    segs[:, 2, 2] = x2
    segs[:, 2, 3] = y2
    segs[:, 2, 4] = hl
    return segs


_PHASES = ("intra", "inter-col", "inter-row")


def build_grid_table(
    sb: SwapButterfly,
    dims: GridDims,
    track_order: TrackOrder = "forward",
    recirculating: bool = False,
) -> WireTable:
    """All wires of the grid layout as one :class:`WireTable`, ordered
    exactly like the legacy builder's ``layout.wires`` list."""
    NB = dims.grid_rows * dims.grid_cols
    cats = _grid_cats(
        sb, dims, track_order, recirculating,
        np.arange(NB, dtype=np.int64), frozenset(_PHASES),
    )
    return _cats_table(cats)


def _cats_table(cats: List[_Cat]) -> WireTable:
    """Concatenate categories and permute into legacy emission order."""
    table = WireTable.concat([c.table() for c in cats])
    if not cats:
        return table
    keys = np.concatenate([c.keys for c in cats], axis=0)
    order = np.lexsort(
        (keys[:, 5], keys[:, 4], keys[:, 3], keys[:, 2], keys[:, 1],
         keys[:, 0])
    )
    return table.permuted(order)


def _grid_cats(
    sb: SwapButterfly,
    dims: GridDims,
    track_order: TrackOrder,
    recirculating: bool,
    bids: np.ndarray,
    phases: frozenset,
) -> List[_Cat]:
    """Wire categories for the block subset ``bids``, restricted to the
    requested emission phases.

    The three phases partition the final wire order (the lexsort key's
    leading columns): ``intra`` wires (in-block channel wiring plus
    feedback) sort block-major, ``inter-col`` wires (level >= 3 links,
    between blocks of one grid column) sort by source grid column, and
    ``inter-row`` wires (level 2 links, between blocks of one grid row)
    sort by source grid row.  Every ranking the geometry depends on —
    channel ranks, feedthrough rows, track copies — is local to a block
    (intra/feeds) or to one grid column/row (inter groups), so building a
    *closed* subset of blocks reproduces exactly the wires the monolithic
    build emits for them.  This is what the chunked builder in
    :mod:`repro.layout.chunked` exploits: ``bids`` must cover whole
    blocks for ``intra``, whole grid columns for ``inter-col``, and whole
    grid rows for ``inter-row``.
    """
    want_intra = "intra" in phases
    want_col = "inter-col" in phases
    want_row = "inter-row" in phases
    bd = dims.block
    ks = dims.ks
    k1, k2 = ks[0], ks[1]
    n = sb.n
    R = bd.nrows
    W = bd.W
    gc, gr = dims.grid_cols, dims.grid_rows
    L = dims.L
    base = base_layer_pair(L)
    bv, bh = base.vertical, base.horizontal

    def bx_of(b: np.ndarray) -> np.ndarray:
        return (b & (gc - 1)) * dims.cell_w

    def by_of(b: np.ndarray) -> np.ndarray:
        return (b >> k2) * dims.cell_h

    bids = np.sort(np.ascontiguousarray(bids, dtype=np.int64))
    nb = len(bids)

    def bpos_of(b: np.ndarray) -> np.ndarray:
        """Index of each block within ``bids`` — the per-block run offset
        in block-major sorts (equals the block id when ``bids`` is the
        full set, which is what the monolithic rank formulas relied on)."""
        return np.searchsorted(bids, b)
    oxs = bx_of(bids)
    oys = by_of(bids)
    B = np.repeat(bids, R)  # block of each (block, local row) pair
    rr = np.tile(np.arange(R, dtype=np.int64), nb)
    U = B * R + rr  # global row id
    OX = np.repeat(oxs, R)
    OY = np.repeat(oys, R)
    rowy = bd.rows_base + rr * (W + 1)  # local row baseline

    cats: List[_Cat] = []

    def keys6(nw: int, *cols) -> np.ndarray:
        k = np.zeros((nw, 6), dtype=np.int64)
        for i, c in enumerate(cols):
            k[:, i] = c
        return k

    def net_list(a, b, sa: int, sbb: int, kind) -> List:
        """Nets ``((a, sa), (b, sbb), kind)``; ``kind`` is a string or a
        per-wire code array into ``_KIND``."""
        al, bl = a.tolist(), b.tolist()
        if isinstance(kind, str):
            return [((x, sa), (y, sbb), kind) for x, y in zip(al, bl)]
        kl = kind.tolist()
        return [
            ((x, sa), (y, sbb), _KIND[kc]) for x, y, kc in zip(al, bl, kl)
        ]

    # stub accumulators (one row per inter-block link endpoint)
    o_u: List[np.ndarray] = []
    o_s: List[np.ndarray] = []
    o_kc: List[np.ndarray] = []
    o_lvl: List[np.ndarray] = []
    o_bid: List[np.ndarray] = []
    o_tgt: List[np.ndarray] = []
    o_tx: List[np.ndarray] = []
    o_oyu: List[np.ndarray] = []
    o_fy: List[np.ndarray] = []
    i_u: List[np.ndarray] = []
    i_s: List[np.ndarray] = []
    i_kc: List[np.ndarray] = []
    i_bid: List[np.ndarray] = []
    i_tx: List[np.ndarray] = []
    i_iy: List[np.ndarray] = []
    i_fy: List[np.ndarray] = []

    # level >= 3 pending feedthroughs, ranked after the boundary loop
    f_gkey: List[np.ndarray] = []
    f_s: List[np.ndarray] = []
    f_rank: List[np.ndarray] = []
    f_role: List[np.ndarray] = []  # 0 = "in", 1 = "out" (string order)
    f_bid: List[np.ndarray] = []
    f_idx: List[np.ndarray] = []  # row into the out/in stub accumulators
    f_nout = 0
    f_nin = 0

    # --- per-boundary channel wiring -----------------------------------
    for s, boundary in enumerate(sb.boundaries):
        cb = bd.chan_base(s)
        re = bd.colx[s] + W
        nl = bd.colx[s + 1]
        if isinstance(boundary, ExchangeBoundary):
            if not want_intra:
                continue
            t = boundary.bit
            nw = nb * R
            # straight: one horizontal run at slot 0
            segs = np.empty((nw, 1, 5), dtype=np.int64)
            segs[:, 0, 0] = re + OX
            segs[:, 0, 1] = rowy + OY
            segs[:, 0, 2] = nl + OX
            segs[:, 0, 3] = rowy + OY
            segs[:, 0, 4] = bh
            cats.append(
                _Cat(
                    net_list(U, U, s, s + 1, "straight"),
                    segs,
                    keys6(nw, 0, B, s, 2 * rr),
                )
            )
            # cross: H-V-H through the boundary channel
            v = U ^ (1 << t)
            oyu = rowy + 1 + OY  # SLOT_OUT["cross"]
            iyv = bd.rows_base + (rr ^ (1 << t)) * (W + 1) + 3 + OY
            tx = cb + rr + OX
            cats.append(
                _Cat(
                    net_list(U, v, s, s + 1, "cross"),
                    _hvh(re + OX, oyu, tx, iyv, nl + OX, bv, bh),
                    keys6(nw, 0, B, s, 2 * rr + 1),
                )
            )
            continue

        # composite boundary: rank the channel items per block
        level = boundary.level
        want_stubs = want_row if level == 2 else want_col
        if not (want_intra or want_stubs):
            continue
        sig = level_swap_array(U, ks, level)
        dest = sig >> k1

        def okey(block: np.ndarray) -> np.ndarray:
            return block & (gc - 1) if level == 2 else block >> k2

        # out/intra items: two kinds per (block, row); in items: filtered
        src_ss = sig  # sigma is an involution: sigma(sigma(u)) = u
        src_sc = level_swap_array(U ^ 1, ks, level)
        parts = []  # (bid, okey, rr, kindcode, dir, u, tgt, role)
        for kc, tgt in ((0, sig ^ 1), (1, sig)):
            parts.append((B, okey(dest), rr, kc, 0, U, tgt,
                          np.where(dest == B, 0, 1)))
        for kc, src in ((0, src_sc), (1, src_ss)):
            m = (src >> k1) != B
            parts.append((B[m], okey(src[m] >> k1), rr[m], kc, 1, src[m],
                          U[m], 2))
        Ib = np.concatenate([np.broadcast_to(np.asarray(p[0]), p[5].shape)
                             for p in parts])
        Iok = np.concatenate([p[1] for p in parts])
        Irr = np.concatenate([p[2] for p in parts])
        Ikc = np.concatenate(
            [np.full(p[5].shape, p[3], dtype=np.int64) for p in parts]
        )
        Idir = np.concatenate(
            [np.full(p[5].shape, p[4], dtype=np.int64) for p in parts]
        )
        Iu = np.concatenate([p[5] for p in parts])
        Itgt = np.concatenate([p[6] for p in parts])
        Irole = np.concatenate([
            np.broadcast_to(np.asarray(p[7]), p[5].shape) for p in parts
        ])
        order = np.lexsort((Idir, Ikc, Irr, Iok, Ib))
        cw = bd.channel_widths[s]
        ranks = np.empty(len(order), dtype=np.int64)
        ranks[order] = (np.arange(len(order), dtype=np.int64)
                        - bpos_of(Ib[order]) * cw)
        tx = cb + ranks

        lrr = Iu & (R - 1)  # local row of the item's in-block terminal
        ltg = Itgt & (R - 1)
        oyu = bd.rows_base + lrr * (W + 1) + np.where(Ikc == 1, 1, 2)
        iyt = bd.rows_base + ltg * (W + 1) + np.where(Ikc == 1, 3, 4)

        m = Irole == 0  # intra
        if want_intra and m.any():
            iox = bx_of(Ib[m])
            ioy = by_of(Ib[m])
            cats.append(
                _Cat(
                    net_list(Iu[m], Itgt[m], s, s + 1, Ikc[m]),
                    _hvh(re + iox, oyu[m] + ioy, tx[m] + iox,
                         iyt[m] + ioy, nl + iox, bv, bh),
                    keys6(int(m.sum()), 0, Ib[m], s, ranks[m]),
                )
            )
        if not want_stubs:
            continue
        mo = Irole == 1
        mi = Irole == 2
        if level == 2:
            o_u.append(Iu[mo])
            o_s.append(np.full(int(mo.sum()), s, dtype=np.int64))
            o_kc.append(Ikc[mo])
            o_lvl.append(np.full(int(mo.sum()), 2, dtype=np.int64))
            o_bid.append(Ib[mo])
            o_tgt.append(Itgt[mo])
            o_tx.append(tx[mo])
            o_oyu.append(oyu[mo])
            o_fy.append(np.full(int(mo.sum()), -1, dtype=np.int64))
            i_u.append(Iu[mi])
            i_s.append(np.full(int(mi.sum()), s, dtype=np.int64))
            i_kc.append(Ikc[mi])
            i_bid.append(Ib[mi])
            i_tx.append(tx[mi])
            i_iy.append(iyt[mi])
            i_fy.append(np.full(int(mi.sum()), -1, dtype=np.int64))
        else:
            # defer: feed y assigned once all boundaries are ranked
            other_o = level_swap_array(Iu[mo], ks, level) >> k1
            other_i = Iu[mi] >> k1
            o_u.append(Iu[mo])
            o_s.append(np.full(int(mo.sum()), s, dtype=np.int64))
            o_kc.append(Ikc[mo])
            o_lvl.append(np.full(int(mo.sum()), level, dtype=np.int64))
            o_bid.append(Ib[mo])
            o_tgt.append(Itgt[mo])
            o_tx.append(tx[mo])
            o_oyu.append(oyu[mo])
            o_fy.append(np.full(int(mo.sum()), -1, dtype=np.int64))
            i_u.append(Iu[mi])
            i_s.append(np.full(int(mi.sum()), s, dtype=np.int64))
            i_kc.append(Ikc[mi])
            i_bid.append(Ib[mi])
            i_tx.append(tx[mi])
            i_iy.append(iyt[mi])
            i_fy.append(np.full(int(mi.sum()), -1, dtype=np.int64))
            f_gkey.append(other_o >> k2)
            f_s.append(np.full(int(mo.sum()), s, dtype=np.int64))
            f_rank.append(ranks[mo])
            f_role.append(np.full(int(mo.sum()), 1, dtype=np.int64))
            f_bid.append(Ib[mo])
            f_idx.append(f_nout + np.arange(int(mo.sum()), dtype=np.int64))
            f_nout += int(mo.sum())
            f_gkey.append(other_i >> k2)
            f_s.append(np.full(int(mi.sum()), s, dtype=np.int64))
            f_rank.append(ranks[mi])
            f_role.append(np.full(int(mi.sum()), 0, dtype=np.int64))
            f_bid.append(Ib[mi])
            f_idx.append(-1 - (f_nin + np.arange(int(mi.sum()),
                                                 dtype=np.int64)))
            f_nin += int(mi.sum())

    def cat_rows(parts: List[np.ndarray]) -> np.ndarray:
        return (np.concatenate(parts) if parts
                else np.empty(0, dtype=np.int64))

    Ou = cat_rows(o_u)
    Os = cat_rows(o_s)
    Okc = cat_rows(o_kc)
    Olvl = cat_rows(o_lvl)
    Obid = cat_rows(o_bid)
    Otgt = cat_rows(o_tgt)
    Otx = cat_rows(o_tx)
    Ooyu = cat_rows(o_oyu)
    Ofy = cat_rows(o_fy)
    Iu_ = cat_rows(i_u)
    Is_ = cat_rows(i_s)
    Ikc_ = cat_rows(i_kc)
    Ibid_ = cat_rows(i_bid)
    Itx_ = cat_rows(i_tx)
    Iiy_ = cat_rows(i_iy)
    Ify_ = cat_rows(i_fy)

    # --- feedthrough rows (levels >= 3), ranked like pending_feeds.sort --
    if f_gkey:
        Fg = np.concatenate(f_gkey)
        Fs = np.concatenate(f_s)
        Fr = np.concatenate(f_rank)
        Fro = np.concatenate(f_role)
        Fb = np.concatenate(f_bid)
        Fi = np.concatenate(f_idx)
        order = np.lexsort((Fro, Fr, Fs, Fg, Fb))
        fc = bd.feed_count
        feed_base = R if recirculating else 0
        fy = np.empty(len(order), dtype=np.int64)
        fy[order] = (feed_base
                     + np.arange(len(order), dtype=np.int64)
                     - bpos_of(Fb[order]) * fc)
        # scatter back into the stub tables: Fi >= 0 indexes the l>=3 rows
        # of the out accumulator (in append order), -1 - Fi the in rows
        mo = Fi >= 0
        out_pos = np.flatnonzero(Olvl >= 3)
        Ofy[out_pos[Fi[mo]]] = fy[mo]
        lvl_of_s = np.array(
            [getattr(b, "level", 0) for b in sb.boundaries], dtype=np.int64
        )
        in_pos = np.flatnonzero(lvl_of_s[Is_] >= 3)
        Ify_[in_pos[-1 - Fi[~mo]]] = fy[~mo]

    # --- feedback wires (recirculating) ---------------------------------
    if recirculating and want_intra:
        nw = nb * R
        yo = rowy + 1 + OY
        yi = rowy + 3 + OY
        rx = bd.colx[n] + W + 1 + rr + OX
        lx = 1 + rr + OX
        fy = rr + OY
        x0 = bd.colx[n] + W + OX
        x5 = bd.colx[0] + OX
        segs = np.empty((nw, 5, 5), dtype=np.int64)
        segs[:, 0] = np.stack(
            [x0, yo, rx, yo, np.full(nw, bh, dtype=np.int64)], axis=1)
        segs[:, 1] = np.stack(
            [rx, fy, rx, yo, np.full(nw, bv, dtype=np.int64)], axis=1)
        segs[:, 2] = np.stack(
            [lx, fy, rx, fy, np.full(nw, bh, dtype=np.int64)], axis=1)
        segs[:, 3] = np.stack(
            [lx, fy, lx, yi, np.full(nw, bv, dtype=np.int64)], axis=1)
        segs[:, 4] = np.stack(
            [lx, yi, x5, yi, np.full(nw, bh, dtype=np.int64)], axis=1)
        cats.append(
            _Cat(net_list(U, U, n, 0, "feedback"), segs,
                 keys6(nw, 0, B, n, rr))
        )

    # --- inter-block wires ----------------------------------------------
    if len(Ou):
        oo = np.lexsort((Okc, Os, Ou))
        io = np.lexsort((Ikc_, Is_, Iu_))
        if not (np.array_equal(Ou[oo], Iu_[io])
                and np.array_equal(Os[oo], Is_[io])
                and np.array_equal(Okc[oo], Ikc_[io])):  # pragma: no cover
            raise AssertionError("mismatched inter-block stubs")
        u, s_, kc = Ou[oo], Os[oo], Okc[oo]
        lvl = Olvl[oo]
        sbid, dbid = Obid[oo], Ibid_[io]
        tgt = Otgt[oo]
        txo, oyu, fyo = Otx[oo], Ooyu[oo], Ofy[oo]
        txi, iy, fyi = Itx_[io], Iiy_[io], Ify_[io]

        lv2 = lvl == 2
        sc = sbid & (gc - 1)
        dc = dbid & (gc - 1)
        sg = sbid >> k2
        dg = dbid >> k2
        K1 = np.where(lv2, 1, 0)
        K2 = np.where(lv2, sg, sc)
        K3 = np.where(lv2, np.minimum(sc, dc), np.minimum(sg, dg))
        K4 = np.where(lv2, np.maximum(sc, dc), np.maximum(sg, dg))
        gorder = np.lexsort((kc, s_, u, K4, K3, K2, K1))
        gk = np.stack([K1, K2, K3, K4], axis=1)[gorder]
        newg = np.empty(len(gorder), dtype=bool)
        newg[0] = True
        newg[1:] = (gk[1:] != gk[:-1]).any(axis=1)
        gid = np.cumsum(newg) - 1
        starts = np.flatnonzero(newg)
        copy = np.empty(len(gorder), dtype=np.int64)
        copy[gorder] = (np.arange(len(gorder), dtype=np.int64)
                        - starts[gid])

        # tracks
        track = np.empty(len(u), dtype=np.int64)
        assign_row = track_assignment(gc, track_order) if gc >= 2 else {}
        row_base = np.zeros((gc, gc), dtype=np.int64)
        for (a, b), t in assign_row.items():
            row_base[a, b] = t
        mrow = lv2
        track[mrow] = (row_base[K3[mrow], K4[mrow]] * dims.mult_row
                       + copy[mrow])
        mcol = ~lv2
        if mcol.any():
            if len(ks) == 3:
                assign_col = (track_assignment(gr, track_order)
                              if gr >= 2 else {})
                col_base = np.zeros((gr, gr), dtype=np.int64)
                for (a, b), t in assign_col.items():
                    col_base[a, b] = t
                track[mcol] = (col_base[K3[mcol], K4[mcol]] * dims.mult_col
                               + copy[mcol])
            else:
                acg = left_edge_tracks(_column_union_graph(ks), range(gr))
                track[mcol] = np.array(
                    [acg[(a, b, c)] for a, b, c in
                     zip(K3[mcol].tolist(), K4[mcol].tolist(),
                         copy[mcol].tolist())],
                    dtype=np.int64,
                )

        vrow = tgt  # the out item's target row IS sigma(u) (^1 for sc)
        soxa, soya = bx_of(sbid), by_of(sbid)
        doxa, doya = bx_of(dbid), by_of(dbid)
        colx_arr = np.array(bd.colx, dtype=np.int64)

        def inter_keys(m: np.ndarray) -> np.ndarray:
            nw = int(m.sum())
            return keys6(nw, 1, K1[m], K2[m], K3[m], K4[m], copy[m])

        # row channels (level 2)
        if mrow.any():
            gh = TrackGrouping(L=L, horizontal=True,
                               total_tracks=dims.tracks_row)
            off = track[mrow] % gh.physical_tracks
            pv, ph = _pair_layers(L, True, track[mrow] // gh.physical_tracks)
            ty = sg[mrow] * dims.cell_h + bd.height + 1 + off
            o0x = colx_arr[s_[mrow]] + W + soxa[mrow]
            o1x = txo[mrow] + soxa[mrow]
            oy1 = oyu[mrow] + soya[mrow]
            hy = bd.height + soya[mrow]  # == height + doya (same grid row)
            i0x = txi[mrow] + doxa[mrow]
            iy1 = iy[mrow] + doya[mrow]
            i2x = colx_arr[s_[mrow] + 1] + doxa[mrow]
            hx1 = np.minimum(o1x, i0x)
            hx2 = np.maximum(o1x, i0x)
            merged = pv == bv
            for mm, nseg in ((merged, 5), (~merged, 7)):
                if not mm.any():
                    continue
                nw = int(mm.sum())
                segs = np.empty((nw, nseg, 5), dtype=np.int64)
                segs[:, 0] = np.stack(
                    [o0x[mm], oy1[mm], o1x[mm], oy1[mm],
                     np.full(nw, bh, dtype=np.int64)], axis=1)
                j = 1
                if nseg == 5:
                    segs[:, j] = np.stack(
                        [o1x[mm], oy1[mm], o1x[mm], ty[mm],
                         np.full(nw, bv, dtype=np.int64)], axis=1)
                    j += 1
                else:
                    segs[:, j] = np.stack(
                        [o1x[mm], oy1[mm], o1x[mm], hy[mm],
                         np.full(nw, bv, dtype=np.int64)], axis=1)
                    segs[:, j + 1] = np.stack(
                        [o1x[mm], hy[mm], o1x[mm], ty[mm], pv[mm]], axis=1)
                    j += 2
                segs[:, j] = np.stack(
                    [hx1[mm], ty[mm], hx2[mm], ty[mm], ph[mm]], axis=1)
                j += 1
                if nseg == 5:
                    segs[:, j] = np.stack(
                        [i0x[mm], iy1[mm], i0x[mm], ty[mm],
                         np.full(nw, bv, dtype=np.int64)], axis=1)
                    j += 1
                else:
                    segs[:, j] = np.stack(
                        [i0x[mm], hy[mm], i0x[mm], ty[mm], pv[mm]], axis=1)
                    segs[:, j + 1] = np.stack(
                        [i0x[mm], iy1[mm], i0x[mm], hy[mm],
                         np.full(nw, bv, dtype=np.int64)], axis=1)
                    j += 2
                segs[:, j] = np.stack(
                    [i0x[mm], iy1[mm], i2x[mm], iy1[mm],
                     np.full(nw, bh, dtype=np.int64)], axis=1)
                sel = np.flatnonzero(mrow)[mm]
                nets = [
                    ((int(a), int(b)), (int(c), int(b) + 1), _KIND[int(k)])
                    for a, b, c, k in zip(u[sel], s_[sel], vrow[sel],
                                          kc[sel])
                ]
                cats.append(_Cat(nets, segs, inter_keys(mrow)[mm]))

        # column channels (levels >= 3)
        if mcol.any():
            gv = TrackGrouping(L=L, horizontal=False,
                               total_tracks=dims.tracks_col)
            off = track[mcol] % gv.physical_tracks
            pv, ph = _pair_layers(L, False,
                                  track[mcol] // gv.physical_tracks)
            txx = sc[mcol] * dims.cell_w + bd.width + 1 + off
            o0x = colx_arr[s_[mcol]] + W + soxa[mcol]
            o1x = txo[mcol] + soxa[mcol]
            oy1 = oyu[mcol] + soya[mcol]
            fyA = fyo[mcol] + soya[mcol]
            bwx = bd.width + soxa[mcol]  # == width + doxa (same grid col)
            i1x = txi[mcol] + doxa[mcol]
            fyB = fyi[mcol] + doya[mcol]
            iy1 = iy[mcol] + doya[mcol]
            i3x = colx_arr[s_[mcol] + 1] + doxa[mcol]
            merged = ph == bh
            for mm, nseg in ((merged, 7), (~merged, 9)):
                if not mm.any():
                    continue
                nw = int(mm.sum())
                segs = np.empty((nw, nseg, 5), dtype=np.int64)
                segs[:, 0] = np.stack(
                    [o0x[mm], oy1[mm], o1x[mm], oy1[mm],
                     np.full(nw, bh, dtype=np.int64)], axis=1)
                segs[:, 1] = np.stack(
                    [o1x[mm], fyA[mm], o1x[mm], oy1[mm],
                     np.full(nw, bv, dtype=np.int64)], axis=1)
                j = 2
                if nseg == 7:
                    segs[:, j] = np.stack(
                        [o1x[mm], fyA[mm], txx[mm], fyA[mm],
                         np.full(nw, bh, dtype=np.int64)], axis=1)
                    j += 1
                else:
                    segs[:, j] = np.stack(
                        [o1x[mm], fyA[mm], bwx[mm], fyA[mm],
                         np.full(nw, bh, dtype=np.int64)], axis=1)
                    segs[:, j + 1] = np.stack(
                        [bwx[mm], fyA[mm], txx[mm], fyA[mm], ph[mm]],
                        axis=1)
                    j += 2
                segs[:, j] = np.stack(
                    [txx[mm], np.minimum(fyA[mm], fyB[mm]), txx[mm],
                     np.maximum(fyA[mm], fyB[mm]), pv[mm]], axis=1)
                j += 1
                if nseg == 7:
                    segs[:, j] = np.stack(
                        [i1x[mm], fyB[mm], txx[mm], fyB[mm], ph[mm]],
                        axis=1)
                    j += 1
                else:
                    segs[:, j] = np.stack(
                        [bwx[mm], fyB[mm], txx[mm], fyB[mm], ph[mm]],
                        axis=1)
                    segs[:, j + 1] = np.stack(
                        [i1x[mm], fyB[mm], bwx[mm], fyB[mm],
                         np.full(nw, bh, dtype=np.int64)], axis=1)
                    j += 2
                segs[:, j] = np.stack(
                    [i1x[mm], fyB[mm], i1x[mm], iy1[mm],
                     np.full(nw, bv, dtype=np.int64)], axis=1)
                segs[:, j + 1] = np.stack(
                    [i1x[mm], iy1[mm], i3x[mm], iy1[mm],
                     np.full(nw, bh, dtype=np.int64)], axis=1)
                sel = np.flatnonzero(mcol)[mm]
                nets = [
                    ((int(a), int(b)), (int(c), int(b) + 1), _KIND[int(k)])
                    for a, b, c, k in zip(u[sel], s_[sel], vrow[sel],
                                          kc[sel])
                ]
                cats.append(_Cat(nets, segs, inter_keys(mcol)[mm]))

    return cats
