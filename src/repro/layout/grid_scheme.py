"""The recursive grid layout scheme for butterfly networks (Sections 3-4).

Blocks of ``2**k1`` consecutive swap-butterfly rows are arranged as a
``2**k3 x 2**k2`` grid in row-major order.  Viewing blocks as supernodes,
the level-2 links form a complete multigraph on each grid *row* (with
``4 * 2**(k1-k2)`` parallel links per block pair) and the level-3 links a
complete multigraph on each grid *column* — so the inter-block wiring is
a replicated collinear layout of ``K_{2**k2}`` per horizontal channel and
``K_{2**k3}`` per vertical channel.  Under the multilayer model, each
channel's tracks are split into groups overlaid on distinct layer pairs
(:mod:`repro.layout.tracks`).

This module produces the complete wire-level embedding with exact
coordinates; :func:`grid_dims` computes the same dimensions in closed
form (so the area/wire-length formulas can be evaluated for networks far
larger than can be materialised, with the two cross-checked in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Sequence, Tuple

from ..topology.bits import flip_bit
from ..topology.graph import Graph
from ..topology.swap import SwapNetworkParams
from ..transform.swap_butterfly import SwapButterfly
from .blocks import BlockDims, block_dims, plan_block
from .collinear import TrackOrder, optimal_track_count, track_assignment
from .collinear_generic import left_edge_tracks, max_congestion
from .geometry import Rect, Wire
from .model import Layout, multilayer_model, thompson_model
from .tracks import TrackGrouping, base_layer_pair

__all__ = [
    "GridDims", "GridLayoutResult", "grid_dims", "grid_graph",
    "build_grid_layout", "max_wire_bounds",
]

Point = Tuple[int, int]


@dataclass(frozen=True)
class GridDims:
    """Closed-form dimensions of the grid-scheme layout."""

    ks: Tuple[int, ...]
    W: int
    L: int
    block: BlockDims
    grid_rows: int  # 2**k3
    grid_cols: int  # 2**k2
    mult_row: int  # parallel links per block pair in a grid row (level 2)
    mult_col: int  # ... in a grid column (level 3)
    tracks_row: int  # logical horizontal tracks per grid-row channel
    tracks_col: int  # logical vertical tracks per grid-column channel
    chan_h: int  # physical height of a horizontal channel
    chan_v: int  # physical width of a vertical channel
    cell_w: int
    cell_h: int

    @property
    def n(self) -> int:
        return sum(self.ks)

    @property
    def width(self) -> int:
        return self.grid_cols * self.cell_w

    @property
    def height(self) -> int:
        return self.grid_rows * self.cell_h

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def volume(self) -> int:
        return self.area * self.L

    def summary(self) -> Dict[str, int]:
        return {
            "n": self.n,
            "L": self.L,
            "width": self.width,
            "height": self.height,
            "area": self.area,
            "volume": self.volume,
            "chan_h": self.chan_h,
            "chan_v": self.chan_v,
            "block_w": self.block.width,
            "block_h": self.block.height,
        }


def _column_union_graph(ks: Sequence[int]) -> Graph:
    """Links between grid rows in one vertical channel (levels >= 3).

    Grid row of a block = its id bits above ``k2``.  The level-``i`` swap
    rewrites the block's level-``i`` bit field to any value, so level ``i``
    connects every grid-row pair differing only in that field, with
    ``4 * 2**(k1 - k_i)`` parallel links per pair (the same derivation as
    the l = 3 case — the swapped-in bits are the row's low ``k_i`` bits).
    For l = 3 this is exactly ``K_{2**k3}`` with quadrupled links.
    """
    p = SwapNetworkParams(ks)
    k1, k2 = p.ks[0], p.ks[1]
    gr_bits = p.n - k1 - k2
    g = Graph("col-union")
    g.add_nodes(range(1 << gr_bits))
    offs = p.offsets
    for level in range(3, p.l + 1):
        ki = p.ks[level - 1]
        fo = offs[level - 1] - k1 - k2  # field offset in grid-row bits
        mult = 4 << (k1 - ki)
        mask = (1 << ki) - 1
        for a in range(1 << gr_bits):
            fa = (a >> fo) & mask
            for val in range(fa + 1, 1 << ki):
                b = a ^ ((fa ^ val) << fo)
                g.add_edge(a, b, mult)
    return g


def grid_dims(
    ks: Sequence[int], W: int = 4, L: int = 2, recirculating: bool = False
) -> GridDims:
    """Exact dimensions of the layout :func:`build_grid_layout` produces.

    ``l = 3`` is the paper's main construction; ``l > 3`` (Section 3.3's
    "ISN(l, B_k1) with l > 3" remark) arranges the ``2**(n - k1 - k2)``
    grid rows with vertical channels carrying the union of all level >= 3
    link patterns, track-assigned by the congestion-optimal left-edge
    rule.
    """
    if len(ks) < 3:
        raise ValueError(f"grid scheme requires l >= 3 levels, got {len(ks)}")
    k1, k2 = ks[0], ks[1]
    if any(ki > k1 for ki in ks[1:]):
        raise ValueError(f"grid scheme requires k_i <= k1, got {tuple(ks)}")
    if L < 2:
        raise ValueError(f"need at least 2 wiring layers, got {L}")
    bd = block_dims(ks, W, recirculating=recirculating)
    n = sum(ks)
    gc, gr = 1 << k2, 1 << (n - k1 - k2)
    mult_row = 4 << (k1 - k2)
    tracks_row = optimal_track_count(gc) * mult_row  # = 2**(k1+k2)
    if len(ks) == 3:
        mult_col = 4 << (k1 - ks[2])
        tracks_col = optimal_track_count(gr) * mult_col  # = 2**(k1+k3)
    else:
        mult_col = 0  # per-pair multiplicity varies by level; see builder
        tracks_col = max_congestion(_column_union_graph(ks), range(gr))
    gh = TrackGrouping(L=L, horizontal=True, total_tracks=tracks_row)
    gv = TrackGrouping(L=L, horizontal=False, total_tracks=tracks_col)
    chan_h, chan_v = gh.physical_tracks, gv.physical_tracks
    return GridDims(
        ks=tuple(ks),
        W=W,
        L=L,
        block=bd,
        grid_rows=gr,
        grid_cols=gc,
        mult_row=mult_row,
        mult_col=mult_col,
        tracks_row=tracks_row,
        tracks_col=tracks_col,
        chan_h=chan_h,
        chan_v=chan_v,
        cell_w=bd.width + 1 + chan_v + 1,
        cell_h=bd.height + 1 + chan_h + 1,
    )


def max_wire_bounds(dims: GridDims) -> Tuple[int, int]:
    """Closed-form sandwich on the layout's maximum wire length.

    The longest wires are inter-block channel runs.  A level-2 link
    between the extreme grid columns exists (the collinear assignment
    always carries the pair ``(0, 2**k2 - 1)``), so the maximum is at
    least that track run's horizontal extent; conversely every wire is at
    most one channel run plus two in-block excursions.  Both bounds share
    the leading term ``2**{n+1}/L = 2N/(L log2 N)``, so their ratio to
    the paper's formula converges to 1 — the max-wire analogue of the
    area convergence, checked against built layouts in the tests.
    """
    gc, gr = dims.grid_cols, dims.grid_rows
    lo_row = max(gc - 2, 0) * dims.cell_w
    lo_col = max(gr - 2, 0) * dims.cell_h
    lo = max(lo_row, lo_col, 1)
    excursion = dims.block.width + dims.block.height + dims.chan_h + dims.chan_v
    hi_row = (gc - 1) * dims.cell_w + 2 * excursion
    hi_col = (gr - 1) * dims.cell_h + 2 * excursion
    hi = max(hi_row, hi_col)
    return lo, hi


def grid_graph(sb: SwapButterfly, recirculating: bool = False) -> Graph:
    """The connection graph a grid-scheme layout must realize: the
    swap-butterfly itself, plus the row-for-row output->input feedback
    edges when recirculating."""
    g = sb.graph()
    if recirculating:
        for u in range(sb.rows):
            g.add_edge((u, sb.n), (u, 0))
    return g


@dataclass
class GridLayoutResult:
    """A built grid-scheme layout plus its provenance."""

    layout: Layout
    sb: SwapButterfly
    dims: GridDims
    track_order: TrackOrder
    recirculating: bool = False

    @property
    def graph(self) -> Graph:
        return grid_graph(self.sb, self.recirculating)

    def summary(self) -> Dict[str, int]:
        s = self.layout.summary()
        s.update({f"dims_{k}": v for k, v in self.dims.summary().items()})
        return s


def build_grid_layout(
    ks: Sequence[int],
    W: int = 4,
    L: int = 2,
    track_order: TrackOrder = "forward",
    recirculating: bool = False,
    engine: Literal["table", "legacy"] = "table",
) -> GridLayoutResult:
    """Construct the full wire-level layout of the ``sum(ks)``-dimensional
    butterfly (as a swap-butterfly) under the ``L``-layer grid model.

    ``recirculating`` additionally feeds the output stage back to the
    input stage, row for row — the multi-pass fabric pattern.  Since a
    block holds all stages of its rows, feedback links are intra-block
    and the leading constants are untouched.  (In logical butterfly
    labels this matching is the ``phi_n``-twisted wrap; the *standard*
    wrapped butterfly's wrap is a different, block-crossing matching.)

    ``engine="table"`` (default) plans all blocks and channels as numpy
    arrays and backs the layout with a columnar
    :class:`~repro.layout.wiretable.WireTable`;  ``engine="legacy"`` is
    the original object-per-wire builder, kept as the differential-
    testing oracle.  Both produce identical layouts wire for wire, in
    the same order."""
    if engine not in ("table", "legacy"):
        raise ValueError(f"unknown engine {engine!r}")
    dims = grid_dims(ks, W, L, recirculating=recirculating)
    k1, k2 = dims.ks[0], dims.ks[1]
    sb = SwapButterfly.from_ks(dims.ks)
    model = thompson_model() if L == 2 else multilayer_model(L)
    if engine == "table":
        from .grid_table import build_grid_nodes, build_grid_table

        lay = Layout(
            model=model,
            name=f"grid-B{dims.n}-L{L}",
            nodes=build_grid_nodes(sb, dims),
            table=build_grid_table(sb, dims, track_order, recirculating),
        )
        return GridLayoutResult(
            layout=lay, sb=sb, dims=dims, track_order=track_order,
            recirculating=recirculating,
        )
    base_pair = base_layer_pair(L)
    lay = Layout(model=model, name=f"grid-B{dims.n}-L{L}")

    gc, gr = dims.grid_cols, dims.grid_rows

    def origin(bid: int) -> Point:
        c, g = bid & (gc - 1), bid >> k2
        return (c * dims.cell_w, g * dims.cell_h)

    def shift(pts: Sequence[Point], o: Point) -> List[Point]:
        return [(x + o[0], y + o[1]) for x, y in pts]

    # --- blocks ---------------------------------------------------------
    out_stubs: Dict[Tuple, Tuple[int, "object"]] = {}
    in_stubs: Dict[Tuple, Tuple[int, "object"]] = {}
    for bid in range(gr * gc):
        plan = plan_block(sb, bid, dims.block)
        ox, oy = origin(bid)
        for node, r in plan.nodes:
            lay.add_node(node, Rect(r.x + ox, r.y + oy, r.w, r.h))
        for net, pts in plan.intra_paths:
            lay.add_wire(Wire.from_path(net, shift(pts, (ox, oy)), base_pair))
        for link, stub in plan.out_stubs.items():
            out_stubs[link] = (bid, stub)
        for link, stub in plan.in_stubs.items():
            in_stubs[link] = (bid, stub)
    if set(out_stubs) != set(in_stubs):  # pragma: no cover - construction bug
        raise AssertionError("mismatched inter-block stubs")

    # --- inter-block wires ----------------------------------------------
    assign_row = track_assignment(gc, track_order) if gc >= 2 else {}
    l3 = len(dims.ks) == 3
    if l3:
        assign_col = track_assignment(gr, track_order) if gr >= 2 else {}
        union = None
    else:
        union = _column_union_graph(dims.ks)
        assign_col_generic = left_edge_tracks(union, range(gr))
    gh = TrackGrouping(L=L, horizontal=True, total_tracks=dims.tracks_row)
    gv = TrackGrouping(L=L, horizontal=False, total_tracks=dims.tracks_col)

    # group links per (grid row, block-column pair) / (grid col, row pair)
    groups: Dict[Tuple, List[Tuple]] = {}
    for link, (src_bid, stub) in out_stubs.items():
        dst_bid = stub.other_block
        if stub.level == 2:
            g = src_bid >> k2
            ca, cb = src_bid & (gc - 1), dst_bid & (gc - 1)
            key = ("row", g, min(ca, cb), max(ca, cb))
        else:
            c = src_bid & (gc - 1)
            ra, rb = src_bid >> k2, dst_bid >> k2
            key = ("col", c, min(ra, rb), max(ra, rb))
        groups.setdefault(key, []).append(link)

    for key in sorted(groups):
        links = sorted(groups[key])
        kind_row = key[0] == "row"
        if kind_row:
            mult = dims.mult_row
        elif l3:
            mult = dims.mult_col
        else:
            mult = union.multiplicity(key[2], key[3])
        if len(links) != mult:  # pragma: no cover - construction bug
            raise AssertionError(f"pair {key}: {len(links)} links, expected {mult}")
        if kind_row:
            base = assign_row[(key[2], key[3])]
        elif l3:
            base = assign_col[(key[2], key[3])]
        for copy, link in enumerate(links):
            if kind_row or l3:
                track = base * mult + copy
            else:
                track = assign_col_generic[(key[2], key[3], copy)]
            src_bid, ostub = out_stubs[link]
            dst_bid, istub = in_stubs[link]
            so, do = origin(src_bid), origin(dst_bid)
            opts, ipts = shift(ostub.points, so), shift(istub.points, do)
            u, s, kind = link
            vrow = sb.params.sigma(ostub.level, u)
            if kind == "sc":
                vrow = flip_bit(vrow, 0)
            net = ((u, s), (vrow, s + 1), kind)
            if kind_row:
                grouping = gh
                track_y = (
                    (src_bid >> k2) * dims.cell_h
                    + dims.block.height
                    + 1
                    + grouping.offset_of(track)
                )
                p1, p2 = opts[-1], ipts[0]
                mid = [p1, (p1[0], track_y), (p2[0], track_y), p2]
            else:
                grouping = gv
                track_x = (
                    (src_bid & (gc - 1)) * dims.cell_w
                    + dims.block.width
                    + 1
                    + grouping.offset_of(track)
                )
                p1, p2 = opts[-1], ipts[0]
                mid = [p1, (track_x, p1[1]), (track_x, p2[1]), p2]
            pair = grouping.layer_pair(track)
            lay.add_wire(
                Wire.from_legs(
                    net,
                    [(opts, base_pair), (mid, pair), (ipts, base_pair)],
                )
            )

    return GridLayoutResult(
        layout=lay, sb=sb, dims=dims, track_order=track_order,
        recirculating=recirculating,
    )
