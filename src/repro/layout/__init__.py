"""VLSI layout engines: geometry, validation, collinear layouts of complete
graphs, and the recursive grid layout scheme for butterflies under the
Thompson and multilayer 2-D grid models.

The wire-level hot path is columnar: builders emit a :class:`WireTable`
(int64 segment arrays in CSR layout) directly, and :func:`validate_layout`
runs sort/cummax sweeps over those columns.  ``engine="legacy"`` on the
builders and :func:`validate_layout_legacy` keep the original
object-per-wire paths alive as differential oracles — both engines
produce identical layouts wire for wire and identical verdicts, pinned
by ``tests/test_layout_vectorized.py``.  ``Layout`` converts between the
two representations losslessly, so ``viz/`` and other object-level
consumers are unaffected.  The ``repro layout`` CLI subcommand drives a
build + validation + wire-statistics run of either engine (``--legacy``)."""

from .blocks import BlockDims, BlockPlan, block_dims, plan_block
from .collinear_generic import (
    GenericCollinearLayout,
    cut_congestion,
    generic_collinear_layout,
    left_edge_tracks,
    max_congestion,
)
from .ghc_layout import cycle_collinear_congestion, ghc_2d_layout, torus_2d_layout
from .grid2d import Grid2DDims, Grid2DResult, build_grid2d_layout
from .hypercube_layout import (
    hypercube_2d_area_estimate,
    hypercube_2d_dims,
    hypercube_2d_layout,
    hypercube_collinear_congestion,
)
from .ccc_layout import CccDims, ccc_2d_layout, ccc_graph
from .multistage import MultistageDims, MultistageResult, build_multistage_layout, multistage_dims
from .node_scaling import (
    HeteroDims,
    hetero_io_dims,
    io_node_threshold,
    paper_io_threshold,
)
from .multilayer3d import (
    footprint_3d,
    min_volume_3d,
    optimal_layers_3d,
    volume_3d,
    volume_sweep,
)
from .collinear import (
    CollinearLayout,
    chen_agrawal_track_count,
    collinear_layout,
    naive_track_count,
    optimal_track_count,
    track_assignment,
)
from .geometry import LayerPair, Rect, Segment, THOMPSON_LAYERS, Wire
from .grid_scheme import (
    GridDims, GridLayoutResult, build_grid_layout, grid_dims, grid_graph,
    max_wire_bounds,
)
from .model import Layout, LayoutModel, multilayer_model, thompson_model
from .tracks import TrackGrouping, base_layer_pair
from .validate import (
    ValidationReport,
    validate_layout,
    validate_layout_legacy,
    validate_table,
)
from .wiretable import WireTable, WireTableBuilder
from .chunked import (
    ChunkStats,
    ChunkedBuild,
    ChunkedValidator,
    chunked_collinear_table,
    chunked_grid2d_table,
    chunked_grid_table,
    grid_chunk_estimate,
    summarize_chunks,
    validate_table_chunked,
    wires_per_chunk,
)
from .chunked_parallel import parallel_validate

__all__ = [
    "Rect",
    "Segment",
    "Wire",
    "LayerPair",
    "THOMPSON_LAYERS",
    "Layout",
    "LayoutModel",
    "thompson_model",
    "multilayer_model",
    "ValidationReport",
    "validate_layout",
    "validate_layout_legacy",
    "validate_table",
    "WireTable",
    "WireTableBuilder",
    "ChunkStats",
    "ChunkedBuild",
    "ChunkedValidator",
    "chunked_collinear_table",
    "chunked_grid2d_table",
    "chunked_grid_table",
    "grid_chunk_estimate",
    "parallel_validate",
    "summarize_chunks",
    "validate_table_chunked",
    "wires_per_chunk",
    "CollinearLayout",
    "collinear_layout",
    "track_assignment",
    "optimal_track_count",
    "chen_agrawal_track_count",
    "naive_track_count",
    "TrackGrouping",
    "base_layer_pair",
    "BlockDims",
    "BlockPlan",
    "block_dims",
    "plan_block",
    "GridDims",
    "GridLayoutResult",
    "grid_dims",
    "grid_graph",
    "build_grid_layout",
    "max_wire_bounds",
    "cut_congestion",
    "max_congestion",
    "left_edge_tracks",
    "GenericCollinearLayout",
    "generic_collinear_layout",
    "Grid2DDims",
    "Grid2DResult",
    "build_grid2d_layout",
    "hypercube_2d_layout",
    "hypercube_2d_dims",
    "hypercube_2d_area_estimate",
    "hypercube_collinear_congestion",
    "ghc_2d_layout",
    "torus_2d_layout",
    "cycle_collinear_congestion",
    "footprint_3d",
    "volume_3d",
    "optimal_layers_3d",
    "min_volume_3d",
    "volume_sweep",
    "MultistageDims",
    "MultistageResult",
    "build_multistage_layout",
    "multistage_dims",
    "CccDims",
    "ccc_2d_layout",
    "ccc_graph",
    "HeteroDims",
    "hetero_io_dims",
    "io_node_threshold",
    "paper_io_threshold",
]
