"""Block-level layout for the recursive grid layout scheme (Section 3.2).

A *block* holds ``2**k1`` consecutive rows of the swap-butterfly — one
nucleus butterfly per segment — across all ``n + 1`` stages.  Because all
exchange boundaries act on row bits ``< k1``, every straight and cross
link is confined to the block; only the (bypassed) swap links of the two
composite boundaries leave it.  The paper cites "any previous layout" for
block internals since they are within the ``o(.)`` budget; we use a simple
validated channel-routed layout:

* node ``(u, s)`` of local row ``rr`` and stage ``s`` is a ``W x W``
  square; rows are stacked with pitch ``W + 1``;
* between consecutive stage columns lies a vertical-track channel, one
  track per 2-pin net crossing that boundary;
* terminal slots on the node sides (requires ``W >= 4``): straight links
  at offset 0, outgoing channel nets at offsets 1/2, incoming at 3/4;
* level-2 inter-block links rise through their boundary channel to
  *ports* on the block's top edge, ordered left-to-right by destination
  grid column (so the board-level collinear tracks chain without
  overlap);
* level-3 inter-block links drop to a *feedthrough band* below the rows
  and exit through ports on the right edge, ordered bottom-to-top by
  destination grid row.

The plan is purely combinatorial (local coordinates); the grid assembler
offsets it per block and completes the inter-block wires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..topology.bits import flip_bit
from ..transform.swap_butterfly import ExchangeBoundary, SwapButterfly
from .geometry import Rect

__all__ = ["BlockDims", "BlockPlan", "plan_block", "block_dims"]

Point = Tuple[int, int]
LinkId = Tuple[int, int, str]  # (source row u, source stage s, 'ss'|'sc')

# terminal slot offsets on a node side (W >= MIN_NODE_SIDE)
SLOT_STRAIGHT = 0
SLOT_OUT = {"ss": 1, "sc": 2, "cross": 1}
SLOT_IN = {"ss": 3, "sc": 4, "cross": 3}
MIN_NODE_SIDE = 4


@dataclass(frozen=True)
class BlockDims:
    """Uniform block geometry for given ``(k1, k2, k3)`` and node side W.

    All blocks of a layout share these dimensions: the per-block counts of
    intra/inter links at each boundary depend only on the parameters, not
    on the block id (the condition "row's low bits equal its grid
    coordinate" has the same number of solutions in every block).
    """

    ks: Tuple[int, ...]
    W: int
    channel_widths: Tuple[int, ...]  # per boundary s = 0..n-1
    colx: Tuple[int, ...]  # left x of each stage column, plus right edge
    feed_count: int  # level-3 feedthrough tracks
    rows_base: int
    width: int  # ports on right edge at x = width
    height: int  # ports on top edge at y = height
    recirculating: bool = False  # feedback links (u, n) - (u, 0) in-block

    @property
    def n(self) -> int:
        return sum(self.ks)

    @property
    def nrows(self) -> int:
        return 1 << self.ks[0]

    @property
    def row_pitch(self) -> int:
        return self.W + 1

    def row_y(self, rr: int) -> int:
        return self.rows_base + rr * self.row_pitch

    def chan_base(self, s: int) -> int:
        """Leftmost track x of the channel after stage column ``s``."""
        return self.colx[s] + self.W + 1


def _boundary_channel_width(ks: Sequence[int], boundary) -> int:
    k1 = ks[0]
    nrows = 1 << k1
    if isinstance(boundary, ExchangeBoundary):
        return nrows  # one vertical track per cross net
    ki = ks[boundary.level - 1]
    intra_rows = 1 << (k1 - ki)  # rows whose level swap stays in-block
    # 2 intra nets per intra row; 2 out + (by symmetry) 2 in riser tracks
    # per inter row.
    return 2 * intra_rows + 4 * (nrows - intra_rows)


def block_dims(
    ks: Sequence[int], W: int = MIN_NODE_SIDE, recirculating: bool = False
) -> BlockDims:
    """Compute the uniform block geometry.

    ``recirculating`` adds output-to-input feedback links
    ``(u, n) - (u, 0)`` (multi-pass fabrics recirculate the output stage
    into the input stage; in *logical* butterfly labels this matching is
    the ``phi_n``-twisted wrap, since physical row ``u`` at stage ``n``
    carries logical row ``phi_n^{-1}(u)``).  The links stay entirely
    inside the block — same rows, first/last columns — routed through a
    left and a right feedback channel (one vertical track per row each)
    and a feedback feedthrough band below the level-3 feedthroughs.
    """
    if len(ks) < 3:
        raise ValueError(f"grid scheme requires l >= 3 levels, got {len(ks)}")
    if W < MIN_NODE_SIDE:
        raise ValueError(f"node side must be >= {MIN_NODE_SIDE}, got {W}")
    sb = SwapButterfly.from_ks(ks)
    k1 = ks[0]
    nrows = 1 << k1
    chans = tuple(_boundary_channel_width(ks, b) for b in sb.boundaries)
    left = 1 + nrows + 1 if recirculating else 0  # gap + left feedback channel + gap
    colx: List[int] = [left]
    for s in range(sb.n):
        # column body (W) + gap + channel + gap
        colx.append(colx[-1] + W + 1 + chans[s] + 1)
    wrap_feeds = nrows if recirculating else 0
    # one feedthrough per inter-block endpoint of every level >= 3
    feed_count = sum(4 * (nrows - (1 << (k1 - ki))) for ki in ks[2:])
    rows_base = wrap_feeds + feed_count + 1
    width = colx[-1] + W + 1 + (nrows + 1 if recirculating else 0)
    height = rows_base + nrows * (W + 1)
    return BlockDims(
        ks=tuple(ks),
        W=W,
        channel_widths=chans,
        colx=tuple(colx),
        feed_count=feed_count,
        rows_base=rows_base,
        width=width,
        height=height,
        recirculating=recirculating,
    )


@dataclass
class Stub:
    """The in-block portion of an inter-block wire.

    ``points`` runs from the node terminal to the boundary port for
    outgoing stubs, and from the port to the node terminal for incoming
    ones (so paths concatenate port-to-port at the board level).
    """

    link: LinkId
    level: int  # 2 or 3
    other_block: int
    points: List[Point]


@dataclass
class BlockPlan:
    """Local-coordinate plan for one block."""

    bid: int
    dims: BlockDims
    nodes: List[Tuple[Tuple[int, int], Rect]] = field(default_factory=list)
    intra_paths: List[Tuple[Tuple, List[Point]]] = field(default_factory=list)
    out_stubs: Dict[LinkId, Stub] = field(default_factory=dict)
    in_stubs: Dict[LinkId, Stub] = field(default_factory=dict)


def plan_block(sb: SwapButterfly, bid: int, dims: BlockDims) -> BlockPlan:
    """Plan the internals of block ``bid`` (rows ``bid*2**k1 ..``)."""
    k1, k2 = dims.ks[0], dims.ks[1]
    nrows = dims.nrows
    W = dims.W
    row0 = bid << k1
    plan = BlockPlan(bid=bid, dims=dims)
    pending_feeds: List[Tuple] = []

    def local(u: int) -> int:
        return u - row0

    def block_of(u: int) -> int:
        return u >> k1

    def col_of(b: int) -> int:
        return b & ((1 << k2) - 1)

    def grow_of(b: int) -> int:
        return b >> k2

    def node_rect(u: int, s: int) -> Rect:
        return Rect(dims.colx[s], dims.row_y(local(u)), W, W)

    # place nodes
    for s in range(sb.n + 1):
        for rr in range(nrows):
            u = row0 + rr
            plan.nodes.append(((u, s), node_rect(u, s)))

    def out_y(u: int, kind: str) -> int:
        return dims.row_y(local(u)) + SLOT_OUT[kind]

    def in_y(v: int, kind: str) -> int:
        return dims.row_y(local(v)) + SLOT_IN[kind]

    def right_edge(s: int) -> int:
        return dims.colx[s] + W

    # wire every boundary
    for s, boundary in enumerate(sb.boundaries):
        base = dims.chan_base(s)
        next_left = dims.colx[s + 1]
        if isinstance(boundary, ExchangeBoundary):
            t = boundary.bit
            for rr in range(nrows):
                u = row0 + rr
                # straight link: one horizontal run at slot 0
                y0 = dims.row_y(rr) + SLOT_STRAIGHT
                plan.intra_paths.append(
                    (
                        ((u, s), (u, s + 1), "straight"),
                        [(right_edge(s), y0), (next_left, y0)],
                    )
                )
                # cross net, one vertical track per source row
                v = flip_bit(u, t)
                tx = base + rr
                plan.intra_paths.append(
                    (
                        ((u, s), (v, s + 1), "cross"),
                        [
                            (right_edge(s), out_y(u, "cross")),
                            (tx, out_y(u, "cross")),
                            (tx, in_y(v, "cross")),
                            (next_left, in_y(v, "cross")),
                        ],
                    )
                )
            continue

        # composite boundary: classify channel items, then allocate tracks
        level = boundary.level
        other_key = col_of if level == 2 else grow_of
        items: List[Tuple[Tuple, str, LinkId, int]] = []
        # sort key: (destination coordinate, local row, kind, direction)
        for rr in range(nrows):
            u = row0 + rr
            v = sb.params.sigma(level, u)
            dest = block_of(v)
            for kind, tgt in (("ss", v), ("sc", flip_bit(v, 0))):
                link: LinkId = (u, s, kind)
                if dest == bid:
                    items.append(
                        ((other_key(bid), rr, kind, 0), "intra", link, tgt)
                    )
                else:
                    items.append(
                        ((other_key(dest), rr, kind, 0), "out", link, tgt)
                    )
        for rr in range(nrows):
            w = row0 + rr
            for kind in ("ss", "sc"):
                src = sb.params.sigma(level, w if kind == "ss" else flip_bit(w, 0))
                if block_of(src) != bid:
                    link = (src, s, kind)
                    items.append(
                        ((other_key(block_of(src)), rr, kind, 1), "in", link, w)
                    )
        items.sort(key=lambda it: it[0])

        for rank, (_key, role, link, tgt) in enumerate(items):
            tx = base + rank
            u, _s, kind = link
            if role == "intra":
                plan.intra_paths.append(
                    (
                        ((u, s), (tgt, s + 1), kind),
                        [
                            (right_edge(s), out_y(u, kind)),
                            (tx, out_y(u, kind)),
                            (tx, in_y(tgt, kind)),
                            (next_left, in_y(tgt, kind)),
                        ],
                    )
                )
                continue
            dest_block = block_of(sb.params.sigma(level, u)) if role == "out" else bid
            src_block = block_of(u)
            other = dest_block if role == "out" else src_block
            if level == 2:
                if role == "out":
                    pts = [
                        (right_edge(s), out_y(u, kind)),
                        (tx, out_y(u, kind)),
                        (tx, dims.height),
                    ]
                else:  # incoming: port -> node (tgt is destination row)
                    pts = [
                        (tx, dims.height),
                        (tx, in_y(tgt, kind)),
                        (next_left, in_y(tgt, kind)),
                    ]
                stub = Stub(link=link, level=level, other_block=other, points=pts)
                (plan.out_stubs if role == "out" else plan.in_stubs)[link] = stub
            else:
                # levels >= 3 exit via the feedthrough band; the feed y is
                # assigned AFTER all boundaries so that right-edge ports are
                # globally ordered by the destination grid row (the board
                # channel's chaining discipline, across levels)
                pending_feeds.append(
                    (grow_of(other), s, rank, role, link, kind, tgt, tx, other)
                )

    # assign feedthrough rows: globally sorted by destination grid row
    pending_feeds.sort(key=lambda it: it[:4])
    feed_base = dims.nrows if dims.recirculating else 0
    for idx, (_gkey, s, _rank, role, link, kind, tgt, tx, other) in enumerate(
        pending_feeds
    ):
        fy = feed_base + idx
        u = link[0]
        next_left = dims.colx[s + 1]
        level = sb.boundaries[s].level
        if role == "out":
            pts = [
                (dims.colx[s] + W, out_y(u, kind)),
                (tx, out_y(u, kind)),
                (tx, fy),
                (dims.width, fy),
            ]
            plan.out_stubs[link] = Stub(
                link=link, level=level, other_block=other, points=pts
            )
        else:
            pts = [
                (dims.width, fy),
                (tx, fy),
                (tx, in_y(tgt, kind)),
                (next_left, in_y(tgt, kind)),
            ]
            plan.in_stubs[link] = Stub(
                link=link, level=level, other_block=other, points=pts
            )
    if len(pending_feeds) != dims.feed_count:  # pragma: no cover
        raise AssertionError(
            f"block {bid}: used {len(pending_feeds)} feedthroughs, "
            f"expected {dims.feed_count}"
        )

    if dims.recirculating:
        # feedback links (u, n) -> (u, 0): right channel down to the
        # feedback feedthrough band, across under the rows, up the left
        n = sb.n
        right_base = dims.colx[n] + W + 1
        for rr in range(nrows):
            u = row0 + rr
            yo = dims.row_y(rr) + SLOT_OUT["ss"]  # stage n has no other outs
            yi = dims.row_y(rr) + SLOT_IN["ss"]  # stage 0 has no other ins
            rx = right_base + rr
            lx = 1 + rr
            fy = rr
            plan.intra_paths.append(
                (
                    ((u, n), (u, 0), "feedback"),
                    [
                        (dims.colx[n] + W, yo),
                        (rx, yo),
                        (rx, fy),
                        (lx, fy),
                        (lx, yi),
                        (dims.colx[0], yi),
                    ],
                )
            )
    return plan
