"""Geometric primitives for grid-model layouts.

Coordinates are integers on the unit grid.  The layer convention follows
Section 4.2 of the paper: **odd-numbered layers carry vertical segments,
even-numbered layers carry horizontal segments**; a wire changing
direction changes layer through a *via* at the bend point.  The Thompson
model is the two-layer case (layer 1 vertical, layer 2 horizontal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["Rect", "Segment", "Wire", "LayerPair", "rectilinear_path_length"]

Point = Tuple[int, int]


def _is_vertical_layer(layer: int) -> bool:
    return layer % 2 == 1


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle ``[x, x+w] x [y, y+h]`` (a node footprint)."""

    x: int
    y: int
    w: int
    h: int

    def __post_init__(self) -> None:
        if self.w <= 0 or self.h <= 0:
            raise ValueError(f"rect must have positive size, got {self.w}x{self.h}")

    @property
    def x2(self) -> int:
        return self.x + self.w

    @property
    def y2(self) -> int:
        return self.y + self.h

    @property
    def area(self) -> int:
        return self.w * self.h

    def contains_point(self, p: Point, strict: bool = False) -> bool:
        x, y = p
        if strict:
            return self.x < x < self.x2 and self.y < y < self.y2
        return self.x <= x <= self.x2 and self.y <= y <= self.y2

    def on_boundary(self, p: Point) -> bool:
        return self.contains_point(p) and not self.contains_point(p, strict=True)

    def intersects(self, other: "Rect", strict: bool = True) -> bool:
        """Overlap test; ``strict`` compares open interiors (touching edges
        do not count as intersection)."""
        if strict:
            return (
                self.x < other.x2
                and other.x < self.x2
                and self.y < other.y2
                and other.y < self.y2
            )
        return (
            self.x <= other.x2
            and other.x <= self.x2
            and self.y <= other.y2
            and other.y <= self.y2
        )


@dataclass(frozen=True)
class Segment:
    """An axis-aligned wire segment on a named layer.

    Normalised so that ``(x1, y1) <= (x2, y2)`` lexicographically; degenerate
    (zero-length) segments are rejected.
    """

    x1: int
    y1: int
    x2: int
    y2: int
    layer: int

    def __post_init__(self) -> None:
        if self.x1 != self.x2 and self.y1 != self.y2:
            raise ValueError("segment must be axis-aligned")
        if (self.x1, self.y1) == (self.x2, self.y2):
            raise ValueError("zero-length segment")
        if (self.x1, self.y1) > (self.x2, self.y2):
            a, b, c, d = self.x2, self.y2, self.x1, self.y1
            object.__setattr__(self, "x1", a)
            object.__setattr__(self, "y1", b)
            object.__setattr__(self, "x2", c)
            object.__setattr__(self, "y2", d)
        if self.layer < 1:
            raise ValueError(f"layer must be >= 1, got {self.layer}")

    @property
    def is_horizontal(self) -> bool:
        return self.y1 == self.y2

    @property
    def is_vertical(self) -> bool:
        return self.x1 == self.x2

    @property
    def track(self) -> int:
        """The fixed coordinate: ``y`` for horizontal, ``x`` for vertical."""
        return self.y1 if self.is_horizontal else self.x1

    @property
    def lo(self) -> int:
        return self.x1 if self.is_horizontal else self.y1

    @property
    def hi(self) -> int:
        return self.x2 if self.is_horizontal else self.y2

    @property
    def length(self) -> int:
        return (self.x2 - self.x1) + (self.y2 - self.y1)

    def covers_point(self, p: Point) -> bool:
        x, y = p
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2


@dataclass(frozen=True)
class LayerPair:
    """A (vertical-layer, horizontal-layer) pair used to wire one track
    group.  Which layers may carry which orientation is a *model* rule
    (the paper's even-``L`` layouts put verticals on odd layers; its
    odd-``L`` layouts put horizontals on odd layers), so no parity is
    enforced here — the validator checks pairs against the model.
    """

    vertical: int
    horizontal: int

    def __post_init__(self) -> None:
        if self.vertical < 1 or self.horizontal < 1:
            raise ValueError("layers are numbered from 1")
        if self.vertical == self.horizontal:
            raise ValueError("vertical and horizontal layers must differ")

    @classmethod
    def group(cls, i: int) -> "LayerPair":
        """Group ``i`` (0-based) of an even-``L`` layout: layers
        ``(2i + 1, 2i + 2)``."""
        return cls(vertical=2 * i + 1, horizontal=2 * i + 2)

    def layer_for(self, vertical: bool) -> int:
        return self.vertical if vertical else self.horizontal


THOMPSON_LAYERS = LayerPair(vertical=1, horizontal=2)


@dataclass
class Wire:
    """A routed net: a rectilinear path between two node terminals.

    ``net`` identifies the graph edge this wire realises (an ordered pair of
    node ids plus a copy index for parallel links).  ``segments`` is the
    path in order; consecutive segments share an endpoint, and a layer
    change at a shared endpoint is a via.
    """

    net: Tuple
    segments: List[Segment] = field(default_factory=list)

    @classmethod
    def from_path(
        cls,
        net: Tuple,
        points: Sequence[Point],
        layers: LayerPair = THOMPSON_LAYERS,
    ) -> "Wire":
        """Build a wire from a point path, assigning layers by direction.

        Consecutive duplicate points are dropped; each leg must be
        axis-aligned.  Collinear continuing runs on one layer are merged
        into a single segment (so overlap/via analysis sees whole runs).
        """
        return cls.from_legs(net, [(points, layers)])

    @classmethod
    def from_legs(
        cls,
        net: Tuple,
        legs: Sequence[Tuple[Sequence[Point], LayerPair]],
    ) -> "Wire":
        """Build a wire from consecutive legs, each with its own layer pair.

        Used for inter-block wires: the in-block stubs run on the base
        layers while the channel portion runs on its track group's layers.
        Legs must share endpoints; duplicate consecutive points are merged,
        and a straight run continuing across points (or legs) *on the same
        layer* becomes one segment — validators rely on whole runs to
        detect wires grazing another net's via.
        """
        # directed runs: (a, b, layer)
        runs: List[Tuple[Point, Point, int]] = []
        last: Optional[Point] = None
        for leg_points, pair in legs:
            for p in leg_points:
                if last is None or p == last:
                    last = p if last is None else last
                    continue
                a, b = last, p
                if a[0] != b[0] and a[1] != b[1]:
                    raise ValueError(f"non-rectilinear leg {a} -> {b}")
                vertical = a[0] == b[0]
                layer = pair.layer_for(vertical)
                if runs:
                    pa, pb, pl = runs[-1]
                    same_line = (
                        pl == layer
                        and (
                            (pa[0] == pb[0] == a[0] == b[0])
                            or (pa[1] == pb[1] == a[1] == b[1])
                        )
                    )
                    if same_line:
                        # continuing straight (same direction sign): merge
                        d_prev = (pb[0] - pa[0], pb[1] - pa[1])
                        d_cur = (b[0] - a[0], b[1] - a[1])
                        if (
                            d_prev[0] * d_cur[0] > 0
                            or d_prev[1] * d_cur[1] > 0
                        ):
                            runs[-1] = (pa, b, pl)
                            last = p
                            continue
                runs.append((a, b, layer))
                last = p
        if not runs:
            raise ValueError(f"wire {net}: empty path")
        segs = [Segment(a[0], a[1], b[0], b[1], l) for a, b, l in runs]
        return cls(net=net, segments=segs)

    @property
    def endpoints(self) -> Tuple[Point, Point]:
        """First and last points of the path (terminal attachment points)."""
        pts = self.path_points()
        return pts[0], pts[-1]

    def path_points(self) -> List[Point]:
        """Ordered path points; raises if segments are not contiguous."""
        segs = self.segments
        if len(segs) == 1:
            s = segs[0]
            return [(s.x1, s.y1), (s.x2, s.y2)]
        pts: List[Point] = []
        for i, s in enumerate(segs):
            ends = [(s.x1, s.y1), (s.x2, s.y2)]
            if i == 0:
                nxt = segs[1]
                nxt_ends = {(nxt.x1, nxt.y1), (nxt.x2, nxt.y2)}
                shared = [p for p in ends if p in nxt_ends]
                if not shared:
                    raise ValueError(f"wire {self.net}: segments 0/1 not contiguous")
                start = ends[0] if ends[1] == shared[0] else ends[1]
                pts.extend([start, shared[0]])
            else:
                prev_end = pts[-1]
                if prev_end == ends[0]:
                    pts.append(ends[1])
                elif prev_end == ends[1]:
                    pts.append(ends[0])
                else:
                    raise ValueError(
                        f"wire {self.net}: segment {i} not contiguous with path"
                    )
        return pts

    def vias(self) -> List[Point]:
        """Bend points where consecutive segments change layer."""
        out: List[Point] = []
        pts = self.path_points()
        for i in range(len(self.segments) - 1):
            if self.segments[i].layer != self.segments[i + 1].layer:
                out.append(pts[i + 1])
        return out

    @property
    def length(self) -> int:
        return sum(s.length for s in self.segments)


def rectilinear_path_length(points: Sequence[Point]) -> int:
    """Manhattan length of a rectilinear point path."""
    total = 0
    for a, b in zip(points, points[1:]):
        total += abs(a[0] - b[0]) + abs(a[1] - b[1])
    return total
