"""Stage-column layouts of arbitrary multistage networks.

The straightforward way to draw a multistage network: rows as horizontal
lines, stages as node columns, each boundary's links routed in a
vertical channel between the columns.  Channel widths are congestion-
optimal (left-edge over the link intervals), so this is the best layout
*of this shape* — but the shape itself is the baseline the paper beats:
for a butterfly the stage-column layout needs width ``~ 2^{n+1}`` of
channel alone versus the grid scheme's ``~ 2^n`` total side, and its
longest wire spans the full row extent.

Boundaries are given either as a single **exchange bit** (butterfly
style: straight + cross per row — covers butterflies, Benes fabrics and
Batcher bitonic sorters) or as an explicit **link list** of ``(u, v)``
row pairs (covers omega/shuffle-exchange networks and anything else with
per-node out/in degree at most 2 and at most one straight link per
node).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from ..topology.graph import Graph
from .collinear_generic import left_edge_tracks
from .geometry import Rect, Wire
from .model import Layout, multilayer_model, thompson_model
from .tracks import TrackGrouping, base_layer_pair

__all__ = ["MultistageDims", "MultistageResult", "build_multistage_layout", "multistage_dims"]

Boundary = Union[int, Sequence[Tuple[int, int]]]

# terminal slots on node sides (node side >= 4)
_SLOT_STRAIGHT = 0
_SLOTS_OUT = (1, 2)
_SLOTS_IN = (3, 4)


@dataclass(frozen=True)
class MultistageDims:
    rows: int
    stages: int
    W: int
    L: int
    channel_widths: Tuple[int, ...]
    width: int
    height: int

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def volume(self) -> int:
        return self.area * self.L


@dataclass
class MultistageResult:
    layout: Layout
    graph: Graph
    dims: MultistageDims

    def summary(self) -> Dict[str, int]:
        s = self.layout.summary()
        s["channel_total"] = sum(self.dims.channel_widths)
        return s


def _boundary_links(rows: int, b: Boundary, r_bits: int) -> List[Tuple[int, int]]:
    if isinstance(b, int):
        if not 0 <= b < r_bits:
            raise ValueError(f"exchange bit {b} out of range for {rows} rows")
        bit = 1 << b
        out: List[Tuple[int, int]] = []
        for u in range(rows):
            out.append((u, u))
            out.append((u, u ^ bit))
        return out
    links = [(int(u), int(v)) for u, v in b]
    for u, v in links:
        if not (0 <= u < rows and 0 <= v < rows):
            raise ValueError(f"link ({u}, {v}) out of range for {rows} rows")
    return links


def multistage_dims(
    rows: int,
    boundaries: Sequence[Boundary],
    W: int = 4,
    L: int = 2,
) -> MultistageDims:
    """Planning-only dimensions of :func:`build_multistage_layout` (exact,
    no geometry — usable at sizes too large to materialise)."""
    if rows < 2 or rows & (rows - 1):
        raise ValueError(f"rows must be a power of two >= 2, got {rows}")
    r_bits = rows.bit_length() - 1
    link_lists = [_boundary_links(rows, b, r_bits) for b in boundaries]
    widths: List[int] = []
    for links in link_lists:
        cross = [(u, v) for u, v in links if u != v]
        g = Graph()
        g.add_nodes(range(rows))
        for u, v in cross:
            g.add_edge(min(u, v), max(u, v))
        assign = left_edge_tracks(g, range(rows), min_gap=1)
        demand = max(assign.values()) + 1 if assign else 0
        grouping = TrackGrouping(L=L, horizontal=False, total_tracks=max(demand, 1))
        widths.append(grouping.physical_tracks if demand else 0)
    width = sum(W + 2 + w for w in widths) + W
    return MultistageDims(
        rows=rows,
        stages=len(link_lists) + 1,
        W=W,
        L=L,
        channel_widths=tuple(widths),
        width=width,
        height=rows * (W + 1) - 1,
    )


def build_multistage_layout(
    rows: int,
    boundaries: Sequence[Boundary],
    W: int = 4,
    L: int = 2,
    name: str = "multistage",
) -> MultistageResult:
    """Lay out the multistage network given per-boundary links (or
    exchange bits) as stage columns with congestion-routed channels."""
    if rows < 2 or rows & (rows - 1):
        raise ValueError(f"rows must be a power of two >= 2, got {rows}")
    if W < 4:
        raise ValueError(f"node side must be >= 4, got {W}")
    if L < 2:
        raise ValueError(f"need at least 2 layers, got {L}")
    r_bits = rows.bit_length() - 1
    link_lists = [_boundary_links(rows, b, r_bits) for b in boundaries]

    # channel planning: per boundary, a multigraph of non-straight links on
    # row indices; tracks shared only with a 1-row gap (lead jogs occupy
    # the shared row)
    plans = []
    widths: List[int] = []
    groupings: List[TrackGrouping] = []
    for links in link_lists:
        cross = [(u, v) for u, v in links if u != v]
        g = Graph()
        g.add_nodes(range(rows))
        for u, v in cross:
            g.add_edge(min(u, v), max(u, v))
        assign = left_edge_tracks(g, range(rows), min_gap=1)
        demand = max(assign.values()) + 1 if assign else 0
        grouping = TrackGrouping(L=L, horizontal=False, total_tracks=max(demand, 1))
        # map assignment keys (a, b, copy) back to directed links
        directed: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)
        for u, v in cross:
            directed[(min(u, v), max(u, v))].append((u, v))
        for lst in directed.values():
            lst.sort()
        net_tracks: List[Tuple[Tuple[int, int], int]] = []
        for (a, b, copy), track in sorted(assign.items()):
            net_tracks.append((directed[(a, b)][copy], track))
        plans.append(net_tracks)
        widths.append(grouping.physical_tracks if demand else 0)
        groupings.append(grouping)

    pitch_y = W + 1
    colx: List[int] = [0]
    for w in widths:
        colx.append(colx[-1] + W + 1 + w + 1)
    dims = MultistageDims(
        rows=rows,
        stages=len(link_lists) + 1,
        W=W,
        L=L,
        channel_widths=tuple(widths),
        width=colx[-1] + W,
        height=rows * pitch_y - 1,
    )

    model = thompson_model() if L == 2 else multilayer_model(L)
    base = base_layer_pair(L)
    lay = Layout(model=model, name=f"{name}-{rows}x{dims.stages}-L{L}")
    net = Graph(name=name)

    def row_y(u: int) -> int:
        return u * pitch_y

    for s in range(dims.stages):
        for u in range(rows):
            lay.add_node((u, s), Rect(colx[s], row_y(u), W, W))
            net.add_node((u, s))

    for s, links in enumerate(link_lists):
        right = colx[s] + W
        nxt = colx[s + 1]
        base_x = colx[s] + W + 1
        grouping = groupings[s]
        # straights
        straight_out = set()
        for u, v in links:
            if u != v:
                continue
            if u in straight_out:
                raise ValueError(f"node {u} has two straight links at boundary {s}")
            straight_out.add(u)
            y0 = row_y(u) + _SLOT_STRAIGHT
            net.add_edge((u, s), (u, s + 1))
            lay.add_wire(
                Wire.from_path(
                    ((u, s), (u, s + 1), "straight"), [(right, y0), (nxt, y0)], base
                )
            )
        # channel nets: assign per-node out/in slots deterministically
        out_rank: Dict[int, int] = defaultdict(int)
        in_rank: Dict[int, int] = defaultdict(int)
        for (u, v), track in sorted(plans[s], key=lambda item: item[0]):
            ou, iv = out_rank[u], in_rank[v]
            if ou >= len(_SLOTS_OUT) or iv >= len(_SLOTS_IN):
                raise ValueError(
                    f"boundary {s}: node degree exceeds the engine's "
                    f"2-out/2-in slot budget"
                )
            out_rank[u] += 1
            in_rank[v] += 1
            tx = base_x + grouping.offset_of(track)
            pair = grouping.layer_pair(track)
            yo = row_y(u) + _SLOTS_OUT[ou]
            yi = row_y(v) + _SLOTS_IN[iv]
            net.add_edge((u, s), (v, s + 1))
            lay.add_wire(
                Wire.from_legs(
                    ((u, s), (v, s + 1), "cross"),
                    [
                        ([(right, yo), (tx, yo)], base),
                        ([(tx, yo), (tx, yi)], pair),
                        ([(tx, yi), (nxt, yi)], base),
                    ],
                )
            )
    return MultistageResult(layout=lay, graph=net, dims=dims)
