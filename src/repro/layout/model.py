"""Layout container and layout-model rule descriptors.

A :class:`Layout` is a concrete embedding: node rectangles plus routed
wires on numbered layers.  A :class:`LayoutModel` states which rules the
embedding claims to satisfy (how many wiring layers, whether nodes must
sit on the first layer, node-size range) so the validator knows what to
check.  ``thompson_model()`` and ``multilayer_model(L)`` construct the two
rule sets used in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from .geometry import Rect, Wire

__all__ = ["LayoutModel", "Layout", "thompson_model", "multilayer_model"]


@dataclass(frozen=True)
class LayoutModel:
    """Rules a layout claims to satisfy.

    * ``num_layers`` — wiring layers ``L`` available.
    * ``v_layers`` / ``h_layers`` — which layers may carry vertical /
      horizontal segments.  Section 4.2: for even ``L``, odd layers carry
      verticals and even layers horizontals; for odd ``L`` the paper
      partitions horizontal tracks onto layers ``1, 3, ..., L`` and
      vertical tracks onto layers ``2, 4, ..., L-1``.
    * ``active_layers`` — layers that may contain nodes (the multilayer
      2-D grid model has exactly one).
    """

    name: str
    num_layers: int
    v_layers: Tuple[int, ...]
    h_layers: Tuple[int, ...]
    active_layers: int = 1

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ValueError(f"need at least one layer, got {self.num_layers}")
        if self.active_layers < 1:
            raise ValueError("need at least one active layer")
        if set(self.v_layers) & set(self.h_layers):
            raise ValueError("a layer cannot carry both orientations")
        for layer in (*self.v_layers, *self.h_layers):
            if not 1 <= layer <= self.num_layers:
                raise ValueError(f"layer {layer} outside [1, {self.num_layers}]")


def thompson_model() -> LayoutModel:
    """The Thompson model: two wiring layers (layer 1 vertical, layer 2
    horizontal), one active layer."""
    return LayoutModel(name="thompson", num_layers=2, v_layers=(1,), h_layers=(2,))


def multilayer_model(L: int) -> LayoutModel:
    """The multilayer 2-D grid model with ``L`` wiring layers.

    Even ``L``: verticals on odd layers, horizontals on even layers
    (``L/2`` groups of layer pairs).  Odd ``L``: horizontals on layers
    ``1, 3, ..., L`` and verticals on ``2, 4, ..., L-1`` (Section 4.2's
    odd-``L`` rule).
    """
    if L < 2:
        raise ValueError(f"multilayer model needs L >= 2, got {L}")
    if L % 2 == 0:
        v = tuple(range(1, L + 1, 2))
        h = tuple(range(2, L + 1, 2))
    else:
        h = tuple(range(1, L + 1, 2))
        v = tuple(range(2, L, 2))
    return LayoutModel(name=f"multilayer-L{L}", num_layers=L, v_layers=v, h_layers=h)


class Layout:
    """A concrete layout: placed nodes plus routed wires.

    Node ids are the graph's node ids (ints or tuples).  The layout does
    not interpret them; validators compare against a target graph.

    Wires are stored either as a list of :class:`Wire` objects or as a
    columnar :class:`~repro.layout.wiretable.WireTable` (what the
    vectorized builders emit).  The two are interchangeable: accessing
    ``.wires`` on a table-backed layout materialises objects lazily (and
    drops the table, since the returned list may be mutated in place),
    while ``wire_table()`` hands the native table to vectorized consumers
    without any object churn.
    """

    def __init__(
        self,
        model: LayoutModel,
        name: str = "",
        nodes: Dict[Hashable, Rect] = None,
        wires: List[Wire] = None,
        table=None,
    ) -> None:
        if wires is not None and table is not None:
            raise ValueError("pass either wires or table, not both")
        self.model = model
        self.name = name
        self.nodes: Dict[Hashable, Rect] = {} if nodes is None else nodes
        self._wires: List[Wire] = (
            wires if wires is not None else ([] if table is None else None)
        )
        self._table = table

    @property
    def wires(self) -> List[Wire]:
        if self._wires is None:
            self._wires = self._table.to_wires()
            # The list may be mutated by callers; the table would go stale.
            self._table = None
        return self._wires

    @wires.setter
    def wires(self, value: List[Wire]) -> None:
        self._wires = value
        self._table = None

    @property
    def has_native_table(self) -> bool:
        """True while the wires still live only in columnar form."""
        return self._table is not None

    def wire_table(self):
        """The layout's wires as a :class:`WireTable` — the native table
        when one is backing this layout, else a fresh conversion of the
        (possibly mutated) object wires."""
        if self._table is not None:
            return self._table
        from .wiretable import WireTable

        return WireTable.from_wires(self.wires)

    def add_node(self, node: Hashable, rect: Rect) -> None:
        if node in self.nodes:
            raise ValueError(f"node {node!r} already placed")
        self.nodes[node] = rect

    def add_wire(self, wire: Wire) -> None:
        self.wires.append(wire)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def bounding_box(self) -> Tuple[int, int, int, int]:
        """``(x_min, y_min, x_max, y_max)`` over all nodes and wires —
        the paper's smallest upright encompassing rectangle."""
        xs: List[int] = []
        ys: List[int] = []
        for r in self.nodes.values():
            xs.extend((r.x, r.x2))
            ys.extend((r.y, r.y2))
        if self._table is not None:
            box = self._table.bounding_box()
            if box is not None:
                xs.extend((int(box[0]), int(box[2])))
                ys.extend((int(box[1]), int(box[3])))
        else:
            for w in self.wires:
                for s in w.segments:
                    xs.extend((s.x1, s.x2))
                    ys.extend((s.y1, s.y2))
        if not xs:
            raise ValueError("empty layout")
        return (min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> int:
        x1, _, x2, _ = self.bounding_box()
        return x2 - x1

    @property
    def height(self) -> int:
        _, y1, _, y2 = self.bounding_box()
        return y2 - y1

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def volume(self) -> int:
        """Area times number of layers (Section 4.1)."""
        return self.area * self.model.num_layers

    def max_wire_length(self) -> int:
        if self._table is not None:
            return self._table.max_wire_length()
        return max((w.length for w in self.wires), default=0)

    def total_wire_length(self) -> int:
        if self._table is not None:
            return self._table.total_wire_length()
        return sum(w.length for w in self.wires)

    def num_vias(self) -> int:
        if self._table is not None:
            return self._table.num_vias()
        return sum(len(w.vias()) for w in self.wires)

    def layers_used(self) -> List[int]:
        if self._table is not None:
            return self._table.layers_used()
        return sorted({s.layer for w in self.wires for s in w.segments})

    def segment_count(self) -> int:
        if self._table is not None:
            return self._table.num_segments
        return sum(len(w.segments) for w in self.wires)

    def num_wires(self) -> int:
        if self._table is not None:
            return self._table.num_wires
        return len(self.wires)

    def summary(self) -> Dict[str, int]:
        """One-stop metrics dict used by benches and EXPERIMENTS.md."""
        return {
            "nodes": len(self.nodes),
            "wires": self.num_wires(),
            "segments": self.segment_count(),
            "width": self.width,
            "height": self.height,
            "area": self.area,
            "volume": self.volume,
            "layers": self.model.num_layers,
            "max_wire_length": self.max_wire_length(),
            "total_wire_length": self.total_wire_length(),
            "vias": self.num_vias(),
        }
