"""Strictly optimal collinear layouts of complete graphs (Appendix B).

Place the ``N`` nodes of ``K_N`` along a row and classify links by *type*:
a type-``i`` link joins nodes whose labels differ by ``i``.  The paper's
assignment puts type-``i`` links into ``min(i, N - i)`` tracks:

* ``i <= N/2``: track by label residue modulo ``i`` — links of equal
  residue chain end-to-end and never overlap;
* ``i > N/2``: each of the ``N - i`` links gets its own track.

Total tracks ``sum_i min(i, N-i) = floor(N**2 / 4)``, exactly the
bisection-width lower bound, and 25% below the Chen–Agrawal layout's
``4 (4**(log2 N - 1) - 1) / 3 ~ N**2/3`` tracks.

This module provides the abstract track assignment, the fully geometric
:class:`CollinearLayout` (validated wire-level), the reversed track order
that shortens the maximum wire (the paper's closing remark in Appendix B),
and multiplicities (every butterfly layout replicates each wire 4 or more
times).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal, Optional, Tuple

import numpy as np

from ..topology.complete import complete_multigraph
from ..topology.graph import Graph
from .geometry import LayerPair, Rect, THOMPSON_LAYERS, Wire
from .model import Layout, LayoutModel, thompson_model
from .wiretable import WireTable

__all__ = [
    "optimal_track_count",
    "chen_agrawal_track_count",
    "naive_track_count",
    "track_assignment",
    "track_assignment_arrays",
    "CollinearLayout",
    "collinear_layout",
]

TrackOrder = Literal["forward", "reversed"]


def optimal_track_count(n: int) -> int:
    """``floor(n**2 / 4)`` — Appendix B's strictly optimal count."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return n * n // 4


def chen_agrawal_track_count(n: int) -> int:
    """The prior bound of [6, Theorem 1]: ``4 (4**(log2 n - 1) - 1) / 3``.

    Defined for ``n`` a power of two (the dBCube construction); for other
    ``n`` we round the exponent up, matching the usual embed-in-next-power
    usage.  For ``n = 2`` the closed form evaluates to 0, but K_2 still
    needs its single track, so the result is clamped to at least 1.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    p = (n - 1).bit_length()  # ceil(log2 n)
    return max(1, 4 * (4 ** (p - 1) - 1) // 3)


def naive_track_count(n: int) -> int:
    """One track per link: ``n(n-1)/2`` — the trivial upper bound."""
    return n * (n - 1) // 2


def track_assignment(n: int, order: TrackOrder = "forward") -> Dict[Tuple[int, int], int]:
    """Map each link ``(a, b)``, ``a < b``, of ``K_n`` to its track index.

    ``forward`` stacks type-1 closest to the nodes; ``reversed`` flips the
    whole stack, which places the long-span types low and reduces the
    maximum wire length (see :func:`collinear_layout` and bench ABL-1).
    """
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    assign: Dict[Tuple[int, int], int] = {}
    base = 0
    for i in range(1, n):
        width = min(i, n - i)
        if i <= n // 2:
            # residue classes share tracks; chains never overlap
            for a in range(n - i):
                assign[(a, a + i)] = base + (a % i)
        else:
            for idx, a in enumerate(range(n - i)):
                assign[(a, a + i)] = base + idx
        base += width
    total = optimal_track_count(n)
    assert base == total, (base, total)
    if order == "reversed":
        assign = {e: total - 1 - t for e, t in assign.items()}
    return assign


def track_assignment_arrays(
    n: int, order: TrackOrder = "forward"
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`track_assignment` as arrays ``(a, b, track)``, sorted by
    ``(a, b)`` — the iteration order of the object builder."""
    if n < 2:
        raise ValueError(f"need n >= 2 nodes, got {n}")
    a_parts, t_parts = [], []
    base = 0
    for i in range(1, n):
        width = min(i, n - i)
        a = np.arange(n - i, dtype=np.int64)
        t_parts.append(base + (a % i if i <= n // 2 else a))
        a_parts.append(a)
        base += width
    a = np.concatenate(a_parts)
    t = np.concatenate(t_parts)
    b = a + np.repeat(np.arange(1, n, dtype=np.int64),
                      [n - i for i in range(1, n)])
    total = optimal_track_count(n)
    if order == "reversed":
        t = total - 1 - t
    srt = np.lexsort((b, a))
    return a[srt], b[srt], t[srt]


@dataclass
class CollinearLayout:
    """Geometric collinear layout of ``K_n`` (with multiplicity).

    Nodes are squares of side ``node_side`` in a row at ``y = 0``;
    horizontal tracks stack above.  ``track_of[(a, b, copy)]`` gives the
    physical track of each wire.
    """

    n: int
    multiplicity: int
    node_side: int
    order: TrackOrder
    layout: Layout
    track_of: Dict[Tuple[int, int, int], int]
    tracks_total: int

    @property
    def graph(self) -> Graph:
        return complete_multigraph(self.n, self.multiplicity)

    def summary(self) -> Dict[str, int]:
        s = self.layout.summary()
        s["tracks"] = self.tracks_total
        return s


def collinear_layout(
    n: int,
    multiplicity: int = 1,
    node_side: Optional[int] = None,
    order: TrackOrder = "forward",
    layers: LayerPair = THOMPSON_LAYERS,
    model: Optional[LayoutModel] = None,
    engine: Literal["table", "legacy"] = "table",
) -> CollinearLayout:
    """Construct the wire-level collinear layout of ``K_n`` (x ``multiplicity``).

    Terminal discipline: node ``a`` attaches each wire at a distinct x
    offset on its top edge, ordered by (neighbor label, copy); this ordering
    guarantees that chained same-track links only meet end-to-end, never
    overlapping (the interval argument in the module docstring).

    ``engine="table"`` (default) assembles the wires as columnar numpy
    arrays directly; ``engine="legacy"`` is the original object-per-wire
    builder, kept as the differential-testing oracle.  Both produce
    identical layouts wire for wire.
    """
    if multiplicity < 1:
        raise ValueError(f"multiplicity must be >= 1, got {multiplicity}")
    if engine not in ("table", "legacy"):
        raise ValueError(f"unknown engine {engine!r}")
    degree = multiplicity * (n - 1)
    side = node_side if node_side is not None else max(degree, 1)
    if side < degree:
        raise ValueError(
            f"node side {side} cannot host {degree} top-edge terminals"
        )
    tracks_total = optimal_track_count(n) * multiplicity

    pitch = side + 1
    top = side  # nodes sit on y in [0, side]

    def terminal_x(a: int, b: int, copy: int) -> int:
        """x of node ``a``'s terminal for its ``copy``-th wire to ``b``.

        Unit spacing per terminal, ordered by (neighbor, copy); the check
        above guarantees ``side >= degree`` so all ranks fit on the edge.
        """
        rank = (b if b < a else b - 1) * multiplicity + copy
        return a * pitch + rank

    track_of: Dict[Tuple[int, int, int], int] = {}
    if engine == "table":
        m = multiplicity
        a0, b0, t0 = track_assignment_arrays(n, "forward")
        nl = len(a0)
        a = np.repeat(a0, m)
        b = np.repeat(b0, m)
        copy = np.tile(np.arange(m, dtype=np.int64), nl)
        t = np.repeat(t0, m) * m + copy
        if order == "reversed":
            t = tracks_total - 1 - t
        y = top + 1 + t
        # a < b throughout, so node a ranks its terminal by (b - 1, copy)
        # and node b by (a, copy)
        xa = a * pitch + (b - 1) * m + copy
        xb = b * pitch + a * m + copy
        nw = nl * m
        rows = np.empty((nw, 3, 5), dtype=np.int64)
        topv = np.full(nw, top, dtype=np.int64)
        rows[:, 0] = np.stack(
            [xa, topv, xa, y, np.full(nw, layers.vertical, dtype=np.int64)], axis=1
        )
        rows[:, 1] = np.stack(
            [xa, y, xb, y, np.full(nw, layers.horizontal, dtype=np.int64)], axis=1
        )
        rows[:, 2] = np.stack(
            [xb, topv, xb, y, np.full(nw, layers.vertical, dtype=np.int64)], axis=1
        )
        flat = rows.reshape(nw * 3, 5)
        nets = list(zip(a.tolist(), b.tolist(), copy.tolist()))
        table = WireTable.from_segment_arrays(
            nets,
            np.arange(nw + 1, dtype=np.int64) * 3,
            flat[:, 0], flat[:, 1], flat[:, 2], flat[:, 3], flat[:, 4],
        )
        lay = Layout(
            model=model or thompson_model(),
            name=f"collinear-K{n}x{multiplicity}",
            table=table,
        )
        track_of = dict(zip(nets, t.tolist()))
    else:
        lay = Layout(
            model=model or thompson_model(),
            name=f"collinear-K{n}x{multiplicity}",
        )
        base_assign = track_assignment(n, "forward")
        for (a, b), t0 in sorted(base_assign.items()):
            for copy in range(multiplicity):
                t = t0 * multiplicity + copy
                if order == "reversed":
                    t = tracks_total - 1 - t
                y = top + 1 + t
                xa, xb = terminal_x(a, b, copy), terminal_x(b, a, copy)
                wire = Wire.from_path(
                    (a, b, copy),
                    [(xa, top), (xa, y), (xb, y), (xb, top)],
                    layers=layers,
                )
                lay.add_wire(wire)
                track_of[(a, b, copy)] = t

    for a in range(n):
        lay.add_node(a, Rect(a * pitch, 0, side, side))

    return CollinearLayout(
        n=n,
        multiplicity=multiplicity,
        node_side=side,
        order=order,
        layout=lay,
        track_of=track_of,
        tracks_total=tracks_total,
    )
