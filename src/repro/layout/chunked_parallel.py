"""Multi-worker chunked build+validate with a byte-identical reduce.

The serial chunked pipeline (:mod:`repro.layout.chunked`) streams a
layout's chunks through one :class:`ChunkedValidator`.  This module fans
that stream out over a ``multiprocessing`` pool while keeping the final
:class:`~repro.layout.validate.ValidationReport` and summary dict
**byte-identical** to the serial path at any worker count and budget
(pinned by ``tests/test_chunked_parallel.py``):

* the producer splits the build's picklable chunk *descriptors* into one
  contiguous span per worker, so span order equals emission order;
* bulk inputs every chunk needs (track assignments, block-id arrays) are
  published once through the :mod:`repro.backend.shm` handoff and
  attached zero-copy in each worker;
* each worker materialises and validates its span with a private
  :class:`ChunkedValidator` in *span-local* numbering (wire offsets,
  via-section positions, terminal sequence all start at 0) and returns
  its tallies, spill-part paths and counters;
* the reducer computes each worker's global offsets by prefix sum and
  registers the spilled parts with per-column additive rebase vectors
  (applied at reload, never rewriting bytes), merges the streaming
  tallies and realizes-graph accumulators in span order, then runs the
  very same :func:`~repro.layout.chunked._reduce_finalize` the serial
  path uses — with the bucket sweeps themselves dispatched to the pool.

Determinism argument, check by check: streaming tallies cap their first
20 messages and chunks-in-span-order equals chunks-in-emission-order;
grouped checks sort by globally-unique keys after rebase, so partition
boundaries are invisible; the realizes counter merges spans in order,
preserving first-occurrence ordering for the fallback's message
selection; and the array fast path folds through the associative
``Graph._aggregate_rows``.

``workers=1`` runs the same worker functions inline (no pool, no shared
memory) — handy for determinism checks and coverage.  A worker process
that dies mid-span surfaces as a clean ``RuntimeError`` and the shared
block is still unlinked on the way out (``ExitStack`` owns it).
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..backend import BACKENDS
from ..backend.shm import attach_cached, share_arrays
from ..topology.graph import Graph
from .chunked import (
    ChunkStats,
    ChunkedBuild,
    ChunkedValidator,
    _fast_stub,
    _fast_template,
    _reduce_finalize,
    _sweep_job,
    chunked_collinear_table,
    chunked_grid_table,
)
from .validate import ValidationReport

__all__ = ["parallel_validate"]

# one rebuilt ChunkedBuild per recipe per worker process; when the pool
# forks, pre-seeding the parent entry makes the rebuild free
_RECIPE_CACHE: Dict[Tuple, ChunkedBuild] = {}


def _build_from_recipe(recipe: Tuple) -> ChunkedBuild:
    b = _RECIPE_CACHE.get(recipe)
    if b is None:
        kind = recipe[0]
        if kind == "collinear":
            _, n, mult, node_side, order, budget = recipe
            b = chunked_collinear_table(
                n, mult, node_side=node_side, order=order,
                memory_budget_bytes=budget,
            )
        elif kind == "grid":
            _, ks, W, L, track_order, recirc, budget = recipe
            b = chunked_grid_table(
                ks, W=W, L=L, track_order=track_order,
                recirculating=recirc, memory_budget_bytes=budget,
            )
        else:
            raise ValueError(f"unknown recipe kind {kind!r}")
        _RECIPE_CACHE[recipe] = b
    return b


def _backend_name(backend) -> Optional[str]:
    """Picklable stand-in for a backend argument (instances don't ship)."""
    if backend is None or isinstance(backend, str):
        return backend
    for name, cls in BACKENDS.items():
        if isinstance(backend, cls):
            return name
    return None


def _stores_of(v: ChunkedValidator) -> Dict[str, object]:
    d = {"tracks": v._tracks}
    if v.check_vias:
        d["viacol"] = v._cols
        d["seg_h"] = v._segs[True]
        d["seg_v"] = v._segs[False]
        for is_h in (True, False):
            for s in (0, 1, 2):
                d[f"qry_{'h' if is_h else 'v'}_{s}"] = v._qrys[(is_h, s)]
        d["terms"] = v._terms
    return d


def _offsets_for(
    name: str, w: int, gw: int, bend: int, term: int
) -> Tuple[int, ...]:
    """Per-column rebase vector lifting a worker's span-local spill rows
    into global numbering: wire ids shift by the span's wire offset,
    via-query section positions by the start/end (sections 0/1) or bend
    (section 2) count, terminal arrival sequence by the terminal count."""
    if name == "tracks":
        return (0, 0, 0, 0, 0, w)
    if name in ("viacol", "seg_h", "seg_v"):
        return (0, 0, 0, 0, w)
    if name.startswith("qry_"):
        sec = int(name[-1])
        return (0, 0, 0, w, gw if sec < 2 else bend, 0)
    if name == "terms":
        return (0, 0, term, w)
    raise ValueError(f"unknown spill store {name!r}")


def _feed_span(payload: Tuple) -> Dict:
    """Worker: materialise + validate one contiguous descriptor span with
    span-local numbering; return tallies, spill parts and counters.

    Runs in a pool process (or inline for ``workers=1``); never calls
    ``finalize``/``close`` — the spill files are handed to the reducer
    and live in a parent-owned directory.
    """
    (widx, span, pack, nodes_model, has_graph, fast_kk, check_nodes,
     check_vias, backend_name, nb, spill_root, want_stats) = payload
    if span[0] == "recipe":
        build = _build_from_recipe(span[1])
        nodes, model = build.nodes, build.model
        views = attach_cached(pack) if pack is not None else None

        def tables():
            for d in build.descriptors[span[2]:span[3]]:
                t = build._materialize(d, views)
                if t.num_wires:
                    yield t
    else:
        nodes, model = nodes_model

        def tables():
            yield from span[1]

    v = ChunkedValidator(
        nodes, model, graph=None, check_nodes=check_nodes,
        check_vias=check_vias, backend=backend_name, num_buckets=nb,
        spill_dir=os.path.join(spill_root, f"w{widx:03d}"),
    )
    if has_graph:
        # sentinel: feed() only tests `is not None`; workers never finalize
        v.graph = True
        if fast_kk is not None:
            v._fast = _fast_stub(*fast_kk)
    st = ChunkStats() if want_stats else None
    if os.environ.get("REPRO_TEST_CRASH_WORKER") == str(widx):
        os._exit(3)  # test seam: die mid-span without cleanup
    for t in tables():
        v.feed(t)
        if st is not None:
            st.feed(t)
    out = {
        "counts": (v._wire_off, v._gw_count, v._bend_count, v._term_count),
        "layer": (v._t_layer.count, v._t_layer.msgs),
        "contig": (v._t_contig.count, v._t_contig.msgs),
        "avoid": (v._t_avoid.count, v._t_avoid.msgs),
        "parts": {name: s.parts for name, s in _stores_of(v).items()},
        "got": v._got if has_graph else None,
        "fast": None,
        "stats": None,
    }
    if v._fast is not None:
        out["fast"] = (v._fast["uniq"], v._fast["agg"])
    if st is not None:
        out["stats"] = (
            st.wires, st.segments, st.total_wire_length,
            st.max_wire_length, st.vias, st.box,
        )
    return out


def _merge_results(
    v: ChunkedValidator, results: List[Dict], has_graph: bool
) -> None:
    """Fold worker results into the reducer validator in span order."""
    w_off = gw_off = bend_off = term_off = 0
    stores = _stores_of(v)
    for r in results:
        v._t_layer.add(*r["layer"])
        v._t_contig.add(*r["contig"])
        v._t_avoid.add(*r["avoid"])
        if has_graph and r["got"] is not None:
            # span-order update keeps first-occurrence insertion order,
            # which the realizes fallback's message selection depends on
            v._got.update(r["got"])
        if v._fast is not None:
            if r["fast"] is None:
                v._fast = None  # some chunk fell off the array fast path
            else:
                uniq, agg = r["fast"]
                if len(uniq):
                    v._fast["uniq"], v._fast["agg"] = Graph._aggregate_rows(
                        np.concatenate([v._fast["uniq"], uniq]),
                        np.concatenate([v._fast["agg"], agg]),
                    )
        for name, parts in r["parts"].items():
            store = stores[name]
            off = _offsets_for(name, w_off, gw_off, bend_off, term_off)
            rebase = any(off)
            for k in range(store.nb):
                if not parts[k]:
                    continue
                if rebase:
                    store.parts[k].extend((p, off) for p in parts[k])
                else:
                    store.parts[k].extend(parts[k])
        cw, cgw, cbend, cterm = r["counts"]
        w_off += cw
        gw_off += cgw
        bend_off += cbend
        term_off += cterm
    v._wire_off = w_off
    v._gw_count = gw_off
    v._bend_count = bend_off
    v._term_count = term_off


def _merge_stats(results: List[Dict]) -> ChunkStats:
    st = ChunkStats()
    for r in results:
        wires, segments, total, mx, vias, box = r["stats"]
        st.wires += wires
        st.segments += segments
        st.total_wire_length += total
        st.max_wire_length = max(st.max_wire_length, mx)
        st.vias += vias
        if box is not None:
            if st.box is None:
                st.box = box
            else:
                st.box = (
                    min(st.box[0], box[0]), min(st.box[1], box[1]),
                    max(st.box[2], box[2]), max(st.box[3], box[3]),
                )
    return st


def _gather(futs):
    try:
        return [f.result() for f in futs]
    except BrokenProcessPool as e:
        raise RuntimeError(
            "parallel chunked validate: a worker process died before "
            "returning its span; shared-memory blocks and spill "
            "directories are cleaned up on this error path"
        ) from e


def parallel_validate(
    source,
    nodes=None,
    model=None,
    graph: Optional[Graph] = None,
    check_nodes: bool = True,
    check_vias: bool = True,
    backend=None,
    num_buckets: int = 8,
    spill_dir: Optional[str] = None,
    workers: int = 1,
    want_stats: bool = False,
) -> Union[ValidationReport, Tuple[ValidationReport, Dict[str, int]]]:
    """Parallel chunked build+validate over ``workers`` processes.

    ``source`` is a :class:`ChunkedBuild` (its ``nodes``/``model`` are
    used; a recipe source streams descriptors out-of-core) or any
    iterable of :class:`WireTable` chunks (buffered, then span-split).
    Returns the report, or ``(report, summary)`` with ``want_stats`` —
    both byte-identical to the serial path.
    """
    w = int(workers)
    if w < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    build = source if isinstance(source, ChunkedBuild) else None
    if build is not None:
        nodes, model = build.nodes, build.model
    elif nodes is None or model is None:
        raise ValueError(
            "nodes and model are required when source is not a ChunkedBuild"
        )
    recipe_mode = (
        build is not None
        and build.recipe is not None
        and build.descriptors is not None
    )
    if recipe_mode:
        items: List = build.descriptors
    elif build is not None:
        items = list(build.chunks())
    else:
        items = list(source)
    n_items = len(items)
    if n_items == 0:
        v = ChunkedValidator(
            nodes, model, graph=graph, check_nodes=check_nodes,
            check_vias=check_vias, backend=backend,
            num_buckets=num_buckets, spill_dir=spill_dir,
        )
        try:
            rep = v.finalize()
        finally:
            v.close()
        if want_stats:
            return rep, ChunkStats().summary(nodes, model)
        return rep
    w = min(w, n_items)
    base, rem = divmod(n_items, w)
    bounds = [0]
    for i in range(w):
        bounds.append(bounds[-1] + base + (1 if i < rem else 0))
    backend_name = _backend_name(backend)
    fast_tpl = _fast_template(graph) if graph is not None else None
    fast_kk = (fast_tpl["k"], fast_tpl["kk"]) if fast_tpl is not None else None
    if recipe_mode:
        # forked workers inherit the already-built source for free
        _RECIPE_CACHE.setdefault(build.recipe, build)

    with ExitStack() as stack:
        if spill_dir is None:
            root = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-parallel-")
            )
        else:
            os.makedirs(spill_dir, exist_ok=True)
            root = spill_dir
        pack = None
        if recipe_mode and w > 1 and build._bulk is not None:
            bulk = build._bulk()
            if bulk:
                pack = stack.enter_context(share_arrays(**bulk))
        payloads = []
        for widx in range(w):
            lo, hi = bounds[widx], bounds[widx + 1]
            span = (
                ("recipe", build.recipe, lo, hi) if recipe_mode
                else ("tables", items[lo:hi])
            )
            payloads.append((
                widx, span, pack,
                None if recipe_mode else (nodes, model),
                graph is not None, fast_kk, check_nodes, check_vias,
                backend_name, num_buckets, root, want_stats,
            ))
        ex = None
        if w > 1:
            ex = stack.enter_context(ProcessPoolExecutor(max_workers=w))
            results = _gather([ex.submit(_feed_span, p) for p in payloads])
        else:
            results = [_feed_span(p) for p in payloads]

        v = ChunkedValidator(
            nodes, model, graph=graph, check_nodes=check_nodes,
            check_vias=check_vias, backend=backend,
            num_buckets=num_buckets,
            spill_dir=os.path.join(root, "reduce"),
        )
        _merge_results(v, results, graph is not None)
        v._finalized = True

        def run_jobs(sweeps):
            if ex is None:
                return [_sweep_job(p, be=v.be) for p in sweeps]
            return _gather([
                ex.submit(_sweep_job, p + (backend_name,)) for p in sweeps
            ])

        rep = _reduce_finalize(v, run_jobs)
        summ = (
            _merge_stats(results).summary(nodes, model)
            if want_stats else None
        )
    if want_stats:
        return rep, summ
    return rep
