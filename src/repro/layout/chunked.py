"""Chunked (out-of-core) WireTable construction, validation and stats.

The monolithic builders materialise every wire of a layout before
anything can be validated, which for ``B_18``-class grids means multi-GB
segment arrays.  This module streams the same layouts as a sequence of
:class:`~repro.layout.wiretable.WireTable` *chunks* under an explicit
``memory_budget_bytes``, with two exactness guarantees pinned by
``tests/test_wiretable_chunked.py``:

* **build identity** — concatenating the chunks reproduces the
  monolithic table byte for byte (same wires, same order, same columns);
* **verdict identity** — :func:`validate_table_chunked` and
  :func:`summarize_chunks` return byte-identical
  :class:`~repro.layout.validate.ValidationReport` contents (``ok``,
  ``num_errors``, ``errors``, ``checks_run``) and ``Layout.summary()``
  dicts without ever holding the whole table.

Chunk sources exploit each builder's order structure:

* collinear (:func:`chunked_collinear_table`) — the table is strictly
  per-wire, so any wire range ``[lo, hi)`` regenerates independently
  from :func:`~repro.layout.collinear.track_assignment_arrays`;
* grid scheme (:func:`chunked_grid_table`) — the legacy emission order
  factors into three phases (intra wires block-major, then level >= 3
  inter wires by grid column, then level-2 inter wires by grid row) and
  every ranking is local to a block / grid column / grid row, so
  :func:`~repro.layout.grid_table._grid_cats` rebuilds any closed block
  subset exactly.  Chunk granularity is therefore whole blocks (intra)
  and whole grid columns/rows (inter) — the budget is honoured down to
  that floor;
* 2-D grids (:func:`chunked_grid2d_table`) — emission order is channel
  by channel; a first pass computes demands without retaining graphs and
  a second pass streams the dogleg rows.

Validation partitions each grouped check's rows into disk-spilled hash
buckets keyed by the check's group key (track, via point, channel
coordinate) so every comparison group lands wholly in one bucket; the
per-bucket sweeps are the *same* core functions the monolithic
:func:`~repro.layout.validate.validate_table` runs, and their keyed
messages merge back into the monolithic emission order before the
global ``MAX_ERRORS_KEPT`` cap is applied.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import (
    Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Sequence,
    Tuple,
)

import numpy as np

from ..backend import get_backend
from ..topology.graph import Graph
from ..transform.swap_butterfly import SwapButterfly
from .collinear import (
    TrackOrder, optimal_track_count, track_assignment_arrays,
)
from .collinear_generic import max_congestion
from .geometry import LayerPair, Rect, THOMPSON_LAYERS
from .grid2d import (
    Grid2DDims, _doglegs_to_table, _grid2d_plan, _grid2d_wire_stream,
    _side_subgraphs,
)
from .grid_scheme import GridDims, grid_dims
from .grid_table import _cats_table, _grid_cats, build_grid_nodes
from .model import LayoutModel, multilayer_model, thompson_model
from .validate import (
    MAX_ERRORS_KEPT,
    ValidationReport,
    _BandIndex,
    _bulk,
    _canon_edge,
    _canon_net_rows,
    _realizes_fallback,
    _staged_nodes_placed,
    _track_overlap_sweep,
    _via_col_sweep,
    _via_seg_orientation,
    _via_seg_queries,
    _vt_columns,
    _vt_contiguity_terminals,
    _vt_layer_discipline,
    _vt_nodes_disjoint,
)
from .wiretable import WireTable

__all__ = [
    "ChunkStats",
    "ChunkedBuild",
    "ChunkedValidator",
    "chunked_collinear_table",
    "chunked_grid2d_table",
    "chunked_grid_table",
    "grid_chunk_estimate",
    "summarize_chunks",
    "validate_table_chunked",
    "wires_per_chunk",
]

# Conservative working-set estimate per wire in a chunk under assembly:
# ~3 segments x 5 int64 columns, the 6-int lexsort key, the net tuple,
# and sort/permute temporaries.  Deliberately generous so a declared
# budget upper-bounds the real transient footprint.
_WIRE_BYTES = 1024

_DEFAULT_CHUNK_WIRES = 65536


def wires_per_chunk(memory_budget_bytes: Optional[int]) -> int:
    """Target chunk size (in wires) for a working-set byte budget.

    ``None`` means "no budget" and yields a large default chunk.  Grid
    chunk sources honour the result down to their natural granularity
    floor (one block / grid column / grid row per chunk); the collinear
    source honours it exactly, down to single-wire chunks.

    The floor is pinned at **one wire per chunk**: any positive budget —
    even a single byte, far below the ~1 KiB per-wire working-set
    estimate — yields ``1`` rather than an error or a zero-size chunk,
    so arbitrarily tight budgets degrade to smaller chunks, never to a
    refusal.  Non-positive budgets are a ``ValueError`` (use ``None``
    for "unbudgeted", not ``0``).
    """
    if memory_budget_bytes is None:
        return _DEFAULT_CHUNK_WIRES
    if memory_budget_bytes <= 0:
        raise ValueError(
            f"memory_budget_bytes must be positive, got {memory_budget_bytes}"
        )
    return max(1, int(memory_budget_bytes) // _WIRE_BYTES)


@dataclass
class ChunkedBuild:
    """A layout whose wires exist only as a restartable chunk stream.

    ``chunks()`` returns a fresh iterator of :class:`WireTable` chunks in
    monolithic emission order each time it is called (builds are
    deterministic, so the stream is restartable).  ``nodes`` and
    ``model`` are materialised eagerly — they are O(network size), not
    O(wires) — which is exactly what the chunked validator needs.
    """

    name: str
    model: LayoutModel
    nodes: Dict[Hashable, Rect]
    chunk_wires: int
    memory_budget_bytes: Optional[int]
    num_wires: Optional[int] = None
    _chunks: Callable[[], Iterator[WireTable]] = field(
        default=None, repr=False
    )
    # parallel-pipeline surface: a picklable ``recipe`` rebuilds this
    # ChunkedBuild in a worker process, ``descriptors`` lists every chunk
    # as a small picklable tuple in emission order, ``_materialize(desc,
    # views)`` turns one descriptor into its WireTable (``views`` lets
    # workers pass shared-memory copies of the ``_bulk()`` arrays), and
    # ``_bulk()`` returns the O(network) arrays every chunk needs, to be
    # published once via ``repro.backend.shm``.  Sources without this
    # surface (custom models, grid2d) still parallelise through the
    # generic buffered fallback.
    recipe: Optional[Tuple] = field(default=None, repr=False)
    descriptors: Optional[List[Tuple]] = field(default=None, repr=False)
    _materialize: Optional[Callable[..., WireTable]] = field(
        default=None, repr=False
    )
    _bulk: Optional[Callable[[], Dict[str, np.ndarray]]] = field(
        default=None, repr=False
    )
    _summary_cache: Optional[Dict[str, int]] = field(default=None, repr=False)

    def chunks(self) -> Iterator[WireTable]:
        if self.descriptors is not None and self._materialize is not None:
            def gen() -> Iterator[WireTable]:
                for d in self.descriptors:
                    t = self._materialize(d)
                    if t.num_wires:
                        yield t
            return gen()
        return self._chunks()

    def table(self) -> WireTable:
        """Materialise the monolithic table (for tests / small builds)."""
        return WireTable.concat(list(self.chunks()))

    def validate(
        self,
        graph: Optional[Graph] = None,
        check_nodes: bool = True,
        check_vias: bool = True,
        backend=None,
        num_buckets: int = 8,
        spill_dir: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> ValidationReport:
        if workers is not None:
            from .chunked_parallel import parallel_validate
            return parallel_validate(
                self, graph=graph, check_nodes=check_nodes,
                check_vias=check_vias, backend=backend,
                num_buckets=num_buckets, spill_dir=spill_dir, workers=workers,
            )
        return validate_table_chunked(
            self.chunks(), self.nodes, self.model, graph=graph,
            check_nodes=check_nodes, check_vias=check_vias, backend=backend,
            num_buckets=num_buckets, spill_dir=spill_dir,
        )

    def summary(self) -> Dict[str, int]:
        """``Layout.summary()`` dict; reuses the stats pass of an earlier
        ``validate_and_summarize`` call instead of re-enumerating chunks."""
        if self._summary_cache is not None:
            return dict(self._summary_cache)
        return summarize_chunks(self.chunks(), self.nodes, self.model)

    def validate_and_summarize(
        self,
        graph: Optional[Graph] = None,
        check_nodes: bool = True,
        check_vias: bool = True,
        backend=None,
        num_buckets: int = 8,
        spill_dir: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> Tuple[ValidationReport, Dict[str, int]]:
        """One pass over the chunk stream feeding both the validator and
        the stats accumulator."""
        if workers is not None:
            from .chunked_parallel import parallel_validate
            rep, summ = parallel_validate(
                self, graph=graph, check_nodes=check_nodes,
                check_vias=check_vias, backend=backend,
                num_buckets=num_buckets, spill_dir=spill_dir,
                workers=workers, want_stats=True,
            )
        else:
            v = ChunkedValidator(
                self.nodes, self.model, graph=graph, check_nodes=check_nodes,
                check_vias=check_vias, backend=backend,
                num_buckets=num_buckets, spill_dir=spill_dir,
            )
            st = ChunkStats()
            try:
                for t in self.chunks():
                    v.feed(t)
                    st.feed(t)
                rep = v.finalize()
            finally:
                v.close()
            summ = st.summary(self.nodes, self.model)
        self._summary_cache = dict(summ)
        return rep, summ


# ---------------------------------------------------------------------------
# chunk sources
# ---------------------------------------------------------------------------


def chunked_collinear_table(
    n: int,
    multiplicity: int = 1,
    node_side: Optional[int] = None,
    order: TrackOrder = "forward",
    layers: LayerPair = THOMPSON_LAYERS,
    model: Optional[LayoutModel] = None,
    memory_budget_bytes: Optional[int] = None,
) -> ChunkedBuild:
    """Stream :func:`~repro.layout.collinear.collinear_layout`'s table in
    wire-range chunks; concatenated chunks are byte-identical to the
    monolithic ``engine="table"`` build."""
    if multiplicity < 1:
        raise ValueError(f"multiplicity must be >= 1, got {multiplicity}")
    degree = multiplicity * (n - 1)
    side = node_side if node_side is not None else max(degree, 1)
    if side < degree:
        raise ValueError(
            f"node side {side} cannot host {degree} top-edge terminals"
        )
    tracks_total = optimal_track_count(n) * multiplicity
    pitch = side + 1
    top = side
    m = multiplicity
    nw = (n * (n - 1) // 2) * m
    wpc = wires_per_chunk(memory_budget_bytes)
    vl = np.int64(layers.vertical)
    hl = np.int64(layers.horizontal)

    _bulk_cache: Dict[str, np.ndarray] = {}

    def bulk() -> Dict[str, np.ndarray]:
        if not _bulk_cache:
            a0, b0, t0 = track_assignment_arrays(n, "forward")
            _bulk_cache.update(a0=a0, b0=b0, t0=t0)
        return dict(_bulk_cache)

    def materialize(desc, views=None) -> WireTable:
        arrs = views if views is not None else bulk()
        a0, b0, t0 = arrs["a0"], arrs["b0"], arrs["t0"]
        _, lo, hi = desc
        idx = np.arange(lo, hi, dtype=np.int64)
        li = idx // m
        copy = idx % m
        a, b = a0[li], b0[li]
        t = t0[li] * m + copy
        if order == "reversed":
            t = tracks_total - 1 - t
        y = top + 1 + t
        xa = a * pitch + (b - 1) * m + copy
        xb = b * pitch + a * m + copy
        cn = hi - lo
        rows = np.empty((cn, 3, 5), dtype=np.int64)
        topv = np.full(cn, top, dtype=np.int64)
        rows[:, 0] = np.stack(
            [xa, topv, xa, y, np.full(cn, vl)], axis=1
        )
        rows[:, 1] = np.stack(
            [xa, y, xb, y, np.full(cn, hl)], axis=1
        )
        rows[:, 2] = np.stack(
            [xb, topv, xb, y, np.full(cn, vl)], axis=1
        )
        flat = rows.reshape(cn * 3, 5)
        nets = list(zip(a.tolist(), b.tolist(), copy.tolist()))
        return WireTable.from_segment_arrays(
            nets,
            np.arange(cn + 1, dtype=np.int64) * 3,
            flat[:, 0], flat[:, 1], flat[:, 2], flat[:, 3], flat[:, 4],
        )

    descriptors = [
        ("rng", lo, min(lo + wpc, nw)) for lo in range(0, nw, wpc)
    ]
    # a recipe must rebuild this exact source from primitives alone, so
    # custom models / layer pairs fall back to the buffered parallel path
    recipe = None
    if model is None and layers is THOMPSON_LAYERS:
        recipe = (
            "collinear", int(n), int(multiplicity),
            None if node_side is None else int(node_side),
            order, memory_budget_bytes,
        )
    nodes = {a: Rect(a * pitch, 0, side, side) for a in range(n)}
    return ChunkedBuild(
        name=f"collinear-K{n}x{multiplicity}",
        model=model or thompson_model(),
        nodes=nodes,
        chunk_wires=wpc,
        memory_budget_bytes=memory_budget_bytes,
        num_wires=nw,
        recipe=recipe,
        descriptors=descriptors,
        _materialize=materialize,
        _bulk=bulk,
    )


def _grid_grain(
    dims: GridDims, sb_n: int, recirculating: bool,
    memory_budget_bytes: Optional[int],
) -> Tuple[int, int, int, int, int]:
    """Chunk granularity of the grid source for a byte budget:
    ``(wires_per_chunk, wires_per_block, blocks_per_intra_chunk,
    grid_cols_per_chunk, grid_rows_per_chunk)``."""
    R = dims.block.nrows
    # per-block wire estimate: ~2 wires per (row, boundary) + feedback
    per_block = 2 * R * sb_n + (R if recirculating else 0)
    wpc = wires_per_chunk(memory_budget_bytes)
    bpc = max(1, wpc // max(per_block, 1))
    cpc = max(1, bpc // dims.grid_rows)  # grid columns per inter-col chunk
    rpc = max(1, bpc // dims.grid_cols)  # grid rows per inter-row chunk
    return wpc, per_block, bpc, cpc, rpc


def grid_chunk_estimate(
    ks: Sequence[int],
    W: int = 4,
    L: int = 2,
    recirculating: bool = False,
    memory_budget_bytes: Optional[int] = None,
) -> Dict[str, int]:
    """Planning numbers for a chunked grid build without building wires:
    descriptor count, chunk-size target, and a peak working-set estimate
    (the chunk-size target or the one-block granularity floor, whichever
    dominates, times the per-wire working-set constant)."""
    dims = grid_dims(ks, W, L, recirculating=recirculating)
    sb = SwapButterfly.from_ks(dims.ks)
    wpc, per_block, bpc, cpc, rpc = _grid_grain(
        dims, sb.n, recirculating, memory_budget_bytes
    )
    gc, gr = dims.grid_cols, dims.grid_rows
    NB = gc * gr
    nchunks = -(-NB // bpc) + -(-gc // cpc) + -(-gr // rpc)
    return {
        "chunks": int(nchunks),
        "wires_per_chunk": int(wpc),
        "est_total_wires": int(per_block * NB),
        "est_peak_bytes": int(max(wpc, per_block) * _WIRE_BYTES),
    }


def chunked_grid_table(
    ks: Sequence[int],
    W: int = 4,
    L: int = 2,
    track_order: TrackOrder = "forward",
    recirculating: bool = False,
    memory_budget_bytes: Optional[int] = None,
) -> ChunkedBuild:
    """Stream :func:`~repro.layout.grid_scheme.build_grid_layout`'s wire
    table phase by phase: intra wires in block-range chunks, level >= 3
    inter wires in grid-column-range chunks, level-2 inter wires in
    grid-row-range chunks — the exact monolithic emission order.

    The budget is honoured down to the phase granularity floor (one
    block / one grid column / one grid row per chunk): a closed group is
    the smallest unit whose rankings are self-contained.
    """
    dims = grid_dims(ks, W, L, recirculating=recirculating)
    sb = SwapButterfly.from_ks(dims.ks)
    model = thompson_model() if L == 2 else multilayer_model(L)
    gc, gr = dims.grid_cols, dims.grid_rows
    k2 = dims.ks[1]
    NB = gr * gc
    wpc, _per_block, bpc, cpc, rpc = _grid_grain(
        dims, sb.n, recirculating, memory_budget_bytes
    )

    def sub(bids: np.ndarray, phase: str) -> WireTable:
        return _cats_table(_grid_cats(
            sb, dims, track_order, recirculating, bids, frozenset({phase})
        ))

    _bulk_cache: Dict[str, np.ndarray] = {}

    def bulk() -> Dict[str, np.ndarray]:
        if not _bulk_cache:
            all_b = np.arange(NB, dtype=np.int64)
            _bulk_cache.update(
                all_b=all_b, bcol=all_b & (gc - 1), brow=all_b >> k2
            )
        return dict(_bulk_cache)

    def materialize(desc, views=None) -> WireTable:
        arrs = views if views is not None else bulk()
        kind, lo, hi = desc
        if kind == "intra":
            return sub(arrs["all_b"][lo:hi], "intra")
        if kind == "inter-col":
            bcol = arrs["bcol"]
            return sub(arrs["all_b"][(bcol >= lo) & (bcol < hi)], "inter-col")
        brow = arrs["brow"]
        return sub(arrs["all_b"][(brow >= lo) & (brow < hi)], "inter-row")

    descriptors = (
        [("intra", lo, min(lo + bpc, NB)) for lo in range(0, NB, bpc)]
        + [("inter-col", c0, c0 + cpc) for c0 in range(0, gc, cpc)]
        + [("inter-row", g0, g0 + rpc) for g0 in range(0, gr, rpc)]
    )
    return ChunkedBuild(
        name=f"grid-B{dims.n}-L{L}",
        model=model,
        nodes=build_grid_nodes(sb, dims),
        chunk_wires=wpc,
        memory_budget_bytes=memory_budget_bytes,
        recipe=(
            "grid", tuple(int(k) for k in ks), int(W), int(L),
            track_order, bool(recirculating), memory_budget_bytes,
        ),
        descriptors=descriptors,
        _materialize=materialize,
        _bulk=bulk,
    )


def chunked_grid2d_table(
    rows: int,
    cols: int,
    row_graph: Callable[[int], Graph],
    col_graph: Callable[[int], Graph],
    W: Optional[int] = None,
    L: int = 2,
    name: str = "grid2d",
    split_channels: bool = False,
    memory_budget_bytes: Optional[int] = None,
) -> ChunkedBuild:
    """Stream :func:`~repro.layout.grid2d.build_grid2d_layout`'s table.

    The demand pass visits every channel graph once without retaining
    it; the emission pass regenerates them channel by channel, buffering
    dogleg rows up to the chunk size.  The graph callables must be pure
    (same graph for the same index on every call).
    """
    if rows < 1 or cols < 1:
        raise ValueError("need at least a 1x1 grid")
    if L < 2:
        raise ValueError(f"need at least 2 layers, got {L}")
    d_top = d_bot = d_right = d_left = 0
    per_edge = 0
    num_wires = 0
    for r in range(rows):
        g = row_graph(r)
        if set(g.nodes()) - set(range(cols)):
            raise ValueError(f"row graph {r} has nodes outside 0..{cols - 1}")
        s0, s1 = _side_subgraphs(g, split_channels)
        d_top = max(d_top, max_congestion(s0, range(cols)))
        d_bot = max(d_bot, max_congestion(s1, range(cols)))
        per_edge = max(per_edge, s0.max_degree(), s1.max_degree())
        num_wires += s0.num_edges + s1.num_edges
    for c in range(cols):
        g = col_graph(c)
        if set(g.nodes()) - set(range(rows)):
            raise ValueError(f"column graph {c} has nodes outside 0..{rows - 1}")
        s0, s1 = _side_subgraphs(g, split_channels)
        d_right = max(d_right, max_congestion(s0, range(rows)))
        d_left = max(d_left, max_congestion(s1, range(rows)))
        per_edge = max(per_edge, s0.max_degree(), s1.max_degree())
        num_wires += s0.num_edges + s1.num_edges

    plan = _grid2d_plan(
        rows, cols, W, L, split_channels,
        d_top, d_bot, d_right, d_left, per_edge,
    )
    dims = plan.dims
    side = dims.W
    wpc = wires_per_chunk(memory_budget_bytes)

    def chunks() -> Iterator[WireTable]:
        nets_buf: List[Tuple] = []
        paths_buf: List[Tuple[int, ...]] = []
        pairs_buf: List[Tuple[int, int]] = []
        stream = _grid2d_wire_stream(
            rows, cols,
            lambda r: _side_subgraphs(row_graph(r), split_channels),
            lambda c: _side_subgraphs(col_graph(c), split_channels),
            plan.g_top, plan.g_bot, plan.g_right, plan.g_left,
            side, dims.cell_w, dims.cell_h, plan.x_off, plan.y_off,
        )
        for _u, _v, wnet, p8, pair in stream:
            nets_buf.append(wnet)
            paths_buf.append(p8)
            pairs_buf.append((pair.vertical, pair.horizontal))
            if len(nets_buf) >= wpc:
                yield _doglegs_to_table(nets_buf, paths_buf, pairs_buf)
                nets_buf, paths_buf, pairs_buf = [], [], []
        if nets_buf:
            yield _doglegs_to_table(nets_buf, paths_buf, pairs_buf)

    nodes: Dict[Hashable, Rect] = {}
    for r in range(rows):
        for c in range(cols):
            nodes[(r, c)] = Rect(
                c * dims.cell_w + plan.x_off, r * dims.cell_h + plan.y_off,
                side, side,
            )
    return ChunkedBuild(
        name=f"{name}-{rows}x{cols}-L{L}",
        model=plan.model,
        nodes=nodes,
        chunk_wires=wpc,
        memory_budget_bytes=memory_budget_bytes,
        num_wires=num_wires,
        _chunks=chunks,
    )


# ---------------------------------------------------------------------------
# streaming stats
# ---------------------------------------------------------------------------


class ChunkStats:
    """Streaming :meth:`Layout.summary` over a chunk stream — running
    sums, maxima and a running bounding box reproduce the monolithic
    metrics exactly (all quantities are integer sums/maxes)."""

    def __init__(self) -> None:
        self.wires = 0
        self.segments = 0
        self.total_wire_length = 0
        self.max_wire_length = 0
        self.vias = 0
        self.box: Optional[Tuple[int, int, int, int]] = None

    def feed(self, t: WireTable) -> None:
        self.wires += int(t.num_wires)
        self.segments += int(t.num_segments)
        self.total_wire_length += int(t.total_wire_length())
        self.max_wire_length = max(
            self.max_wire_length, int(t.max_wire_length())
        )
        self.vias += int(t.num_vias())
        b = t.bounding_box()
        if b is not None:
            if self.box is None:
                self.box = b
            else:
                self.box = (
                    min(self.box[0], b[0]), min(self.box[1], b[1]),
                    max(self.box[2], b[2]), max(self.box[3], b[3]),
                )

    def summary(self, nodes, model: LayoutModel) -> Dict[str, int]:
        xs: List[int] = []
        ys: List[int] = []
        for r in nodes.values():
            xs.extend((r.x, r.x2))
            ys.extend((r.y, r.y2))
        if self.box is not None:
            xs.extend((self.box[0], self.box[2]))
            ys.extend((self.box[1], self.box[3]))
        if not xs:
            raise ValueError("empty layout")
        width = max(xs) - min(xs)
        height = max(ys) - min(ys)
        return {
            "nodes": len(nodes),
            "wires": self.wires,
            "segments": self.segments,
            "width": width,
            "height": height,
            "area": width * height,
            "volume": width * height * model.num_layers,
            "layers": model.num_layers,
            "max_wire_length": self.max_wire_length,
            "total_wire_length": self.total_wire_length,
            "vias": self.vias,
        }


def summarize_chunks(
    chunks: Iterable[WireTable], nodes, model: LayoutModel
) -> Dict[str, int]:
    """Streaming :meth:`Layout.summary` over a chunk stream — identical
    dict to materialising the table, without holding more than a chunk."""
    st = ChunkStats()
    for t in chunks:
        st.feed(t)
    return st.summary(nodes, model)


# ---------------------------------------------------------------------------
# chunked validation
# ---------------------------------------------------------------------------


def _buckets_of(nb: int, *cols: np.ndarray) -> np.ndarray:
    """Deterministic hash partition of rows by their group-key columns.
    Rows with equal keys always land in the same bucket, so every
    comparison group of a grouped check is bucket-local."""
    h = np.zeros(len(cols[0]), dtype=np.uint64)
    mix = np.uint64(0x9E3779B97F4A7C15)
    for c in cols:
        h = (h + c.astype(np.uint64)) * mix
        h ^= h >> np.uint64(29)
    return (h % np.uint64(nb)).astype(np.int64)


class _SpillStore:
    """Disk-spilled, hash-partitioned rows for one grouped check.

    ``add`` splits a chunk's rows by bucket and appends one pickle part
    per touched bucket (int64 column matrix + aligned net objects);
    ``iter_buckets``/``bucket`` reload one bucket at a time, preserving
    global arrival order within the bucket (chunks feed in emission
    order and the per-chunk split is stable).
    """

    def __init__(self, root: str, name: str, num_buckets: int, ncols: int) -> None:
        self.dir = os.path.join(root, name)
        os.makedirs(self.dir, exist_ok=True)
        self.nb = num_buckets
        self.ncols = ncols
        self.parts: List[List[str]] = [[] for _ in range(num_buckets)]
        self._seq = 0

    def add(self, bucket: np.ndarray, cols: List[np.ndarray], objs: List) -> None:
        nr = len(bucket)
        if not nr:
            return
        order = np.argsort(bucket, kind="stable")
        bs = bucket[order]
        bounds = np.searchsorted(bs, np.arange(self.nb + 1))
        mat = np.stack(
            [np.asarray(c, dtype=np.int64)[order] for c in cols], axis=0
        )
        olist = [objs[i] for i in order.tolist()]
        for k in range(self.nb):
            i0, i1 = int(bounds[k]), int(bounds[k + 1])
            if i0 == i1:
                continue
            path = os.path.join(self.dir, f"{k:05d}_{self._seq:07d}.pkl")
            with open(path, "wb") as f:
                pickle.dump(
                    (mat[:, i0:i1], olist[i0:i1]), f,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            self.parts[k].append(path)
        self._seq += 1

    def bucket(self, k: int) -> Optional[Tuple[List[np.ndarray], List]]:
        if not self.parts[k]:
            return None
        return _load_parts(self.parts[k], self.ncols)

    def iter_buckets(self):
        for k in range(self.nb):
            b = self.bucket(k)
            if b is not None:
                yield k, b[0], b[1]


def _load_parts(
    parts: List, ncols: int
) -> Tuple[List[np.ndarray], List]:
    """Reload and concatenate spill parts in append order.

    Each entry is either a plain path or ``(path, offsets)`` where
    ``offsets`` is a per-column additive rebase vector — how the
    parallel reducer shifts a worker's span-local wire / via-position /
    terminal-sequence numbering into the global frame without rewriting
    the spilled bytes.
    """
    mats, olists = [], []
    for p in parts:
        off = None
        if isinstance(p, tuple):
            p, off = p
        with open(p, "rb") as f:
            mat, ol = pickle.load(f)
        if off is not None:
            mat = mat + np.asarray(off, dtype=np.int64).reshape(-1, 1)
        mats.append(mat)
        olists.append(ol)
    mat = np.concatenate(mats, axis=1)
    objs = [o for ol in olists for o in ol]
    return [mat[i] for i in range(ncols)], objs


class _Tally:
    """Count + first-``MAX_ERRORS_KEPT`` messages of a streaming check
    (chunks arrive in table order, so the prefix is the monolithic one)."""

    __slots__ = ("count", "msgs")

    def __init__(self) -> None:
        self.count = 0
        self.msgs: List[str] = []

    def add(self, count: int, msgs: Iterable[str]) -> None:
        self.count += count
        for m in msgs:
            if len(self.msgs) >= MAX_ERRORS_KEPT:
                break
            self.msgs.append(m)


class _KeyedTally:
    """Keyed messages from per-bucket sweeps; ``merged`` re-sorts them
    into the monolithic emission order (keys are globally unique across
    buckets, and within a bucket they arrive pre-sorted)."""

    __slots__ = ("count", "keyed")

    def __init__(self) -> None:
        self.count = 0
        self.keyed: List[Tuple[Tuple, str]] = []

    def add(self, count: int, keyed: Iterable[Tuple[Tuple, str]]) -> None:
        self.count += count
        self.keyed.extend(keyed)

    def merged(self) -> List[str]:
        return [m for _k, m in sorted(self.keyed, key=lambda kv: kv[0])]


def _fast_template(graph: Graph) -> Optional[Dict]:
    """Accumulator template for the realizes-graph array fast path, or
    ``None`` when the graph has no staged arrays.  ``_fast_stub(k, kk)``
    builds the worker-side half (no ``want_rows``/``counts`` — workers
    only accumulate, the reducer compares)."""
    if graph._staged_arrays() is None:
        return None
    try:
        edges, counts = graph.to_edge_array()
    except ValueError:
        return None
    k = edges.shape[2] if edges.ndim == 3 else 0
    kk = k if k else 1
    tpl = _fast_stub(k, kk)
    tpl["want_rows"] = edges.reshape(len(counts), 2 * kk)
    tpl["counts"] = counts
    return tpl


def _fast_stub(k: int, kk: int) -> Dict:
    return {
        "k": k,
        "kk": kk,
        "want_rows": None,
        "counts": None,
        "uniq": np.zeros((0, 2 * kk), dtype=np.int64),
        "agg": np.zeros(0, dtype=np.int64),
    }


class ChunkedValidator:
    """Streaming twin of :func:`~repro.layout.validate.validate_table`.

    Feed chunks in emission order, then ``finalize()``.  The report is
    byte-identical to the monolithic one on the concatenated table:
    same ``checks_run``, same ``num_errors``, same first-20 ``errors``
    in the same order.

    Peak memory is one chunk plus one spill bucket: grouped checks
    (track overlap, via conflicts, terminal collisions) spill their rows
    into ``num_buckets`` disk partitions keyed so comparison groups stay
    bucket-local, and re-run the monolithic sweep cores per bucket.
    Pick ``num_buckets >= total_rows_bytes / memory_budget_bytes`` to
    bound the reload size.
    """

    def __init__(
        self,
        nodes,
        model: LayoutModel,
        graph: Optional[Graph] = None,
        check_nodes: bool = True,
        check_vias: bool = True,
        backend=None,
        num_buckets: int = 8,
        spill_dir: Optional[str] = None,
    ) -> None:
        self.nodes = nodes
        self.model = model
        self.graph = graph
        self.check_nodes = check_nodes
        self.check_vias = check_vias
        self.be = get_backend(backend)
        self.nb = max(1, int(num_buckets))
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if spill_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-chunked-")
            spill_dir = self._tmpdir.name
        root = spill_dir
        # rows: layer, horiz, track, lo, hi, global wire
        self._tracks = _SpillStore(root, "tracks", self.nb, 6)
        if check_vias:
            # rows: x, y, zlo, zhi, global wire
            self._cols = _SpillStore(root, "viacol", self.nb, 5)
            # rows: layer, fix, lo, hi, global wire (per orientation)
            self._segs = {
                True: _SpillStore(root, "seg_h", self.nb, 5),
                False: _SpillStore(root, "seg_v", self.nb, 5),
            }
            # rows: ql, qx, qy, global wire, global section pos, layer
            # ordinal — one store per (orientation, column section) so a
            # reloaded bucket concatenates to the monolithic query order
            # ([all starts][all ends][all bends]) restricted to the bucket
            self._qrys = {
                (is_h, sec): _SpillStore(
                    root, f"qry_{'h' if is_h else 'v'}_{sec}", self.nb, 6
                )
                for is_h in (True, False) for sec in (0, 1, 2)
            }
            # rows: x, y, global arrival seq, global wire
            self._terms = _SpillStore(root, "terms", self.nb, 4)
        self._t_layer = _Tally()
        self._t_contig = _Tally()
        self._t_avoid = _Tally()
        self._wire_off = 0
        self._gw_count = 0
        self._bend_count = 0
        self._term_count = 0
        # wires-avoid-nodes: band indexes over the (fixed) nodes, built once
        self._bi: Dict[bool, Optional[_BandIndex]] = {True: None, False: None}
        if check_nodes and nodes:
            ybands: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)
            xbands: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)
            for r in nodes.values():
                ybands[(r.y, r.y2)].append((r.x, r.x2))
                xbands[(r.x, r.x2)].append((r.y, r.y2))
            self._bi[True] = _BandIndex(ybands)
            self._bi[False] = _BandIndex(xbands)
        # realizes-graph: exact Counter always; array fast-path while viable
        self._got: Counter = Counter()
        self._fast: Optional[Dict] = (
            _fast_template(graph) if graph is not None else None
        )
        self._finalized = False

    # -- feeding ---------------------------------------------------------

    def feed(self, t: WireTable) -> None:
        if self._finalized:
            raise RuntimeError("validator already finalized")
        nets = t.nets
        tmp = ValidationReport(ok=True)
        _vt_layer_discipline(t, self.model, tmp)
        self._t_layer.add(tmp.num_errors, tmp.errors)
        tmp = ValidationReport(ok=True)
        _vt_contiguity_terminals(t, self.nodes, tmp)
        self._t_contig.add(tmp.num_errors, tmp.errors)

        ns = t.num_segments
        w_of = t.wire_of if ns else np.zeros(0, dtype=np.int64)
        if ns:
            horiz = t.is_horizontal.astype(np.int64)
            track = np.where(horiz == 1, t.y1, t.x1)
            lo = np.where(horiz == 1, t.x1, t.y1)
            hi = np.where(horiz == 1, t.x2, t.y2)
            segnets = [nets[i] for i in w_of.tolist()]
            self._tracks.add(
                _buckets_of(self.nb, t.layer, horiz, track),
                [t.layer, horiz, track, lo, hi, w_of + self._wire_off],
                segnets,
            )
        if self.check_vias:
            self._feed_vias(t, w_of)
        if self.check_nodes:
            self._feed_avoid(t, w_of)
        if self.graph is not None:
            for net in nets:
                self._got[_canon_edge(net[0], net[1])] += 1
            if self._fast is not None and t.num_wires:
                f = self._fast
                rows = _canon_net_rows(nets, f["k"], f["kk"])
                if rows is None:
                    self._fast = None
                else:
                    f["uniq"], f["agg"] = Graph._aggregate_rows(
                        np.concatenate([f["uniq"], rows]),
                        np.concatenate([
                            f["agg"], np.ones(len(rows), dtype=np.int64),
                        ]),
                    )
        self._wire_off += t.num_wires

    def _feed_vias(self, t: WireTable, w_of: np.ndarray) -> None:
        nets = t.nets
        paths = t.paths()
        n_gw = int((~paths.bad).sum())
        cx, cy, zlo, zhi, cw = _vt_columns(t)
        ncol = len(cx)
        n_bend = ncol - 2 * n_gw
        colnets = [nets[i] for i in cw.tolist()]
        if ncol:
            self._cols.add(
                _buckets_of(self.nb, cx, cy),
                [cx, cy, zlo, zhi, cw + self._wire_off],
                colnets,
            )
            # section (starts / ends / bends) + global position within the
            # section reproduce the monolithic query order across chunks
            sec = np.empty(ncol, dtype=np.int64)
            pos = np.empty(ncol, dtype=np.int64)
            sec[:n_gw] = 0
            sec[n_gw:2 * n_gw] = 1
            sec[2 * n_gw:] = 2
            pos[:n_gw] = self._gw_count + np.arange(n_gw)
            pos[n_gw:2 * n_gw] = self._gw_count + np.arange(n_gw)
            pos[2 * n_gw:] = self._bend_count + np.arange(n_bend)
            ql, qx, qy, qw = _via_seg_queries(cx, cy, zlo, zhi, cw)
            reps = zhi - zlo + 1
            qc = np.repeat(np.arange(ncol, dtype=np.int64), reps)
            qj = ql - zlo[qc]
            qsec = sec[qc]
            qpos = pos[qc]
            gqw = qw + self._wire_off
            for s in (0, 1, 2):
                qm = np.flatnonzero(qsec == s)
                if not qm.size:
                    continue
                qnets = [colnets[i] for i in qc[qm].tolist()]
                for is_h in (True, False):
                    self._qrys[(is_h, s)].add(
                        _buckets_of(
                            self.nb, ql[qm], (qy if is_h else qx)[qm]
                        ),
                        [
                            ql[qm], qx[qm], qy[qm], gqw[qm],
                            qpos[qm], qj[qm],
                        ],
                        qnets,
                    )
        horiz = t.is_horizontal
        for is_h in (True, False):
            si = np.flatnonzero(horiz if is_h else ~horiz)
            if not si.size:
                continue
            sw = w_of[si]
            self._segs[is_h].add(
                _buckets_of(
                    self.nb, t.layer[si], (t.y1 if is_h else t.x1)[si]
                ),
                [
                    t.layer[si],
                    (t.y1 if is_h else t.x1)[si],
                    (t.x1 if is_h else t.y1)[si],
                    (t.x2 if is_h else t.y2)[si],
                    sw + self._wire_off,
                ],
                [nets[i] for i in sw.tolist()],
            )
        # terminals of good wires, interleaved start/end in wire order —
        # the global seq reproduces the monolithic arrival tiebreak
        gw_idx = np.flatnonzero(~paths.bad)
        if gw_idx.size:
            n2 = gw_idx.size
            sx = paths.px[paths.pt_indptr[:-1]][gw_idx]
            sy = paths.py[paths.pt_indptr[:-1]][gw_idx]
            ex = paths.px[paths.pt_indptr[1:] - 1][gw_idx]
            ey = paths.py[paths.pt_indptr[1:] - 1][gw_idx]
            tx = np.empty(2 * n2, dtype=np.int64)
            ty = np.empty(2 * n2, dtype=np.int64)
            tx[0::2], tx[1::2] = sx, ex
            ty[0::2], ty[1::2] = sy, ey
            tw = np.repeat(gw_idx, 2)
            seq = self._term_count + np.arange(2 * n2, dtype=np.int64)
            self._terms.add(
                _buckets_of(self.nb, tx, ty),
                [tx, ty, seq, tw + self._wire_off],
                [nets[i] for i in tw.tolist()],
            )
        self._gw_count += n_gw
        self._bend_count += n_bend
        self._term_count += 2 * n_gw

    def _feed_avoid(self, t: WireTable, w_of: np.ndarray) -> None:
        # per-chunk half of _vt_wires_avoid_nodes against prebuilt indexes
        if not self.nodes or t.num_segments == 0:
            return
        horiz = t.is_horizontal
        hit = np.zeros(t.num_segments, dtype=bool)
        for is_h in (True, False):
            si = np.flatnonzero(horiz if is_h else ~horiz)
            if not si.size:
                continue
            fix = (t.y1 if is_h else t.x1)[si]
            lo = (t.x1 if is_h else t.y1)[si]
            hi = (t.x2 if is_h else t.y2)[si]
            hit[si] = self._bi[is_h].hits(fix, lo, hi)
        count = int(hit.sum())
        if not count:
            return

        def msgs():
            for i in np.flatnonzero(hit).tolist():
                net = t.nets[int(w_of[i])]
                if horiz[i]:
                    yield (
                        f"wire {net}: H segment y={int(t.y1[i])} "
                        f"x[{int(t.x1[i])},{int(t.x2[i])}] crosses a node interior"
                    )
                else:
                    yield (
                        f"wire {net}: V segment x={int(t.x1[i])} "
                        f"y[{int(t.y1[i])},{int(t.y2[i])}] crosses a node interior"
                    )

        self._t_avoid.add(count, msgs())

    # -- finalization ----------------------------------------------------

    def finalize(self) -> ValidationReport:
        if self._finalized:
            raise RuntimeError("validator already finalized")
        self._finalized = True

        def run_jobs(payloads):
            return [_sweep_job(p, be=self.be) for p in payloads]

        return _reduce_finalize(self, run_jobs)

    def close(self) -> None:
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None


def _sweep_job(payload: Tuple, be=None) -> Tuple[int, List[Tuple[Tuple, str]]]:
    """Run one bucket sweep described by a picklable payload:
    ``(kind, is_h, parts_dict[, backend_name])``.  The job reloads its
    own spill parts, so a process-pool worker ships only paths; the
    serial path calls it inline with the validator's backend.  Returns
    ``(count, keyed_messages)``."""
    kind, is_h, parts = payload[0], payload[1], payload[2]
    if be is None:
        be = get_backend(payload[3] if len(payload) > 3 else None)
    if kind == "tracks":
        cols, objs = _load_parts(parts["rows"], 6)
        layer, horiz, track, lo, hi, gw = cols
        return _track_overlap_sweep(
            layer, horiz, track, lo, hi, gw, lambda r: objs[r], be=be
        )
    if kind == "viacol":
        cols, objs = _load_parts(parts["rows"], 5)
        cx, cy, zlo, zhi, gcw = cols
        return _via_col_sweep(
            cx, cy, zlo, zhi, gcw, lambda r: objs[r], be=be
        )
    if kind == "viaseg":
        s_cols, s_objs = _load_parts(parts["seg"], 5)
        qcols: List[List[np.ndarray]] = []
        qobjs: List = []
        qsecs: List[np.ndarray] = []
        for sect in (0, 1, 2):
            pl = parts[f"q{sect}"]
            if not pl:
                continue
            qc, qo = _load_parts(pl, 6)
            qcols.append(qc)
            qobjs.extend(qo)
            qsecs.append(np.full(len(qc[0]), sect, dtype=np.int64))
        ql, qx, qy, gqw, qpos, qj = (
            np.concatenate([qc[i] for qc in qcols]) for i in range(6)
        )
        qsec = np.concatenate(qsecs)
        s_lay, s_fix, s_lo, s_hi, s_gw = s_cols
        c, keyed = _via_seg_orientation(
            s_lay, s_fix, s_lo, s_hi, s_gw,
            lambda r: s_objs[r],
            ql, qx, qy, gqw,
            lambda i: qobjs[i],
            is_h, be=be,
        )
        return c, [
            ((int(qsec[qi]), int(qpos[qi]), int(qj[qi]), j), m)
            for (qi, j), m in keyed
        ]
    if kind != "terms":
        raise ValueError(f"unknown sweep kind {kind!r}")
    cols, objs = _load_parts(parts["rows"], 4)
    tx, ty, seq, _gtw = cols
    order = np.lexsort((seq, ty, tx))
    X, Y, S_ = tx[order], ty[order], seq[order]
    onets = [objs[i] for i in order.tolist()]
    ids: Dict = {}
    N_ = np.fromiter(
        (ids.setdefault(o, len(ids)) for o in onets),
        np.int64, len(onets),
    )
    same = (X[1:] == X[:-1]) & (Y[1:] == Y[:-1])
    err = same & (N_[1:] != N_[:-1])
    c = int(err.sum())
    if not c:
        return 0, []
    keyed = []
    for i in (np.flatnonzero(err) + 1).tolist():
        if len(keyed) >= MAX_ERRORS_KEPT:
            break
        p = (int(X[i]), int(Y[i]))
        keyed.append(((p[0], p[1], int(S_[i])), (
            f"terminal point {p} shared by wires "
            f"{onets[i - 1]} and {onets[i]}"
        )))
    return c, keyed


def _sweep_payloads(v: "ChunkedValidator") -> List[Tuple]:
    """Every grouped-check bucket sweep of ``v`` as an independent job
    payload, in deterministic (check, orientation, bucket) order."""
    payloads: List[Tuple] = []
    for k in range(v.nb):
        if v._tracks.parts[k]:
            payloads.append(("tracks", None, {"rows": v._tracks.parts[k]}))
    if v.check_vias:
        for k in range(v.nb):
            if v._cols.parts[k]:
                payloads.append(("viacol", None, {"rows": v._cols.parts[k]}))
        for is_h in (True, False):
            for k in range(v.nb):
                seg_parts = v._segs[is_h].parts[k]
                if not seg_parts:
                    continue
                qp = {
                    f"q{s}": v._qrys[(is_h, s)].parts[k] for s in (0, 1, 2)
                }
                if not any(qp.values()):
                    continue
                payloads.append(("viaseg", is_h, {"seg": seg_parts, **qp}))
        for k in range(v.nb):
            if v._terms.parts[k]:
                payloads.append(("terms", None, {"rows": v._terms.parts[k]}))
    return payloads


def _reduce_finalize(v: "ChunkedValidator", run_jobs) -> ValidationReport:
    """Assemble the final report from ``v``'s accumulated state.

    ``run_jobs(payloads)`` executes the bucket-sweep payloads and returns
    their ``(count, keyed)`` results in payload order — inline for the
    serial path, on a process pool for the parallel one.  The assembly
    (check order, keyed-message re-sort, per-orientation and global
    caps) is identical either way, which is what keeps the parallel
    report byte-identical to the serial one.
    """
    rep = ValidationReport(ok=True)
    rep.checks_run.append("layer-discipline")
    _bulk(rep, v._t_layer.count, iter(v._t_layer.msgs))
    rep.checks_run.append("contiguity-terminals")
    _bulk(rep, v._t_contig.count, iter(v._t_contig.msgs))
    payloads = _sweep_payloads(v)
    results = run_jobs(payloads)
    by_kind: Dict[Tuple, _KeyedTally] = defaultdict(_KeyedTally)
    for p, res in zip(payloads, results):
        by_kind[(p[0], p[1])].add(*res)
    rep.checks_run.append("track-overlap")
    kt = by_kind[("tracks", None)]
    _bulk(rep, kt.count, iter(kt.merged()))
    if v.check_vias:
        rep.checks_run.append("via-conflicts")
        kt = by_kind[("viacol", None)]
        _bulk(rep, kt.count, iter(kt.merged()))
        seg_count = 0
        seg_msgs: List[str] = []
        for is_h in (True, False):
            kt = by_kind[("viaseg", is_h)]
            seg_count += kt.count
            seg_msgs.extend(kt.merged()[:MAX_ERRORS_KEPT])
        _bulk(rep, seg_count, iter(seg_msgs))
        rep.checks_run.append("terminals-distinct")
        kt = by_kind[("terms", None)]
        _bulk(rep, kt.count, iter(kt.merged()))
    if v.check_nodes:
        _vt_nodes_disjoint(v.nodes, rep, be=v.be)
        rep.checks_run.append("wires-avoid-nodes")
        _bulk(rep, v._t_avoid.count, iter(v._t_avoid.msgs))
    if v.graph is not None:
        rep.checks_run.append("realizes-graph")
        placed = set(v.nodes)
        ok = False
        f = v._fast
        # zero wires fed: monolithic _canon_net_rows([]) returns None
        # and falls back — mirror that
        if v._wire_off == 0:
            f = None
        if f is not None:
            want_rows = f["want_rows"]
            if (
                f["uniq"].shape == want_rows.shape
                and np.array_equal(f["uniq"], want_rows)
                and np.array_equal(f["agg"], f["counts"])
            ):
                ok = _staged_nodes_placed(
                    want_rows, f["k"], f["kk"], placed
                )
        if not ok:
            _realizes_fallback(v._got, placed, v.graph, rep)
    v.close()
    return rep


def validate_table_chunked(
    chunks: Iterable[WireTable],
    nodes,
    model: LayoutModel,
    graph: Optional[Graph] = None,
    check_nodes: bool = True,
    check_vias: bool = True,
    backend=None,
    num_buckets: int = 8,
    spill_dir: Optional[str] = None,
    workers: Optional[int] = None,
) -> ValidationReport:
    """Validate a chunk stream; byte-identical report to running
    :func:`~repro.layout.validate.validate_table` on the concatenation.

    ``workers`` (``None`` = serial) fans the feed and the bucket sweeps
    out over a process pool — a :class:`ChunkedBuild` with a recipe
    streams descriptors, anything else falls back to buffering the
    chunks — with a report still byte-identical to the serial one.
    """
    if workers is not None:
        from .chunked_parallel import parallel_validate
        return parallel_validate(
            chunks, nodes=nodes, model=model, graph=graph,
            check_nodes=check_nodes, check_vias=check_vias, backend=backend,
            num_buckets=num_buckets, spill_dir=spill_dir, workers=workers,
        )
    v = ChunkedValidator(
        nodes, model, graph=graph, check_nodes=check_nodes,
        check_vias=check_vias, backend=backend, num_buckets=num_buckets,
        spill_dir=spill_dir,
    )
    try:
        for t in chunks:
            v.feed(t)
        return v.finalize()
    finally:
        v.close()
