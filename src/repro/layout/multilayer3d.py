"""The multilayer 3-D grid model: volume-optimal layer counts (Section 4.2).

The paper closes Section 4 with: "If a very large number L of layers and
L_A > 1 active layers are available, we can design butterfly layouts
under the multilayer 3-D grid model ...  To minimize the volume of the
multilayer 3-D layout, we should select ``L = Theta(sqrt(N)/log N)``."
The construction details were deferred to future work, so this module
implements the *model* the remark rests on and verifies the remark
quantitatively:

* with ``L`` wiring layers the footprint is wiring-limited at
  ``4 N^2 / (L^2 log2^2 N)`` (Theorem 4.1) until it hits the
  node-limited floor ``~ N`` (unit-area nodes spread over active
  layers keep the footprint at least ``N / L_A``; the paper's remark
  uses a single logical node plane, footprint ``N``);
* volume ``V(L) = L x max(wiring footprint, node floor)`` is decreasing
  while wiring-limited and increasing once node-limited, so the optimum
  sits at the crossover ``L* = 2 sqrt(N) / log2 N`` — exactly the
  paper's ``Theta(sqrt(N)/log N)`` — with minimum volume
  ``V* = 2 N^{3/2} / log2 N``.

Everything here is closed-form model arithmetic (clearly an *extension*,
not a wire-level construction); tests check the crossover algebra and
the benchmark sweeps ``L`` to exhibit the minimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..analysis.formulas import log2N, num_nodes

__all__ = [
    "footprint_3d",
    "volume_3d",
    "optimal_layers_3d",
    "min_volume_3d",
    "volume_sweep",
]


def footprint_3d(n: int, L: int) -> float:
    """Model footprint with ``L`` wiring layers: wiring-limited term vs
    the node floor."""
    if L < 2:
        raise ValueError(f"L must be >= 2, got {L}")
    N = num_nodes(n)
    wiring = 4 * N * N / (L * L * log2N(n) ** 2)
    return max(wiring, float(N))


def volume_3d(n: int, L: int) -> float:
    """Model volume ``L x footprint``."""
    return L * footprint_3d(n, L)


def optimal_layers_3d(n: int) -> float:
    """The crossover ``L* = 2 sqrt(N)/log2 N`` (paper: Theta(sqrt N/log N))."""
    N = num_nodes(n)
    return 2 * math.sqrt(N) / log2N(n)


def min_volume_3d(n: int) -> float:
    """Minimum model volume ``V* = N L* = 2 N^{3/2}/log2 N``."""
    N = num_nodes(n)
    return N * optimal_layers_3d(n)


@dataclass(frozen=True)
class VolumePoint:
    L: int
    footprint: float
    volume: float
    regime: str  # 'wiring' | 'nodes'


def volume_sweep(n: int, factors=(1 / 16, 1 / 4, 1 / 2, 1, 2, 4, 16)) -> List[VolumePoint]:
    """Volume at L values around the optimum (for the bench table)."""
    N = num_nodes(n)
    out: List[VolumePoint] = []
    lstar = optimal_layers_3d(n)
    for f in factors:
        L = max(2, int(round(lstar * f)))
        fp = footprint_3d(n, L)
        out.append(
            VolumePoint(
                L=L,
                footprint=fp,
                volume=L * fp,
                regime="nodes" if fp <= N * 1.0000001 else "wiring",
            )
        )
    return out
