"""2-D grid layouts of product-structured networks.

The butterfly paper's conclusion extends its results to "many other
networks, such as hypercubes and k-ary n-cubes": any network whose nodes
can be arranged as a grid with all links confined to grid rows and
columns lays out by the same recipe — each row's links in a horizontal
channel above the row (an optimal collinear layout of the row's induced
graph), each column's links in a vertical channel beside the column.

:func:`build_grid2d_layout` implements that recipe generically (with
multilayer track grouping), and is instantiated for hypercubes, k-ary
n-cubes and generalized hypercubes in :mod:`repro.layout.hypercube_layout`
and :mod:`repro.layout.ghc_layout`.

``split_channels=True`` implements the Section 5.2 remark "we can split
approximately half of the wires belonging to the same link to opposite
sides of the chip": each grid row gets a channel above *and* below (each
grid column one left *and* right), halving the per-edge terminal demand —
which is what lets the paper's side-20 chips carry `K_8`-with-quadruple-
links wiring.

A *row graph* / *column graph* is any multigraph whose nodes are the
column indices ``0..cols-1`` / row indices ``0..rows-1``; the callables
receive the row/column index so inhomogeneous products are possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Literal, Optional, Tuple

import numpy as np

from ..topology.graph import Graph
from .collinear_generic import left_edge_tracks, max_congestion
from .geometry import Rect, Wire
from .model import Layout, multilayer_model, thompson_model
from .tracks import TrackGrouping, base_layer_pair
from .wiretable import WireTable

__all__ = ["Grid2DDims", "Grid2DResult", "build_grid2d_layout"]

GraphFor = Callable[[int], Graph]
Node = Tuple[int, int]  # (row, col)


@dataclass(frozen=True)
class Grid2DDims:
    rows: int
    cols: int
    W: int
    L: int
    row_tracks: int  # logical tracks demanded per primary horizontal channel
    col_tracks: int
    chan_h: int  # physical, after L-grouping (above-row channel)
    chan_v: int  # right-of-column channel
    cell_w: int
    cell_h: int
    chan_h2: int = 0  # below-row channel (split mode)
    chan_v2: int = 0  # left-of-column channel (split mode)

    @property
    def width(self) -> int:
        return self.cols * self.cell_w

    @property
    def height(self) -> int:
        return self.rows * self.cell_h

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def volume(self) -> int:
        return self.area * self.L


@dataclass
class Grid2DResult:
    layout: Layout
    graph: Graph  # the realised network on (row, col) nodes
    dims: Grid2DDims

    def summary(self) -> Dict[str, int]:
        s = self.layout.summary()
        s["chan_h"] = self.dims.chan_h
        s["chan_v"] = self.dims.chan_v
        return s


def _split_side(a: int, b: int, copy: int, mult: int) -> int:
    """Which side (0 = primary, 1 = opposite) a link uses in split mode.

    Parallel copies alternate; single links balance by pair parity.
    """
    if mult > 1:
        return copy % 2
    return (a + b) % 2


def _side_subgraphs(g: Graph, split: bool) -> Tuple[Graph, Graph]:
    """Partition a channel graph's links into (primary, opposite) halves."""
    g0, g1 = Graph("side0"), Graph("side1")
    g0.add_nodes(g.nodes())
    g1.add_nodes(g.nodes())
    for a, b, mult in g.edges():
        for copy in range(mult):
            side = _split_side(a, b, copy, mult) if split else 0
            (g0 if side == 0 else g1).add_edge(a, b)
    return g0, g1


def _edge_orders(g: Graph) -> Dict[int, List[Tuple[int, int]]]:
    """Per node, the ordered list of (other, copy) links — terminal ranks."""
    out: Dict[int, List[Tuple[int, int]]] = {}
    for u in g.nodes():
        links: List[Tuple[int, int]] = []
        for w in g.neighbors(u):
            for copy in range(g.multiplicity(u, w)):
                links.append((w, copy))
        links.sort()
        out[u] = links
    return out


@dataclass(frozen=True)
class _Grid2DPlan:
    """Everything downstream of the channel-demand pass: dimensions,
    model, track groupings and cell offsets.  Shared by the monolithic
    builder and the chunked builder in :mod:`repro.layout.chunked`
    (which computes the demands incrementally instead of keeping every
    channel graph alive)."""

    dims: Grid2DDims
    model: object
    g_top: TrackGrouping
    g_bot: TrackGrouping
    g_right: TrackGrouping
    g_left: TrackGrouping
    x_off: int
    y_off: int


def _grid2d_plan(
    rows: int,
    cols: int,
    W: Optional[int],
    L: int,
    split_channels: bool,
    d_top: int,
    d_bot: int,
    d_right: int,
    d_left: int,
    per_edge: int,
) -> _Grid2DPlan:
    def grouped(d: int, horizontal: bool) -> Tuple[TrackGrouping, int]:
        g = TrackGrouping(L=L, horizontal=horizontal, total_tracks=max(d, 1))
        return g, (g.physical_tracks if d else 0)

    g_top, ch_top = grouped(d_top, True)
    g_bot, ch_bot = grouped(d_bot, True)
    g_right, ch_right = grouped(d_right, False)
    g_left, ch_left = grouped(d_left, False)

    # opposite-side terminals are shifted one unit off the corner (the
    # bottom-left corner would otherwise host both a bottom and a left
    # rank-0 terminal), so split mode needs one extra unit of side
    need = per_edge + (1 if split_channels else 0)
    side = W if W is not None else max(need, 1)
    if side < need:
        raise ValueError(
            f"node side {side} cannot host {need} terminals per edge"
        )

    cell_w = (ch_left + 1 if ch_left else 0) + side + 1 + ch_right + 1
    cell_h = (ch_bot + 1 if ch_bot else 0) + side + 1 + ch_top + 1
    dims = Grid2DDims(
        rows=rows,
        cols=cols,
        W=side,
        L=L,
        row_tracks=d_top,
        col_tracks=d_right,
        chan_h=ch_top,
        chan_v=ch_right,
        cell_w=cell_w,
        cell_h=cell_h,
        chan_h2=ch_bot,
        chan_v2=ch_left,
    )
    return _Grid2DPlan(
        dims=dims,
        model=thompson_model() if L == 2 else multilayer_model(L),
        g_top=g_top,
        g_bot=g_bot,
        g_right=g_right,
        g_left=g_left,
        x_off=ch_left + 1 if ch_left else 0,
        y_off=ch_bot + 1 if ch_bot else 0,
    )


def build_grid2d_layout(
    rows: int,
    cols: int,
    row_graph: GraphFor,
    col_graph: GraphFor,
    W: Optional[int] = None,
    L: int = 2,
    name: str = "grid2d",
    split_channels: bool = False,
    engine: Literal["table", "legacy"] = "table",
) -> Grid2DResult:
    """Lay out a network of ``rows x cols`` nodes with per-row/column links.

    ``row_graph(r)`` gives the links among the nodes of grid row ``r``
    (on node ids ``0..cols-1``); ``col_graph(c)`` likewise on row indices.
    Node side defaults to the maximum terminal demand (with
    ``split_channels`` each node edge carries only its half).

    ``engine="table"`` (default) accumulates the channel wires as columnar
    arrays and backs the layout with a
    :class:`~repro.layout.wiretable.WireTable`; ``engine="legacy"`` builds
    one :class:`Wire` object per link.  Both produce identical layouts
    wire for wire, in the same order.
    """
    if rows < 1 or cols < 1:
        raise ValueError("need at least a 1x1 grid")
    if L < 2:
        raise ValueError(f"need at least 2 layers, got {L}")
    if engine not in ("table", "legacy"):
        raise ValueError(f"unknown engine {engine!r}")
    rgs = [row_graph(r) for r in range(rows)]
    cgs = [col_graph(c) for c in range(cols)]
    for r, g in enumerate(rgs):
        if set(g.nodes()) - set(range(cols)):
            raise ValueError(f"row graph {r} has nodes outside 0..{cols - 1}")
    for c, g in enumerate(cgs):
        if set(g.nodes()) - set(range(rows)):
            raise ValueError(f"column graph {c} has nodes outside 0..{rows - 1}")

    row_sides = [_side_subgraphs(g, split_channels) for g in rgs]
    col_sides = [_side_subgraphs(g, split_channels) for g in cgs]

    def demand(graphs: List[Graph], n: int) -> int:
        return max((max_congestion(g, range(n)) for g in graphs), default=0)

    d_top = demand([s[0] for s in row_sides], cols)
    d_bot = demand([s[1] for s in row_sides], cols)
    d_right = demand([s[0] for s in col_sides], rows)
    d_left = demand([s[1] for s in col_sides], rows)
    per_edge = max(
        max((s[i].max_degree() for s in row_sides for i in (0, 1)), default=0),
        max((s[i].max_degree() for s in col_sides for i in (0, 1)), default=0),
    )

    plan = _grid2d_plan(
        rows, cols, W, L, split_channels,
        d_top, d_bot, d_right, d_left, per_edge,
    )
    dims, model, side = plan.dims, plan.model, plan.dims.W
    g_top, g_bot = plan.g_top, plan.g_bot
    g_right, g_left = plan.g_right, plan.g_left
    x_off, y_off = plan.x_off, plan.y_off
    cell_w, cell_h = dims.cell_w, dims.cell_h
    net = Graph(name=name)

    def origin(r: int, c: int) -> Tuple[int, int]:
        return (c * cell_w + x_off, r * cell_h + y_off)

    nodes: Dict[Node, Rect] = {}
    for r in range(rows):
        for c in range(cols):
            ox, oy = origin(r, c)
            nodes[(r, c)] = Rect(ox, oy, side, side)
            net.add_node((r, c))

    # wire emitter: every channel wire is the same 4-point dogleg, so the
    # table engine just records (net, path, layer pair) rows and builds
    # the columns in one shot at the end
    wire_objs: List[Wire] = []
    nets_out: List[Tuple] = []
    paths_out: List[Tuple[int, ...]] = []
    pairs_out: List[Tuple[int, int]] = []

    stream = _grid2d_wire_stream(
        rows, cols,
        lambda r: row_sides[r], lambda c: col_sides[c],
        g_top, g_bot, g_right, g_left,
        side, cell_w, cell_h, x_off, y_off,
    )
    for u, v, wnet, p8, pair in stream:
        net.add_edge(u, v)
        if engine == "table":
            nets_out.append(wnet)
            paths_out.append(p8)
            pairs_out.append((pair.vertical, pair.horizontal))
        else:
            path = [(p8[2 * i], p8[2 * i + 1]) for i in range(4)]
            wire_objs.append(Wire.from_legs(wnet, [(path, pair)]))

    lname = f"{name}-{rows}x{cols}-L{L}"
    if engine == "table":
        table = _doglegs_to_table(nets_out, paths_out, pairs_out)
        lay = Layout(model=model, name=lname, nodes=nodes, table=table)
    else:
        lay = Layout(model=model, name=lname, nodes=nodes, wires=wire_objs)
    return Grid2DResult(layout=lay, graph=net, dims=dims)


def _grid2d_wire_stream(
    rows: int,
    cols: int,
    row_sides_at: Callable[[int], Tuple[Graph, Graph]],
    col_sides_at: Callable[[int], Tuple[Graph, Graph]],
    g_top: TrackGrouping,
    g_bot: TrackGrouping,
    g_right: TrackGrouping,
    g_left: TrackGrouping,
    side: int,
    cell_w: int,
    cell_h: int,
    x_off: int,
    y_off: int,
):
    """Yield ``(u, v, wnet, path8, pair)`` per channel wire in emission
    order (row channels by row then side, column channels by column then
    side; links in sorted track-assignment order).

    The side-subgraph accessors are callables so the monolithic builder
    can hand out precomputed graphs while the chunked builder regenerates
    them channel by channel without holding them all."""

    def origin(r: int, c: int) -> Tuple[int, int]:
        return (c * cell_w + x_off, r * cell_h + y_off)

    # --- row channels -----------------------------------------------------
    for r in range(rows):
        sides = row_sides_at(r)
        for side_id, grouping in ((0, g_top), (1, g_bot)):
            g = sides[side_id]
            if g.num_edges == 0:
                continue
            orders = _edge_orders(g)
            assign = left_edge_tracks(g, range(cols))
            if side_id == 0:
                chan_base = r * cell_h + y_off + side + 1
            else:
                chan_base = r * cell_h

            def term(c: int, other: int, copy: int) -> Tuple[int, int]:
                rank = orders[c].index((other, copy))
                if side_id == 1:
                    rank += 1  # keep the bottom-left corner free
                ox, oy = origin(r, c)
                return (ox + rank, oy + side if side_id == 0 else oy)

            for (a, b, copy), t in sorted(assign.items()):
                y = chan_base + grouping.offset_of(t)
                pair = grouping.layer_pair(t)
                pa, pb = term(a, b, copy), term(b, a, copy)
                yield (
                    (r, a), (r, b),
                    ((r, a), (r, b), f"row{side_id}", copy),
                    (pa[0], pa[1], pa[0], y, pb[0], y, pb[0], pb[1]),
                    pair,
                )

    # --- column channels ----------------------------------------------------
    for c in range(cols):
        sides = col_sides_at(c)
        for side_id, grouping in ((0, g_right), (1, g_left)):
            g = sides[side_id]
            if g.num_edges == 0:
                continue
            orders = _edge_orders(g)
            assign = left_edge_tracks(g, range(rows))
            if side_id == 0:
                chan_base = c * cell_w + x_off + side + 1
            else:
                chan_base = c * cell_w

            def vterm(r: int, other: int, copy: int) -> Tuple[int, int]:
                rank = orders[r].index((other, copy))
                if side_id == 1:
                    rank += 1  # keep the bottom-left corner free
                ox, oy = origin(r, c)
                return (ox + side if side_id == 0 else ox, oy + rank)

            for (a, b, copy), t in sorted(assign.items()):
                x = chan_base + grouping.offset_of(t)
                pair = grouping.layer_pair(t)
                pa, pb = vterm(a, b, copy), vterm(b, a, copy)
                yield (
                    (a, c), (b, c),
                    ((a, c), (b, c), f"col{side_id}", copy),
                    (pa[0], pa[1], x, pa[1], x, pb[1], pb[0], pb[1]),
                    pair,
                )


def _doglegs_to_table(
    nets: List[Tuple],
    paths: List[Tuple[int, ...]],
    pairs: List[Tuple[int, int]],
) -> WireTable:
    """Columnar assembly of uniform 4-point dogleg wires: three alternating
    axis-aligned segments per wire, layered by each wire's pair."""
    m = len(nets)
    if not m:
        return WireTable.empty()
    P = np.array(paths, dtype=np.int64)  # (m, 8): x0 y0 x1 y1 x2 y2 x3 y3
    VH = np.array(pairs, dtype=np.int64)  # (m, 2): vertical, horizontal
    segs = np.empty((m, 3, 5), dtype=np.int64)
    for j in range(3):
        x1, y1 = P[:, 2 * j], P[:, 2 * j + 1]
        x2, y2 = P[:, 2 * j + 2], P[:, 2 * j + 3]
        # axis-aligned, so per-coordinate min/max is endpoint ordering
        segs[:, j, 0] = np.minimum(x1, x2)
        segs[:, j, 1] = np.minimum(y1, y2)
        segs[:, j, 2] = np.maximum(x1, x2)
        segs[:, j, 3] = np.maximum(y1, y2)
        segs[:, j, 4] = np.where(y1 == y2, VH[:, 1], VH[:, 0])
    flat = segs.reshape(m * 3, 5)
    return WireTable.from_segment_arrays(
        nets,
        np.arange(m + 1, dtype=np.int64) * 3,
        flat[:, 0], flat[:, 1], flat[:, 2], flat[:, 3], flat[:, 4],
    )
