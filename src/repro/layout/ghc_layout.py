"""2-D layouts of generalized hypercubes and k-ary n-cubes.

Two more instances of the grid recipe, both named by the paper:

* a **2-D generalized hypercube** (Bhuyan–Agrawal): every pair of nodes
  in a grid row or column adjacent — the row/column graphs are complete
  graphs, so the channels are exactly Appendix B's optimal collinear
  layouts with ``floor(r^2/4)`` tracks;
* a **k-ary 2-cube (2-D torus)**: row/column graphs are cycles ``C_k``,
  whose natural-order collinear congestion is just 2 (the wraparound
  link shares the channel with one chord).

The GHC instance closes the loop on Section 3.2: merging the butterfly
layout's blocks into supernodes *produces* this generalized-hypercube
layout, wired by the same collinear tracks.
"""

from __future__ import annotations

from typing import Optional

from ..topology.graph import Graph
from .grid2d import Grid2DResult, build_grid2d_layout

__all__ = [
    "ghc_2d_layout",
    "torus_2d_layout",
    "cycle_collinear_congestion",
]


def _complete(r: int) -> Graph:
    g = Graph(name=f"K_{r}")
    g.add_nodes(range(r))
    for u in range(r):
        for v in range(u + 1, r):
            g.add_edge(u, v)
    return g


def _cycle(k: int) -> Graph:
    g = Graph(name=f"C_{k}")
    g.add_nodes(range(k))
    for u in range(k):
        v = (u + 1) % k
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def cycle_collinear_congestion(k: int) -> int:
    """Collinear congestion of ``C_k`` in natural order: 2 for ``k >= 3``
    (every internal cut is crossed by one path link and the wrap link)."""
    if k < 3:
        return 1 if k == 2 else 0
    return 2


def ghc_2d_layout(
    radix_rows: int,
    radix_cols: int,
    W: Optional[int] = None,
    L: int = 2,
    split_channels: bool = False,
) -> Grid2DResult:
    """Wire-level layout of the 2-D generalized hypercube
    ``GHC(radix_rows, radix_cols)`` — complete graphs along rows and
    columns, channels = optimal collinear layouts of ``K_r``."""
    if radix_rows < 2 or radix_cols < 2:
        raise ValueError("radices must be >= 2")
    row = _complete(radix_cols)
    col = _complete(radix_rows)
    return build_grid2d_layout(
        rows=radix_rows,
        cols=radix_cols,
        row_graph=lambda r: row,
        col_graph=lambda c: col,
        W=W,
        L=L,
        name=f"GHC({radix_rows},{radix_cols})",
        split_channels=split_channels,
    )


def torus_2d_layout(k: int, W: Optional[int] = None, L: int = 2) -> Grid2DResult:
    """Wire-level layout of the k-ary 2-cube (k x k torus)."""
    if k < 3:
        raise ValueError(f"torus radix must be >= 3, got {k}")
    row = _cycle(k)
    col = _cycle(k)
    return build_grid2d_layout(
        rows=k,
        cols=k,
        row_graph=lambda r: row,
        col_graph=lambda c: col,
        W=W,
        L=L,
        name=f"torus-{k}",
    )
