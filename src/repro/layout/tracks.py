"""Multilayer track-group arithmetic (Section 4.2).

A channel that needs ``T`` parallel tracks under the Thompson model is
split, when ``L`` layers are available, into ``g`` groups that share the
same physical footprint on distinct layer pairs; the channel then occupies
only ``ceil(T / g)`` physical tracks.

* even ``L``: horizontal and vertical channels both get ``L/2`` groups;
  group ``i`` wires its runs on layer ``2i+2`` (horizontal) / ``2i+1``
  (vertical);
* odd ``L``: horizontal tracks get ``(L+1)/2`` groups on layers
  ``1, 3, ..., L`` and vertical tracks ``(L-1)/2`` groups on layers
  ``2, 4, ..., L-1``.

The numbers are what turn the Thompson-model area ``N^2/log^2 N`` into
``4N^2/(L^2 log^2 N)`` (even ``L``) and ``4N^2/((L^2-1) log^2 N)`` (odd).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .geometry import LayerPair

__all__ = ["TrackGrouping", "base_layer_pair"]


def base_layer_pair(L: int) -> LayerPair:
    """The layer pair used for block-internal (o(.)-budget) wiring."""
    if L % 2 == 0:
        return LayerPair(vertical=1, horizontal=2)
    return LayerPair(vertical=2, horizontal=1)


@dataclass(frozen=True)
class TrackGrouping:
    """Assignment of ``total_tracks`` logical tracks to physical offsets and
    layer pairs in one channel direction."""

    L: int
    horizontal: bool  # True: channel carries horizontal runs
    total_tracks: int

    @property
    def num_groups(self) -> int:
        if self.L % 2 == 0:
            return self.L // 2
        return (self.L + 1) // 2 if self.horizontal else (self.L - 1) // 2

    @property
    def physical_tracks(self) -> int:
        """Physical channel width: ``ceil(T / groups)`` (0 if no tracks)."""
        if self.total_tracks == 0:
            return 0
        g = self.num_groups
        return -(-self.total_tracks // g)

    def group_of(self, track: int) -> int:
        self._check(track)
        return track // self.physical_tracks

    def offset_of(self, track: int) -> int:
        self._check(track)
        return track % self.physical_tracks

    def layer_pair(self, track: int) -> LayerPair:
        """Layers carrying this track's run and its connecting segments."""
        g = self.group_of(track)
        if self.L % 2 == 0:
            return LayerPair(vertical=2 * g + 1, horizontal=2 * g + 2)
        if self.horizontal:
            # run on odd layer 2g+1; connecting verticals on an even layer
            run = 2 * g + 1
            vert = 2 * g if g >= 1 else 2
            return LayerPair(vertical=vert, horizontal=run)
        # vertical channel: run on even layer 2g+2; connectors on 2g+1
        return LayerPair(vertical=2 * g + 2, horizontal=2 * g + 1)

    def _check(self, track: int) -> None:
        if not 0 <= track < self.total_tracks:
            raise ValueError(
                f"track {track} outside [0, {self.total_tracks})"
            )
