"""Layout validation: the layout-model rules, checked exactly.

The checks implement the Thompson / multilayer 2-D grid model rules from
Sections 3.1 and 4.1 of the paper:

* axis discipline — vertical segments on odd layers, horizontal on even;
* edge-disjointness — two wires may *cross* at a grid point but may not
  share a unit grid edge on the same layer;
* no shared bends — a via (bend, or terminal drop to the active layer)
  occupies its grid point on every layer it passes through; no other net
  may touch that point on those layers (the no-knock-knee rule,
  generalised to ``L`` layers);
* wires avoid node interiors;
* node footprints are pairwise disjoint;
* the layout *realises* its target graph: every wire is a contiguous path
  between the footprints of its net's endpoints, and the multiset of nets
  equals the graph's edge multiset.

All checks are exact but use sorted-interval indexes so that layouts with
hundreds of thousands of segments validate in seconds.
"""

from __future__ import annotations

import bisect
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..topology.graph import Graph
from .geometry import Segment, Wire
from .model import Layout

__all__ = ["ValidationReport", "validate_layout"]

MAX_ERRORS_KEPT = 20


@dataclass
class ValidationReport:
    ok: bool
    errors: List[str] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)
    num_errors: int = 0

    def _add(self, msg: str) -> None:
        self.num_errors += 1
        if len(self.errors) < MAX_ERRORS_KEPT:
            self.errors.append(msg)
        self.ok = False

    def raise_if_failed(self) -> None:
        if not self.ok:
            shown = "\n  ".join(self.errors)
            raise AssertionError(
                f"layout validation failed ({self.num_errors} errors):\n  {shown}"
            )


# ---------------------------------------------------------------------------
# interval index helpers
# ---------------------------------------------------------------------------


class _TrackIndex:
    """Per-(layer, track) sorted interval lists for overlap / point queries."""

    def __init__(self) -> None:
        # (layer, horizontal?, track) -> sorted list of (lo, hi, wire_idx)
        self._tracks: Dict[Tuple[int, bool, int], List[Tuple[int, int, int]]] = (
            defaultdict(list)
        )

    def add(self, seg: Segment, wire_idx: int) -> None:
        key = (seg.layer, seg.is_horizontal, seg.track)
        self._tracks[key].append((seg.lo, seg.hi, wire_idx))

    def finalize(self) -> None:
        for lst in self._tracks.values():
            lst.sort()

    def overlaps(self) -> List[Tuple[Tuple[int, bool, int], Tuple, Tuple]]:
        """Pairs of intervals sharing a unit grid edge on the same track.

        Same-wire touching is permitted (a path revisiting a track), but
        strict overlap is flagged even within one wire: it always indicates
        a construction bug.

        All tracks are scanned in one vectorized sweep: the sorted
        per-track interval lists are flattened, each track's coordinates
        are shifted into a disjoint numeric band, and a single running
        maximum over the shifted ``hi`` values finds every interval whose
        ``lo`` undercuts an earlier ``hi`` on the same track.  The Python
        fallback only runs to reconstruct the offending pairs, i.e. on
        (normally zero) violations.
        """
        bad: List[Tuple[Tuple[int, bool, int], Tuple, Tuple]] = []
        multi = [(key, lst) for key, lst in self._tracks.items() if len(lst) > 1]
        if not multi:
            return bad
        arrs = [np.asarray(lst, dtype=np.int64) for _key, lst in multi]
        flat = np.concatenate(arrs)
        lens = np.array([len(a) for a in arrs])
        gid = np.repeat(np.arange(len(arrs)), lens)
        lo, hi = flat[:, 0], flat[:, 1]
        band = int(hi.max() - lo.min()) + 1
        lo_adj = lo + gid * band
        cummax = np.maximum.accumulate(hi + gid * band)
        bad_idx = np.flatnonzero(lo_adj[1:] < cummax[:-1]) + 1
        if not len(bad_idx):
            return bad
        starts = np.concatenate([[0], np.cumsum(lens)[:-1]])
        for i in bad_idx.tolist():
            g = int(np.searchsorted(starts, i, side="right")) - 1
            key, lst = multi[g]
            j = i - int(starts[g])
            # recover the running-max interval the scalar scan would have
            # paired this one with
            max_hi: Optional[int] = None
            max_item: Optional[Tuple[int, int, int]] = None
            for item in lst[:j]:
                if max_hi is None or item[1] > max_hi:
                    max_hi, max_item = item[1], item
            bad.append((key, max_item, lst[j]))
        return bad

    def nets_covering(
        self, layer: int, point: Tuple[int, int]
    ) -> List[int]:
        """Wire indexes whose segments on ``layer`` cover ``point``
        (including endpoints)."""
        x, y = point
        out: List[int] = []
        for horizontal, track, coord in ((True, y, x), (False, x, y)):
            lst = self._tracks.get((layer, horizontal, track))
            if not lst:
                continue
            i = bisect.bisect_right(lst, (coord, float("inf"), float("inf")))
            # scan left while intervals may cover coord
            j = i - 1
            while j >= 0:
                lo, hi, w = lst[j]
                if hi < coord:
                    # sorted by lo; earlier intervals can still span, keep
                    # scanning only while plausible: track lists are short
                    j -= 1
                    continue
                if lo <= coord <= hi:
                    out.append(w)
                j -= 1
        return out


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------


def _check_layer_discipline(layout: Layout, rep: ValidationReport) -> None:
    rep.checks_run.append("layer-discipline")
    L = layout.model.num_layers
    v_ok, h_ok = set(layout.model.v_layers), set(layout.model.h_layers)
    for wi, w in enumerate(layout.wires):
        for s in w.segments:
            if s.layer > L:
                rep._add(f"wire {w.net}: segment on layer {s.layer} > L={L}")
            allowed = h_ok if s.is_horizontal else v_ok
            if s.layer not in allowed:
                rep._add(
                    f"wire {w.net}: {'H' if s.is_horizontal else 'V'} segment on "
                    f"layer {s.layer} not permitted by model {layout.model.name}"
                )


def _check_contiguity_and_terminals(layout: Layout, rep: ValidationReport) -> None:
    rep.checks_run.append("contiguity-terminals")
    for w in layout.wires:
        try:
            pts = w.path_points()
        except ValueError as e:
            rep._add(str(e))
            continue
        u, v = w.net[0], w.net[1]
        for node, point, which in ((u, pts[0], "start"), (v, pts[-1], "end")):
            r = layout.nodes.get(node)
            if r is None:
                rep._add(f"wire {w.net}: {which} node {node!r} not placed")
            elif not r.on_boundary(point):
                rep._add(
                    f"wire {w.net}: {which} point {point} not on boundary of "
                    f"node {node!r} at ({r.x},{r.y},{r.w},{r.h})"
                )


def _check_realizes_graph(layout: Layout, graph: Graph, rep: ValidationReport) -> None:
    rep.checks_run.append("realizes-graph")
    want = graph.edge_multiset()
    got: Counter = Counter()
    for w in layout.wires:
        u, v = w.net[0], w.net[1]
        key = (u, v) if (u, v) in want or (v, u) not in want else (v, u)
        # canonicalise like Graph does
        got[_canon_edge(u, v)] += 1
    want_c = Counter({_canon_edge(u, v): c for (u, v), c in want.items()})
    if got != want_c:
        missing = want_c - got
        extra = got - want_c
        for e, c in list(missing.items())[:5]:
            rep._add(f"graph edge {e} x{c} has no wire")
        for e, c in list(extra.items())[:5]:
            rep._add(f"wire {e} x{c} has no graph edge")
    placed = set(layout.nodes)
    missing_nodes = [n for n in graph.nodes() if n not in placed]
    for n in missing_nodes[:5]:
        rep._add(f"graph node {n!r} not placed")
    if missing_nodes:
        rep.num_errors += max(0, len(missing_nodes) - 5)


def _canon_edge(u, v):
    def key(n):
        return (1, n) if isinstance(n, tuple) else (0, (n,))

    return (u, v) if key(u) <= key(v) else (v, u)


def _check_track_overlaps(idx: _TrackIndex, layout: Layout, rep: ValidationReport) -> None:
    rep.checks_run.append("track-overlap")
    for key, a, b in idx.overlaps():
        layer, horiz, track = key
        rep._add(
            f"layer {layer} {'H' if horiz else 'V'} track {track}: intervals "
            f"[{a[0]},{a[1]}] (wire {layout.wires[a[2]].net}) and "
            f"[{b[0]},{b[1]}] (wire {layout.wires[b[2]].net}) overlap"
        )


def _columns(layout: Layout) -> List[Tuple[int, int, int, int, int]]:
    """Via/terminal columns ``(x, y, z_lo, z_hi, wire_idx)``.

    Bends span between their two segment layers.  Terminals drop to the
    active layer (layer 1) where the node sits; in the two-layer Thompson
    case this makes a terminal of an H-segment occupy layers 1..2 at the
    attachment point, which is exactly the model's contact.
    """
    cols: List[Tuple[int, int, int, int, int]] = []
    for wi, w in enumerate(layout.wires):
        try:
            pts = w.path_points()
        except ValueError:
            continue  # discontiguous wires are reported by the path check
        segs = w.segments
        first, last = segs[0], segs[-1]
        cols.append((pts[0][0], pts[0][1], 1, first.layer, wi))
        cols.append((pts[-1][0], pts[-1][1], 1, last.layer, wi))
        for i in range(len(segs) - 1):
            la, lb = segs[i].layer, segs[i + 1].layer
            if la != lb:
                x, y = pts[i + 1]
                cols.append((x, y, min(la, lb), max(la, lb), wi))
    return cols


def _check_via_conflicts(
    idx: _TrackIndex, layout: Layout, rep: ValidationReport
) -> None:
    rep.checks_run.append("via-conflicts")
    cols = _columns(layout)
    by_point: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = defaultdict(list)
    for x, y, zlo, zhi, wi in cols:
        by_point[(x, y)].append((zlo, zhi, wi))
    # column-vs-column: overlapping z-ranges of different nets at one point
    for (x, y), lst in by_point.items():
        if len(lst) > 1:
            lst.sort()
            for i in range(len(lst)):
                for j in range(i + 1, len(lst)):
                    (alo, ahi, wa), (blo, bhi, wb) = lst[i], lst[j]
                    if wa != wb and alo <= bhi and blo <= ahi:
                        rep._add(
                            f"via columns of wires {layout.wires[wa].net} and "
                            f"{layout.wires[wb].net} collide at ({x},{y}) "
                            f"layers [{alo},{ahi}]&[{blo},{bhi}]"
                        )
    # column-vs-segment: another net's segment covering the column point on a
    # spanned layer.  Endpoint touches are columns themselves (handled above)
    # so only strict-interior coverage is an undetected conflict; we query
    # inclusive and filter own-wire and endpoint hits via the by_point map.
    for x, y, zlo, zhi, wi in cols:
        for layer in range(zlo, zhi + 1):
            for other in idx.nets_covering(layer, (x, y)):
                if other == wi:
                    continue
                # Endpoint touching at this exact point by `other` would mean
                # `other` has a column here too; that pair is already flagged
                # (or safely z-disjoint).  Check strict interior only:
                if _covers_strict_interior(layout.wires[other], layer, (x, y)):
                    rep._add(
                        f"wire {layout.wires[other].net} passes through via of "
                        f"wire {layout.wires[wi].net} at ({x},{y}) layer {layer}"
                    )


def _covers_strict_interior(w: Wire, layer: int, point: Tuple[int, int]) -> bool:
    x, y = point
    for s in w.segments:
        if s.layer != layer or not s.covers_point(point):
            continue
        if s.is_horizontal and s.x1 < x < s.x2:
            return True
        if s.is_vertical and s.y1 < y < s.y2:
            return True
    return False


def _check_nodes_disjoint(layout: Layout, rep: ValidationReport) -> None:
    rep.checks_run.append("nodes-disjoint")
    items = sorted(layout.nodes.items(), key=lambda kv: (kv[1].x, kv[1].y))
    active: List[Tuple[Hashable, object]] = []
    for node, r in items:
        still = []
        for onode, o in active:
            if o.x2 <= r.x:
                continue
            still.append((onode, o))
            if r.intersects(o, strict=True):
                rep._add(f"nodes {node!r} and {onode!r} overlap")
        active = still
        active.append((node, r))


class _NodeBands:
    """Spatial index over node rects: bands of identical y-interval (for H
    segment queries) and of identical x-interval (for V queries)."""

    def __init__(self, layout: Layout) -> None:
        ybands: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)
        xbands: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)
        for r in layout.nodes.values():
            ybands[(r.y, r.y2)].append((r.x, r.x2))
            xbands[(r.x, r.x2)].append((r.y, r.y2))
        self.ybands = {k: sorted(v) for k, v in ybands.items()}
        self.xbands = {k: sorted(v) for k, v in xbands.items()}

    @staticmethod
    def _hits(intervals: List[Tuple[int, int]], lo: int, hi: int) -> bool:
        """Any stored open interval strictly overlapping open ``(lo, hi)``?"""
        i = bisect.bisect_left(intervals, (hi, hi))
        # candidates end before index i; check the few whose end exceeds lo
        j = i - 1
        while j >= 0:
            a, b = intervals[j]
            if b <= lo:
                # intervals sorted by start; earlier ones could still be long
                j -= 1
                continue
            if a < hi and b > lo:
                return True
            j -= 1
        return False

    def h_segment_hits_interior(self, y: int, lo: int, hi: int) -> bool:
        for (by, by2), xs in self.ybands.items():
            if by < y < by2 and self._hits(xs, lo, hi):
                return True
        return False

    def v_segment_hits_interior(self, x: int, lo: int, hi: int) -> bool:
        for (bx, bx2), ys in self.xbands.items():
            if bx < x < bx2 and self._hits(ys, lo, hi):
                return True
        return False


def _check_wires_avoid_nodes(layout: Layout, rep: ValidationReport) -> None:
    rep.checks_run.append("wires-avoid-nodes")
    bands = _NodeBands(layout)
    for w in layout.wires:
        for s in w.segments:
            if s.is_horizontal:
                if bands.h_segment_hits_interior(s.y1, s.x1, s.x2):
                    rep._add(
                        f"wire {w.net}: H segment y={s.y1} x[{s.x1},{s.x2}] "
                        f"crosses a node interior"
                    )
            else:
                if bands.v_segment_hits_interior(s.x1, s.y1, s.y2):
                    rep._add(
                        f"wire {w.net}: V segment x={s.x1} y[{s.y1},{s.y2}] "
                        f"crosses a node interior"
                    )


def _check_terminals_distinct(layout: Layout, rep: ValidationReport) -> None:
    rep.checks_run.append("terminals-distinct")
    seen: Dict[Tuple[int, int], Tuple] = {}
    for w in layout.wires:
        try:
            pts = w.path_points()
        except ValueError:
            continue
        for p in (pts[0], pts[-1]):
            if p in seen and seen[p] != w.net:
                rep._add(
                    f"terminal point {p} shared by wires {seen[p]} and {w.net}"
                )
            seen[p] = w.net


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def validate_layout(
    layout: Layout,
    graph: Optional[Graph] = None,
    check_nodes: bool = True,
    check_vias: bool = True,
) -> ValidationReport:
    """Run the full rule set; returns a report (``.raise_if_failed()`` to
    assert)."""
    rep = ValidationReport(ok=True)
    _check_layer_discipline(layout, rep)
    _check_contiguity_and_terminals(layout, rep)

    idx = _TrackIndex()
    for wi, w in enumerate(layout.wires):
        for s in w.segments:
            idx.add(s, wi)
    idx.finalize()
    _check_track_overlaps(idx, layout, rep)
    if check_vias:
        _check_via_conflicts(idx, layout, rep)
        _check_terminals_distinct(layout, rep)
    if check_nodes:
        _check_nodes_disjoint(layout, rep)
        _check_wires_avoid_nodes(layout, rep)
    if graph is not None:
        _check_realizes_graph(layout, graph, rep)
    return rep
